//! Theorem 2.1 live: a 2-node TVG whose *schedule* runs a Turing
//! machine, accepting the context-sensitive language `aⁿbⁿcⁿ` with
//! direct journeys — and Theorem 2.3's dilation showing bounded waiting
//! keeps that power.
//!
//! Run with: `cargo run --example turing_schedule`

use tvg_suite::expressivity::nowait_power::{encode_word, DeciderAutomaton};
use tvg_suite::langs::sample::words_upto;
use tvg_suite::langs::{machines, word, Alphabet};

fn main() {
    let sigma = Alphabet::abc();
    let tm = machines::anbncn();
    println!(
        "Turing machine for aⁿbⁿcⁿ: {} states, {} rules — compiled into a 2-node TVG schedule",
        tm.num_states(),
        tm.num_rules()
    );
    let aut = DeciderAutomaton::from_turing_machine(sigma.clone(), machines::anbncn(), 100_000);

    // Time is the tape: the clock after reading w encodes w in base 4.
    for w in ["abc", "aabbcc", "ab"] {
        let w = word(w);
        let clock = encode_word(&sigma, &w).expect("word over alphabet");
        println!(
            "  after reading {w:<7} the clock reads {clock:>6}  → accepted: {}",
            aut.accepts_nowait(&w)
        );
    }
    println!();

    // Exhaustive cross-check against the machine itself.
    let max_len = 6;
    let tm = machines::anbncn();
    let mismatches = words_upto(&sigma, max_len)
        .into_iter()
        .filter(|w| !w.is_empty())
        .filter(|w| aut.accepts_nowait(w) != tm.decide(w, 100_000))
        .count();
    println!(
        "cross-check (all {} nonempty words of length ≤ {max_len}): {mismatches} mismatches",
        (3u32.pow(max_len as u32 + 1) - 3) / 2
    );
    println!();

    // Theorem 2.3: dilate by d+1 and allow pauses ≤ d — same language.
    println!("Theorem 2.3 (bounded waiting is no weaker): dilate by d+1, allow pauses ≤ d");
    for d in [1u64, 4] {
        let ok = aut.dilated_accepts_bounded(&word("aabbcc"), d);
        let bad = aut.dilated_accepts_bounded(&word("aabbc"), d);
        println!("  d = {d}: accepts aabbcc = {ok}, accepts aabbc = {bad}");
    }
    println!();
    println!("the non-regular (indeed non-context-free) language survives bounded waiting —");
    println!("only unbounded waiting collapses the environment to a finite-state machine.");
}
