//! Compile-once / query-many reachability on a 1000-node generated TVG.
//!
//! The compiled temporal index ([`tvg_model::TvgIndex`]) materializes
//! every edge's presence schedule as sorted intervals, then the
//! single-source journey engine answers "when does the message reach
//! every node?" in one label-correcting pass per source — the workload
//! that used to take one tick-scan search *per destination*.
//!
//! Run with: `cargo run --release --example temporal_index`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tvg_suite::journeys::engine::foremost_tree;
use tvg_suite::journeys::{SearchLimits, WaitingPolicy};
use tvg_suite::langs::Alphabet;
use tvg_suite::model::generators::{random_periodic_tvg, RandomPeriodicParams};
use tvg_suite::model::{NodeId, TvgIndex};

fn main() {
    // A 1000-node, 4000-edge random periodic TVG — far beyond what the
    // paper draws by hand, well within what the index handles.
    let params = RandomPeriodicParams {
        num_nodes: 1000,
        num_edges: 4000,
        period: 32,
        phase_density: 0.25,
        alphabet: Alphabet::ab(),
    };
    let g = random_periodic_tvg(&mut StdRng::seed_from_u64(2012), &params);
    let horizon = 256u64;

    // Compile once…
    let t0 = Instant::now();
    let index = TvgIndex::compile(&g, horizon);
    let compile_time = t0.elapsed();
    println!(
        "compiled {} nodes / {} edges over horizon {horizon}: {} edge events in {compile_time:?}",
        g.num_nodes(),
        g.num_edges(),
        index.num_edge_events(),
    );

    // …query many: one single-source engine run per source answers
    // foremost arrival for all 1000 destinations at once.
    let limits = SearchLimits::new(horizon, 64);
    for policy in [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(8),
        WaitingPolicy::Unbounded,
    ] {
        let t1 = Instant::now();
        let sources = [0usize, 250, 500, 750];
        let mut total_reached = 0usize;
        let mut sample_arrival = None;
        for &s in &sources {
            let tree = foremost_tree(&index, NodeId::from_index(s), &0, &policy, &limits);
            total_reached += tree.num_reached();
            if s == 0 {
                sample_arrival = tree.arrival(NodeId::from_index(999)).copied();
            }
        }
        let per_source = t1.elapsed() / sources.len() as u32;
        println!(
            "{policy:<9} {} sources × 1000 destinations: mean reach {:>6.1} nodes, \
             v0→v999 arrival {:?}, {per_source:?} per single-source pass",
            sources.len(),
            total_reached as f64 / sources.len() as f64,
            sample_arrival,
        );
    }

    println!();
    println!(
        "the same four rows via tick-scan search would be {} independent \
         per-pair explorations; the engine does them in {} passes",
        4 * (g.num_nodes() - 1),
        4
    );
}
