//! Quickstart: build a small time-varying graph, search journeys under
//! the three waiting policies, and run it as a TVG-automaton.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::BTreeSet;
use tvg_suite::expressivity::TvgAutomaton;
use tvg_suite::journeys::{foremost_journey, SearchLimits, WaitingPolicy};
use tvg_suite::langs::word;
use tvg_suite::model::{Latency, Presence, TvgBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny dynamic network: a message can go v0 → v1 early, but the
    // v1 → v2 link only comes up at t = 5.
    let mut b = TvgBuilder::<u64>::new();
    let v0 = b.node("v0");
    let v1 = b.node("v1");
    let v2 = b.node("v2");
    b.edge(v0, v1, 'a', Presence::At(1), Latency::unit())?;
    b.edge(v1, v2, 'b', Presence::At(5), Latency::unit())?;
    let g = b.build()?;

    println!("TVG with {} nodes, {} edges", g.num_nodes(), g.num_edges());
    println!("snapshot at t=1: {:?}", g.snapshot(&1));
    println!("snapshot at t=5: {:?}", g.snapshot(&5));
    println!();

    // Journey search under the paper's three regimes.
    let limits = SearchLimits::new(10, 5);
    for policy in [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(3),
        WaitingPolicy::Unbounded,
    ] {
        match foremost_journey(&g, v0, v2, &1, &policy, &limits) {
            Some(j) => println!("{policy:<8} v0→v2: {j}  (arrives at {:?})", j.arrival()),
            None => println!("{policy:<8} v0→v2: no feasible journey"),
        }
    }
    println!();

    // The same graph as a language acceptor.
    let aut = TvgAutomaton::new(g, BTreeSet::from([v0]), BTreeSet::from([v2]), 1)?;
    let w = word("ab");
    for policy in [WaitingPolicy::NoWait, WaitingPolicy::Unbounded] {
        println!(
            "A(G) accepts {w:?} under {policy}: {}",
            aut.accepts(&w, &policy, &limits)
        );
    }
    println!();
    println!(
        "L_wait(G) up to length 3: {:?}",
        aut.language_upto(&WaitingPolicy::Unbounded, &limits, 3)
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    Ok(())
}
