//! Store-carry-forward vs. no-wait broadcast on edge-Markovian dynamic
//! networks — the paper's motivating claim, quantified (experiment E5 in
//! miniature).
//!
//! Run with: `cargo run --example broadcast_sim`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tvg_suite::dynnet::broadcast::{run_broadcast, BroadcastConfig, ForwardingMode};
use tvg_suite::dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
use tvg_suite::dynnet::metrics::AggregateStats;

fn main() {
    let n = 32;
    let steps = 120;
    let seeds = 20;
    println!("edge-Markovian broadcast: n = {n}, {steps} steps, {seeds} seeds, p_birth = 0.01");
    println!();
    println!("  p_death   density   store-carry-forward      no-wait relay");
    println!("                      delivery   mean time     delivery   mean time");

    for p_death in [0.1, 0.2, 0.4, 0.6, 0.8] {
        let params = EdgeMarkovianParams {
            num_nodes: n,
            p_birth: 0.01,
            p_death,
            steps,
        };
        let mut scf_stats = Vec::new();
        let mut nw_stats = Vec::new();
        for seed in 0..seeds {
            let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
            scf_stats.push(
                run_broadcast(
                    &trace,
                    &BroadcastConfig {
                        source: 0,
                        mode: ForwardingMode::StoreCarryForward,
                        source_beacons: true,
                    },
                )
                .stats(),
            );
            nw_stats.push(
                run_broadcast(
                    &trace,
                    &BroadcastConfig {
                        source: 0,
                        mode: ForwardingMode::NoWaitRelay,
                        source_beacons: true,
                    },
                )
                .stats(),
            );
        }
        let scf = AggregateStats::from_runs(&scf_stats);
        let nw = AggregateStats::from_runs(&nw_stats);
        println!(
            "  {:<9.1} {:<9.3} {:>7.1}%   {:>9.1}    {:>7.1}%   {:>9.1}",
            p_death,
            params.stationary_density(),
            scf.mean_delivery_ratio * 100.0,
            scf.mean_time.unwrap_or(f64::NAN),
            nw.mean_delivery_ratio * 100.0,
            nw.mean_time.unwrap_or(f64::NAN),
        );
    }
    println!();
    println!("expected shape: buffering keeps delivery near 100% as churn grows;");
    println!("no-wait relaying collapses once contacts stop chaining back-to-back.");
}
