//! Figure 1 of the paper, live: the TVG-automaton recognizing the
//! context-free language `aⁿbⁿ` with *direct journeys only*, scheduled by
//! prime powers. Prints the schedule table and the accepting run's clock.
//!
//! Run with: `cargo run --example anbn_figure1 [n]`

use tvg_suite::expressivity::anbn::{anbn_word, is_anbn, AnbnAutomaton};
use tvg_suite::langs::sample::words_upto;
use tvg_suite::langs::Alphabet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(6);

    let aut = AnbnAutomaton::new(2, 3)?;
    println!(
        "Figure 1 (p = {}, q = {}): states v0 (start), v1, v2 (accepting)",
        aut.p(),
        aut.q()
    );
    println!();
    println!("  edge  from→to  label  presence ρ(e,t)=1 iff         latency ζ(e,t)");
    println!("  e0    v0→v0    a      always                        (p−1)·t");
    println!("  e1    v0→v1    b      t > p                         (q−1)·t");
    println!("  e2    v1→v1    b      t ≠ pⁱqⁱ⁻¹ (i>1)              (q−1)·t");
    println!("  e3    v0→v2    b      t = p                         1");
    println!("  e4    v1→v2    b      t = pⁱqⁱ⁻¹ (i>1)              1");
    println!();

    // The accepting run for a^n b^n: the clock IS the counter.
    let w = anbn_word(n);
    println!("reading {w} (reading starts at t = 1):");
    match aut.nowait_trace(&w) {
        Some(trace) => {
            for (i, (node, t)) in trace.iter().enumerate() {
                let read = if i == 0 {
                    "start".to_string()
                } else {
                    format!("read {}", w.get(i - 1).expect("prefix in range"))
                };
                println!("  {read:<8} at {node}, clock = {t}");
            }
            println!(
                "  → accepted (clock peaked at p^{n}·q^{} = {})",
                n.saturating_sub(1),
                trace[trace.len() - 2].1
            );
        }
        None => println!("  → rejected"),
    }
    println!();

    // Exhaustive check on short words: L_nowait(G) = {a^n b^n}.
    let max_len = 10;
    let mut mismatches = 0;
    for w in words_upto(&Alphabet::ab(), max_len) {
        if aut.accepts_nowait(&w) != is_anbn(&w) {
            mismatches += 1;
        }
    }
    println!(
        "cross-check vs reference on all {} words of length ≤ {max_len}: {} mismatches",
        2u32.pow(max_len as u32 + 1) - 1,
        mismatches
    );
    Ok(())
}
