//! Theorem 2.2, operational: because every `L_wait(G)` is regular, it is
//! *learnable*. Angluin's L\* reconstructs the waiting language's minimal
//! DFA from membership queries answered by the journey simulator — the
//! learner never sees the graph.
//!
//! Run with: `cargo run --example learn_wait_language`

use tvg_suite::expressivity::wait_regular::{periodic_to_nfa, sufficient_limits};
use tvg_suite::journeys::WaitingPolicy;
use tvg_suite::langs::learn::{bounded_equivalence, learn_dfa};
use tvg_suite::langs::{Alphabet, Word};
use tvg_testkit::fixtures::{periodic_family_automaton, small_periodic_params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alphabet = Alphabet::ab();
    // Member 9 of the standard small periodic family (same family the E3
    // tests sweep): its waiting language has a 7-state minimal DFA.
    let aut = periodic_family_automaton(&small_periodic_params(3), 9);
    println!(
        "hidden TVG: {} nodes, {} edges, period 3 — the learner sees only query answers",
        aut.tvg().num_nodes(),
        aut.tvg().num_edges()
    );

    // Membership oracle = the journey simulator under unbounded waiting.
    let limits = sufficient_limits(&aut, 3, 9);
    let mut queries = 0usize;
    let learned = {
        let oracle = |w: &Word| aut.accepts(w, &WaitingPolicy::Unbounded, &limits);
        learn_dfa(
            &alphabet,
            |w| {
                queries += 1;
                oracle(w)
            },
            |hyp| bounded_equivalence(hyp, oracle, &alphabet, 8),
            32,
        )?
    };
    println!("L* converged after {queries} membership queries");
    println!("learned minimal DFA: {} states", learned.num_states());

    // Ground truth via the Theorem 2.2 compiler.
    let compiled = periodic_to_nfa(&aut, 3, &WaitingPolicy::Unbounded, &alphabet)?
        .to_dfa()
        .minimize();
    println!("compiled minimal DFA: {} states", compiled.num_states());
    println!(
        "equivalent: {}",
        if learned.equivalent_to(&compiled) {
            "yes — Theorem 2.2, twice over"
        } else {
            "NO"
        }
    );

    println!();
    println!("sample of the learned language (words ≤ 5):");
    for w in learned.language_upto(5).iter().take(10) {
        println!("  {w}");
    }
    Ok(())
}
