//! The power of waiting, on one graph: the same periodic TVG expresses
//! different languages under nowait / wait[d] / wait, and the waiting
//! language is regular — we print its minimal DFA (Theorem 2.2,
//! constructive fragment).
//!
//! Run with: `cargo run --example power_of_waiting`

use std::collections::BTreeSet;
use tvg_suite::expressivity::wait_regular::{periodic_to_nfa, sufficient_limits};
use tvg_suite::expressivity::TvgAutomaton;
use tvg_suite::journeys::WaitingPolicy;
use tvg_suite::langs::Alphabet;
use tvg_suite::model::{Latency, Presence, TvgBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-hop periodic network: 'a' departs at phase 0 of 4, 'b' at
    // phase 3 of 4 — so after 'a' (arrive phase 1) a 2-unit pause is
    // needed before 'b'.
    let period = 4;
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(3);
    b.edge(
        v[0],
        v[1],
        'a',
        Presence::Periodic {
            period,
            phases: BTreeSet::from([0]),
        },
        Latency::unit(),
    )?;
    b.edge(
        v[1],
        v[2],
        'b',
        Presence::Periodic {
            period,
            phases: BTreeSet::from([3]),
        },
        Latency::unit(),
    )?;
    b.edge(
        v[2],
        v[0],
        'a',
        Presence::Periodic {
            period,
            phases: BTreeSet::from([0, 2]),
        },
        Latency::unit(),
    )?;
    let aut = TvgAutomaton::new(
        b.build()?,
        BTreeSet::from([v[0]]),
        BTreeSet::from([v[2]]),
        0,
    )?;

    let alphabet = Alphabet::ab();
    let max_len = 6;
    let limits = sufficient_limits(&aut, period, max_len);

    println!("one TVG, three languages (words of length ≤ {max_len}):");
    for policy in [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(1),
        WaitingPolicy::Bounded(2),
        WaitingPolicy::Unbounded,
    ] {
        let lang = aut.language_upto(&policy, &limits, max_len);
        let shown: Vec<String> = lang.iter().take(8).map(ToString::to_string).collect();
        println!(
            "  L_{policy:<8} = {{{}{}}}",
            shown.join(", "),
            if lang.len() > 8 { ", …" } else { "" }
        );
    }
    println!();

    // Theorem 2.2, constructively: compile L_wait to an NFA, minimize.
    let nfa = periodic_to_nfa(&aut, period, &WaitingPolicy::Unbounded, &alphabet)?;
    let dfa = nfa.to_dfa();
    let min = dfa.minimize();
    println!(
        "L_wait compiled: NFA over (node, phase) with {} states",
        nfa.num_states()
    );
    println!("  → determinized: {} states", dfa.num_states());
    println!(
        "  → minimal DFA:  {} states (regular, QED for this graph)",
        min.num_states()
    );

    // The compiled automaton agrees with simulation.
    let simulated = aut.language_upto(&WaitingPolicy::Unbounded, &limits, max_len);
    let compiled: std::collections::BTreeSet<_> = min.language_upto(max_len).into_iter().collect();
    println!(
        "  simulation vs compiled automaton on ≤ {max_len}: {}",
        if simulated == compiled {
            "identical"
        } else {
            "MISMATCH"
        }
    );
    println!();

    // And as the theorem puts it — a regular expression:
    let regex = tvg_suite::langs::synth::dfa_to_regex(&min);
    println!("L_wait as a regular expression: {regex}");
    Ok(())
}
