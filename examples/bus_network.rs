//! A periodic transit network: foremost / shortest / fastest journeys,
//! and why passengers (unlike packets without buffers) can wait.
//!
//! Run with: `cargo run --example bus_network`

use std::collections::BTreeSet;
use tvg_suite::journeys::{
    fastest_journey, foremost_journey, shortest_journey, ReachabilityMatrix, SearchLimits,
    WaitingPolicy,
};
use tvg_suite::model::generators::{line_timetable_tvg, ring_bus_tvg};
use tvg_suite::model::NodeId;

fn main() {
    // A commuter line with four stops; each hop has a timetable.
    let timetable = vec![
        BTreeSet::from([2u64, 10, 18]), // stop0 → stop1 departures
        BTreeSet::from([5u64, 13, 21]), // stop1 → stop2 departures
        BTreeSet::from([6u64, 14, 22]), // stop2 → stop3 departures
    ];
    let line = line_timetable_tvg(4, &timetable, 't');
    let limits = SearchLimits::new(30, 8);
    let (src, dst) = (NodeId::from_index(0), NodeId::from_index(3));

    println!("commuter line, stop0 → stop3 (timetabled departures):");
    let foremost = foremost_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("line is connected over time");
    println!(
        "  foremost (earliest arrival): {foremost} → arrives {:?}",
        foremost.arrival()
    );
    let shortest = shortest_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("line is connected over time");
    println!(
        "  shortest (fewest hops):      {} hops",
        shortest.num_hops()
    );
    let fastest = fastest_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("line is connected over time");
    println!(
        "  fastest (min duration):      departs {:?}, duration {}",
        fastest.departure(),
        fastest.duration()
    );
    println!();

    // Without waiting, timetables almost never chain exactly.
    let direct = foremost_journey(&line, src, dst, &0, &WaitingPolicy::NoWait, &limits);
    println!(
        "  without waiting at stops: {}",
        match direct {
            Some(j) => format!("possible ({j})"),
            None => "impossible — connections never align exactly".to_string(),
        }
    );
    println!();

    // A circular bus route with staggered phases: full reachability needs
    // waiting; the reachability matrix quantifies it.
    let ring = ring_bus_tvg(6, 6, 'r');
    let limits = SearchLimits::new(60, 12);
    for policy in [WaitingPolicy::NoWait, WaitingPolicy::Unbounded] {
        let m = ReachabilityMatrix::compute(&ring, &0, &policy, &limits);
        println!(
            "ring bus ({policy:<7}): reachability {:>5.1}%, temporal diameter {:?}",
            m.reachability_ratio() * 100.0,
            m.temporal_diameter()
        );
    }
}
