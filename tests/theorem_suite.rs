//! End-to-end reproduction of the paper's results, spanning all crates.
//!
//! Each test is a reduced-scale version of an EXPERIMENTS.md experiment;
//! the `experiments` binary in `tvg-bench` runs the full-scale versions.
//! All randomness flows through `tvg-testkit` fixtures, so the suite is
//! reproducible run to run.

use std::collections::BTreeSet;
use std::sync::Arc;
use tvg_suite::expressivity::anbn::{anbn_word, is_anbn};
use tvg_suite::expressivity::dilation::{dilation_disagreements, waiting_gain};
use tvg_suite::expressivity::nowait_power::DeciderAutomaton;
use tvg_suite::expressivity::wait_regular::{
    dfa_to_tvg_automaton, periodic_to_nfa, sufficient_limits,
};
use tvg_suite::expressivity::TvgAutomaton;
use tvg_suite::journeys::{SearchLimits, WaitingPolicy};
use tvg_suite::langs::sample::words_upto;
use tvg_suite::langs::{machines, myhill, word, Alphabet, Grammar, Word};
use tvg_suite::model::generators::RandomPeriodicParams;
use tvg_testkit::fixtures::{figure1, periodic_family_automaton, small_periodic_params};
use tvg_testkit::oracles::regex_dfa;

// ---------------------------------------------------------------- E1 --

#[test]
fn e1_figure1_language_is_anbn_exhaustive() {
    let aut = figure1();
    for w in words_upto(&Alphabet::ab(), 11) {
        assert_eq!(aut.accepts_nowait(&w), is_anbn(&w), "{w}");
    }
}

#[test]
fn e1_figure1_deep_membership() {
    let aut = figure1();
    assert!(aut.accepts_nowait(&anbn_word(50)));
    assert!(!aut.accepts_nowait(&word(&format!("{}{}", "a".repeat(50), "b".repeat(49)))));
}

#[test]
fn e1_nonregularity_witness_residual_growth() {
    // aⁿbⁿ is not regular: residual counts grow strictly with the prefix
    // budget. This pins the *point* of Figure 1 — a TVG expressing a
    // non-regular language without waiting.
    let aut = figure1();
    let growth = myhill::residual_growth(&Alphabet::ab(), 5, 5, |w| aut.accepts_nowait(w));
    for i in 1..growth.len() {
        assert!(growth[i] > growth[i - 1], "growth stalled: {growth:?}");
    }
}

// ---------------------------------------------------------------- E2 --

#[test]
fn e2_turing_machine_in_the_schedule() {
    let aut = DeciderAutomaton::from_turing_machine(Alphabet::abc(), machines::anbncn(), 100_000);
    let tm = machines::anbncn();
    for w in words_upto(&Alphabet::abc(), 6) {
        if w.is_empty() {
            continue;
        }
        assert_eq!(aut.accepts_nowait(&w), tm.decide(&w, 100_000), "{w}");
    }
}

#[test]
fn e2_grammar_in_the_schedule() {
    let g = Grammar::dyck1();
    let aut = DeciderAutomaton::new(Alphabet::ab(), Arc::new(move |w| g.recognizes(w)));
    for w in words_upto(&Alphabet::ab(), 8) {
        if w.is_empty() {
            continue;
        }
        assert_eq!(
            aut.accepts_nowait(&w),
            Grammar::dyck1().recognizes(&w),
            "{w}"
        );
    }
}

// ---------------------------------------------------------------- E3 --

#[test]
fn e3_periodic_wait_languages_are_regular() {
    let alphabet = Alphabet::ab();
    let params = RandomPeriodicParams {
        num_edges: 6,
        ..small_periodic_params(3)
    };
    for seed in 0..6u64 {
        let aut = periodic_family_automaton(&params, seed);
        let nfa = periodic_to_nfa(&aut, 3, &WaitingPolicy::Unbounded, &alphabet)
            .expect("periodic by construction");
        let limits = sufficient_limits(&aut, 3, 6);
        let simulated = aut.language_upto(&WaitingPolicy::Unbounded, &limits, 6);
        let compiled: BTreeSet<Word> = nfa.to_dfa().language_upto(6).into_iter().collect();
        assert_eq!(simulated, compiled, "seed {seed}");
    }
}

#[test]
fn e3_regular_languages_embed_into_wait() {
    let alphabet = Alphabet::ab();
    let dfa = regex_dfa("(a|b)*ba", &alphabet);
    let aut = dfa_to_tvg_automaton(&dfa);
    let limits = SearchLimits::new(20, 7);
    for policy in [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(2),
        WaitingPolicy::Unbounded,
    ] {
        for w in words_upto(&alphabet, 6) {
            assert_eq!(
                aut.accepts(&w, &policy, &limits),
                dfa.accepts(&w),
                "{policy} {w}"
            );
        }
    }
}

#[test]
fn e3_wait_residuals_saturate_on_periodic_graph() {
    let alphabet = Alphabet::ab();
    let params = RandomPeriodicParams {
        num_nodes: 3,
        num_edges: 5,
        phase_density: 0.6,
        ..small_periodic_params(2)
    };
    let aut = periodic_family_automaton(&params, 5);
    // Oracle through the compiled DFA (fast and exact).
    let dfa = periodic_to_nfa(&aut, 2, &WaitingPolicy::Unbounded, &alphabet)
        .expect("periodic")
        .to_dfa()
        .minimize();
    assert!(myhill::residuals_saturated(&alphabet, 5, 4, |w| dfa.accepts(w)));
    // The residual lower bound matches the minimal DFA state count
    // (possibly off by the dead state if unreachable in budget).
    let r = myhill::residual_lower_bound(&alphabet, 5, 4, |w| dfa.accepts(w));
    assert!(r.residual_count <= dfa.num_states());
}

#[test]
fn e3_wait_language_is_learnable_from_queries() {
    // Theorem 2.2, operationalized: because L_wait is regular, Angluin's
    // L* reconstructs it from *membership queries against the journey
    // simulator* — no access to the graph structure at all.
    use tvg_suite::langs::learn::{bounded_equivalence, learn_dfa};
    let alphabet = Alphabet::ab();
    let aut = periodic_family_automaton(&small_periodic_params(3), 7);
    let limits = sufficient_limits(&aut, 3, 8);
    let oracle = |w: &Word| aut.accepts(w, &WaitingPolicy::Unbounded, &limits);
    let learned = learn_dfa(
        &alphabet,
        oracle,
        |hyp| bounded_equivalence(hyp, oracle, &alphabet, 7),
        32,
    )
    .expect("regular languages are learnable");
    // The learned DFA matches the compiled one exactly.
    let compiled = periodic_to_nfa(&aut, 3, &WaitingPolicy::Unbounded, &alphabet)
        .expect("periodic")
        .to_dfa()
        .minimize();
    assert!(learned.equivalent_to(&compiled));
    assert_eq!(learned.num_states(), compiled.num_states());
}

// ---------------------------------------------------------------- E4 --

#[test]
fn e4_dilation_equalizes_bounded_wait_and_nowait() {
    let alphabet = Alphabet::ab();
    let params = RandomPeriodicParams {
        num_edges: 6,
        phase_density: 0.35,
        ..small_periodic_params(4)
    };
    for seed in 0..4u64 {
        let aut = periodic_family_automaton(&params, seed + 100);
        let limits = SearchLimits::new(40, 6);
        for d in [1u64, 3] {
            assert!(
                dilation_disagreements(&aut, d, &alphabet, 5, &limits).is_empty(),
                "seed {seed} d {d}"
            );
        }
    }
}

#[test]
fn e4_waiting_gains_exist_without_dilation() {
    // Control: on at least one standard graph, wait[d] ⊋ nowait before
    // dilation — so E4's equality is not vacuous.
    let alphabet = Alphabet::ab();
    let mut b = tvg_suite::model::TvgBuilder::<u64>::new();
    let v = b.nodes(3);
    b.edge(
        v[0],
        v[1],
        'a',
        tvg_suite::model::Presence::Periodic {
            period: 4,
            phases: BTreeSet::from([0]),
        },
        tvg_suite::model::Latency::unit(),
    )
    .expect("valid");
    b.edge(
        v[1],
        v[2],
        'b',
        tvg_suite::model::Presence::Periodic {
            period: 4,
            phases: BTreeSet::from([3]),
        },
        tvg_suite::model::Latency::unit(),
    )
    .expect("valid");
    let aut = TvgAutomaton::new(
        b.build().expect("valid"),
        BTreeSet::from([v[0]]),
        BTreeSet::from([v[2]]),
        0,
    )
    .expect("valid");
    let limits = SearchLimits::new(40, 6);
    assert!(!waiting_gain(&aut, 2, &alphabet, 4, &limits).is_empty());
}

#[test]
fn e4_nonregular_survives_bounded_waiting() {
    // L_wait[d] contains a^n b^n (via the dilated Figure 1) — so bounded
    // waiting keeps super-regular power, in contrast with Theorem 2.2.
    let fig1 = figure1();
    let d = 2u64;
    for n in 1..=4usize {
        assert!(fig1.automaton().dilate(d).accepts(
            &anbn_word(n),
            &WaitingPolicy::Bounded(tvg_suite::bigint::Nat::from(d)),
            &{
                let inner = fig1.limits_for(2 * n);
                SearchLimits::new(
                    tvg_suite::model::Time::checked_mul_u64(&inner.horizon, d + 1)
                        .expect("nat never overflows"),
                    inner.max_hops,
                )
            },
        ));
    }
}

// ---------------------------------------------------------------- E5 --

#[test]
fn e5_buffering_dominates_on_markovian_traces() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tvg_suite::dynnet::broadcast::{run_broadcast, BroadcastConfig, ForwardingMode};
    use tvg_suite::dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
    // Per-seed traces are drawn from explicitly seeded StdRngs — the
    // sweep itself is the E5 experiment's seed schedule.
    let params = EdgeMarkovianParams {
        num_nodes: 16,
        p_birth: 0.005,
        p_death: 0.6,
        steps: 80,
    };
    let mut scf_total = 0.0;
    let mut nw_total = 0.0;
    for seed in 0..8u64 {
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
        let scf = run_broadcast(
            &trace,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::StoreCarryForward,
                source_beacons: true,
            },
        );
        let nw = run_broadcast(
            &trace,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::NoWaitRelay,
                source_beacons: true,
            },
        );
        scf_total += scf.stats().delivery_ratio;
        nw_total += nw.stats().delivery_ratio;
    }
    // In the sparse/high-churn regime the gap must be substantial.
    assert!(
        scf_total > nw_total + 1.0,
        "scf {scf_total} vs nowait {nw_total}"
    );
}
