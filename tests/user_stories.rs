//! Integration tests mirroring the examples: the workflows a downstream
//! user would actually run, end to end.

use std::collections::BTreeSet;
use tvg_suite::expressivity::TvgAutomaton;
use tvg_suite::journeys::{
    fastest_journey, foremost_journey, shortest_journey, ReachabilityMatrix, SearchLimits,
    WaitingPolicy,
};
use tvg_suite::langs::word;
use tvg_suite::model::{Latency, NodeId, Presence, TvgBuilder};
use tvg_testkit::fixtures::{commuter_line, ring_bus};

#[test]
fn quickstart_story() {
    let mut b = TvgBuilder::<u64>::new();
    let v0 = b.node("v0");
    let v1 = b.node("v1");
    let v2 = b.node("v2");
    b.edge(v0, v1, 'a', Presence::At(1), Latency::unit())
        .expect("valid");
    b.edge(v1, v2, 'b', Presence::At(5), Latency::unit())
        .expect("valid");
    let g = b.build().expect("valid");

    let limits = SearchLimits::new(10, 5);
    assert!(foremost_journey(&g, v0, v2, &1, &WaitingPolicy::NoWait, &limits).is_none());
    assert!(foremost_journey(&g, v0, v2, &1, &WaitingPolicy::Bounded(3), &limits).is_some());

    let aut = TvgAutomaton::new(g, BTreeSet::from([v0]), BTreeSet::from([v2]), 1).expect("valid");
    assert!(!aut.accepts(&word("ab"), &WaitingPolicy::NoWait, &limits));
    assert!(aut.accepts(&word("ab"), &WaitingPolicy::Unbounded, &limits));
    let lang = aut.language_upto(&WaitingPolicy::Unbounded, &limits, 3);
    assert_eq!(lang, BTreeSet::from([word("ab")]));
}

#[test]
fn bus_network_story() {
    let line = commuter_line();
    let limits = SearchLimits::new(30, 8);
    let (src, dst) = (NodeId::from_index(0), NodeId::from_index(3));

    let foremost = foremost_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("connected over time");
    assert_eq!(foremost.arrival(), Some(&7)); // 2→3, wait, 5→6, 6→7
    let shortest = shortest_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("connected over time");
    assert_eq!(shortest.num_hops(), 3);
    let fastest = fastest_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("connected over time");
    // Departing at 2 yields duration 5 (2 → 7); later departures chain
    // 10 → 13 → 14 … duration 5 as well (10→15? 10+1=11, wait 13→14,
    // 14→15: duration 5). Fastest is 5.
    assert_eq!(fastest.duration(), 5);

    // Timetables never chain exactly ⇒ no direct journey.
    assert!(foremost_journey(&line, src, dst, &0, &WaitingPolicy::NoWait, &limits).is_none());
}

#[test]
fn ring_bus_story() {
    let ring = ring_bus(6, 6);
    let limits = SearchLimits::new(60, 12);
    let wait = ReachabilityMatrix::compute(&ring, &0, &WaitingPolicy::Unbounded, &limits);
    assert!(wait.is_temporally_connected());
    // Consecutive phases align with unit latency, so even direct journeys
    // circulate here — the matrix quantifies rather than assumes.
    let nowait = ReachabilityMatrix::compute(&ring, &0, &WaitingPolicy::NoWait, &limits);
    assert!(nowait.reachability_ratio() <= wait.reachability_ratio());
}

#[test]
fn snapshots_and_footprint_story() {
    let ring = ring_bus(4, 4);
    // At any instant exactly one ring edge is up (phases are staggered).
    for t in 0u64..8 {
        assert_eq!(ring.snapshot(&t).len(), 1, "t={t}");
    }
    // The footprint over all time is the full cycle.
    let footprint = ring.underlying_graph();
    assert_eq!(footprint.num_edges(), 4);
    assert!(footprint.is_strongly_connected());
    // No single snapshot is connected — the paper's opening scenario.
    for t in 0u64..4 {
        assert!(!ring.snapshot_graph(&t).is_strongly_connected());
    }
}
