//! Integration tests mirroring the examples: the workflows a downstream
//! user would actually run, end to end.

use std::collections::BTreeSet;
use tvg_suite::expressivity::TvgAutomaton;
use tvg_suite::journeys::{
    fastest_journey, foremost_journey, shortest_journey, ReachabilityMatrix, SearchLimits,
    WaitingPolicy,
};
use tvg_suite::langs::word;
use tvg_suite::model::{Latency, NodeId, Presence, TvgBuilder};
use tvg_testkit::fixtures::{commuter_line, ring_bus};

#[test]
fn quickstart_story() {
    let mut b = TvgBuilder::<u64>::new();
    let v0 = b.node("v0");
    let v1 = b.node("v1");
    let v2 = b.node("v2");
    b.edge(v0, v1, 'a', Presence::At(1), Latency::unit())
        .expect("valid");
    b.edge(v1, v2, 'b', Presence::At(5), Latency::unit())
        .expect("valid");
    let g = b.build().expect("valid");

    let limits = SearchLimits::new(10, 5);
    assert!(foremost_journey(&g, v0, v2, &1, &WaitingPolicy::NoWait, &limits).is_none());
    assert!(foremost_journey(&g, v0, v2, &1, &WaitingPolicy::Bounded(3), &limits).is_some());

    let aut = TvgAutomaton::new(g, BTreeSet::from([v0]), BTreeSet::from([v2]), 1).expect("valid");
    assert!(!aut.accepts(&word("ab"), &WaitingPolicy::NoWait, &limits));
    assert!(aut.accepts(&word("ab"), &WaitingPolicy::Unbounded, &limits));
    let lang = aut.language_upto(&WaitingPolicy::Unbounded, &limits, 3);
    assert_eq!(lang, BTreeSet::from([word("ab")]));
}

#[test]
fn bus_network_story() {
    let line = commuter_line();
    let limits = SearchLimits::new(30, 8);
    let (src, dst) = (NodeId::from_index(0), NodeId::from_index(3));

    let foremost = foremost_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("connected over time");
    assert_eq!(foremost.arrival(), Some(&7)); // 2→3, wait, 5→6, 6→7
    let shortest = shortest_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("connected over time");
    assert_eq!(shortest.num_hops(), 3);
    let fastest = fastest_journey(&line, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
        .expect("connected over time");
    // Departing at 2 yields duration 5 (2 → 7); later departures chain
    // 10 → 13 → 14 … duration 5 as well (10→15? 10+1=11, wait 13→14,
    // 14→15: duration 5). Fastest is 5.
    assert_eq!(fastest.duration(), 5);

    // Timetables never chain exactly ⇒ no direct journey.
    assert!(foremost_journey(&line, src, dst, &0, &WaitingPolicy::NoWait, &limits).is_none());
}

#[test]
fn ring_bus_story() {
    let ring = ring_bus(6, 6);
    let limits = SearchLimits::new(60, 12);
    let wait = ReachabilityMatrix::compute(&ring, &0, &WaitingPolicy::Unbounded, &limits);
    assert!(wait.is_temporally_connected());
    // Consecutive phases align with unit latency, so even direct journeys
    // circulate here — the matrix quantifies rather than assumes.
    let nowait = ReachabilityMatrix::compute(&ring, &0, &WaitingPolicy::NoWait, &limits);
    assert!(nowait.reachability_ratio() <= wait.reachability_ratio());
}

#[test]
fn live_commuter_feed_story() {
    // The commuter timetable, but arriving as a live feed: each "day"
    // (8 ticks) streams in as one batch of up/down contact events plus a
    // horizon extension, and a traveler standing at stop 0 since t=4
    // (just after the day-0 bus has left) re-plans after every day with
    // an incrementally repaired foremost tree.
    use tvg_suite::journeys::{foremost_tree, IncrementalForemost};
    use tvg_suite::model::stream::{StreamEvent, TvgStream};
    use tvg_suite::model::{Latency, TvgIndex};

    // The commuter_line() timetable, one departure set per hop.
    let timetable: [&[u64]; 3] = [&[2, 10, 18], &[5, 13, 21], &[6, 14, 22]];
    let mut feed = TvgStream::<u64>::new(7).expect("7 + 1 is representable");
    let stops: Vec<_> = (0..4).map(|i| feed.add_node(&format!("stop{i}"))).collect();
    let hops: Vec<_> = (0..3)
        .map(|i| {
            feed.add_edge(stops[i], stops[i + 1], 't', Latency::unit())
                .expect("valid")
        })
        .collect();

    let (src, policy) = (stops[0], WaitingPolicy::Unbounded);
    let limits = SearchLimits::new(23, 8);
    let mut planner = IncrementalForemost::new(feed.index(), &[(src, 4)], policy, limits.clone());
    let mut delivered_by_day = Vec::new();
    for day in 0u64..3 {
        let mut batch: Vec<StreamEvent<u64>> = Vec::new();
        if day > 0 {
            batch.push(StreamEvent::ExtendHorizon { to: 8 * day + 7 });
        }
        let mut events: Vec<(u64, usize)> = Vec::new();
        for (i, departures) in timetable.iter().enumerate() {
            for &dep in departures.iter().filter(|d| **d / 8 == day) {
                events.push((dep, i));
            }
        }
        events.sort_unstable();
        for (dep, i) in events {
            batch.push(StreamEvent::Up {
                edge: hops[i],
                at: dep,
            });
            batch.push(StreamEvent::Down {
                edge: hops[i],
                at: dep + 1,
            });
        }
        let report = feed.ingest(&batch).expect("the timetable is a valid feed");
        planner.refresh(feed.index(), &report);

        // The live answer after each day must equal the batch answer on
        // the schedule accumulated so far (recompile + fresh run).
        let batch_tvg = feed.to_tvg();
        let batch_index = TvgIndex::compile(&batch_tvg, *feed.index().horizon());
        let fresh = foremost_tree(&batch_index, src, &4, &policy, &limits);
        for &stop in &stops {
            assert_eq!(
                planner.arrival(stop),
                fresh.arrival(stop),
                "day {day} {stop}"
            );
        }
        delivered_by_day.push(planner.num_reached() as f64 / 4.0);
    }
    // Day 0 the traveler has missed every bus; day 1 delivers everywhere;
    // delivery never regresses as more schedule streams in.
    assert_eq!(delivered_by_day, vec![0.25, 1.0, 1.0]);
    assert!(delivered_by_day.windows(2).all(|w| w[0] <= w[1]));
    // And the final live answer equals the all-batch fixture answer.
    let all = commuter_line();
    let final_index = TvgIndex::compile(&all, 23);
    let batch_final = foremost_tree(&final_index, src, &4, &policy, &limits);
    for &stop in &stops {
        assert_eq!(planner.arrival(stop), batch_final.arrival(stop), "{stop}");
    }
    assert_eq!(planner.arrival(stops[3]), Some(&15)); // 10→11, 13→14, 14→15
}

#[test]
fn scenario_runtime_story() {
    // The workflow the scenario runtime exists for: a workload is a text
    // file, not a Rust program. Parse a bundled spec, run it, and pin
    // its headline numbers — then check the canonical bytes against the
    // same checked-in golden the `tvg-cli verify` CI gate diffs.
    use tvg_suite::dynnet::json::Json;
    use tvg_suite::scenarios::parse_specs;
    use tvg_testkit::speccheck::{assert_golden, assert_roundtrip, assert_thread_invariant};

    let spec_text = include_str!("../scenarios/ring-matrix.tvgs");
    let golden = include_str!("../scenarios/golden/ring-matrix.json");
    let scenarios = parse_specs(spec_text).expect("bundled spec parses");
    assert_eq!(scenarios.len(), 1);
    let scenario = &scenarios[0];
    assert_eq!(scenario.name(), "ring-matrix");
    assert_roundtrip(scenario);

    // Headline numbers: the 8-stop staggered ring under wait[3] — one
    // engine run per source, and waiting 3 < period 8 only carries a
    // traveler halfway around before the horizon's hop budget, so
    // exactly half the ordered pairs connect.
    let report = assert_thread_invariant(scenario);
    assert_eq!(report.engine_stats().runs, 8);
    let Json::Obj(results) = report.results() else {
        panic!("results is an object");
    };
    assert_eq!(results["ratio"], Json::Num(0.5));
    assert_eq!(results["diameter"], Json::Int(10));

    // The bytes CI diffs are these bytes.
    assert_golden(spec_text, golden);

    // And the same numbers fall out of the raw library pipeline — the
    // spec is a description of this code path, not a reimplementation.
    let m = ReachabilityMatrix::compute(
        &tvg_suite::model::generators::ring_bus_tvg(8, 8, 'r'),
        &0,
        &WaitingPolicy::Bounded(3),
        &SearchLimits::new(64, 16),
    );
    assert_eq!(m.reachability_ratio(), 0.5);
}

#[test]
fn live_service_story() {
    // The serve runtime end to end: a schedule streams in while clients
    // query it. One writer publishes a lock-free snapshot epoch per
    // ingest tick; reader threads answer a seeded request mix pinned to
    // epochs by arrival time.
    use tvg_suite::model::generators::scale_free_temporal;
    use tvg_suite::model::stream::TvgStream;
    use tvg_suite::serve::{generate_load, serve, LoadSpec, ServeConfig};

    let g = scale_free_temporal(16, 32, 7);
    let (stream, events) = TvgStream::replay_of(&g, &32).expect("representable");
    let ticks: Vec<_> = events
        .chunks(events.len().div_ceil(4))
        .map(<[_]>::to_vec)
        .collect();
    let requests = generate_load(&LoadSpec {
        requests: 48,
        mean_gap: 2,
        mix: (3, 2, 1),
        nodes: g.num_nodes(),
        seed_instant: 0,
        seed: 21,
    });
    let outcome = serve(
        stream,
        &ticks,
        &requests,
        &ServeConfig {
            readers: 4,
            policy: WaitingPolicy::Unbounded,
            limits: SearchLimits::new(32, 33),
            start: 0,
        },
    )
    .expect("replay is a valid feed");

    // The writer really published mid-run epochs (the service answered
    // from more than one world), every request got an answer, and
    // grouping amortized shared sources into fewer engine passes.
    assert!(outcome.epochs_published >= 2, "mid-run epochs");
    assert_eq!(outcome.served.len(), 48);
    assert!(
        outcome.served.iter().any(|s| s.epoch > 0),
        "late epochs served"
    );
    assert!(outcome.grouped_runs <= 48);
    assert_eq!(outcome.stats.runs, outcome.grouped_runs);
    // Timing is measured, real, and strictly non-canonical.
    assert!(outcome.timing.wall_micros > 0);
}

#[test]
fn every_bundled_scenario_reproduces_its_golden() {
    // Every bundled spec under scenarios/, against its golden,
    // discovered from the directory so a new spec is covered the moment
    // it lands: `cargo test` fails on report drift (or an unblessed
    // spec) before CI ever sees it.
    use tvg_testkit::speccheck::assert_golden;
    let dir = tvg_cli::bundled_scenarios_dir();
    for (spec, golden) in tvg_cli::spec_files(&dir).expect("bundled specs exist") {
        let spec_text = std::fs::read_to_string(&spec).expect("spec reads");
        let golden_text = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!("{}: {e} (run `tvg-cli bless scenarios`)", golden.display())
        });
        assert_golden(&spec_text, &golden_text);
    }
}

#[test]
fn snapshots_and_footprint_story() {
    let ring = ring_bus(4, 4);
    // At any instant exactly one ring edge is up (phases are staggered).
    for t in 0u64..8 {
        assert_eq!(ring.snapshot(&t).len(), 1, "t={t}");
    }
    // The footprint over all time is the full cycle.
    let footprint = ring.underlying_graph();
    assert_eq!(footprint.num_edges(), 4);
    assert!(footprint.is_strongly_connected());
    // No single snapshot is connected — the paper's opening scenario.
    for t in 0u64..4 {
        assert!(!ring.snapshot_graph(&t).is_strongly_connected());
    }
}
