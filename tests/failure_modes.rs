//! Failure injection: malformed inputs across crates must produce typed
//! errors (or documented panics), never silent misbehavior.

use std::collections::BTreeSet;
use tvg_suite::expressivity::anbn::{AnbnAutomaton, AnbnError};
use tvg_suite::expressivity::wait_regular::{periodic_to_nfa, CompileError};
use tvg_suite::expressivity::{AutomatonError, TvgAutomaton};
use tvg_suite::journeys::{Hop, Journey, JourneyError, WaitingPolicy};
use tvg_suite::langs::{
    Alphabet, AlphabetError, Dfa, DfaError, Grammar, GrammarError, Nfa, NfaError, Regex,
    RegexError, TmBuilder, TmError, Word,
};
use tvg_suite::model::{EdgeId, Latency, NodeId, Presence, TvgBuilder, TvgError};

#[test]
fn alphabet_failures() {
    assert_eq!(Alphabet::from_chars("").unwrap_err(), AlphabetError::Empty);
    assert_eq!(
        Alphabet::from_chars("aba").unwrap_err(),
        AlphabetError::DuplicateLetter('a')
    );
    assert_eq!(
        "a b".parse::<Word>().unwrap_err(),
        AlphabetError::NotPrintableAscii(' ')
    );
}

#[test]
fn dfa_failures() {
    assert_eq!(
        Dfa::new(Alphabet::ab(), vec![], 0, vec![]).unwrap_err(),
        DfaError::NoStates
    );
    assert_eq!(
        Dfa::new(Alphabet::ab(), vec![vec![0, 9]], 0, vec![true]).unwrap_err(),
        DfaError::BadTarget {
            state: 0,
            letter: 1,
            target: 9
        }
    );
}

#[test]
fn nfa_failures() {
    let mut nfa = Nfa::new(Alphabet::ab(), 1);
    assert_eq!(nfa.add_start(5).unwrap_err(), NfaError::BadState(5));
    assert_eq!(
        nfa.add_transition(0, Some('z'), 0).unwrap_err(),
        NfaError::LetterNotInAlphabet('z')
    );
    let other = Nfa::new(Alphabet::abc(), 1);
    assert_eq!(nfa.union(&other).unwrap_err(), NfaError::AlphabetMismatch);
}

#[test]
fn regex_failures() {
    let sigma = Alphabet::ab();
    assert!(matches!(
        Regex::parse("(ab", &sigma).unwrap_err(),
        RegexError::UnbalancedParens { .. }
    ));
    assert!(matches!(
        Regex::parse("+a", &sigma).unwrap_err(),
        RegexError::DanglingPostfix { .. }
    ));
    assert!(matches!(
        Regex::parse("axb", &sigma).unwrap_err(),
        RegexError::UnexpectedChar { .. }
    ));
}

#[test]
fn grammar_and_tm_failures() {
    assert_eq!(Grammar::from_rules("").unwrap_err(), GrammarError::Empty);
    assert!(matches!(
        Grammar::from_rules("S a").unwrap_err(),
        GrammarError::MissingArrow { .. }
    ));
    let dup = TmBuilder::new("s")
        .rule("s", 'a', "s", 'a', tvg_suite::langs::Move::Right)
        .expect("first rule ok")
        .rule("s", 'a', "t", 'b', tvg_suite::langs::Move::Left)
        .expect("second rule ok")
        .build();
    assert!(matches!(dup.unwrap_err(), TmError::DuplicateRule { .. }));
}

#[test]
fn tvg_builder_failures() {
    let b = TvgBuilder::<u64>::new();
    assert_eq!(b.build().unwrap_err(), TvgError::NoNodes);

    let mut b = TvgBuilder::<u64>::new();
    let v = b.node("v");
    let ghost = NodeId::from_index(42);
    assert_eq!(
        b.edge(v, ghost, 'a', Presence::Always, Latency::unit())
            .unwrap_err(),
        TvgError::UnknownNode(ghost)
    );
    assert_eq!(
        b.edge(v, v, 'é', Presence::Always, Latency::unit())
            .unwrap_err(),
        TvgError::BadLabel('é')
    );
}

#[test]
fn automaton_failures() {
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(1);
    let g = b.build().expect("valid");
    assert_eq!(
        TvgAutomaton::new(g.clone(), BTreeSet::new(), BTreeSet::new(), 0).unwrap_err(),
        AutomatonError::NoInitialStates
    );
    let ghost = NodeId::from_index(5);
    assert_eq!(
        TvgAutomaton::new(g, BTreeSet::from([ghost]), BTreeSet::from([v[0]]), 0).unwrap_err(),
        AutomatonError::UnknownNode(ghost)
    );
}

#[test]
fn journey_validation_failures_are_specific() {
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    b.edge(v[0], v[1], 'a', Presence::At(3), Latency::unit())
        .expect("valid");
    let g = b.build().expect("valid");
    let e = EdgeId::from_index(0);

    // Wrong source.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 3,
        arrive: 4,
    }]);
    assert_eq!(
        j.validate(&g, v[1], &3, &WaitingPolicy::Unbounded),
        Err(JourneyError::WrongSource)
    );
    // Edge absent.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 2,
        arrive: 3,
    }]);
    assert_eq!(
        j.validate(&g, v[0], &2, &WaitingPolicy::Unbounded),
        Err(JourneyError::EdgeAbsent { hop: 0 })
    );
    // Wait bound exceeded.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 3,
        arrive: 4,
    }]);
    assert_eq!(
        j.validate(&g, v[0], &0, &WaitingPolicy::Bounded(2)),
        Err(JourneyError::WaitTooLong { hop: 0 })
    );
    // Arrival inconsistent with latency.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 3,
        arrive: 9,
    }]);
    assert_eq!(
        j.validate(&g, v[0], &3, &WaitingPolicy::Unbounded),
        Err(JourneyError::WrongArrival { hop: 0 })
    );
}

#[test]
fn compiler_failures_name_offenders() {
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    b.edge(
        v[0],
        v[1],
        'a',
        Presence::PqPower { p: 2, q: 3 },
        Latency::unit(),
    )
    .expect("valid");
    let aut = TvgAutomaton::new(
        b.build().expect("valid"),
        BTreeSet::from([v[0]]),
        BTreeSet::from([v[1]]),
        0,
    )
    .expect("valid");
    // The aperiodic prime-power schedule cannot be compiled — precisely
    // the boundary between Theorem 2.1 and Theorem 2.2 territory.
    assert_eq!(
        periodic_to_nfa(&aut, 6, &WaitingPolicy::Unbounded, &Alphabet::ab()).unwrap_err(),
        CompileError::NonPeriodicPresence(EdgeId::from_index(0))
    );
}

#[test]
fn anbn_parameter_failures() {
    assert_eq!(
        AnbnAutomaton::new(6, 3).unwrap_err(),
        AnbnError::NotPrime(6)
    );
    assert_eq!(
        AnbnAutomaton::new(3, 3).unwrap_err(),
        AnbnError::PrimesNotDistinct
    );
}

#[test]
fn json_decode_failures_are_typed() {
    use tvg_suite::dynnet::json::{FromJson, ToJson};
    use tvg_suite::dynnet::markovian::EdgeMarkovianParams;
    // Malformed text, wrong shapes, and missing fields all produce
    // errors, never panics or silent defaults.
    for bad in [
        "",
        "{",
        "[1,2]",
        "{}",
        r#"{"num_nodes":"three"}"#,
        "{}trailing",
    ] {
        assert!(EdgeMarkovianParams::from_json(bad).is_err(), "{bad:?}");
    }
    // And a valid encoding still round-trips (the failure cases above are
    // not just rejecting everything).
    let p = EdgeMarkovianParams {
        num_nodes: 4,
        p_birth: 0.1,
        p_death: 0.2,
        steps: 9,
    };
    assert_eq!(
        EdgeMarkovianParams::from_json(&p.to_json()).expect("valid"),
        p
    );
}

#[test]
fn scenario_spec_failures_are_typed() {
    use tvg_suite::scenarios::{parse_specs, SpecError};
    let base = |generator: &str, policy: &str, plan: &str| {
        format!("scenario s\ngenerator {generator}\npolicy {policy}\nplan {plan}\n")
    };
    // Unknown generator.
    assert_eq!(
        parse_specs(&base("warp_drive n=3", "wait", "matrix horizon=8")).unwrap_err(),
        SpecError::UnknownGenerator {
            scenario: "s".into(),
            name: "warp_drive".into()
        }
    );
    // Bad parameter types: a float where a count belongs, a word where a
    // probability belongs, a number where a bool belongs.
    assert_eq!(
        parse_specs(&base("ring_bus n=2.5 period=4", "wait", "matrix horizon=8")).unwrap_err(),
        SpecError::BadParamType {
            scenario: "s".into(),
            param: "n".into(),
            expected: "usize",
            got: "2.5".into()
        }
    );
    assert_eq!(
        parse_specs(&base(
            "edge_markovian n=4 horizon=8 p_birth=high p_death=0.5 seed=1",
            "wait",
            "matrix horizon=8"
        ))
        .unwrap_err(),
        SpecError::BadParamType {
            scenario: "s".into(),
            param: "p_birth".into(),
            expected: "f64",
            got: "high".into()
        }
    );
    assert_eq!(
        parse_specs(&base(
            "ring_bus n=4 period=4",
            "wait",
            "broadcast source=0 beacons=1 horizon=8"
        ))
        .unwrap_err(),
        SpecError::BadParamType {
            scenario: "s".into(),
            param: "beacons".into(),
            expected: "bool",
            got: "1".into()
        }
    );
    // Missing policy (and the other required directives).
    assert_eq!(
        parse_specs("scenario s\ngenerator ring_bus n=4 period=4\nplan matrix horizon=8\n")
            .unwrap_err(),
        SpecError::MissingDirective {
            scenario: "s".into(),
            directive: "policy"
        }
    );
    assert_eq!(
        parse_specs("scenario s\npolicy wait\nplan matrix horizon=8\n").unwrap_err(),
        SpecError::MissingDirective {
            scenario: "s".into(),
            directive: "generator"
        }
    );
    // Duplicate scenario names.
    let twin = base("ring_bus n=4 period=4", "wait", "matrix horizon=8").repeat(2);
    assert_eq!(
        parse_specs(&twin).unwrap_err(),
        SpecError::DuplicateScenario { name: "s".into() }
    );
    // Unknown and missing parameters, named precisely.
    assert_eq!(
        parse_specs(&base(
            "ring_bus n=4 period=4 color=red",
            "wait",
            "matrix horizon=8"
        ))
        .unwrap_err(),
        SpecError::UnknownParam {
            scenario: "s".into(),
            context: "ring_bus".into(),
            param: "color".into()
        }
    );
    assert_eq!(
        parse_specs(&base("ring_bus n=4", "wait", "matrix horizon=8")).unwrap_err(),
        SpecError::MissingParam {
            scenario: "s".into(),
            context: "ring_bus".into(),
            param: "period"
        }
    );
    // Bad policy text, out-of-range values, out-of-range sources.
    assert_eq!(
        parse_specs(&base(
            "ring_bus n=4 period=4",
            "procrastinate",
            "matrix horizon=8"
        ))
        .unwrap_err(),
        SpecError::BadPolicy {
            scenario: "s".into(),
            text: "procrastinate".into()
        }
    );
    assert!(matches!(
        parse_specs(&base(
            "edge_markovian n=4 horizon=8 p_birth=1.5 p_death=0.5 seed=1",
            "wait",
            "matrix horizon=8"
        ))
        .unwrap_err(),
        SpecError::BadParamValue { ref param, .. } if param == "p_birth"
    ));
    assert_eq!(
        parse_specs(&base(
            "ring_bus n=4 period=4",
            "wait",
            "single_source src=9 horizon=8"
        ))
        .unwrap_err(),
        SpecError::SourceOutOfRange {
            scenario: "s".into(),
            src: 9,
            nodes: 4
        }
    );
    // A start past the horizon admits no departures: the typo is caught
    // at parse time instead of blessing a vacuous all-unreached golden.
    assert!(matches!(
        parse_specs(&base(
            "ring_bus n=4 period=4",
            "wait",
            "matrix start=100 horizon=8"
        ))
        .unwrap_err(),
        SpecError::BadParamValue { ref param, .. } if param == "start"
    ));
    // A beaconing broadcast seeds one copy per instant: a huge horizon
    // must be rejected at parse time, not discovered as an allocation
    // blowup at run time.
    assert!(matches!(
        parse_specs(&base(
            "ring_bus n=4 period=4",
            "nowait",
            "broadcast beacons=true horizon=4000000000"
        ))
        .unwrap_err(),
        SpecError::BadParamValue { ref param, .. } if param == "horizon"
    ));
    // Serve plans are totally validated too: a run with no requests, a
    // zero arrival gap, an all-zero request mix, and a tickless writer
    // are all caught at parse time with the offending parameter named.
    for (plan, param) in [
        (
            "serve horizon=8 requests=0 gap=2 ticks=2 seed=1",
            "requests",
        ),
        ("serve horizon=8 requests=4 gap=0 ticks=2 seed=1", "gap"),
        (
            "serve horizon=8 requests=4 gap=2 foremost=0 matrix=0 broadcast=0 ticks=2 seed=1",
            "foremost",
        ),
        ("serve horizon=8 requests=4 gap=2 ticks=0 seed=1", "ticks"),
        // Broadcast requests beacon one seed per instant, so the serve
        // plan inherits the broadcast plan's horizon allocation bound.
        (
            "serve horizon=4000000000 requests=4 gap=2 ticks=2 seed=1",
            "horizon",
        ),
    ] {
        assert!(
            matches!(
                parse_specs(&base("ring_bus n=4 period=4", "wait", plan)).unwrap_err(),
                SpecError::BadParamValue { param: ref p, .. } if p == param
            ),
            "serve plan {plan:?} must reject {param}"
        );
    }
    // Surplus arguments are not "missing" ones: `policy wait 2` (meaning
    // `wait[2]`) must say the directive takes exactly one argument.
    assert_eq!(
        parse_specs(&base("ring_bus n=4 period=4", "wait 2", "matrix horizon=8")).unwrap_err(),
        SpecError::SurplusArgument {
            line: 3,
            directive: "policy".into()
        }
    );
    // Structure errors: empty input, stray directives, unknown plans.
    assert_eq!(
        parse_specs("# only comments\n").unwrap_err(),
        SpecError::Empty
    );
    assert_eq!(
        parse_specs("policy wait\n").unwrap_err(),
        SpecError::StrayDirective { line: 1 }
    );
    assert_eq!(
        parse_specs(&base("ring_bus n=4 period=4", "wait", "teleport horizon=8")).unwrap_err(),
        SpecError::UnknownPlan {
            scenario: "s".into(),
            name: "teleport".into()
        }
    );
    // And a valid spec still parses (the rejections are not vacuous).
    assert_eq!(
        parse_specs(&base(
            "ring_bus n=4 period=4",
            "wait[2]",
            "matrix horizon=8"
        ))
        .expect("valid spec")
        .len(),
        1
    );
}

#[test]
fn degenerate_language_oracles_are_total() {
    // The Σ* and ∅ oracles from the testkit stay total on any alphabet,
    // including the unary edge case.
    use tvg_testkit::oracles::{empty_language_dfa, sigma_star_dfa, unary_alphabet};
    let sigma = unary_alphabet();
    let all = sigma_star_dfa(&sigma);
    let none = empty_language_dfa(&sigma);
    for w in tvg_suite::langs::sample::words_upto(&sigma, 4) {
        assert!(all.accepts(&w));
        assert!(!none.accepts(&w));
    }
}

#[test]
fn u64_time_overflow_is_unusable_edge_not_panic() {
    // An affine latency that overflows u64 must make the edge unusable,
    // not crash the search.
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    let e = b
        .edge(
            v[0],
            v[1],
            'a',
            Presence::Always,
            Latency::Affine {
                mul: u64::MAX,
                add: 0,
            },
        )
        .expect("valid");
    let g = b.build().expect("valid");
    assert_eq!(g.traverse(e, &2), None); // 2 · u64::MAX overflows
    assert_eq!(g.traverse(e, &0), Some(0)); // 0 · anything is fine
}
