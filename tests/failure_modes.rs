//! Failure injection: malformed inputs across crates must produce typed
//! errors (or documented panics), never silent misbehavior.

use std::collections::BTreeSet;
use tvg_suite::expressivity::anbn::{AnbnAutomaton, AnbnError};
use tvg_suite::expressivity::wait_regular::{periodic_to_nfa, CompileError};
use tvg_suite::expressivity::{AutomatonError, TvgAutomaton};
use tvg_suite::journeys::{Hop, Journey, JourneyError, WaitingPolicy};
use tvg_suite::langs::{
    Alphabet, AlphabetError, Dfa, DfaError, Grammar, GrammarError, Nfa, NfaError, Regex,
    RegexError, TmBuilder, TmError, Word,
};
use tvg_suite::model::{EdgeId, Latency, NodeId, Presence, TvgBuilder, TvgError};

#[test]
fn alphabet_failures() {
    assert_eq!(Alphabet::from_chars("").unwrap_err(), AlphabetError::Empty);
    assert_eq!(
        Alphabet::from_chars("aba").unwrap_err(),
        AlphabetError::DuplicateLetter('a')
    );
    assert_eq!(
        "a b".parse::<Word>().unwrap_err(),
        AlphabetError::NotPrintableAscii(' ')
    );
}

#[test]
fn dfa_failures() {
    assert_eq!(
        Dfa::new(Alphabet::ab(), vec![], 0, vec![]).unwrap_err(),
        DfaError::NoStates
    );
    assert_eq!(
        Dfa::new(Alphabet::ab(), vec![vec![0, 9]], 0, vec![true]).unwrap_err(),
        DfaError::BadTarget {
            state: 0,
            letter: 1,
            target: 9
        }
    );
}

#[test]
fn nfa_failures() {
    let mut nfa = Nfa::new(Alphabet::ab(), 1);
    assert_eq!(nfa.add_start(5).unwrap_err(), NfaError::BadState(5));
    assert_eq!(
        nfa.add_transition(0, Some('z'), 0).unwrap_err(),
        NfaError::LetterNotInAlphabet('z')
    );
    let other = Nfa::new(Alphabet::abc(), 1);
    assert_eq!(nfa.union(&other).unwrap_err(), NfaError::AlphabetMismatch);
}

#[test]
fn regex_failures() {
    let sigma = Alphabet::ab();
    assert!(matches!(
        Regex::parse("(ab", &sigma).unwrap_err(),
        RegexError::UnbalancedParens { .. }
    ));
    assert!(matches!(
        Regex::parse("+a", &sigma).unwrap_err(),
        RegexError::DanglingPostfix { .. }
    ));
    assert!(matches!(
        Regex::parse("axb", &sigma).unwrap_err(),
        RegexError::UnexpectedChar { .. }
    ));
}

#[test]
fn grammar_and_tm_failures() {
    assert_eq!(Grammar::from_rules("").unwrap_err(), GrammarError::Empty);
    assert!(matches!(
        Grammar::from_rules("S a").unwrap_err(),
        GrammarError::MissingArrow { .. }
    ));
    let dup = TmBuilder::new("s")
        .rule("s", 'a', "s", 'a', tvg_suite::langs::Move::Right)
        .expect("first rule ok")
        .rule("s", 'a', "t", 'b', tvg_suite::langs::Move::Left)
        .expect("second rule ok")
        .build();
    assert!(matches!(dup.unwrap_err(), TmError::DuplicateRule { .. }));
}

#[test]
fn tvg_builder_failures() {
    let b = TvgBuilder::<u64>::new();
    assert_eq!(b.build().unwrap_err(), TvgError::NoNodes);

    let mut b = TvgBuilder::<u64>::new();
    let v = b.node("v");
    let ghost = NodeId::from_index(42);
    assert_eq!(
        b.edge(v, ghost, 'a', Presence::Always, Latency::unit())
            .unwrap_err(),
        TvgError::UnknownNode(ghost)
    );
    assert_eq!(
        b.edge(v, v, 'é', Presence::Always, Latency::unit())
            .unwrap_err(),
        TvgError::BadLabel('é')
    );
}

#[test]
fn automaton_failures() {
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(1);
    let g = b.build().expect("valid");
    assert_eq!(
        TvgAutomaton::new(g.clone(), BTreeSet::new(), BTreeSet::new(), 0).unwrap_err(),
        AutomatonError::NoInitialStates
    );
    let ghost = NodeId::from_index(5);
    assert_eq!(
        TvgAutomaton::new(g, BTreeSet::from([ghost]), BTreeSet::from([v[0]]), 0).unwrap_err(),
        AutomatonError::UnknownNode(ghost)
    );
}

#[test]
fn journey_validation_failures_are_specific() {
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    b.edge(v[0], v[1], 'a', Presence::At(3), Latency::unit())
        .expect("valid");
    let g = b.build().expect("valid");
    let e = EdgeId::from_index(0);

    // Wrong source.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 3,
        arrive: 4,
    }]);
    assert_eq!(
        j.validate(&g, v[1], &3, &WaitingPolicy::Unbounded),
        Err(JourneyError::WrongSource)
    );
    // Edge absent.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 2,
        arrive: 3,
    }]);
    assert_eq!(
        j.validate(&g, v[0], &2, &WaitingPolicy::Unbounded),
        Err(JourneyError::EdgeAbsent { hop: 0 })
    );
    // Wait bound exceeded.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 3,
        arrive: 4,
    }]);
    assert_eq!(
        j.validate(&g, v[0], &0, &WaitingPolicy::Bounded(2)),
        Err(JourneyError::WaitTooLong { hop: 0 })
    );
    // Arrival inconsistent with latency.
    let j = Journey::from_hops(vec![Hop {
        edge: e,
        depart: 3,
        arrive: 9,
    }]);
    assert_eq!(
        j.validate(&g, v[0], &3, &WaitingPolicy::Unbounded),
        Err(JourneyError::WrongArrival { hop: 0 })
    );
}

#[test]
fn compiler_failures_name_offenders() {
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    b.edge(
        v[0],
        v[1],
        'a',
        Presence::PqPower { p: 2, q: 3 },
        Latency::unit(),
    )
    .expect("valid");
    let aut = TvgAutomaton::new(
        b.build().expect("valid"),
        BTreeSet::from([v[0]]),
        BTreeSet::from([v[1]]),
        0,
    )
    .expect("valid");
    // The aperiodic prime-power schedule cannot be compiled — precisely
    // the boundary between Theorem 2.1 and Theorem 2.2 territory.
    assert_eq!(
        periodic_to_nfa(&aut, 6, &WaitingPolicy::Unbounded, &Alphabet::ab()).unwrap_err(),
        CompileError::NonPeriodicPresence(EdgeId::from_index(0))
    );
}

#[test]
fn anbn_parameter_failures() {
    assert_eq!(
        AnbnAutomaton::new(6, 3).unwrap_err(),
        AnbnError::NotPrime(6)
    );
    assert_eq!(
        AnbnAutomaton::new(3, 3).unwrap_err(),
        AnbnError::PrimesNotDistinct
    );
}

#[test]
fn json_decode_failures_are_typed() {
    use tvg_suite::dynnet::json::{FromJson, ToJson};
    use tvg_suite::dynnet::markovian::EdgeMarkovianParams;
    // Malformed text, wrong shapes, and missing fields all produce
    // errors, never panics or silent defaults.
    for bad in [
        "",
        "{",
        "[1,2]",
        "{}",
        r#"{"num_nodes":"three"}"#,
        "{}trailing",
    ] {
        assert!(EdgeMarkovianParams::from_json(bad).is_err(), "{bad:?}");
    }
    // And a valid encoding still round-trips (the failure cases above are
    // not just rejecting everything).
    let p = EdgeMarkovianParams {
        num_nodes: 4,
        p_birth: 0.1,
        p_death: 0.2,
        steps: 9,
    };
    assert_eq!(
        EdgeMarkovianParams::from_json(&p.to_json()).expect("valid"),
        p
    );
}

#[test]
fn degenerate_language_oracles_are_total() {
    // The Σ* and ∅ oracles from the testkit stay total on any alphabet,
    // including the unary edge case.
    use tvg_testkit::oracles::{empty_language_dfa, sigma_star_dfa, unary_alphabet};
    let sigma = unary_alphabet();
    let all = sigma_star_dfa(&sigma);
    let none = empty_language_dfa(&sigma);
    for w in tvg_suite::langs::sample::words_upto(&sigma, 4) {
        assert!(all.accepts(&w));
        assert!(!none.accepts(&w));
    }
}

#[test]
fn u64_time_overflow_is_unusable_edge_not_panic() {
    // An affine latency that overflows u64 must make the edge unusable,
    // not crash the search.
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    let e = b
        .edge(
            v[0],
            v[1],
            'a',
            Presence::Always,
            Latency::Affine {
                mul: u64::MAX,
                add: 0,
            },
        )
        .expect("valid");
    let g = b.build().expect("valid");
    assert_eq!(g.traverse(e, &2), None); // 2 · u64::MAX overflows
    assert_eq!(g.traverse(e, &0), Some(0)); // 0 · anything is fine
}
