//! Pins the paper's concrete artifacts to exact values: the Table-1
//! schedule semantics and the Figure-1 run, digit for digit.

use tvg_suite::bigint::Nat;
use tvg_suite::langs::word;
use tvg_suite::model::{pq_power_index, Presence};
use tvg_testkit::fixtures::figure1;
use tvg_testkit::oracles::anbn_word;

#[test]
fn table1_presence_functions_exact() {
    // ρ(e0) = always; ρ(e1): t > p; ρ(e3): t = p — directly the AST.
    let p = 2u64;
    let e1 = Presence::After(Nat::from(p));
    assert!(!e1.is_present(&Nat::from(2u64)));
    assert!(e1.is_present(&Nat::from(3u64)));
    let e3 = Presence::At(Nat::from(p));
    assert!(e3.is_present(&Nat::from(2u64)));
    assert!(!e3.is_present(&Nat::from(3u64)));

    // ρ(e4): t = pⁱqⁱ⁻¹, i > 1 — prime-power decomposition.
    let e4 = Presence::<Nat>::PqPower { p: 2, q: 3 };
    // i = 2: 2²·3 = 12; i = 3: 2³·3² = 72; i = 4: 2⁴·3³ = 432.
    for t in [12u64, 72, 432] {
        assert!(e4.is_present(&Nat::from(t)), "{t}");
    }
    // i = 1 (t = p = 2) is excluded; near misses too.
    for t in [2u64, 6, 24, 36, 71, 73] {
        assert!(!e4.is_present(&Nat::from(t)), "{t}");
    }
    // ρ(e2) = ¬ρ(e4).
    let e2 = Presence::Not(Box::new(Presence::<Nat>::PqPower { p: 2, q: 3 }));
    assert!(!e2.is_present(&Nat::from(72u64)));
    assert!(e2.is_present(&Nat::from(24u64)));
}

#[test]
fn pq_power_index_reports_the_exponent() {
    assert_eq!(pq_power_index(&Nat::from(12u64), 2, 3), Some(2));
    assert_eq!(pq_power_index(&Nat::from(72u64), 2, 3), Some(3));
    assert_eq!(pq_power_index(&Nat::from(2u64), 2, 3), None); // i = 1 excluded
    assert_eq!(
        pq_power_index(&(Nat::from(2u64).pow(20) * Nat::from(3u64).pow(19)), 2, 3),
        Some(20)
    );
}

#[test]
fn figure1_clock_trace_digit_for_digit() {
    // The accepting run of a⁴b⁴ (p=2, q=3), exactly as the schedule
    // dictates: ×2 per a, ×3 per b, +1 on the final accept edge.
    let aut = figure1();
    let trace = aut.nowait_trace(&anbn_word(4)).expect("a⁴b⁴ accepted");
    let clocks: Vec<String> = trace.iter().map(|(_, t)| t.to_string()).collect();
    assert_eq!(
        clocks,
        vec!["1", "2", "4", "8", "16", "48", "144", "432", "433"]
    );
    let nodes: Vec<&str> = trace.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        nodes,
        vec!["v0", "v0", "v0", "v0", "v0", "v1", "v1", "v1", "v2"]
    );
}

#[test]
fn reading_starts_at_one_matters() {
    // The paper fixes the start of reading at t = 1; the construction
    // degenerates from t = 0 (0 · p = 0, the clock never moves).
    let aut = figure1();
    assert!(aut.accepts_nowait(&word("ab")));
    // The public API pins start_time = 1:
    assert_eq!(aut.automaton().start_time(), &Nat::one());
}
