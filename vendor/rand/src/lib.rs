//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` cannot be pulled from crates.io. This shim implements the
//! exact surface the workspace consumes:
//!
//! * [`Rng`] — `gen_range` over integer ranges, `gen_bool`, `gen` for a
//!   few primitive types, `fill_bytes`.
//! * [`SeedableRng`] — `seed_from_u64` and `from_seed`.
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64, matching the reference constants of Blackman & Vigna.
//!
//! Unlike the upstream `StdRng` (which explicitly does not promise stream
//! stability across versions), this shim **guarantees** that a given seed
//! produces the same stream forever — a property the workspace's
//! deterministic test harness (`tvg-testkit`) relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirroring upstream `rand`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`, like upstream.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        // 53 random mantissa bits, the same resolution upstream uses.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Uniform sample of a primitive type (`bool`, integers, `f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Fixed-width seed accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion
    /// (the same construction upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna 2019 reference constants).
    ///
    /// Stream-stable: a given seed produces the same sequence on every
    /// platform and in every future version of this shim.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Integer types uniformly sampleable by [`Rng::gen_range`].
///
/// Ranges are reduced to an unsigned 64-bit *offset from the lower
/// bound*, which handles every shape uniformly — including ranges whose
/// upper bound is the type's maximum (all supported types are at most 64
/// bits wide, so offsets always fit).
pub trait SampleUniform: Copy + PartialOrd {
    /// The distance `self - base` as an unsigned offset.
    /// Caller guarantees `self >= base`.
    fn offset_from(self, base: Self) -> u64;
    /// The value `base + offset`. Caller guarantees the result is in the
    /// type's domain.
    fn add_offset(base: Self, offset: u64) -> Self;
}

/// Uniform draw from `{0, …, span_minus_1}` inclusive, debiased by
/// rejection.
fn draw_offset<R: RngCore + ?Sized>(rng: &mut R, span_minus_1: u64) -> u64 {
    let Some(span) = span_minus_1.checked_add(1) else {
        // Full 64-bit domain: every draw is valid.
        return rng.next_u64();
    };
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn offset_from(self, base: Self) -> u64 {
                (self as i128 - base as i128) as u64
            }
            fn add_offset(base: Self, offset: u64) -> Self {
                (base as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span_minus_1 = self.end.offset_from(self.start) - 1;
        T::add_offset(self.start, draw_offset(rng, span_minus_1))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::add_offset(low, draw_offset(rng, high.offset_from(low)))
    }
}

/// Types with a canonical "uniform over the whole domain" distribution,
/// the shim's analogue of `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Uniform in `[0, 1)` with 53 bits of resolution.
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn stream_is_stable() {
        // Pinned values: if these change, seeded tests across the whole
        // workspace change behind our back. Never update them casually.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);

        let mut other = StdRng::seed_from_u64(1);
        assert_ne!(first[0], other.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_inclusive_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        // Single-element ranges are valid (upstream accepts them too).
        assert_eq!(rng.gen_range(7u64..=7), 7);
        assert_eq!(rng.gen_range(u64::MAX..=u64::MAX), u64::MAX);
        assert_eq!(rng.gen_range(i64::MIN..=i64::MIN), i64::MIN);
        // Ranges ending at the type maximum include it.
        let mut hit_max = false;
        for _ in 0..1000 {
            let v = rng.gen_range(254u8..=255);
            assert!(v >= 254);
            hit_max |= v == 255;
        }
        assert!(hit_max, "u8::MAX never drawn from 254..=255");
        // Full-domain draws don't panic and stay in range by definition.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i8::MIN..=i8::MAX);
    }

    #[test]
    fn gen_range_signed_spans_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            neg |= v < 0;
            pos |= v >= 0;
        }
        assert!(neg && pos);
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }
}
