//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` cannot be pulled from crates.io. This shim keeps every
//! bench target compiling and runnable: `cargo bench` executes each
//! benchmark with a warm-up pass followed by a fixed number of timed
//! samples and prints the mean, minimum, and maximum iteration time.
//!
//! It intentionally implements only the surface the workspace's benches
//! use — grouped benchmarks with per-input ids and `Bencher::iter` — and
//! none of the statistics machinery. Numbers it prints are indicative,
//! not rigorous; the point is that benches never rot (`cargo bench
//! --no-run` gates CI) and still produce scaling shapes when run.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirror of `std::hint::black_box`, which upstream criterion
/// exposes at the crate root.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_samples(self.sample_size, &mut f);
        report.print(&id.into());
        self
    }

    /// Default group-level sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` against one `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_samples(self.sample_size, &mut |b| f(b, input));
        report.print(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_samples(self.sample_size, &mut f);
        report.print(&format!("{}/{}", self.name, id.into_benchmark_id().label));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts both ids
/// and plain strings (as upstream does).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl<S: Into<String>> IntoBenchmarkId for S {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.into() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One un-timed call to warm caches and to size the batch so a
        // sample takes a measurable amount of time without running long
        // workloads thousands of times.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed();
        let batch = if once >= Duration::from_millis(10) {
            1
        } else {
            // Aim for ~10ms per sample, capped to keep total time sane.
            ((Duration::from_millis(10).as_nanos() / once.as_nanos().max(1)) as u64)
                .clamp(1, 10_000)
        };
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += batch;
    }
}

struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
}

impl Report {
    fn print(&self, label: &str) {
        eprintln!(
            "bench {label:<48} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            self.mean, self.min, self.max, self.samples
        );
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> Report {
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        if b.iterations > 0 {
            per_iter.push(b.elapsed / b.iterations as u32);
        }
    }
    let samples = per_iter.len();
    let min = per_iter.iter().min().copied().unwrap_or_default();
    let max = per_iter.iter().max().copied().unwrap_or_default();
    let total: Duration = per_iter.iter().sum();
    let mean = if samples > 0 {
        total / samples as u32
    } else {
        Duration::ZERO
    };
    Report {
        mean,
        min,
        max,
        samples,
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench entry point, mirroring upstream.
///
/// Cargo's libtest harness is disabled for criterion benches
/// (`harness = false` in the manifest), so this expands to a plain
/// `main` that runs every group. Harness flags such as `--bench` that
/// cargo passes through are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(1), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                black_box(x * 2)
            });
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
