//! Umbrella crate for the *Waiting in Dynamic Networks* reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use tvg_suite::…`. See the individual crates
//! for the real documentation:
//!
//! * [`bigint`] — arbitrary-precision naturals (schedule arithmetic).
//! * [`langs`] — words, automata, grammars, Turing machines, wqo tools.
//! * [`model`] — the time-varying graph model and schedules.
//! * [`journeys`] — journeys, waiting policies, search, reachability.
//! * [`expressivity`] — the paper's constructions (Figure 1, Theorems
//!   2.1–2.3).
//! * [`dynnet`] — dynamic-network protocol simulations.
//! * [`serve`] — the always-on query service: lock-free snapshot
//!   publication over a live stream, epoch-pinned concurrent readers.
//! * [`scenarios`] — the declarative scenario runtime (text specs →
//!   canonical JSON reports; the `tvg-cli` binary drives it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tvg_bigint as bigint;
pub use tvg_dynnet as dynnet;
pub use tvg_expressivity as expressivity;
pub use tvg_journeys as journeys;
pub use tvg_langs as langs;
pub use tvg_model as model;
pub use tvg_scenarios as scenarios;
pub use tvg_serve as serve;
