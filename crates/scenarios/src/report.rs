//! Canonical scenario reports.
//!
//! A [`Report`] is the complete observable outcome of one scenario run.
//! Its [`Report::canonical_json`] rendering is **deterministic to the
//! byte**: object keys are sorted (`BTreeMap`), integers stay exact
//! (`Json::Int`), floats use Rust's shortest round-trip formatting, and
//! nothing machine- or run-dependent (wall-clock, thread count actually
//! used) is included — which is what lets CI byte-diff reports against
//! checked-in goldens at `TVG_BATCH_THREADS=1` and `=4` alike. Wall time
//! is measured and carried alongside ([`Report::wall_micros`]) for
//! humans and benches, outside the canonical bytes.
//!
//! The serve plan widens this split: its **logical** section (answers,
//! counts, epochs served) lives in `results` and is canonical, while
//! its throughput/latency percentiles ride in the non-canonical
//! [`Report::timing`] field next to `wall_micros`. The rule of thumb:
//! anything a different machine (or reader count) could change is
//! timing, everything else is logic — and only logic is golden-gated.

use std::collections::BTreeMap;
use tvg_dynnet::json::Json;
use tvg_journeys::EngineStats;
use tvg_model::Time;

/// The outcome of running one [`crate::Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub(crate) scenario: String,
    pub(crate) generator: &'static str,
    pub(crate) generator_params: Json,
    pub(crate) policy: String,
    pub(crate) plan: &'static str,
    pub(crate) threads: String,
    pub(crate) nodes: usize,
    pub(crate) edges: usize,
    pub(crate) edge_events: usize,
    pub(crate) results: Json,
    pub(crate) engine: EngineStats,
    pub(crate) wall_micros: u128,
    /// Plan-specific timing metrics (`Json::Null` for plans without
    /// any) — measured, **not** canonical.
    pub(crate) timing: Json,
}

impl Report {
    /// The scenario name this report answers for.
    #[must_use]
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Summed engine work counters behind the plan's queries.
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.engine
    }

    /// The plan-specific results object.
    #[must_use]
    pub fn results(&self) -> &Json {
        &self.results
    }

    /// Wall-clock microseconds of the run (measured, **not** part of the
    /// canonical bytes — goldens must not depend on machine speed).
    #[must_use]
    pub fn wall_micros(&self) -> u128 {
        self.wall_micros
    }

    /// Plan-specific timing metrics (the serve plan's throughput and
    /// latency percentiles; `Json::Null` for plans without any).
    /// Measured wall-clock data, **not** part of the canonical bytes —
    /// the logical `results` section is golden-gated, timing is for
    /// humans, benches, and EXPERIMENTS.md.
    #[must_use]
    pub fn timing(&self) -> &Json {
        &self.timing
    }

    /// The canonical single-line JSON rendering (see module docs).
    #[must_use]
    pub fn canonical_json(&self) -> String {
        obj([
            ("engine", engine_json(&self.engine)),
            (
                "generator",
                obj([
                    ("name", Json::Str(self.generator.to_string())),
                    ("params", self.generator_params.clone()),
                ]),
            ),
            (
                "graph",
                obj([
                    ("edge_events", Json::Int(self.edge_events as u64)),
                    ("edges", Json::Int(self.edges as u64)),
                    ("nodes", Json::Int(self.nodes as u64)),
                ]),
            ),
            ("plan", Json::Str(self.plan.to_string())),
            ("policy", Json::Str(self.policy.clone())),
            ("results", self.results.clone()),
            ("scenario", Json::Str(self.scenario.clone())),
            ("threads", Json::Str(self.threads.clone())),
        ])
        .to_string()
    }
}

/// The 1-based first line at which two report texts differ, used by
/// every golden gate (`tvg-cli verify`, the testkit oracle) so they all
/// name the same line for the same drift. When one text is a strict
/// prefix of the other, this is the first line past the shorter text.
#[must_use]
pub fn first_divergent_line(a: &str, b: &str) -> usize {
    a.lines()
        .zip(b.lines())
        .position(|(x, y)| x != y)
        .map_or_else(|| a.lines().count().min(b.lines().count()) + 1, |i| i + 1)
}

/// Builds a JSON object from `(key, value)` pairs.
pub(crate) fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub(crate) fn engine_json(stats: &EngineStats) -> Json {
    obj([
        ("expanded", Json::Int(stats.expanded)),
        ("runs", Json::Int(stats.runs)),
        ("settled", Json::Int(stats.settled)),
    ])
}

/// An arrival histogram: how many entries arrived at each instant, plus
/// how many never arrived. Rendered as sorted `[instant, count]` pairs
/// so the encoding is canonical regardless of input order. Instants are
/// widened to `u64` keys, so a `u32`-narrowed run renders the same
/// bytes as the `u64` run it compresses.
pub(crate) fn histogram<'a, T: Time + 'a>(values: impl Iterator<Item = Option<&'a T>>) -> Json {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut unreached = 0u64;
    for v in values {
        match v {
            Some(t) => {
                let t = t.to_u64().expect("scenario arrivals fit a machine word");
                *counts.entry(t).or_default() += 1;
            }
            None => unreached += 1,
        }
    }
    obj([
        (
            "arrivals",
            Json::Arr(
                counts
                    .into_iter()
                    .map(|(t, c)| Json::Arr(vec![Json::Int(t), Json::Int(c)]))
                    .collect(),
            ),
        ),
        ("unreached", Json::Int(unreached)),
    ])
}
