//! Compile-once index files: a scenario's compiled index serialized to
//! a `.tvgi` (see [`tvg_model::tvgi`]) and its batch plans re-run from
//! the opened [`ShardedIndex`] with no recompilation.
//!
//! [`compile_index`] makes exactly the time-domain decision
//! [`Scenario::run`] makes — [`narrow_tvg`] plus the policy-arithmetic
//! check — so a `.tvgi` written here holds the same index, in the same
//! domain, that a direct run would have compiled; the file's stored
//! width (4 or 8 bytes per time word) records which way the decision
//! went. [`run_with_index`] reads that width back, opens the file in
//! the matching domain, and dispatches the scenario's plan through the
//! same generic batch runners a direct run uses — producing a
//! [`Report`] whose canonical bytes are identical to `Scenario::run`'s
//! (the round-trip oracle in the testkit pins this).
//!
//! Only batch-shaped plans (`single_source`, `matrix`, `matrix_sample`,
//! `broadcast`) run from a file: the streaming and serve plans are
//! defined by their ingest feed, which a frozen index does not carry.
//! Every scenario embeds its canonical spec text at write time and
//! [`run_with_index`] refuses a file whose embedded text differs from
//! the scenario it is asked to run — a `.tvgi` is an artifact *of* one
//! workload, not a generic graph container.

use crate::report::Report;
use crate::run::{
    narrow_policy, run_broadcast_plan, run_matrix, run_matrix_sample, run_single_source,
};
use crate::spec::{Plan, Scenario};
use std::path::Path;
use tvg_dynnet::json::Json;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_model::tvgi::{peek_tvgi, write_tvgi, ShardedIndex, TvgiError, TvgiSummary, TvgiTime};
use tvg_model::{narrow_tvg, TemporalIndex, TvgIndex};

/// A compile-to-file or run-from-file failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexFileError {
    /// The `.tvgi` layer itself failed (I/O, corruption, format).
    Tvgi(TvgiError),
    /// The scenario's plan cannot run from a frozen index (streaming
    /// and serve plans are defined by their ingest feed).
    UnsupportedPlan {
        /// The rejected plan's spec name.
        plan: &'static str,
    },
    /// The file's embedded canonical spec text differs from the
    /// scenario being run — the index was compiled for another
    /// workload (or the same workload under different parameters).
    SpecMismatch {
        /// The scenario that was asked to run.
        scenario: String,
    },
}

impl std::fmt::Display for IndexFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexFileError::Tvgi(e) => write!(f, "{e}"),
            IndexFileError::UnsupportedPlan { plan } => write!(
                f,
                "the {plan} plan replays an ingest feed and cannot run from a frozen index \
                 (batch plans only: single_source, matrix, matrix_sample, broadcast)"
            ),
            IndexFileError::SpecMismatch { scenario } => write!(
                f,
                "index file was compiled for a different workload than scenario {scenario:?} \
                 (recompile with `tvg-cli compile`)"
            ),
        }
    }
}

impl std::error::Error for IndexFileError {}

impl From<TvgiError> for IndexFileError {
    fn from(e: TvgiError) -> Self {
        IndexFileError::Tvgi(e)
    }
}

/// Rejects the plans a frozen index cannot answer.
fn require_batch_plan(scenario: &Scenario) -> Result<(), IndexFileError> {
    match scenario.plan() {
        Plan::Streaming { .. } | Plan::Serve { .. } => Err(IndexFileError::UnsupportedPlan {
            plan: scenario.plan().name(),
        }),
        _ => Ok(()),
    }
}

/// The plan's start instant, exactly as [`Scenario::run`] extracts it
/// for the narrowing decision (plans without one start at 0).
fn plan_start(plan: &Plan) -> u64 {
    match plan {
        Plan::SingleSource { start, .. }
        | Plan::Matrix { start, .. }
        | Plan::MatrixSample { start, .. } => *start,
        _ => 0,
    }
}

/// Builds the scenario's TVG, compiles its index in the same time
/// domain a direct [`Scenario::run`] would pick, and serializes it to
/// `path` as a `.tvgi` with `shards` node-range shards, embedding the
/// scenario's canonical spec text for the open-time provenance check.
///
/// # Errors
///
/// [`IndexFileError::UnsupportedPlan`] for streaming/serve scenarios,
/// or any [`TvgiError`] from the writer (I/O, non-constant latency).
pub fn compile_index(
    scenario: &Scenario,
    shards: u32,
    path: &Path,
) -> Result<TvgiSummary, IndexFileError> {
    require_batch_plan(scenario)?;
    let g = scenario.build_graph();
    let limits = scenario.limits();
    let spec = scenario.to_string();
    let start = plan_start(scenario.plan());
    let summary = match (
        narrow_tvg(&g, limits.horizon),
        narrow_policy(scenario.policy(), limits.horizon),
    ) {
        (Ok(narrowed), Some(_)) if start <= limits.horizon => {
            let horizon = u32::try_from(limits.horizon).expect("narrowing checked the horizon");
            let index = TvgIndex::compile(&narrowed, horizon);
            write_tvgi(&index, shards, Some(&spec), path)?
        }
        _ => {
            let index = TvgIndex::compile(&g, limits.horizon);
            write_tvgi(&index, shards, Some(&spec), path)?
        }
    };
    Ok(summary)
}

/// Runs the scenario's batch plan from a `.tvgi` file instead of
/// regenerating and recompiling: the header's stored width picks the
/// time domain, the embedded spec text is checked against the
/// scenario, and the plan dispatches through the same generic batch
/// runners a direct run uses. The returned [`Report`]'s canonical
/// bytes equal `scenario.run()`'s.
///
/// # Errors
///
/// [`IndexFileError::UnsupportedPlan`] for streaming/serve scenarios,
/// [`IndexFileError::SpecMismatch`] when the file was compiled for a
/// different workload, or any [`TvgiError`] from opening the file.
pub fn run_with_index(scenario: &Scenario, path: &Path) -> Result<Report, IndexFileError> {
    require_batch_plan(scenario)?;
    match peek_tvgi(path)?.width {
        4 => run_on::<u32>(scenario, path),
        _ => run_on::<u64>(scenario, path),
    }
}

/// Converts the scenario's `u64` policy into the file's time domain.
/// A `u32` file exists only because [`narrow_policy`] proved the
/// bounded delay fits, so the conversion cannot truncate.
fn policy_in<T: TvgiTime>(policy: &WaitingPolicy<u64>) -> WaitingPolicy<T> {
    match policy {
        WaitingPolicy::NoWait => WaitingPolicy::NoWait,
        WaitingPolicy::Unbounded => WaitingPolicy::Unbounded,
        WaitingPolicy::Bounded(d) => WaitingPolicy::Bounded(T::from_u64(*d)),
    }
}

fn run_on<T: TvgiTime + Send + Sync>(
    scenario: &Scenario,
    path: &Path,
) -> Result<Report, IndexFileError> {
    let started = std::time::Instant::now();
    let index = ShardedIndex::<T>::open(path)?;
    if index.spec() != scenario.to_string() {
        return Err(IndexFileError::SpecMismatch {
            scenario: scenario.name().to_string(),
        });
    }
    let batch = scenario.batch();
    let limits = SearchLimits::new(
        T::from_u64(scenario.plan().horizon()),
        scenario.plan().max_hops(),
    );
    let policy = policy_in::<T>(scenario.policy());
    let (results, engine) = match scenario.plan() {
        Plan::SingleSource { src, start, .. } => {
            run_single_source(&index, batch, *src, &T::from_u64(*start), &policy, &limits)
        }
        Plan::Matrix { start, .. } => {
            run_matrix(&index, batch, &T::from_u64(*start), &policy, &limits)
        }
        Plan::MatrixSample {
            sources,
            seed,
            start,
            ..
        } => run_matrix_sample(
            &index,
            batch,
            *sources,
            *seed,
            &T::from_u64(*start),
            &policy,
            &limits,
        ),
        Plan::Broadcast {
            source, beacons, ..
        } => run_broadcast_plan(&index, batch, *source, *beacons, &policy, &limits),
        Plan::Streaming { .. } | Plan::Serve { .. } => {
            unreachable!("require_batch_plan rejected feed-defined plans")
        }
    };
    Ok(Report {
        scenario: scenario.name().to_string(),
        generator: scenario.generator().name(),
        generator_params: scenario.generator().params_json(),
        policy: scenario.policy().to_string(),
        plan: scenario.plan().name(),
        threads: scenario.threads().to_string(),
        nodes: index.num_nodes(),
        edges: index.num_edges(),
        edge_events: index.num_edge_events(),
        results,
        engine,
        wall_micros: started.elapsed().as_micros(),
        timing: Json::Null,
    })
}
