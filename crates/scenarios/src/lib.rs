//! Declarative scenario runtime for the *Waiting in Dynamic Networks*
//! reproduction.
//!
//! The paper's question — what does the ability to *wait* buy a
//! traveler in a time-varying graph? — only becomes interesting across
//! many schedule shapes. This crate makes a workload a **text file**
//! instead of a Rust program: a spec names a generator (periodic rings,
//! ferries, meshes, scale-free contacts, edge-Markovian on/off links,
//! random-waypoint mobility, shift-scheduled commuter fleets), a waiting
//! policy, and a query plan (single-source / reachability matrix /
//! broadcast / streaming replay), and the runtime executes it on the
//! workspace's compiled-index pipeline — `TvgIndex` compile, engine
//! runs fanned out by `BatchRunner`, `TvgStream` ingestion for the
//! streaming plan — emitting a canonical, byte-deterministic JSON
//! [`Report`].
//!
//! ```
//! use tvg_scenarios::parse_specs;
//!
//! let spec = "\
//! scenario demo
//! generator ring_bus n=4 period=4
//! policy wait
//! plan matrix horizon=16
//! ";
//! let scenarios = parse_specs(spec)?;
//! let report = scenarios[0].run();
//! assert!(report.canonical_json().contains("\"ratio\":1"));
//! // The canonical bytes are identical at every thread count.
//! # Ok::<(), tvg_scenarios::SpecError>(())
//! ```
//!
//! Determinism contract: a spec fully determines its report bytes.
//! Generators draw randomness only from spec seeds, plans run on the
//! thread-invariant batch runtime, report objects render with sorted
//! keys and exact integers, and wall time stays out of the canonical
//! bytes. `tvg-cli` layers file handling on top; CI runs every bundled
//! spec at `TVG_BATCH_THREADS=1` and `=4` and byte-diffs both against
//! checked-in goldens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod indexfile;
mod registry;
mod report;
mod run;
mod spec;

pub use indexfile::{compile_index, run_with_index, IndexFileError};
pub use registry::GeneratorSpec;
pub use report::{first_divergent_line, Report};
pub use spec::{parse_specs, Plan, Scenario, SpecError, Threads};
/// Re-exported so `Report` consumers (the CLI above all) can inspect
/// [`Report::results`] / [`Report::timing`] without a direct
/// `tvg-dynnet` dependency.
pub use tvg_dynnet::json::Json;
/// Re-exported so `.tvgi` consumers (the CLI above all) can name the
/// writer's summary and the format's typed failure without a direct
/// `tvg-model` dependency.
pub use tvg_model::tvgi::{TvgiError, TvgiSummary};

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_journeys::WaitingPolicy;

    fn one(text: &str) -> Scenario {
        let mut all = parse_specs(text).expect("valid spec");
        assert_eq!(all.len(), 1);
        all.pop().expect("one scenario")
    }

    #[test]
    fn parses_a_minimal_spec_with_defaults() {
        let s = one(
            "scenario demo\ngenerator ring_bus n=4 period=4\npolicy wait\nplan matrix horizon=16\n",
        );
        assert_eq!(s.name(), "demo");
        assert_eq!(s.policy(), &WaitingPolicy::Unbounded);
        assert_eq!(s.threads(), Threads::Auto);
        // max_hops defaults to horizon + 1, start to 0.
        assert_eq!(
            s.plan(),
            &Plan::Matrix {
                start: 0,
                horizon: 16,
                max_hops: 17
            }
        );
    }

    #[test]
    fn comments_blank_lines_and_order_are_tolerated() {
        let s = one(
            "# a comment\n\nscenario demo # trailing comment\n  plan matrix horizon=8\n  policy wait[2]  # bounded\n\n  generator star_ferry n=5\n  threads 3\n",
        );
        assert_eq!(s.policy(), &WaitingPolicy::Bounded(2));
        assert_eq!(s.threads(), Threads::Fixed(3));
        assert_eq!(s.generator().name(), "star_ferry");
    }

    #[test]
    fn every_generator_roundtrips_and_builds() {
        let specs = "\
scenario g1
generator ring_bus n=4 period=4
policy wait
plan matrix horizon=8
scenario g2
generator star_ferry n=4
policy nowait
plan matrix horizon=8
scenario g3
generator grid_two_phase rows=2 cols=3
policy wait[1]
plan matrix horizon=8
scenario g4
generator random_periodic nodes=4 edges=6 period=4 density=0.5 seed=7
policy wait
plan matrix horizon=8
scenario g5
generator scale_free n=8 horizon=8 seed=3
policy wait
plan matrix horizon=8
scenario g6
generator edge_markovian n=4 horizon=8 p_birth=0.2 p_death=0.5 seed=1
policy wait
plan matrix horizon=8
scenario g7
generator waypoint_grid walkers=4 rows=2 cols=2 horizon=8 seed=2
policy wait
plan matrix horizon=8
scenario g8
generator commuter_fleet lines=2 stops=2 headway=4 shift=1 runs=2
policy wait
plan matrix horizon=12
";
        let scenarios = parse_specs(specs).expect("valid");
        assert_eq!(scenarios.len(), 8);
        for s in &scenarios {
            // Round-trip: canonical text reparses to the same scenario.
            let text = s.to_string();
            let back = parse_specs(&text).expect("canonical text is valid");
            assert_eq!(&back[0], s, "{text}");
            // The graph builds and matches the statically known size.
            let g = s.build_graph();
            assert_eq!(g.num_nodes(), s.generator().num_nodes(), "{}", s.name());
        }
    }

    #[test]
    fn seed_directive_is_generator_seed_shorthand() {
        let with_directive = one(
            "scenario s\ngenerator scale_free n=8 horizon=8\nseed 3\npolicy wait\nplan matrix horizon=8\n",
        );
        let with_param = one(
            "scenario s\ngenerator scale_free n=8 horizon=8 seed=3\npolicy wait\nplan matrix horizon=8\n",
        );
        assert_eq!(with_directive, with_param);
        // Both at once is a duplicate parameter.
        assert_eq!(
            parse_specs(
                "scenario s\ngenerator scale_free n=8 horizon=8 seed=3\nseed 3\npolicy wait\nplan matrix horizon=8\n"
            )
            .unwrap_err(),
            SpecError::DuplicateParam {
                scenario: "s".into(),
                param: "seed".into()
            }
        );
        // A seed on a deterministic generator is an unknown parameter.
        assert_eq!(
            parse_specs(
                "scenario s\ngenerator ring_bus n=4 period=4\nseed 3\npolicy wait\nplan matrix horizon=8\n"
            )
            .unwrap_err(),
            SpecError::UnknownParam {
                scenario: "s".into(),
                context: "ring_bus".into(),
                param: "seed".into()
            }
        );
    }

    #[test]
    fn reports_are_thread_invariant_and_deterministic() {
        let text = "\
scenario inv
generator scale_free n=12 horizon=16 seed=5
policy wait[2]
plan matrix horizon=16 max_hops=8
";
        let s = one(text);
        let serial = s.with_threads(Threads::Fixed(1)).run().canonical_json();
        let four = s.with_threads(Threads::Fixed(4)).run().canonical_json();
        // The threads field reports the spec's directive, not the
        // runtime's choice...
        assert!(serial.contains("\"threads\":\"1\""));
        assert!(four.contains("\"threads\":\"4\""));
        // ...and it is the ONLY difference: every result byte is
        // thread-count invariant.
        assert_eq!(
            serial.replace("\"threads\":\"1\"", "\"threads\":\"4\""),
            four
        );
    }

    #[test]
    fn single_source_and_broadcast_and_streaming_run() {
        let text = "\
scenario ss
generator commuter_fleet lines=2 stops=2 headway=6 shift=3 runs=2
policy wait
plan single_source src=0 horizon=16
scenario bc
generator edge_markovian n=6 horizon=20 p_birth=0.2 p_death=0.4 seed=9
policy wait[2]
plan broadcast source=0 beacons=true horizon=20
scenario sweep
generator edge_markovian n=6 horizon=20 p_birth=0.2 p_death=0.4 seed=9
policy nowait
plan broadcast beacons=true horizon=20
scenario st
generator scale_free n=10 horizon=16 seed=4
policy wait
plan streaming src=1 horizon=16 batch=32
";
        for s in parse_specs(text).expect("valid") {
            let report = s.run();
            assert!(report.engine_stats().runs > 0, "{}", s.name());
            let json = report.canonical_json();
            // Canonical bytes parse back as JSON and repeat exactly.
            tvg_dynnet::json::parse(&json).expect("canonical json parses");
            assert_eq!(json, s.run().canonical_json(), "{}", s.name());
        }
    }

    #[test]
    fn peer_lifecycle_streams_its_churn_feed() {
        let text = "\
scenario churn
generator peer_lifecycle n=6 swaps=2 horizon=24 seed=3
policy wait[2]
plan streaming src=0 horizon=24 batch=16
";
        let s = one(text);
        // Canonical text reparses to the same scenario.
        let back = parse_specs(&s.to_string()).expect("canonical text is valid");
        assert_eq!(&back[0], &s);
        // The materialized graph carries every peer that ever joined.
        assert_eq!(s.build_graph().num_nodes(), 8);
        let report = s.run();
        let json = report.canonical_json();
        tvg_dynnet::json::parse(&json).expect("canonical json parses");
        assert!(json.contains("\"departed\":2"), "{json}");
        assert_eq!(json, s.run().canonical_json(), "repeats byte for byte");
    }

    #[test]
    fn streaming_horizon_must_cover_the_churn_feed() {
        // A streaming plan that stops before the churn feed's last
        // event could not ingest it; spec validation rejects the combo.
        let err = parse_specs(
            "scenario churn\ngenerator peer_lifecycle n=6 swaps=2 horizon=24 seed=3\npolicy wait\nplan streaming src=0 horizon=20 batch=16\n",
        )
        .unwrap_err();
        assert!(
            matches!(&err, SpecError::BadParamValue { .. })
                && err.to_string().contains("must cover the churn feed"),
            "got {err:?}"
        );
    }

    #[test]
    fn sweep_directives_expand_the_cross_product() {
        let text = "\
scenario ring-sweep
generator ring_bus n=8 period=8
policy wait[3]
sweep n 6 10
sweep policy nowait wait[3]
plan matrix horizon=32
";
        let scenarios = parse_specs(text).expect("valid sweep spec");
        let names: Vec<&str> = scenarios.iter().map(Scenario::name).collect();
        assert_eq!(
            names,
            [
                "ring-sweep-6-nowait",
                "ring-sweep-6-wait3",
                "ring-sweep-10-nowait",
                "ring-sweep-10-wait3"
            ],
            "first sweep varies slowest, names sanitized"
        );
        for s in &scenarios {
            // Each expanded row is an ordinary scenario: canonical text
            // round-trips and the swept parameters really took effect.
            let back = parse_specs(&s.to_string()).expect("canonical text is valid");
            assert_eq!(&back[0], s, "{}", s.name());
            let n = if s.name().contains("-6-") { 6 } else { 10 };
            assert_eq!(s.build_graph().num_nodes(), n, "{}", s.name());
            let wait = s.name().ends_with("wait3");
            assert_eq!(
                s.policy() == &WaitingPolicy::Bounded(3),
                wait,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn sweep_errors_are_typed() {
        // The same parameter swept twice in one block.
        assert_eq!(
            parse_specs(
                "scenario s\ngenerator ring_bus n=4 period=4\npolicy wait\nsweep n 4 6\nsweep n 8\nplan matrix horizon=8\n"
            )
            .unwrap_err(),
            SpecError::DuplicateParam {
                scenario: "s".into(),
                param: "n".into()
            }
        );
        // A sweep directive needs a parameter and at least one value.
        assert!(matches!(
            parse_specs(
                "scenario s\ngenerator ring_bus n=4 period=4\npolicy wait\nsweep n\nplan matrix horizon=8\n"
            )
            .unwrap_err(),
            SpecError::MissingArgument { .. }
        ));
        // Two sweep values that sanitize to the same row name collide.
        assert_eq!(
            parse_specs(
                "scenario s\ngenerator ring_bus n=4 period=4\npolicy wait\nsweep policy wait[3] wait3\nplan matrix horizon=8\n"
            )
            .unwrap_err(),
            SpecError::DuplicateScenario {
                name: "s-wait3".into()
            }
        );
    }

    #[test]
    fn serve_plan_roundtrips_and_runs_with_mid_run_epochs() {
        let text = "\
scenario sv
generator scale_free n=12 horizon=24 seed=5
policy wait
plan serve horizon=24 requests=32 gap=2 foremost=3 matrix=2 broadcast=1 ticks=4 seed=11
";
        let s = one(text);
        // Canonical text reparses to the same scenario.
        let back = parse_specs(&s.to_string()).expect("canonical text is valid");
        assert_eq!(&back[0], &s);

        let report = s.run();
        assert!(report.engine_stats().runs > 0);
        let json = report.canonical_json();
        tvg_dynnet::json::parse(&json).expect("canonical json parses");
        // The writer published the pre-ingest epoch plus one per tick,
        // concurrently with the readers — asserted in the report.
        assert!(json.contains("\"epochs_published\":5"), "{json}");
        assert!(json.contains("\"requests\":32"), "{json}");
        // Timing is measured and carried, but stays OUT of the
        // canonical bytes.
        assert_ne!(report.timing(), &tvg_dynnet::json::Json::Null);
        assert!(!json.contains("micros"), "{json}");
        assert!(!json.contains("throughput"), "{json}");
        // The run repeats byte-for-byte.
        assert_eq!(json, s.run().canonical_json());
    }

    #[test]
    fn serve_reports_are_reader_count_invariant() {
        let text = "\
scenario svinv
generator edge_markovian n=10 horizon=20 p_birth=0.3 p_death=0.4 seed=2
policy wait[3]
plan serve horizon=20 requests=48 gap=1 foremost=2 matrix=1 broadcast=1 ticks=3 seed=9
";
        let s = one(text);
        let serial = s.with_threads(Threads::Fixed(1)).run().canonical_json();
        let four = s.with_threads(Threads::Fixed(4)).run().canonical_json();
        // Reader count changes only the timing metrics, never the
        // golden-gated logical bytes.
        assert_eq!(
            serial.replace("\"threads\":\"1\"", "\"threads\":\"4\""),
            four
        );
    }

    #[test]
    fn broadcast_policy_is_the_relay_discipline() {
        // The paper's archetype as a spec: waiting relays deliver where
        // no-wait relays cannot.
        let base = |policy: &str, name: &str| {
            format!(
                "scenario {name}\ngenerator commuter_fleet lines=1 stops=2 headway=9 shift=0 runs=2\npolicy {policy}\nplan broadcast source=2 beacons=false horizon=20\n"
            )
        };
        let wait = one(&base("wait", "w")).run();
        let nowait = one(&base("nowait", "n")).run();
        let reached = |r: &Report| match r.results() {
            tvg_dynnet::json::Json::Obj(map) => match &map["delivery"] {
                tvg_dynnet::json::Json::Obj(d) => d["delivery_ratio"].clone(),
                _ => panic!("delivery is an object"),
            },
            _ => panic!("results is an object"),
        };
        let (w, n) = (reached(&wait), reached(&nowait));
        let as_f = |j: &tvg_dynnet::json::Json| match j {
            tvg_dynnet::json::Json::Num(x) => *x,
            tvg_dynnet::json::Json::Int(x) => *x as f64,
            _ => panic!("ratio is numeric"),
        };
        assert!(as_f(&w) >= as_f(&n), "waiting never delivers less");
    }
}
