//! The scenario spec format: a small line-oriented text language that
//! names a workload completely — generator, waiting policy, query plan,
//! thread policy — so that running it twice (on any machine, at any
//! thread count) produces byte-identical reports.
//!
//! ```text
//! # One block per scenario; '#' starts a comment.
//! scenario ring-matrix
//! generator ring_bus n=8 period=8
//! policy wait[3]
//! plan matrix horizon=64 max_hops=16
//! threads auto
//! ```
//!
//! Directives may appear in any order inside a block; `generator`,
//! `policy`, and `plan` are required, `threads` defaults to `auto`, and
//! `seed <n>` is shorthand for the generator's `seed=` parameter. A file
//! may hold several blocks; duplicate scenario names are rejected.
//!
//! A block may also hold `sweep` directives, each naming a generator
//! parameter (or `policy`) and the values to sweep it over:
//!
//! ```text
//! scenario ring-sweep
//! generator ring_bus n=8 period=8
//! sweep n 6 10
//! sweep policy nowait wait
//! plan matrix horizon=64
//! ```
//!
//! Sweeps expand at parse time into the cross product of their values —
//! one concrete scenario per combination, named `<base>-<value>…` (values
//! sanitized to `[a-z0-9]`, e.g. `wait[2]` → `wait2`) — so a sweep spec
//! is exactly a multi-block spec: every row validates, runs, reports,
//! and goldens like a hand-written scenario. `sweep policy` makes the
//! `policy` directive optional (and overrides it if present).
//!
//! Parsing is *total validation*: every generator and plan name, every
//! parameter name, every value type, and every cross-field constraint
//! (e.g. a plan source within the generated node range) is checked at
//! parse time with a typed [`SpecError`], so `tvg-cli check` catches a
//! broken spec without running anything. [`Scenario`]'s `Display` is the
//! canonical spec text and round-trips: `parse(display(s)) == s`.

use crate::registry::GeneratorSpec;
use std::collections::BTreeMap;
use std::fmt;
use tvg_journeys::WaitingPolicy;

/// A typed spec failure: what went wrong, where, and what was expected.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec text holds no scenario block at all.
    Empty,
    /// A directive appeared before any `scenario` line.
    StrayDirective {
        /// 1-based line number of the stray directive.
        line: usize,
    },
    /// A line whose first word is not a known directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The offending first word.
        directive: String,
    },
    /// A directive missing its argument (e.g. bare `scenario`).
    MissingArgument {
        /// 1-based line number.
        line: usize,
        /// The directive missing its argument.
        directive: String,
    },
    /// A single-argument directive given more than one argument
    /// (e.g. `policy wait 2` instead of `policy wait[2]`).
    SurplusArgument {
        /// 1-based line number.
        line: usize,
        /// The directive with too many arguments.
        directive: String,
    },
    /// A scenario name that is empty or uses characters outside
    /// `[a-z0-9_-]`.
    BadScenarioName {
        /// The rejected name.
        name: String,
    },
    /// Two scenario blocks share a name.
    DuplicateScenario {
        /// The repeated name.
        name: String,
    },
    /// A directive appeared twice in one block.
    DuplicateDirective {
        /// The scenario being parsed.
        scenario: String,
        /// The repeated directive.
        directive: String,
    },
    /// A required directive never appeared in a block.
    MissingDirective {
        /// The scenario being parsed.
        scenario: String,
        /// The absent directive (`generator`, `policy`, or `plan`).
        directive: &'static str,
    },
    /// A `key=value` argument without the `=`.
    MalformedParam {
        /// The scenario being parsed.
        scenario: String,
        /// The raw token.
        token: String,
    },
    /// The same parameter given twice (including `seed` both as a
    /// directive and as a generator parameter).
    DuplicateParam {
        /// The scenario being parsed.
        scenario: String,
        /// The repeated parameter name.
        param: String,
    },
    /// The `generator` directive names no known generator.
    UnknownGenerator {
        /// The scenario being parsed.
        scenario: String,
        /// The unknown generator name.
        name: String,
    },
    /// The `plan` directive names no known plan.
    UnknownPlan {
        /// The scenario being parsed.
        scenario: String,
        /// The unknown plan name.
        name: String,
    },
    /// A parameter not accepted by the generator/plan it was given to.
    UnknownParam {
        /// The scenario being parsed.
        scenario: String,
        /// The generator or plan the parameter was given to.
        context: String,
        /// The rejected parameter name.
        param: String,
    },
    /// A parameter the generator/plan requires but did not receive.
    MissingParam {
        /// The scenario being parsed.
        scenario: String,
        /// The generator or plan missing the parameter.
        context: String,
        /// The absent parameter name.
        param: &'static str,
    },
    /// A parameter value of the wrong type.
    BadParamType {
        /// The scenario being parsed.
        scenario: String,
        /// The parameter name.
        param: String,
        /// The expected type (`u64`, `usize`, `f64`, `bool`).
        expected: &'static str,
        /// The raw value text.
        got: String,
    },
    /// A well-typed parameter value outside its admissible range.
    BadParamValue {
        /// The scenario being parsed.
        scenario: String,
        /// The parameter name.
        param: String,
        /// Why the value is rejected.
        reason: String,
    },
    /// A `policy` directive that is not `nowait`, `wait`, or `wait[d]`.
    BadPolicy {
        /// The scenario being parsed.
        scenario: String,
        /// The raw policy text.
        text: String,
    },
    /// A `threads` directive that is not `auto` or a positive integer.
    BadThreads {
        /// The scenario being parsed.
        scenario: String,
        /// The raw threads text.
        text: String,
    },
    /// A plan source node outside the generated graph.
    SourceOutOfRange {
        /// The scenario being parsed.
        scenario: String,
        /// The out-of-range source index.
        src: usize,
        /// The generator's node count.
        nodes: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "spec holds no scenario block"),
            SpecError::StrayDirective { line } => {
                write!(f, "line {line}: directive before any `scenario` line")
            }
            SpecError::UnknownDirective { line, directive } => {
                write!(f, "line {line}: unknown directive {directive:?}")
            }
            SpecError::MissingArgument { line, directive } => {
                write!(f, "line {line}: `{directive}` needs an argument")
            }
            SpecError::SurplusArgument { line, directive } => {
                write!(f, "line {line}: `{directive}` takes exactly one argument")
            }
            SpecError::BadScenarioName { name } => {
                write!(f, "bad scenario name {name:?} (use [a-z0-9_-]+)")
            }
            SpecError::DuplicateScenario { name } => {
                write!(f, "duplicate scenario name {name:?}")
            }
            SpecError::DuplicateDirective {
                scenario,
                directive,
            } => write!(
                f,
                "scenario {scenario:?}: duplicate `{directive}` directive"
            ),
            SpecError::MissingDirective {
                scenario,
                directive,
            } => write!(f, "scenario {scenario:?}: missing `{directive}` directive"),
            SpecError::MalformedParam { scenario, token } => {
                write!(
                    f,
                    "scenario {scenario:?}: expected key=value, got {token:?}"
                )
            }
            SpecError::DuplicateParam { scenario, param } => {
                write!(f, "scenario {scenario:?}: parameter {param:?} given twice")
            }
            SpecError::UnknownGenerator { scenario, name } => {
                write!(f, "scenario {scenario:?}: unknown generator {name:?}")
            }
            SpecError::UnknownPlan { scenario, name } => {
                write!(f, "scenario {scenario:?}: unknown plan {name:?}")
            }
            SpecError::UnknownParam {
                scenario,
                context,
                param,
            } => write!(
                f,
                "scenario {scenario:?}: {context} takes no parameter {param:?}"
            ),
            SpecError::MissingParam {
                scenario,
                context,
                param,
            } => write!(
                f,
                "scenario {scenario:?}: {context} requires parameter {param:?}"
            ),
            SpecError::BadParamType {
                scenario,
                param,
                expected,
                got,
            } => write!(
                f,
                "scenario {scenario:?}: parameter {param:?} expects {expected}, got {got:?}"
            ),
            SpecError::BadParamValue {
                scenario,
                param,
                reason,
            } => write!(
                f,
                "scenario {scenario:?}: parameter {param:?} out of range: {reason}"
            ),
            SpecError::BadPolicy { scenario, text } => write!(
                f,
                "scenario {scenario:?}: bad policy {text:?} (nowait | wait | wait[d])"
            ),
            SpecError::BadThreads { scenario, text } => write!(
                f,
                "scenario {scenario:?}: bad threads {text:?} (auto | positive integer)"
            ),
            SpecError::SourceOutOfRange {
                scenario,
                src,
                nodes,
            } => write!(
                f,
                "scenario {scenario:?}: source {src} out of range (graph has {nodes} nodes)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Thread policy of a scenario: `auto` follows `TVG_BATCH_THREADS` /
/// machine parallelism at run time; a fixed count pins it. Either way
/// the report bytes are identical — the batch runtime is thread-count
/// invariant — so goldens never depend on this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// `Batch::auto()` at run time.
    Auto,
    /// Exactly this many worker threads.
    Fixed(usize),
}

impl fmt::Display for Threads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Threads::Auto => write!(f, "auto"),
            Threads::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// The query plan a scenario executes over its generated TVG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// One all-destinations foremost run from `src`.
    SingleSource {
        /// Source node.
        src: usize,
        /// Journey start instant.
        start: u64,
        /// Latest admissible departure.
        horizon: u64,
        /// Hop bound.
        max_hops: usize,
    },
    /// All-pairs reachability: one engine run per source, batched.
    Matrix {
        /// Journey start instant.
        start: u64,
        /// Latest admissible departure.
        horizon: u64,
        /// Hop bound.
        max_hops: usize,
    },
    /// A seeded sample of the reachability matrix: `sources` distinct
    /// source nodes drawn deterministically from the node range, one
    /// all-destinations foremost run each. The scale tier's plan —
    /// matrix-shaped answers at a cost independent of `n²`.
    MatrixSample {
        /// How many distinct sources to sample (clamped to the node
        /// count at run time).
        sources: usize,
        /// Sampling seed.
        seed: u64,
        /// Journey start instant.
        start: u64,
        /// Latest admissible departure.
        horizon: u64,
        /// Hop bound.
        max_hops: usize,
    },
    /// Broadcast under the scenario policy as the relay discipline
    /// (`source: None` sweeps every node as a source).
    Broadcast {
        /// Broadcast source; `None` runs the all-sources sweep.
        source: Option<usize>,
        /// Whether the source re-emits at every instant.
        beacons: bool,
        /// Latest admissible departure.
        horizon: u64,
        /// Hop bound.
        max_hops: usize,
    },
    /// Streaming replay: the generated schedule is fed through a
    /// `TvgStream` in event batches, with an incrementally repaired
    /// foremost tree per tick and one batched all-sources query against
    /// the final live snapshot.
    Streaming {
        /// Source node of the incrementally maintained tree.
        src: usize,
        /// Journey start instant.
        start: u64,
        /// Replay horizon (also the latest admissible departure).
        horizon: u64,
        /// Hop bound.
        max_hops: usize,
        /// Events per ingest batch.
        batch: usize,
    },
    /// Live query service: the generated schedule replays through a
    /// `TvgStream` in `ticks` ingest batches while a synthetic client
    /// load (seeded mix of foremost / matrix-row / beaconing-broadcast
    /// requests under a geometric arrival process) is answered
    /// concurrently from epoch-pinned lock-free snapshots. The logical
    /// results are canonical; timing metrics ride outside the
    /// canonical bytes.
    Serve {
        /// Journey start instant shared by every request.
        start: u64,
        /// Replay horizon (also the latest admissible departure).
        horizon: u64,
        /// Hop bound.
        max_hops: usize,
        /// Synthetic requests to generate.
        requests: usize,
        /// Mean inter-arrival gap in instants (geometric arrivals).
        gap: u64,
        /// Integer mix weights `(foremost, matrix, broadcast)`.
        mix: (u64, u64, u64),
        /// Ingest ticks (the writer publishes `ticks + 1` epochs).
        ticks: usize,
        /// Load-generator seed.
        seed: u64,
    },
}

impl Plan {
    /// The plan's spec name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Plan::SingleSource { .. } => "single_source",
            Plan::Matrix { .. } => "matrix",
            Plan::MatrixSample { .. } => "matrix_sample",
            Plan::Broadcast { .. } => "broadcast",
            Plan::Streaming { .. } => "streaming",
            Plan::Serve { .. } => "serve",
        }
    }

    /// The plan's search horizon.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        match self {
            Plan::SingleSource { horizon, .. }
            | Plan::Matrix { horizon, .. }
            | Plan::MatrixSample { horizon, .. }
            | Plan::Broadcast { horizon, .. }
            | Plan::Streaming { horizon, .. }
            | Plan::Serve { horizon, .. } => *horizon,
        }
    }

    /// The plan's hop bound.
    #[must_use]
    pub fn max_hops(&self) -> usize {
        match self {
            Plan::SingleSource { max_hops, .. }
            | Plan::Matrix { max_hops, .. }
            | Plan::MatrixSample { max_hops, .. }
            | Plan::Broadcast { max_hops, .. }
            | Plan::Streaming { max_hops, .. }
            | Plan::Serve { max_hops, .. } => *max_hops,
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::SingleSource {
                src,
                start,
                horizon,
                max_hops,
            } => write!(
                f,
                "single_source src={src} start={start} horizon={horizon} max_hops={max_hops}"
            ),
            Plan::Matrix {
                start,
                horizon,
                max_hops,
            } => write!(f, "matrix start={start} horizon={horizon} max_hops={max_hops}"),
            Plan::MatrixSample {
                sources,
                seed,
                start,
                horizon,
                max_hops,
            } => write!(
                f,
                "matrix_sample sources={sources} seed={seed} start={start} \
                 horizon={horizon} max_hops={max_hops}"
            ),
            Plan::Broadcast {
                source,
                beacons,
                horizon,
                max_hops,
            } => {
                write!(f, "broadcast")?;
                if let Some(s) = source {
                    write!(f, " source={s}")?;
                }
                write!(f, " beacons={beacons} horizon={horizon} max_hops={max_hops}")
            }
            Plan::Streaming {
                src,
                start,
                horizon,
                max_hops,
                batch,
            } => write!(
                f,
                "streaming src={src} start={start} horizon={horizon} max_hops={max_hops} batch={batch}"
            ),
            Plan::Serve {
                start,
                horizon,
                max_hops,
                requests,
                gap,
                mix: (wf, wm, wb),
                ticks,
                seed,
            } => write!(
                f,
                "serve start={start} horizon={horizon} max_hops={max_hops} \
                 requests={requests} gap={gap} foremost={wf} matrix={wm} broadcast={wb} \
                 ticks={ticks} seed={seed}"
            ),
        }
    }
}

/// One fully validated scenario: a named workload ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub(crate) name: String,
    pub(crate) generator: GeneratorSpec,
    pub(crate) policy: WaitingPolicy<u64>,
    pub(crate) plan: Plan,
    pub(crate) threads: Threads,
}

impl Scenario {
    /// The scenario's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generator this scenario builds its TVG with.
    #[must_use]
    pub fn generator(&self) -> &GeneratorSpec {
        &self.generator
    }

    /// The waiting policy every plan query runs under.
    #[must_use]
    pub fn policy(&self) -> &WaitingPolicy<u64> {
        &self.policy
    }

    /// The query plan.
    #[must_use]
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The thread policy.
    #[must_use]
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// The same scenario with a different thread policy (the
    /// thread-invariance oracle pins reports across these).
    #[must_use]
    pub fn with_threads(&self, threads: Threads) -> Scenario {
        Scenario {
            threads,
            ..self.clone()
        }
    }
}

impl fmt::Display for Scenario {
    // The canonical spec text of this scenario (round-trips through
    // `parse_specs`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario {}", self.name)?;
        writeln!(f, "generator {}", self.generator)?;
        writeln!(f, "policy {}", self.policy)?;
        writeln!(f, "plan {}", self.plan)?;
        writeln!(f, "threads {}", self.threads)
    }
}

/// A raw `key=value` parameter map with typed, consuming accessors.
/// Every extraction either yields the declared type or a precise
/// [`SpecError`]; `finish` rejects leftovers so unknown parameters can
/// never pass silently.
pub(crate) struct Params {
    scenario: String,
    context: String,
    map: BTreeMap<String, String>,
}

impl Params {
    fn parse(
        scenario: &str,
        context: &str,
        tokens: &[&str],
        extra: Option<(String, String)>,
    ) -> Result<Params, SpecError> {
        let mut map = BTreeMap::new();
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return Err(SpecError::MalformedParam {
                    scenario: scenario.to_string(),
                    token: (*token).to_string(),
                });
            };
            if map.insert(key.to_string(), value.to_string()).is_some() {
                return Err(SpecError::DuplicateParam {
                    scenario: scenario.to_string(),
                    param: key.to_string(),
                });
            }
        }
        if let Some((key, value)) = extra {
            if map.insert(key.clone(), value).is_some() {
                return Err(SpecError::DuplicateParam {
                    scenario: scenario.to_string(),
                    param: key,
                });
            }
        }
        Ok(Params {
            scenario: scenario.to_string(),
            context: context.to_string(),
            map,
        })
    }

    fn take(&mut self, key: &'static str) -> Result<String, SpecError> {
        self.map.remove(key).ok_or_else(|| SpecError::MissingParam {
            scenario: self.scenario.clone(),
            context: self.context.clone(),
            param: key,
        })
    }

    fn typed<T>(&self, key: &str, raw: &str, expected: &'static str) -> Result<T, SpecError>
    where
        T: std::str::FromStr,
    {
        raw.parse().map_err(|_| SpecError::BadParamType {
            scenario: self.scenario.clone(),
            param: key.to_string(),
            expected,
            got: raw.to_string(),
        })
    }

    pub(crate) fn u64(&mut self, key: &'static str) -> Result<u64, SpecError> {
        let raw = self.take(key)?;
        self.typed(key, &raw, "u64")
    }

    pub(crate) fn usize(&mut self, key: &'static str) -> Result<usize, SpecError> {
        let raw = self.take(key)?;
        self.typed(key, &raw, "usize")
    }

    pub(crate) fn f64(&mut self, key: &'static str) -> Result<f64, SpecError> {
        let raw = self.take(key)?;
        // Reject the non-finite spellings `f64::from_str` would accept:
        // a spec value must be a plain decimal.
        let value: f64 = self.typed(key, &raw, "f64")?;
        if !value.is_finite() {
            return Err(SpecError::BadParamType {
                scenario: self.scenario.clone(),
                param: key.to_string(),
                expected: "f64",
                got: raw,
            });
        }
        Ok(value)
    }

    pub(crate) fn bool(&mut self, key: &'static str) -> Result<bool, SpecError> {
        let raw = self.take(key)?;
        match raw.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(SpecError::BadParamType {
                scenario: self.scenario.clone(),
                param: key.to_string(),
                expected: "bool",
                got: raw,
            }),
        }
    }

    /// Like [`Params::u64`] but with a default when absent.
    pub(crate) fn u64_or(&mut self, key: &'static str, default: u64) -> Result<u64, SpecError> {
        match self.map.remove(key) {
            Some(raw) => self.typed(key, &raw, "u64"),
            None => Ok(default),
        }
    }

    /// Like [`Params::usize`] but optional.
    pub(crate) fn usize_opt(&mut self, key: &'static str) -> Result<Option<usize>, SpecError> {
        match self.map.remove(key) {
            Some(raw) => self.typed(key, &raw, "usize").map(Some),
            None => Ok(None),
        }
    }

    /// A range guard: `check(name, ok, reason)`.
    pub(crate) fn guard(
        &self,
        param: &str,
        ok: bool,
        reason: impl Into<String>,
    ) -> Result<(), SpecError> {
        if ok {
            Ok(())
        } else {
            Err(SpecError::BadParamValue {
                scenario: self.scenario.clone(),
                param: param.to_string(),
                reason: reason.into(),
            })
        }
    }

    pub(crate) fn finish(self) -> Result<(), SpecError> {
        if let Some(param) = self.map.into_keys().next() {
            return Err(SpecError::UnknownParam {
                scenario: self.scenario,
                context: self.context,
                param,
            });
        }
        Ok(())
    }
}

/// Parses a spec file into its scenarios (see the module docs for the
/// format). Every scenario is fully validated; the first problem is
/// returned as a typed [`SpecError`].
pub fn parse_specs(text: &str) -> Result<Vec<Scenario>, SpecError> {
    #[derive(Clone)]
    struct Block {
        name: String,
        generator: Option<Vec<String>>,
        policy: Option<String>,
        plan: Option<Vec<String>>,
        threads: Option<String>,
        seed: Option<String>,
        /// `sweep <param> <value>…` directives, in appearance order.
        sweeps: Vec<(String, Vec<String>)>,
    }

    let mut blocks: Vec<Block> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw_line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut words = content.split_whitespace();
        let directive = words.next().expect("nonempty line has a first word");
        let rest: Vec<String> = words.map(str::to_string).collect();
        if directive == "scenario" {
            let name = rest.first().cloned().ok_or(SpecError::MissingArgument {
                line,
                directive: "scenario".to_string(),
            })?;
            if rest.len() > 1 {
                return Err(SpecError::SurplusArgument {
                    line,
                    directive: "scenario".to_string(),
                });
            }
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_".contains(c))
            {
                return Err(SpecError::BadScenarioName { name });
            }
            if blocks.iter().any(|b| b.name == name) {
                return Err(SpecError::DuplicateScenario { name });
            }
            blocks.push(Block {
                name,
                generator: None,
                policy: None,
                plan: None,
                threads: None,
                seed: None,
                sweeps: Vec::new(),
            });
            continue;
        }
        let Some(block) = blocks.last_mut() else {
            return Err(SpecError::StrayDirective { line });
        };
        let dup = |directive: &str| SpecError::DuplicateDirective {
            scenario: block.name.clone(),
            directive: directive.to_string(),
        };
        let single = |rest: &[String]| -> Result<String, SpecError> {
            match rest {
                [arg] => Ok(arg.clone()),
                [] => Err(SpecError::MissingArgument {
                    line,
                    directive: directive.to_string(),
                }),
                _ => Err(SpecError::SurplusArgument {
                    line,
                    directive: directive.to_string(),
                }),
            }
        };
        match directive {
            "generator" => {
                if rest.is_empty() {
                    return Err(SpecError::MissingArgument {
                        line,
                        directive: directive.to_string(),
                    });
                }
                if block.generator.replace(rest).is_some() {
                    return Err(dup("generator"));
                }
            }
            "plan" => {
                if rest.is_empty() {
                    return Err(SpecError::MissingArgument {
                        line,
                        directive: directive.to_string(),
                    });
                }
                if block.plan.replace(rest).is_some() {
                    return Err(dup("plan"));
                }
            }
            "policy" => {
                if block.policy.replace(single(&rest)?).is_some() {
                    return Err(dup("policy"));
                }
            }
            "threads" => {
                if block.threads.replace(single(&rest)?).is_some() {
                    return Err(dup("threads"));
                }
            }
            "seed" => {
                if block.seed.replace(single(&rest)?).is_some() {
                    return Err(dup("seed"));
                }
            }
            "sweep" => {
                // `sweep <param> <value>…`: a parameter plus at least
                // one value to expand over.
                let [param, values @ ..] = rest.as_slice() else {
                    return Err(SpecError::MissingArgument {
                        line,
                        directive: directive.to_string(),
                    });
                };
                if values.is_empty() {
                    return Err(SpecError::MissingArgument {
                        line,
                        directive: directive.to_string(),
                    });
                }
                if block.sweeps.iter().any(|(p, _)| p == param) {
                    return Err(SpecError::DuplicateParam {
                        scenario: block.name.clone(),
                        param: param.clone(),
                    });
                }
                block.sweeps.push((param.clone(), values.to_vec()));
            }
            other => {
                return Err(SpecError::UnknownDirective {
                    line,
                    directive: other.to_string(),
                })
            }
        }
    }

    if blocks.is_empty() {
        return Err(SpecError::Empty);
    }

    /// A sweep value's contribution to the derived row name: lowercase
    /// alphanumerics only (`wait[2]` → `wait2`, `0.3` → `03`), so every
    /// derived name stays within the scenario-name charset.
    fn sanitize(value: &str) -> String {
        value
            .chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }

    /// Expands a block's sweeps into the cross product of their values:
    /// one concrete block per combination, first sweep varying slowest.
    /// `policy` sweeps set the block's policy text; any other parameter
    /// lands in the generator words (replacing an existing `key=value`
    /// token or appending one).
    fn expand_sweeps(mut block: Block) -> Result<Vec<Block>, SpecError> {
        let sweeps = std::mem::take(&mut block.sweeps);
        let mut rows = vec![block];
        for (param, values) in &sweeps {
            let mut next = Vec::with_capacity(rows.len() * values.len());
            for row in &rows {
                for value in values {
                    let mut r = row.clone();
                    let suffix = sanitize(value);
                    r.name = format!("{}-{suffix}", r.name);
                    if suffix.is_empty() {
                        return Err(SpecError::BadScenarioName { name: r.name });
                    }
                    if param == "policy" {
                        r.policy = Some(value.clone());
                    } else {
                        let words = r.generator.as_mut().ok_or(SpecError::MissingDirective {
                            scenario: r.name.clone(),
                            directive: "generator",
                        })?;
                        let prefix = format!("{param}=");
                        let token = format!("{param}={value}");
                        match words[1..].iter_mut().find(|w| w.starts_with(&prefix)) {
                            Some(w) => *w = token,
                            None => words.push(token),
                        }
                    }
                    next.push(r);
                }
            }
            rows = next;
        }
        Ok(rows)
    }

    let mut expanded: Vec<Block> = Vec::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for block in blocks {
        for row in expand_sweeps(block)? {
            // Derived names can collide (across sweeps, or with a plain
            // block): the same total-validation stance as duplicate
            // `scenario` lines.
            if !seen.insert(row.name.clone()) {
                return Err(SpecError::DuplicateScenario { name: row.name });
            }
            expanded.push(row);
        }
    }

    expanded
        .into_iter()
        .map(|block| {
            let name = block.name;
            let missing = |directive: &'static str| SpecError::MissingDirective {
                scenario: name.clone(),
                directive,
            };
            let generator_words = block.generator.ok_or_else(|| missing("generator"))?;
            let policy_text = block.policy.ok_or_else(|| missing("policy"))?;
            let plan_words = block.plan.ok_or_else(|| missing("plan"))?;

            let generator = {
                let gen_name = generator_words[0].as_str();
                let tokens: Vec<&str> = generator_words[1..].iter().map(String::as_str).collect();
                let extra = block.seed.map(|s| ("seed".to_string(), s));
                let params = Params::parse(&name, gen_name, &tokens, extra)?;
                GeneratorSpec::resolve(&name, gen_name, params)?
            };

            let policy = parse_policy(&name, &policy_text)?;

            let plan = {
                let plan_name = plan_words[0].as_str();
                let tokens: Vec<&str> = plan_words[1..].iter().map(String::as_str).collect();
                let params = Params::parse(&name, plan_name, &tokens, None)?;
                resolve_plan(&name, plan_name, params)?
            };

            let threads = match block.threads.as_deref() {
                None | Some("auto") => Threads::Auto,
                Some(text) => match text.parse::<usize>() {
                    Ok(n) if n > 0 => Threads::Fixed(n),
                    _ => {
                        return Err(SpecError::BadThreads {
                            scenario: name,
                            text: text.to_string(),
                        })
                    }
                },
            };

            // Cross-field validation: plan sources must exist in the
            // generated graph (statically known from the generator).
            let nodes = generator.num_nodes();
            let source = match &plan {
                Plan::SingleSource { src, .. } | Plan::Streaming { src, .. } => Some(*src),
                Plan::Broadcast { source, .. } => *source,
                // Serve requests and matrix samples draw sources from
                // the node range, so they are in range by construction.
                Plan::Matrix { .. } | Plan::MatrixSample { .. } | Plan::Serve { .. } => None,
            };
            if let Some(src) = source {
                if src >= nodes {
                    return Err(SpecError::SourceOutOfRange {
                        scenario: name,
                        src,
                        nodes,
                    });
                }
            }

            // A streaming plan over the churn family replays the
            // generator's own event feed (joins/leaves included), so the
            // stream's window must cover every feed instant.
            if let (
                GeneratorSpec::PeerLifecycle {
                    horizon: feed_horizon,
                    ..
                },
                Plan::Streaming { horizon, .. },
            ) = (&generator, &plan)
            {
                if horizon < feed_horizon {
                    return Err(SpecError::BadParamValue {
                        scenario: name,
                        param: "horizon".to_string(),
                        reason: format!(
                            "streaming horizon {horizon} must cover the churn feed's \
                             horizon {feed_horizon}"
                        ),
                    });
                }
            }

            Ok(Scenario {
                name,
                generator,
                policy,
                plan,
                threads,
            })
        })
        .collect()
}

/// Parses the paper's policy notation: `nowait` | `wait` | `wait[d]`.
fn parse_policy(scenario: &str, text: &str) -> Result<WaitingPolicy<u64>, SpecError> {
    let bad = || SpecError::BadPolicy {
        scenario: scenario.to_string(),
        text: text.to_string(),
    };
    match text {
        "nowait" => Ok(WaitingPolicy::NoWait),
        "wait" => Ok(WaitingPolicy::Unbounded),
        _ => {
            let d = text
                .strip_prefix("wait[")
                .and_then(|rest| rest.strip_suffix(']'))
                .ok_or_else(bad)?;
            Ok(WaitingPolicy::Bounded(d.parse().map_err(|_| bad())?))
        }
    }
}

fn resolve_plan(scenario: &str, plan_name: &str, mut p: Params) -> Result<Plan, SpecError> {
    // A start past the horizon admits no departure at all: every query
    // would return a vacuous all-unreached report (and `bless` would
    // bake it into a golden), so reject the typo at parse time.
    let start_in_horizon = |p: &Params, start: u64, horizon: u64| {
        p.guard(
            "start",
            start <= horizon,
            format!("start {start} is past horizon {horizon}"),
        )
    };
    // Stream-backed plans need `horizon + 1` representable (the live
    // index's provisional close of open spans): reject the overflow at
    // parse time so the runtime can rely on construction succeeding.
    let successor_representable = |p: &Params, horizon: u64| {
        p.guard(
            "horizon",
            horizon < u64::MAX,
            "horizon + 1 must be representable (streams close open spans there)",
        )
    };
    let plan = match plan_name {
        "single_source" => {
            let src = p.usize("src")?;
            let start = p.u64_or("start", 0)?;
            let horizon = p.u64("horizon")?;
            start_in_horizon(&p, start, horizon)?;
            let max_hops = default_hops(&mut p, horizon)?;
            Plan::SingleSource {
                src,
                start,
                horizon,
                max_hops,
            }
        }
        "matrix" => {
            let start = p.u64_or("start", 0)?;
            let horizon = p.u64("horizon")?;
            start_in_horizon(&p, start, horizon)?;
            let max_hops = default_hops(&mut p, horizon)?;
            Plan::Matrix {
                start,
                horizon,
                max_hops,
            }
        }
        "matrix_sample" => {
            let sources = p.usize("sources")?;
            p.guard("sources", sources > 0, "a sample needs at least one source")?;
            let seed = p.u64_or("seed", 0)?;
            let start = p.u64_or("start", 0)?;
            let horizon = p.u64("horizon")?;
            start_in_horizon(&p, start, horizon)?;
            let max_hops = default_hops(&mut p, horizon)?;
            Plan::MatrixSample {
                sources,
                seed,
                start,
                horizon,
                max_hops,
            }
        }
        "broadcast" => {
            let source = p.usize_opt("source")?;
            let beacons = p.bool("beacons")?;
            let horizon = p.u64("horizon")?;
            // A beaconing source materializes one seed per instant (one
            // re-emission each step, except under unbounded waiting):
            // bound the horizon so "check passes" extends to "run
            // allocates sanely" — total validation covers allocation.
            p.guard(
                "horizon",
                !beacons || horizon < 65_536,
                "beacons=true seeds one copy per instant; horizon must be < 65536",
            )?;
            let max_hops = default_hops(&mut p, horizon)?;
            Plan::Broadcast {
                source,
                beacons,
                horizon,
                max_hops,
            }
        }
        "streaming" => {
            let src = p.usize("src")?;
            let start = p.u64_or("start", 0)?;
            let horizon = p.u64("horizon")?;
            start_in_horizon(&p, start, horizon)?;
            successor_representable(&p, horizon)?;
            let max_hops = default_hops(&mut p, horizon)?;
            let batch = p.usize("batch")?;
            p.guard("batch", batch > 0, "batch size must be positive")?;
            Plan::Streaming {
                src,
                start,
                horizon,
                max_hops,
                batch,
            }
        }
        "serve" => {
            let start = p.u64_or("start", 0)?;
            let horizon = p.u64("horizon")?;
            start_in_horizon(&p, start, horizon)?;
            successor_representable(&p, horizon)?;
            let max_hops = default_hops(&mut p, horizon)?;
            let requests = p.usize("requests")?;
            p.guard("requests", requests > 0, "a serve run needs requests")?;
            let gap = p.u64("gap")?;
            p.guard("gap", gap > 0, "mean arrival gap must be at least 1")?;
            let mix = (
                p.u64_or("foremost", 1)?,
                p.u64_or("matrix", 1)?,
                p.u64_or("broadcast", 1)?,
            );
            p.guard(
                "foremost",
                mix.0 + mix.1 + mix.2 > 0,
                "the request mix needs a positive weight",
            )?;
            // Broadcast requests beacon (one seed per instant), so the
            // same allocation bound as the broadcast plan applies.
            p.guard(
                "horizon",
                mix.2 == 0 || horizon < 65_536,
                "broadcast requests beacon one seed per instant; horizon must be < 65536",
            )?;
            let ticks = p.usize("ticks")?;
            p.guard(
                "ticks",
                ticks > 0,
                "the writer needs at least one ingest tick (two published epochs)",
            )?;
            let seed = p.u64("seed")?;
            Plan::Serve {
                start,
                horizon,
                max_hops,
                requests,
                gap,
                mix,
                ticks,
                seed,
            }
        }
        other => {
            return Err(SpecError::UnknownPlan {
                scenario: scenario.to_string(),
                name: other.to_string(),
            })
        }
    };
    p.finish()?;
    Ok(plan)
}

/// `max_hops` defaults to `horizon + 1` (saturating into `usize`): with
/// unit-latency workloads no simple journey within the horizon is
/// longer, so the default never truncates.
fn default_hops(p: &mut Params, horizon: u64) -> Result<usize, SpecError> {
    match p.usize_opt("max_hops")? {
        Some(h) => Ok(h),
        None => Ok(usize::try_from(horizon.saturating_add(1)).unwrap_or(usize::MAX)),
    }
}
