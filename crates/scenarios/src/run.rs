//! Plan execution: one scenario in, one canonical [`Report`] out.
//!
//! Every plan runs on the workspace's standard pipeline — compile the
//! generated TVG into a [`TvgIndex`] (or replay it through a
//! [`TvgStream`] for the streaming plan), then fan engine runs out over
//! the [`BatchRunner`] at the scenario's thread policy. The batch
//! runtime's thread-count invariance is what makes reports reproducible
//! bytes rather than approximate numbers.

use crate::report::{engine_json, histogram, obj, Report};
use crate::spec::{Plan, Scenario, Threads};
use tvg_dynnet::broadcast::broadcast_plan;
use tvg_dynnet::json::{Json, ToJson};
use tvg_dynnet::metrics::{AggregateStats, DeliveryStats};
use tvg_journeys::{
    Batch, BatchRunner, EngineStats, IncrementalForemost, ReachabilityMatrix, SearchLimits,
    WaitingPolicy,
};
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::{narrow_tvg, NodeId, TemporalIndex, Time, Tvg, TvgIndex};
use tvg_serve::{generate_load, serve, Answer, LoadSpec, ServeConfig};

impl Scenario {
    /// Builds the scenario's TVG (deterministic; see
    /// [`crate::GeneratorSpec::build`]).
    #[must_use]
    pub fn build_graph(&self) -> Tvg<u64> {
        self.generator.build()
    }

    /// The [`Batch`] thread policy this scenario runs at.
    #[must_use]
    pub fn batch(&self) -> Batch {
        match self.threads() {
            Threads::Auto => Batch::auto(),
            Threads::Fixed(n) => Batch::threads(n),
        }
    }

    /// The plan's search limits.
    #[must_use]
    pub fn limits(&self) -> SearchLimits<u64> {
        SearchLimits::new(self.plan().horizon(), self.plan().max_hops())
    }

    /// The event feed a streaming-shaped plan ingests, paired with the
    /// stream to ingest it into. Churn-family generators hand over
    /// their native feed (node joins and leaves included) against an
    /// empty stream; every other family replays the materialized
    /// graph's schedule. Spec validation guarantees the plan horizon
    /// covers a churn feed, so both paths ingest cleanly.
    #[must_use]
    pub fn stream_feed(
        &self,
        g: &Tvg<u64>,
        horizon: u64,
    ) -> (TvgStream<u64>, Vec<StreamEvent<u64>>) {
        match self.generator().churn_feed() {
            Some((_, events)) => (
                TvgStream::new(horizon)
                    .expect("spec validation rejects horizons whose successor overflows"),
                events,
            ),
            None => TvgStream::replay_of(g, &horizon)
                .expect("spec validation rejects horizons whose successor overflows"),
        }
    }

    /// Runs the scenario end to end and returns its report.
    #[must_use]
    pub fn run(&self) -> Report {
        let started = std::time::Instant::now();
        let g = self.build_graph();
        let limits = self.limits();
        let batch = self.batch();
        let (((results, engine), edge_events), timing) = match self.plan() {
            Plan::Streaming {
                src,
                start,
                batch: batch_size,
                ..
            } => (
                run_streaming(&g, &limits, batch, self, *src, *start, *batch_size),
                Json::Null,
            ),
            Plan::Serve {
                start,
                requests,
                gap,
                mix,
                ticks,
                seed,
                ..
            } => {
                let (outcome, timing) = run_serve(
                    &g, &limits, batch, self, *start, *requests, *gap, *mix, *ticks, *seed,
                );
                (outcome, timing)
            }
            plan => {
                // Timeline compression: when the horizon, start, and
                // policy arithmetic all provably fit `u32`, run the plan
                // on a narrowed graph — same answers, same engine stats,
                // half the time-key bytes in the hot loops. Any doubt
                // (`NarrowError`, an unprovable bound) falls back to the
                // exact `u64` path transparently.
                let start = match plan {
                    Plan::SingleSource { start, .. }
                    | Plan::Matrix { start, .. }
                    | Plan::MatrixSample { start, .. } => *start,
                    _ => 0,
                };
                let outcome = match (
                    narrow_tvg(&g, limits.horizon),
                    narrow_policy(self.policy(), limits.horizon),
                ) {
                    (Ok(narrowed), Some(policy)) if start <= limits.horizon => {
                        let limits = SearchLimits::new(
                            u32::try_from(limits.horizon).expect("narrowing checked the horizon"),
                            limits.max_hops,
                        );
                        run_batch_plan(&narrowed, batch, plan, &policy, &limits)
                    }
                    _ => run_batch_plan(&g, batch, plan, self.policy(), &limits),
                };
                (outcome, Json::Null)
            }
        };
        Report {
            scenario: self.name().to_string(),
            generator: self.generator().name(),
            generator_params: self.generator().params_json(),
            policy: self.policy().to_string(),
            plan: self.plan().name(),
            threads: self.threads().to_string(),
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            edge_events,
            results,
            engine,
            wall_micros: started.elapsed().as_micros(),
            timing,
        }
    }
}

/// Narrows the scenario's waiting policy into the `u32` domain when its
/// arithmetic provably cannot diverge there: `wait[d]` computes
/// `ready + d` before clamping, so every admissible `ready <= horizon`
/// must keep that sum in range. `None` keeps the `u64` path.
pub(crate) fn narrow_policy(
    policy: &WaitingPolicy<u64>,
    horizon: u64,
) -> Option<WaitingPolicy<u32>> {
    match policy {
        WaitingPolicy::NoWait => Some(WaitingPolicy::NoWait),
        WaitingPolicy::Unbounded => Some(WaitingPolicy::Unbounded),
        WaitingPolicy::Bounded(d) => horizon
            .checked_add(*d)
            .filter(|sum| *sum <= u64::from(u32::MAX))
            .map(|_| WaitingPolicy::Bounded(u32::try_from(*d).expect("bounded by the sum"))),
    }
}

/// Compiles the graph and dispatches one batch plan (single-source,
/// matrix, or broadcast), in whichever time domain the caller settled
/// on. Returns the plan outcome plus the compiled edge-event count.
fn run_batch_plan<T: Time + Send + Sync>(
    g: &Tvg<T>,
    batch: Batch,
    plan: &Plan,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> ((Json, EngineStats), usize) {
    let index = TvgIndex::compile(g, limits.horizon.clone());
    let events = index.num_edge_events();
    let outcome = match plan {
        Plan::SingleSource { src, start, .. } => {
            run_single_source(&index, batch, *src, &T::from_u64(*start), policy, limits)
        }
        Plan::Matrix { start, .. } => {
            run_matrix(&index, batch, &T::from_u64(*start), policy, limits)
        }
        Plan::MatrixSample {
            sources,
            seed,
            start,
            ..
        } => run_matrix_sample(
            &index,
            batch,
            *sources,
            *seed,
            &T::from_u64(*start),
            policy,
            limits,
        ),
        Plan::Broadcast {
            source, beacons, ..
        } => run_broadcast_plan(&index, batch, *source, *beacons, policy, limits),
        Plan::Streaming { .. } | Plan::Serve { .. } => unreachable!("handled by the caller"),
    };
    (outcome, events)
}

pub(crate) fn run_single_source<T: Time + Send + Sync, I: TemporalIndex<T> + Sync>(
    index: &I,
    batch: Batch,
    src: usize,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> (Json, EngineStats) {
    let nodes = index.num_nodes();
    let out = BatchRunner::new(index, batch).run_sources(
        &[NodeId::from_index(src)],
        start,
        policy,
        limits,
    );
    let tree = &out.trees()[0];
    let results = obj([
        (
            "histogram",
            histogram((0..nodes).map(|n| tree.arrival(NodeId::from_index(n)))),
        ),
        ("reached", Json::Int(tree.num_reached() as u64)),
    ]);
    (results, out.stats())
}

pub(crate) fn run_matrix<T: Time + Send + Sync, I: TemporalIndex<T> + Sync>(
    index: &I,
    batch: Batch,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> (Json, EngineStats) {
    let nodes = index.num_nodes();
    let m = ReachabilityMatrix::compute_on(index, start, policy, limits, batch);
    let mut off_diagonal = Vec::new();
    for src in (0..nodes).map(NodeId::from_index) {
        for dst in (0..nodes).map(NodeId::from_index) {
            if dst != src {
                off_diagonal.push(m.arrival(src, dst));
            }
        }
    }
    let results = obj([
        (
            "diameter",
            m.temporal_diameter()
                .and_then(|d| d.to_u64())
                .map_or(Json::Null, Json::Int),
        ),
        ("histogram", histogram(off_diagonal.into_iter())),
        ("ratio", Json::Num(m.reachability_ratio())),
        ("temporal_sinks", Json::Int(m.temporal_sinks().len() as u64)),
        (
            "temporal_sources",
            Json::Int(m.temporal_sources().len() as u64),
        ),
    ]);
    (results, m.stats())
}

/// Draws `k` distinct sources from `0..n`, deterministically from
/// `seed`: a splitmix64-driven partial Fisher–Yates shuffle, sorted
/// ascending so the report does not depend on draw order. `k >= n`
/// simply selects every node (the sample degenerates to the full
/// matrix's source set).
pub(crate) fn sample_sources(n: usize, k: usize, seed: u64) -> Vec<NodeId> {
    if k >= n {
        return (0..n).map(NodeId::from_index).collect();
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let span = (n - i) as u64;
        let j = i + usize::try_from(next() % span).expect("residue below n fits usize");
        pool.swap(i, j);
    }
    let mut picked: Vec<usize> = pool[..k].to_vec();
    picked.sort_unstable();
    picked.into_iter().map(NodeId::from_index).collect()
}

/// The sampled matrix plan: one all-destinations foremost run per
/// sampled source, collapsed to a per-source `[histogram, reached]`
/// row inside the batch workers — the full-tree arrays never
/// accumulate, which is what keeps the million-node scale job's
/// resident set bounded by the index, not by `sources × n` trees.
pub(crate) fn run_matrix_sample<T: Time + Send + Sync, I: TemporalIndex<T> + Sync>(
    index: &I,
    batch: Batch,
    sources: usize,
    seed: u64,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> (Json, EngineStats) {
    let nodes = index.num_nodes();
    let srcs = sample_sources(nodes, sources, seed);
    let (rows, stats) =
        BatchRunner::new(index, batch).map_sources(&srcs, start, policy, limits, |_, tree| {
            Json::Arr(vec![
                histogram((0..nodes).map(|d| tree.arrival(NodeId::from_index(d)))),
                Json::Int(tree.num_reached() as u64),
            ])
        });
    let results = obj([
        ("per_source", Json::Arr(rows)),
        (
            "sources",
            Json::Arr(srcs.iter().map(|s| Json::Int(s.index() as u64)).collect()),
        ),
    ]);
    (results, stats)
}

pub(crate) fn run_broadcast_plan<T: Time + Send + Sync, I: TemporalIndex<T> + Sync>(
    index: &I,
    batch: Batch,
    source: Option<usize>,
    beacons: bool,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> (Json, EngineStats) {
    let n = index.num_nodes();
    let sources: Vec<usize> = match source {
        Some(s) => vec![s],
        None => (0..n).collect(),
    };
    let (outcomes, stats) = broadcast_plan(index, policy, beacons, &sources, limits, batch);
    let per_run: Vec<DeliveryStats> = outcomes.iter().map(|o| o.stats()).collect();
    let results = match source {
        Some(_) => {
            let outcome = &outcomes[0];
            obj([
                ("delivery", per_run[0].to_json_value()),
                (
                    "histogram",
                    histogram(outcome.informed_at.iter().map(Option::as_ref)),
                ),
            ])
        }
        None => {
            let aggregate = AggregateStats::from_runs(&per_run);
            obj([
                ("aggregate", aggregate.to_json_value()),
                (
                    "histogram",
                    histogram(
                        outcomes
                            .iter()
                            .flat_map(|o| o.informed_at.iter().map(Option::as_ref)),
                    ),
                ),
                (
                    "per_source_reached",
                    Json::Arr(
                        outcomes
                            .iter()
                            .map(|o| Json::Int(o.informed_at.iter().flatten().count() as u64))
                            .collect(),
                    ),
                ),
            ])
        }
    };
    (results, stats)
}

/// The streaming plan: drive the scenario's feed (a replay of the
/// generated schedule, or the churn family's native join/leave feed)
/// through a [`TvgStream`] in `batch_size`-event ingest ticks,
/// repairing one incremental foremost tree per tick, then run one
/// batched all-sources query against the final live snapshot. Returns
/// the plan outcome plus the final live index's edge-event count (the
/// graph summary of what was actually ingested).
#[allow(clippy::too_many_arguments)]
fn run_streaming(
    g: &Tvg<u64>,
    limits: &SearchLimits<u64>,
    batch: Batch,
    scenario: &Scenario,
    src: usize,
    start: u64,
    batch_size: usize,
) -> ((Json, EngineStats), usize) {
    let (mut stream, events) = scenario.stream_feed(g, limits.horizon);
    let source = NodeId::from_index(src);
    let mut inc = IncrementalForemost::new(
        stream.index(),
        &[(source, start)],
        *scenario.policy(),
        limits.clone(),
    );
    let mut per_tick_reached: Vec<Json> = Vec::new();
    for chunk in events.chunks(batch_size) {
        let report = stream
            .ingest(chunk)
            .expect("scenario feeds are valid by construction");
        inc.refresh(stream.index(), &report);
        per_tick_reached.push(Json::Int(inc.num_reached() as u64));
    }
    // One batched query tick against the final snapshot: every node as a
    // source, collapsed to reached-counts inside the workers.
    let nodes: Vec<NodeId> = stream.index().tvg().nodes().collect();
    let (snapshot_reached, snapshot_stats) = BatchRunner::new(stream.index(), batch).map_sources(
        &nodes,
        &start,
        scenario.policy(),
        limits,
        |_, tree| Json::Int(tree.num_reached() as u64),
    );
    let ticks = per_tick_reached.len() as u64;
    let results = obj([
        ("departed", Json::Int(stream.num_departed() as u64)),
        (
            "final_histogram",
            histogram(nodes.iter().map(|&n| inc.arrival(n))),
        ),
        ("final_reached", Json::Int(inc.num_reached() as u64)),
        ("per_tick_reached", Json::Arr(per_tick_reached)),
        ("snapshot", engine_json(&snapshot_stats)),
        ("snapshot_reached", Json::Arr(snapshot_reached)),
        ("ticks", Json::Int(ticks)),
    ]);
    let edge_events = stream.index().num_edge_events();
    ((results, inc.stats() + snapshot_stats), edge_events)
}

/// The serve plan: replay the generated schedule through a live stream
/// in `ticks` ingest batches while a deterministic synthetic client
/// load is answered concurrently from epoch-pinned lock-free snapshots
/// (see `tvg_serve`). Reader parallelism follows the scenario's thread
/// policy; the logical section returned here is reader-count invariant
/// and canonical, while throughput/latency percentiles come back in the
/// separate non-canonical timing object.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    g: &Tvg<u64>,
    limits: &SearchLimits<u64>,
    batch: Batch,
    scenario: &Scenario,
    start: u64,
    requests: usize,
    gap: u64,
    mix: (u64, u64, u64),
    ticks: usize,
    seed: u64,
) -> (((Json, EngineStats), usize), Json) {
    let (stream, events) = TvgStream::replay_of(g, &limits.horizon)
        .expect("spec validation rejects horizons whose successor overflows");
    // Chop the replay feed into exactly `ticks` ingest batches (the
    // tail ones may be empty when the feed is short): the epoch count
    // is part of the spec, not of the generated event volume.
    let chunk = events.len().div_ceil(ticks).max(1);
    let mut tick_batches: Vec<Vec<StreamEvent<u64>>> =
        events.chunks(chunk).map(<[_]>::to_vec).collect();
    tick_batches.resize(ticks, Vec::new());
    let load = generate_load(&LoadSpec {
        requests,
        mean_gap: gap,
        mix,
        nodes: g.num_nodes(),
        seed_instant: start,
        seed,
    });
    let config = ServeConfig {
        readers: batch.num_threads(),
        policy: *scenario.policy(),
        limits: limits.clone(),
        start,
    };
    let outcome = serve(stream, &tick_batches, &load, &config).expect("replay is a valid feed");
    assert!(
        outcome.epochs_published >= 2,
        "a serve run must publish at least two epochs (got {})",
        outcome.epochs_published
    );

    // Canonical logical section: one `[kind, epoch, value]` triple per
    // request in admission order, plus the aggregate counts.
    let answers: Vec<Json> = outcome
        .served
        .iter()
        .map(|s| {
            let value = match s.answer {
                Answer::Arrival(a) => a.map_or(Json::Null, Json::Int),
                Answer::Reached(n) | Answer::Informed(n) => Json::Int(n),
            };
            Json::Arr(vec![
                Json::Str(s.request.kind().to_string()),
                Json::Int(s.epoch),
                value,
            ])
        })
        .collect();
    let mut epoch_counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for s in &outcome.served {
        *epoch_counts.entry(s.epoch).or_default() += 1;
    }
    let results = obj([
        ("answers", Json::Arr(answers)),
        ("epochs_published", Json::Int(outcome.epochs_published)),
        (
            "epochs_served",
            Json::Arr(
                epoch_counts
                    .into_iter()
                    .map(|(e, c)| Json::Arr(vec![Json::Int(e), Json::Int(c)]))
                    .collect(),
            ),
        ),
        ("grouped_runs", Json::Int(outcome.grouped_runs)),
        ("requests", Json::Int(outcome.served.len() as u64)),
        ("ticks", Json::Int(ticks as u64)),
    ]);
    // The serve run consumed its stream; the ingested schedule is the
    // full replay, so the compiled index gives the same event count.
    let edge_events = TvgIndex::compile(g, limits.horizon).num_edge_events();
    let clamp = |micros: u128| u64::try_from(micros).unwrap_or(u64::MAX);
    // Publication metrics ride the non-canonical channel with the
    // latency percentiles, but the three per-epoch counter arrays are
    // deterministic (single writer, reader-count invariant) — the
    // serve_props suite pins them against an offline replay; only the
    // rates genuinely vary run to run.
    let per_epoch = |f: fn(&tvg_serve::PublishStats) -> u64| {
        Json::Arr(
            outcome
                .publications
                .iter()
                .map(|p| Json::Int(f(p)))
                .collect(),
        )
    };
    let timing = obj([
        ("chunks_copied", per_epoch(|p| p.chunks_copied)),
        ("chunks_frozen", per_epoch(|p| p.chunks_frozen)),
        ("epochs_per_sec", Json::Num(outcome.timing.epochs_per_sec)),
        ("events_per_epoch", per_epoch(|p| p.events)),
        ("max_micros", Json::Int(clamp(outcome.timing.max_micros))),
        ("p50_micros", Json::Int(clamp(outcome.timing.p50_micros))),
        ("p95_micros", Json::Int(clamp(outcome.timing.p95_micros))),
        (
            "publish_micros",
            Json::Int(clamp(outcome.timing.publish_micros)),
        ),
        ("throughput_rps", Json::Num(outcome.timing.throughput_rps)),
        ("wall_micros", Json::Int(clamp(outcome.timing.wall_micros))),
    ]);
    (((results, outcome.stats), edge_events), timing)
}
