//! The generator registry: every TVG family a scenario can name, with
//! fully typed parameters resolved at parse time and a statically known
//! node count (so plan sources validate without building the graph).

use crate::spec::{Params, SpecError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use tvg_dynnet::json::Json;
use tvg_langs::Alphabet;
use tvg_model::generators;
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::Tvg;

/// A resolved generator invocation: which family, at which parameters.
///
/// `build` is deterministic — the spec text fully determines the graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorSpec {
    /// `ring_bus n= period=` — staggered circular bus line.
    RingBus {
        /// Number of stops.
        n: usize,
        /// Phase period.
        period: u64,
    },
    /// `star_ferry n=` — hub-and-spoke message ferry.
    StarFerry {
        /// Hub plus `n - 1` spokes.
        n: usize,
    },
    /// `grid_two_phase rows= cols=` — synchronous two-phase toroidal mesh.
    GridTwoPhase {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// `random_periodic nodes= edges= period= density= seed=` — random
    /// periodic schedules over the `ab` alphabet.
    RandomPeriodic {
        /// Number of nodes.
        nodes: usize,
        /// Number of directed edges.
        edges: usize,
        /// Common period.
        period: u64,
        /// Per-phase presence probability.
        density: f64,
        /// RNG seed.
        seed: u64,
    },
    /// `scale_free n= horizon= seed=` — preferential-attachment contacts.
    ScaleFree {
        /// Number of nodes.
        n: usize,
        /// Contact instants are drawn below this.
        horizon: u64,
        /// RNG seed.
        seed: u64,
    },
    /// `edge_markovian n= horizon= p_birth= p_death= seed=` — memoryless
    /// on/off contacts.
    EdgeMarkovian {
        /// Number of nodes.
        n: usize,
        /// Chain length.
        horizon: u64,
        /// Per-instant appearance probability.
        p_birth: f64,
        /// Per-instant disappearance probability.
        p_death: f64,
        /// RNG seed.
        seed: u64,
    },
    /// `waypoint_grid walkers= rows= cols= horizon= seed=` — random-
    /// waypoint mobility contacts.
    WaypointGrid {
        /// Number of walkers (= TVG nodes).
        walkers: usize,
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Simulation length.
        horizon: u64,
        /// RNG seed.
        seed: u64,
    },
    /// `peer_lifecycle n= swaps= horizon= seed=` — churning peer set:
    /// Unknown → Identified → Pending → Connected state machines with
    /// dynamic peer swapping (node joins and leaves). The only family
    /// whose native form is a *stream feed*; its batch graph is the
    /// stream's materialization over `n + swaps` node ids.
    PeerLifecycle {
        /// Live peers at any instant.
        n: usize,
        /// Number of peer swaps (each a `NodeLeave` plus a `NewNode`).
        swaps: usize,
        /// Simulation length (also the feed's stream horizon).
        horizon: u64,
        /// RNG seed.
        seed: u64,
    },
    /// `commuter_fleet lines= stops= headway= shift= runs=` — shift-
    /// scheduled commuter fleet feeding a shared hub.
    CommuterFleet {
        /// Number of lines.
        lines: usize,
        /// Outer stops per line.
        stops: usize,
        /// Instants between consecutive services of a line.
        headway: u64,
        /// Stagger between consecutive lines' schedules.
        shift: u64,
        /// Services per line and direction.
        runs: usize,
    },
}

impl GeneratorSpec {
    /// Resolves a generator name plus raw parameters into a typed spec,
    /// consuming every parameter (leftovers are [`SpecError::UnknownParam`]).
    pub(crate) fn resolve(
        scenario: &str,
        name: &str,
        mut p: Params,
    ) -> Result<GeneratorSpec, SpecError> {
        let spec = match name {
            "ring_bus" => {
                let n = p.usize("n")?;
                let period = p.u64("period")?;
                p.guard("n", n > 0, "need at least one node")?;
                p.guard("period", period > 0, "period must be nonzero")?;
                GeneratorSpec::RingBus { n, period }
            }
            "star_ferry" => {
                let n = p.usize("n")?;
                p.guard("n", n >= 2, "need a hub and at least one spoke")?;
                GeneratorSpec::StarFerry { n }
            }
            "grid_two_phase" => {
                let rows = p.usize("rows")?;
                let cols = p.usize("cols")?;
                p.guard("rows", rows > 0, "grid must be nonempty")?;
                p.guard("cols", cols > 0, "grid must be nonempty")?;
                GeneratorSpec::GridTwoPhase { rows, cols }
            }
            "random_periodic" => {
                let nodes = p.usize("nodes")?;
                let edges = p.usize("edges")?;
                let period = p.u64("period")?;
                let density = p.f64("density")?;
                let seed = p.u64("seed")?;
                p.guard("nodes", nodes > 0, "need at least one node")?;
                p.guard("period", period > 0, "period must be nonzero")?;
                p.guard(
                    "density",
                    (0.0..=1.0).contains(&density),
                    "probability must be in [0, 1]",
                )?;
                GeneratorSpec::RandomPeriodic {
                    nodes,
                    edges,
                    period,
                    density,
                    seed,
                }
            }
            "scale_free" => {
                let n = p.usize("n")?;
                let horizon = p.u64("horizon")?;
                let seed = p.u64("seed")?;
                p.guard("n", n > 0, "need at least one node")?;
                p.guard("horizon", horizon > 0, "need a nonempty time window")?;
                GeneratorSpec::ScaleFree { n, horizon, seed }
            }
            "edge_markovian" => {
                let n = p.usize("n")?;
                let horizon = p.u64("horizon")?;
                let p_birth = p.f64("p_birth")?;
                let p_death = p.f64("p_death")?;
                let seed = p.u64("seed")?;
                p.guard("n", n >= 2, "need at least two nodes")?;
                p.guard("horizon", horizon > 0, "need a nonempty time window")?;
                for (key, value) in [("p_birth", p_birth), ("p_death", p_death)] {
                    p.guard(
                        key,
                        (0.0..=1.0).contains(&value),
                        "probability must be in [0, 1]",
                    )?;
                }
                GeneratorSpec::EdgeMarkovian {
                    n,
                    horizon,
                    p_birth,
                    p_death,
                    seed,
                }
            }
            "waypoint_grid" => {
                let walkers = p.usize("walkers")?;
                let rows = p.usize("rows")?;
                let cols = p.usize("cols")?;
                let horizon = p.u64("horizon")?;
                let seed = p.u64("seed")?;
                p.guard("walkers", walkers > 0, "need at least one walker")?;
                p.guard("rows", rows > 0, "grid must be nonempty")?;
                p.guard("cols", cols > 0, "grid must be nonempty")?;
                p.guard("horizon", horizon > 0, "need a nonempty time window")?;
                GeneratorSpec::WaypointGrid {
                    walkers,
                    rows,
                    cols,
                    horizon,
                    seed,
                }
            }
            "peer_lifecycle" => {
                let n = p.usize("n")?;
                let swaps = p.usize("swaps")?;
                let horizon = p.u64("horizon")?;
                let seed = p.u64("seed")?;
                p.guard("n", n >= 2, "need at least two peers")?;
                p.guard("horizon", horizon > 0, "need a nonempty time window")?;
                p.guard(
                    "horizon",
                    horizon < u64::MAX,
                    "stream horizon needs a representable successor",
                )?;
                GeneratorSpec::PeerLifecycle {
                    n,
                    swaps,
                    horizon,
                    seed,
                }
            }
            "commuter_fleet" => {
                let lines = p.usize("lines")?;
                let stops = p.usize("stops")?;
                let headway = p.u64("headway")?;
                let shift = p.u64("shift")?;
                let runs = p.usize("runs")?;
                p.guard("lines", lines > 0, "need at least one line")?;
                p.guard("stops", stops > 0, "need at least one stop per line")?;
                p.guard("headway", headway > 0, "headway must be nonzero")?;
                p.guard("runs", runs > 0, "need at least one service")?;
                GeneratorSpec::CommuterFleet {
                    lines,
                    stops,
                    headway,
                    shift,
                    runs,
                }
            }
            other => {
                return Err(SpecError::UnknownGenerator {
                    scenario: scenario.to_string(),
                    name: other.to_string(),
                })
            }
        };
        p.finish()?;
        Ok(spec)
    }

    /// The generator's spec name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GeneratorSpec::RingBus { .. } => "ring_bus",
            GeneratorSpec::StarFerry { .. } => "star_ferry",
            GeneratorSpec::GridTwoPhase { .. } => "grid_two_phase",
            GeneratorSpec::RandomPeriodic { .. } => "random_periodic",
            GeneratorSpec::ScaleFree { .. } => "scale_free",
            GeneratorSpec::EdgeMarkovian { .. } => "edge_markovian",
            GeneratorSpec::WaypointGrid { .. } => "waypoint_grid",
            GeneratorSpec::PeerLifecycle { .. } => "peer_lifecycle",
            GeneratorSpec::CommuterFleet { .. } => "commuter_fleet",
        }
    }

    /// The node count of the graph this spec builds, known without
    /// building it (plan sources validate against this at parse time).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        match self {
            GeneratorSpec::RingBus { n, .. }
            | GeneratorSpec::StarFerry { n }
            | GeneratorSpec::ScaleFree { n, .. }
            | GeneratorSpec::EdgeMarkovian { n, .. } => *n,
            GeneratorSpec::GridTwoPhase { rows, cols } => rows * cols,
            GeneratorSpec::RandomPeriodic { nodes, .. } => *nodes,
            GeneratorSpec::WaypointGrid { walkers, .. } => *walkers,
            // Ids are never reused: every peer that ever joins is a
            // node, so the universe is the initial set plus one
            // replacement per swap.
            GeneratorSpec::PeerLifecycle { n, swaps, .. } => n + swaps,
            GeneratorSpec::CommuterFleet { lines, stops, .. } => 1 + lines * stops,
        }
    }

    /// Builds the TVG. Deterministic: the spec fully determines it.
    #[must_use]
    pub fn build(&self) -> Tvg<u64> {
        match self {
            GeneratorSpec::RingBus { n, period } => generators::ring_bus_tvg(*n, *period, 'r'),
            GeneratorSpec::StarFerry { n } => generators::star_ferry_tvg(*n, 'f'),
            GeneratorSpec::GridTwoPhase { rows, cols } => {
                generators::grid_two_phase_tvg(*rows, *cols, 'g')
            }
            GeneratorSpec::RandomPeriodic {
                nodes,
                edges,
                period,
                density,
                seed,
            } => {
                let params = generators::RandomPeriodicParams {
                    num_nodes: *nodes,
                    num_edges: *edges,
                    period: *period,
                    phase_density: *density,
                    alphabet: Alphabet::ab(),
                };
                generators::random_periodic_tvg(&mut StdRng::seed_from_u64(*seed), &params)
            }
            GeneratorSpec::ScaleFree { n, horizon, seed } => {
                generators::scale_free_temporal(*n, *horizon, *seed)
            }
            GeneratorSpec::EdgeMarkovian {
                n,
                horizon,
                p_birth,
                p_death,
                seed,
            } => generators::edge_markovian_contacts(*n, *horizon, *p_birth, *p_death, *seed),
            GeneratorSpec::WaypointGrid {
                walkers,
                rows,
                cols,
                horizon,
                seed,
            } => generators::waypoint_grid_contacts(*walkers, *rows, *cols, *horizon, *seed),
            GeneratorSpec::PeerLifecycle { .. } => {
                let (horizon, feed) = self
                    .churn_feed()
                    .expect("peer_lifecycle is the churn family");
                let mut s = TvgStream::new(horizon).expect("resolve guards the horizon");
                s.ingest(&feed).expect("churn feeds are valid");
                s.to_tvg()
            }
            GeneratorSpec::CommuterFleet {
                lines,
                stops,
                headway,
                shift,
                runs,
            } => generators::commuter_fleet(*lines, *stops, *headway, *shift, *runs),
        }
    }

    /// For the churn family, whose schedule is natively a *stream*: the
    /// event feed (node joins/leaves included) and the generator's own
    /// horizon it is valid against. Batch families return `None` — their
    /// stream form is a replay of the compiled schedule
    /// ([`TvgStream::replay_of`]), which carries no churn.
    #[must_use]
    pub fn churn_feed(&self) -> Option<(u64, Vec<StreamEvent<u64>>)> {
        match self {
            GeneratorSpec::PeerLifecycle {
                n,
                swaps,
                horizon,
                seed,
            } => Some((
                *horizon,
                generators::peer_lifecycle_churn(*n, *swaps, *horizon, *seed),
            )),
            _ => None,
        }
    }

    /// The parameters as a canonical JSON object (for reports).
    #[must_use]
    pub fn params_json(&self) -> Json {
        let int = |v: u64| Json::Int(v);
        let us = |v: usize| Json::Int(v as u64);
        let fields: Vec<(&str, Json)> = match self {
            GeneratorSpec::RingBus { n, period } => {
                vec![("n", us(*n)), ("period", int(*period))]
            }
            GeneratorSpec::StarFerry { n } => vec![("n", us(*n))],
            GeneratorSpec::GridTwoPhase { rows, cols } => {
                vec![("rows", us(*rows)), ("cols", us(*cols))]
            }
            GeneratorSpec::RandomPeriodic {
                nodes,
                edges,
                period,
                density,
                seed,
            } => vec![
                ("nodes", us(*nodes)),
                ("edges", us(*edges)),
                ("period", int(*period)),
                ("density", Json::Num(*density)),
                ("seed", int(*seed)),
            ],
            GeneratorSpec::ScaleFree { n, horizon, seed } => vec![
                ("n", us(*n)),
                ("horizon", int(*horizon)),
                ("seed", int(*seed)),
            ],
            GeneratorSpec::EdgeMarkovian {
                n,
                horizon,
                p_birth,
                p_death,
                seed,
            } => vec![
                ("n", us(*n)),
                ("horizon", int(*horizon)),
                ("p_birth", Json::Num(*p_birth)),
                ("p_death", Json::Num(*p_death)),
                ("seed", int(*seed)),
            ],
            GeneratorSpec::WaypointGrid {
                walkers,
                rows,
                cols,
                horizon,
                seed,
            } => vec![
                ("walkers", us(*walkers)),
                ("rows", us(*rows)),
                ("cols", us(*cols)),
                ("horizon", int(*horizon)),
                ("seed", int(*seed)),
            ],
            GeneratorSpec::PeerLifecycle {
                n,
                swaps,
                horizon,
                seed,
            } => vec![
                ("n", us(*n)),
                ("swaps", us(*swaps)),
                ("horizon", int(*horizon)),
                ("seed", int(*seed)),
            ],
            GeneratorSpec::CommuterFleet {
                lines,
                stops,
                headway,
                shift,
                runs,
            } => vec![
                ("lines", us(*lines)),
                ("stops", us(*stops)),
                ("headway", int(*headway)),
                ("shift", int(*shift)),
                ("runs", us(*runs)),
            ],
        };
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl fmt::Display for GeneratorSpec {
    /// The canonical `generator` directive argument (round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorSpec::RingBus { n, period } => write!(f, "ring_bus n={n} period={period}"),
            GeneratorSpec::StarFerry { n } => write!(f, "star_ferry n={n}"),
            GeneratorSpec::GridTwoPhase { rows, cols } => {
                write!(f, "grid_two_phase rows={rows} cols={cols}")
            }
            GeneratorSpec::RandomPeriodic {
                nodes,
                edges,
                period,
                density,
                seed,
            } => write!(
                f,
                "random_periodic nodes={nodes} edges={edges} period={period} density={density} seed={seed}"
            ),
            GeneratorSpec::ScaleFree { n, horizon, seed } => {
                write!(f, "scale_free n={n} horizon={horizon} seed={seed}")
            }
            GeneratorSpec::EdgeMarkovian {
                n,
                horizon,
                p_birth,
                p_death,
                seed,
            } => write!(
                f,
                "edge_markovian n={n} horizon={horizon} p_birth={p_birth} p_death={p_death} seed={seed}"
            ),
            GeneratorSpec::WaypointGrid {
                walkers,
                rows,
                cols,
                horizon,
                seed,
            } => write!(
                f,
                "waypoint_grid walkers={walkers} rows={rows} cols={cols} horizon={horizon} seed={seed}"
            ),
            GeneratorSpec::PeerLifecycle {
                n,
                swaps,
                horizon,
                seed,
            } => write!(
                f,
                "peer_lifecycle n={n} swaps={swaps} horizon={horizon} seed={seed}"
            ),
            GeneratorSpec::CommuterFleet {
                lines,
                stops,
                headway,
                shift,
                runs,
            } => write!(
                f,
                "commuter_fleet lines={lines} stops={stops} headway={headway} shift={shift} runs={runs}"
            ),
        }
    }
}
