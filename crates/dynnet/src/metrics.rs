//! Delivery metrics for protocol experiments.

/// Summary statistics of a delivery vector (`informed_at` times).
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryStats {
    /// Fraction of nodes informed (including the source).
    pub delivery_ratio: f64,
    /// Mean informing time over informed nodes (source counts as 0).
    pub mean_time: Option<f64>,
    /// 95th percentile informing time (nearest-rank) over informed nodes.
    pub p95_time: Option<u64>,
    /// Latest informing time.
    pub max_time: Option<u64>,
}

impl DeliveryStats {
    /// Computes statistics from per-node informing times.
    #[must_use]
    pub fn from_informed_times(informed_at: &[Option<u64>]) -> Self {
        let mut times: Vec<u64> = informed_at.iter().flatten().copied().collect();
        times.sort_unstable();
        let ratio = if informed_at.is_empty() {
            0.0
        } else {
            times.len() as f64 / informed_at.len() as f64
        };
        if times.is_empty() {
            return DeliveryStats {
                delivery_ratio: ratio,
                mean_time: None,
                p95_time: None,
                max_time: None,
            };
        }
        let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
        // Nearest-rank percentile.
        let rank = ((0.95 * times.len() as f64).ceil() as usize).clamp(1, times.len());
        DeliveryStats {
            delivery_ratio: ratio,
            mean_time: Some(mean),
            p95_time: Some(times[rank - 1]),
            max_time: times.last().copied(),
        }
    }
}

/// Aggregates several runs (e.g. different seeds) into mean statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateStats {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean delivery ratio.
    pub mean_delivery_ratio: f64,
    /// Mean of the runs' mean informing times (ignoring empty runs).
    pub mean_time: Option<f64>,
}

impl AggregateStats {
    /// Aggregates per-run statistics.
    #[must_use]
    pub fn from_runs(runs: &[DeliveryStats]) -> Self {
        let n = runs.len();
        let mean_delivery_ratio = if n == 0 {
            0.0
        } else {
            runs.iter().map(|r| r.delivery_ratio).sum::<f64>() / n as f64
        };
        let times: Vec<f64> = runs.iter().filter_map(|r| r.mean_time).collect();
        let mean_time = if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        };
        AggregateStats {
            runs: n,
            mean_delivery_ratio,
            mean_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_delivery() {
        let stats = DeliveryStats::from_informed_times(&[Some(0), Some(2), Some(4)]);
        assert_eq!(stats.delivery_ratio, 1.0);
        assert_eq!(stats.mean_time, Some(2.0));
        assert_eq!(stats.p95_time, Some(4));
        assert_eq!(stats.max_time, Some(4));
    }

    #[test]
    fn partial_delivery() {
        let stats = DeliveryStats::from_informed_times(&[Some(0), None, None, Some(3)]);
        assert_eq!(stats.delivery_ratio, 0.5);
        assert_eq!(stats.mean_time, Some(1.5));
        assert_eq!(stats.max_time, Some(3));
    }

    #[test]
    fn nobody_informed() {
        let stats = DeliveryStats::from_informed_times(&[None, None]);
        assert_eq!(stats.delivery_ratio, 0.0);
        assert_eq!(stats.mean_time, None);
        assert_eq!(stats.p95_time, None);
        assert_eq!(stats.max_time, None);
    }

    #[test]
    fn empty_input() {
        let stats = DeliveryStats::from_informed_times(&[]);
        assert_eq!(stats.delivery_ratio, 0.0);
    }

    #[test]
    fn p95_nearest_rank() {
        let times: Vec<Option<u64>> = (0..100).map(Some).collect();
        let stats = DeliveryStats::from_informed_times(&times);
        assert_eq!(stats.p95_time, Some(94)); // rank 95 of 0..=99
    }

    #[test]
    fn aggregation() {
        let a = DeliveryStats::from_informed_times(&[Some(0), Some(2)]);
        let b = DeliveryStats::from_informed_times(&[Some(0), None]);
        let agg = AggregateStats::from_runs(&[a, b]);
        assert_eq!(agg.runs, 2);
        assert!((agg.mean_delivery_ratio - 0.75).abs() < 1e-12);
        assert_eq!(agg.mean_time, Some(0.5)); // (1.0 + 0.0) / 2
        let empty = AggregateStats::from_runs(&[]);
        assert_eq!(empty.runs, 0);
        assert_eq!(empty.mean_delivery_ratio, 0.0);
        assert_eq!(empty.mean_time, None);
    }
}
