//! Minimal JSON encoding for the crate's parameter and report types.
//!
//! The workspace builds fully offline, so `serde`/`serde_json` are not
//! available; experiment sweeps still want to log configurations and
//! results in a machine-readable form. This module hand-rolls the tiny
//! subset of JSON those flat types need: objects, arrays, strings,
//! numbers, booleans, and `null`. The scenario runtime (`tvg-scenarios`)
//! reuses it for its canonical reports, which is where the arrays come
//! in (histograms, per-source rows).
//!
//! Every type implements [`ToJson`] and [`FromJson`], and
//! `from_json(to_json(x)) == x` is property-tested in
//! `tests/props.rs`.

use std::collections::BTreeMap;
use std::fmt;

use crate::broadcast::{BroadcastConfig, ForwardingMode};
use crate::markovian::EdgeMarkovianParams;
use crate::metrics::{AggregateStats, DeliveryStats};
use crate::routing::RouteReport;

/// A parsed JSON value (the subset this crate emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer, kept exact (floats round-trip integers
    /// only up to 2⁵³; `u64` counters must survive unharmed).
    Int(u64),
    /// Any other JSON number, kept as `f64`.
    Num(f64),
    /// A string (no escapes are needed by this crate's types).
    Str(String),
    /// An array (scenario reports carry histograms and per-source rows).
    Arr(Vec<Json>),
    /// An object with string keys.
    Obj(BTreeMap<String, Json>),
}

/// Types encodable to JSON text.
pub trait ToJson {
    /// Encodes `self` as a JSON value.
    fn to_json_value(&self) -> Json;

    /// Encodes `self` as compact JSON text.
    fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

/// Types decodable from JSON text.
pub trait FromJson: Sized {
    /// Decodes from a parsed JSON value.
    fn from_json_value(v: &Json) -> Result<Self, JsonError>;

    /// Decodes from JSON text.
    fn from_json(text: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&parse(text)?)
    }
}

/// Decoding failure: malformed text or a shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // NaN/inf have no JSON representation; encode as null
                    // (serde_json's convention) so the output always
                    // parses — decoding then fails with a typed error.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{s}\""),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{k}\":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parses JSON text (objects, arrays, strings without escapes, numbers,
/// booleans, `null`).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum nesting the parser accepts before returning an error (the
/// crate's own types nest two levels; this guards against stack
/// overflow on adversarial input).
const MAX_DEPTH: usize = 64;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => return err("string escapes are not supported"),
                _ => self.pos += 1,
            }
        }
        err("unterminated string")
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        // Plain non-negative integer literals stay exact.
        if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = s.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        match s.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => err(format!("invalid number {s:?}")),
        }
    }
}

// ---- field helpers ----------------------------------------------------

fn get<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    match obj {
        Json::Obj(map) => map
            .get(key)
            .ok_or_else(|| JsonError(format!("missing field {key:?}"))),
        _ => err("expected an object"),
    }
}

fn as_f64(v: &Json, key: &str) -> Result<f64, JsonError> {
    match v {
        Json::Num(n) => Ok(*n),
        Json::Int(n) => Ok(*n as f64),
        _ => err(format!("field {key:?}: expected a number")),
    }
}

fn as_u64(v: &Json, key: &str) -> Result<u64, JsonError> {
    match v {
        Json::Int(n) => Ok(*n),
        _ => err(format!("field {key:?}: expected a non-negative integer")),
    }
}

fn as_usize(v: &Json, key: &str) -> Result<usize, JsonError> {
    usize::try_from(as_u64(v, key)?)
        .map_err(|_| JsonError(format!("field {key:?}: integer too large for usize")))
}

fn as_bool(v: &Json, key: &str) -> Result<bool, JsonError> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => err(format!("field {key:?}: expected a boolean")),
    }
}

fn opt<T>(
    v: &Json,
    key: &str,
    f: impl FnOnce(&Json, &str) -> Result<T, JsonError>,
) -> Result<Option<T>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => f(other, key).map(Some),
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_opt_f64(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

fn num_opt_u64(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::Int)
}

// ---- impls ------------------------------------------------------------

impl ToJson for EdgeMarkovianParams {
    fn to_json_value(&self) -> Json {
        obj(vec![
            ("num_nodes", Json::Int(self.num_nodes as u64)),
            ("p_birth", Json::Num(self.p_birth)),
            ("p_death", Json::Num(self.p_death)),
            ("steps", Json::Int(self.steps as u64)),
        ])
    }
}

impl FromJson for EdgeMarkovianParams {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(EdgeMarkovianParams {
            num_nodes: as_usize(get(v, "num_nodes")?, "num_nodes")?,
            p_birth: as_f64(get(v, "p_birth")?, "p_birth")?,
            p_death: as_f64(get(v, "p_death")?, "p_death")?,
            steps: as_usize(get(v, "steps")?, "steps")?,
        })
    }
}

impl ToJson for ForwardingMode {
    fn to_json_value(&self) -> Json {
        match self {
            ForwardingMode::StoreCarryForward => Json::Str("store_carry_forward".into()),
            ForwardingMode::NoWaitRelay => Json::Str("no_wait_relay".into()),
            ForwardingMode::BoundedBuffer(d) => obj(vec![("bounded_buffer", Json::Int(*d))]),
        }
    }
}

impl FromJson for ForwardingMode {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "store_carry_forward" => Ok(ForwardingMode::StoreCarryForward),
            Json::Str(s) if s == "no_wait_relay" => Ok(ForwardingMode::NoWaitRelay),
            Json::Obj(_) => Ok(ForwardingMode::BoundedBuffer(as_u64(
                get(v, "bounded_buffer")?,
                "bounded_buffer",
            )?)),
            _ => err("invalid forwarding mode"),
        }
    }
}

impl ToJson for BroadcastConfig {
    fn to_json_value(&self) -> Json {
        obj(vec![
            ("source", Json::Int(self.source as u64)),
            ("mode", self.mode.to_json_value()),
            ("source_beacons", Json::Bool(self.source_beacons)),
        ])
    }
}

impl FromJson for BroadcastConfig {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(BroadcastConfig {
            source: as_usize(get(v, "source")?, "source")?,
            mode: ForwardingMode::from_json_value(get(v, "mode")?)?,
            source_beacons: as_bool(get(v, "source_beacons")?, "source_beacons")?,
        })
    }
}

impl ToJson for RouteReport {
    fn to_json_value(&self) -> Json {
        obj(vec![
            ("delivered", Json::Bool(self.delivered)),
            ("arrival", num_opt_u64(self.arrival)),
            ("hops", num_opt_u64(self.hops.map(|h| h as u64))),
        ])
    }
}

impl FromJson for RouteReport {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(RouteReport {
            delivered: as_bool(get(v, "delivered")?, "delivered")?,
            arrival: opt(get(v, "arrival")?, "arrival", as_u64)?,
            hops: opt(get(v, "hops")?, "hops", as_usize)?,
        })
    }
}

impl ToJson for DeliveryStats {
    fn to_json_value(&self) -> Json {
        obj(vec![
            ("delivery_ratio", Json::Num(self.delivery_ratio)),
            ("mean_time", num_opt_f64(self.mean_time)),
            ("p95_time", num_opt_u64(self.p95_time)),
            ("max_time", num_opt_u64(self.max_time)),
        ])
    }
}

impl FromJson for DeliveryStats {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(DeliveryStats {
            delivery_ratio: as_f64(get(v, "delivery_ratio")?, "delivery_ratio")?,
            mean_time: opt(get(v, "mean_time")?, "mean_time", as_f64)?,
            p95_time: opt(get(v, "p95_time")?, "p95_time", as_u64)?,
            max_time: opt(get(v, "max_time")?, "max_time", as_u64)?,
        })
    }
}

impl ToJson for AggregateStats {
    fn to_json_value(&self) -> Json {
        obj(vec![
            ("runs", Json::Int(self.runs as u64)),
            ("mean_delivery_ratio", Json::Num(self.mean_delivery_ratio)),
            ("mean_time", num_opt_f64(self.mean_time)),
        ])
    }
}

impl FromJson for AggregateStats {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(AggregateStats {
            runs: as_usize(get(v, "runs")?, "runs")?,
            mean_delivery_ratio: as_f64(get(v, "mean_delivery_ratio")?, "mean_delivery_ratio")?,
            mean_time: opt(get(v, "mean_time")?, "mean_time", as_f64)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip() {
        let p = EdgeMarkovianParams {
            num_nodes: 16,
            p_birth: 0.05,
            p_death: 0.4,
            steps: 80,
        };
        let text = p.to_json();
        assert_eq!(
            text,
            r#"{"num_nodes":16,"p_birth":0.05,"p_death":0.4,"steps":80}"#
        );
        assert_eq!(EdgeMarkovianParams::from_json(&text).unwrap(), p);
    }

    #[test]
    fn mode_roundtrip() {
        for mode in [
            ForwardingMode::StoreCarryForward,
            ForwardingMode::NoWaitRelay,
            ForwardingMode::BoundedBuffer(7),
        ] {
            let back = ForwardingMode::from_json(&mode.to_json()).unwrap();
            assert_eq!(back, mode);
        }
    }

    #[test]
    fn null_options_roundtrip() {
        let r = RouteReport {
            delivered: false,
            arrival: None,
            hops: None,
        };
        assert_eq!(
            r.to_json(),
            r#"{"arrival":null,"delivered":false,"hops":null}"#
        );
        assert_eq!(RouteReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn large_integers_stay_exact() {
        // f64 rounds integers above 2⁵³; the Int variant must not.
        for d in [(1u64 << 53) + 1, u64::MAX] {
            let mode = ForwardingMode::BoundedBuffer(d);
            assert_eq!(ForwardingMode::from_json(&mode.to_json()).unwrap(), mode);
        }
        let r = RouteReport {
            delivered: true,
            arrival: Some(u64::MAX),
            hops: Some(3),
        };
        assert_eq!(RouteReport::from_json(&r.to_json()).unwrap(), r);
        // And a float-typed field refuses an out-of-type integer encoding.
        assert!(EdgeMarkovianParams::from_json(
            r#"{"num_nodes":2.5,"p_birth":0.1,"p_death":0.1,"steps":1}"#
        )
        .is_err());
    }

    #[test]
    fn non_finite_floats_encode_as_null_and_fail_decode_typed() {
        let p = EdgeMarkovianParams {
            num_nodes: 2,
            p_birth: f64::NAN,
            p_death: f64::INFINITY,
            steps: 1,
        };
        let text = p.to_json();
        // The text is valid JSON (parseable)...
        assert!(parse(&text).is_ok(), "{text}");
        // ...and decoding reports a typed error, not a panic.
        assert!(EdgeMarkovianParams::from_json(&text).is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let bomb = "{\"a\":".repeat(100_000);
        assert!(parse(&bomb).is_err());
        // Shallow nesting within the limit still parses.
        let ok = "{\"a\":{\"b\":{\"c\":1}}}";
        assert!(parse(ok).is_ok());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(EdgeMarkovianParams::from_json("{}").is_err());
        assert!(EdgeMarkovianParams::from_json(
            r#"{"num_nodes":-1,"p_birth":0,"p_death":0,"steps":0}"#
        )
        .is_err());
    }

    #[test]
    fn arrays_roundtrip() {
        let v = Json::Arr(vec![
            Json::Int(1),
            Json::Arr(vec![Json::Int(2), Json::Int(3)]),
            Json::Str("x".into()),
            Json::Null,
        ]);
        let text = v.to_string();
        assert_eq!(text, r#"[1,[2,3],"x",null]"#);
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(
            parse(" [ 1 , 2 ] ").unwrap(),
            Json::Arr(vec![Json::Int(1), Json::Int(2)])
        );
        assert!(parse("[1,").is_err());
        assert!(parse("[1 2]").is_err());
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err(), "deep arrays hit the depth guard");
    }

    #[test]
    fn whitespace_tolerated() {
        let text =
            " { \"num_nodes\" : 3 , \"p_birth\" : 0.5 , \"p_death\" : 0.5 , \"steps\" : 2 } ";
        let p = EdgeMarkovianParams::from_json(text).unwrap();
        assert_eq!(p.num_nodes, 3);
    }
}
