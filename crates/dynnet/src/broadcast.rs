//! Broadcast with and without buffering — the paper's motivation,
//! quantified.
//!
//! The introduction argues that protocol design is easier when the
//! environment provides *store-carry-forward* mechanisms (local
//! buffering) than when it does not. Here both regimes run on the same
//! contact trace:
//!
//! * [`ForwardingMode::StoreCarryForward`] — an informed node buffers the
//!   message forever and forwards on every later contact (indirect
//!   journeys: waiting allowed).
//! * [`ForwardingMode::NoWaitRelay`] — a relay can forward the message
//!   *only in the step it arrives*; if the relay has no contact at that
//!   exact step, its copy is lost (direct journeys: waiting forbidden).
//!   The source itself may re-beacon every step (`source_beacons`), so
//!   the comparison isolates the effect of *relay* buffering.

use crate::metrics::DeliveryStats;
use crate::EvolvingTrace;
use tvg_journeys::{Batch, BatchRunner, EngineStats, SearchLimits, WaitingPolicy};
use tvg_model::{NodeId, TemporalIndex, Time};

/// Relay discipline of a broadcast.
///
/// The three variants are the protocol-level mirror of the paper's three
/// waiting regimes: `StoreCarryForward` ↔ unbounded waiting,
/// `BoundedBuffer(d)` ↔ `wait[d]`, `NoWaitRelay` ↔ no waiting.
/// `BoundedBuffer(0)` behaves exactly like `NoWaitRelay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingMode {
    /// Informed nodes buffer and forward on every later contact.
    StoreCarryForward,
    /// Relays forward only in the arrival step; copies die otherwise.
    NoWaitRelay,
    /// Relays buffer a copy for at most `d` steps after arrival, then
    /// drop it — the `wait[d]` regime as a protocol.
    BoundedBuffer(u64),
}

/// Configuration of a broadcast run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastConfig {
    /// The node where the message originates.
    pub source: usize,
    /// Relay discipline.
    pub mode: ForwardingMode,
    /// Whether the source re-emits at every step (it owns the message, so
    /// buffering at the source is usually assumed even without relays).
    pub source_beacons: bool,
}

/// Result of a broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// For each node, the step at which it first held the message
    /// (`Some(0)` for the source).
    pub informed_at: Vec<Option<u64>>,
}

impl BroadcastOutcome {
    /// Summary statistics of the run.
    #[must_use]
    pub fn stats(&self) -> DeliveryStats {
        DeliveryStats::from_informed_times(&self.informed_at)
    }
}

/// Runs a broadcast over `trace`.
///
/// Semantics per step `t`: every node holding an *active* copy transmits
/// over each contact present at `t`; receivers hold the message from step
/// `t + 1`. Under store-carry-forward every informed node stays active
/// forever; under a bounded buffer a copy stays active for `d` further
/// steps after arrival; under no-wait relaying a copy is active only in
/// its arrival step. The source stays active iff `source_beacons`
/// (except under store-carry-forward, where it always does).
///
/// These are exactly journey semantics on the trace-TVG: a copy active
/// for `d` steps after arrival is a traveler allowed to pause at most
/// `d`, and a beaconing source is a journey allowed to depart the source
/// at *any* step. The implementation therefore *streams* the trace into
/// a live index ([`EvolvingTrace::to_stream`] — one ingest batch per
/// observed step, new links appended as they first appear) and runs one
/// multi-seed single-source engine pass on it — a node's informing step
/// is its foremost arrival (seeding the source at every step models
/// beaconing; flood re-activations on re-receipt are just later
/// `(node, time)` configurations of the same search).
///
/// # Panics
///
/// Panics if `config.source` is out of range.
#[must_use]
pub fn run_broadcast(trace: &EvolvingTrace, config: &BroadcastConfig) -> BroadcastOutcome {
    assert!(config.source < trace.num_nodes(), "source out of range");
    let mut outcomes = broadcast_batch(trace, config.mode, config.source_beacons, &[config.source]);
    outcomes.pop().expect("one source, one outcome")
}

/// Runs one broadcast *per node* of the trace — the full dissemination
/// profile the rumor-spreading analyses are judged on — as a single
/// batch: the trace is streamed into one live index and the n
/// multi-seed engine runs fan out over the batch runtime's worker
/// threads against that snapshot. `sweep[s]` is bit-identical to
/// `run_broadcast` from source `s`.
#[must_use]
pub fn broadcast_sweep(
    trace: &EvolvingTrace,
    mode: ForwardingMode,
    source_beacons: bool,
) -> Vec<BroadcastOutcome> {
    let sources: Vec<usize> = (0..trace.num_nodes()).collect();
    broadcast_batch(trace, mode, source_beacons, &sources)
}

/// Shared driver: one compile, one batched engine pass per source.
fn broadcast_batch(
    trace: &EvolvingTrace,
    mode: ForwardingMode,
    source_beacons: bool,
    sources: &[usize],
) -> Vec<BroadcastOutcome> {
    let horizon = trace.len() as u64;
    let policy = match mode {
        ForwardingMode::StoreCarryForward => WaitingPolicy::Unbounded,
        ForwardingMode::NoWaitRelay => WaitingPolicy::NoWait,
        // A buffer outlasting the trace is unbounded within it (and the
        // explicit mapping keeps `ready + d` from overflowing).
        ForwardingMode::BoundedBuffer(d) if d >= horizon => WaitingPolicy::Unbounded,
        ForwardingMode::BoundedBuffer(d) => WaitingPolicy::Bounded(d),
    };
    // The streaming ingestion path: one ingest batch per trace step,
    // then the query batch runs against the live-index snapshot (this
    // is the "ingest tick, query tick" loop of a live feed, with the
    // whole trace ingested before the single query tick).
    let stream = trace.to_stream();
    let limits = SearchLimits::new(horizon, trace.len());
    let (outcomes, _stats) = broadcast_plan(
        stream.index(),
        &policy,
        source_beacons,
        sources,
        &limits,
        Batch::auto(),
    );
    outcomes
}

/// Runs one broadcast per listed source over any compiled index — the
/// plan-level entry point the scenario runtime (`tvg-scenarios`) calls
/// on generator-built TVGs, and the driver the trace-based
/// [`run_broadcast`]/[`broadcast_sweep`] delegate to.
///
/// The waiting policy *is* the relay discipline (`Unbounded` ↔
/// store-carry-forward, `Bounded(d)` ↔ a `d`-step buffer, `NoWait` ↔
/// relay-in-arrival-step-only). A beaconing source re-emits at every
/// instant up to the limits' horizon: it is seeded once per instant
/// (under unbounded waiting a single seed already departs whenever it
/// likes, so one seed suffices). Each outcome's `informed_at[source]`
/// is pinned to `Some(0)`.
///
/// Returns the outcomes in source order plus the summed engine work
/// (one multi-seed engine run per source, at any thread count).
///
/// # Panics
///
/// Panics if a source is out of range for the index's graph.
#[must_use]
pub fn broadcast_plan<T: Time + Send + Sync, I: TemporalIndex<T> + Sync>(
    index: &I,
    policy: &WaitingPolicy<T>,
    source_beacons: bool,
    sources: &[usize],
    limits: &SearchLimits<T>,
    batch: Batch,
) -> (Vec<BroadcastOutcome>, EngineStats) {
    let n = index.num_nodes();
    // A beaconing source re-emits at every step: seed one configuration
    // per instant. Under unbounded waiting a single seed already departs
    // whenever it likes (the source always beacons under SCF).
    let seed_sets: Vec<Vec<(NodeId, T)>> = sources
        .iter()
        .map(|&source| {
            assert!(source < n, "source out of range");
            let source = NodeId::from_index(source);
            if matches!(policy, WaitingPolicy::Unbounded) || !source_beacons {
                vec![(source, T::zero())]
            } else {
                let mut seeds = Vec::new();
                let mut t = T::zero();
                loop {
                    seeds.push((source, t.clone()));
                    if t >= limits.horizon {
                        break;
                    }
                    t = t.succ();
                }
                seeds
            }
        })
        .collect();
    // Worker-side reduction: each tree collapses to its informed_at
    // vector inside the worker (a sweep holds outcomes, not trees).
    // Informed-at steps are widened back to `u64` so outcomes are
    // domain-independent (`u32`-narrowed runs report identical bytes).
    let (outcomes, stats) =
        BatchRunner::new(index, batch).map_seed_sets(&seed_sets, policy, limits, |seeds, tree| {
            let source = seeds[0].0.index();
            let informed_at = (0..n)
                .map(|node| {
                    if node == source {
                        Some(0)
                    } else {
                        tree.arrival(NodeId::from_index(node))
                            .and_then(Time::to_u64)
                    }
                })
                .collect();
            BroadcastOutcome { informed_at }
        });
    (outcomes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markovian::{edge_markovian_trace, EdgeMarkovianParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn scf(source: usize) -> BroadcastConfig {
        BroadcastConfig {
            source,
            mode: ForwardingMode::StoreCarryForward,
            source_beacons: true,
        }
    }

    fn nowait(source: usize) -> BroadcastConfig {
        BroadcastConfig {
            source,
            mode: ForwardingMode::NoWaitRelay,
            source_beacons: true,
        }
    }

    /// The paper's archetype: 0 meets 1, later 1 meets 2. Buffering at
    /// node 1 is the only way to deliver to 2.
    fn gap_trace() -> EvolvingTrace {
        EvolvingTrace::new(
            3,
            vec![
                BTreeSet::from([(0, 1)]),
                BTreeSet::new(),
                BTreeSet::from([(1, 2)]),
                BTreeSet::new(),
            ],
        )
    }

    #[test]
    fn buffering_bridges_the_gap() {
        let outcome = run_broadcast(&gap_trace(), &scf(0));
        assert_eq!(outcome.informed_at, vec![Some(0), Some(1), Some(3)]);
        let stats = outcome.stats();
        assert_eq!(stats.delivery_ratio, 1.0);
        assert_eq!(stats.max_time, Some(3));
    }

    #[test]
    fn no_wait_relay_loses_the_copy() {
        let outcome = run_broadcast(&gap_trace(), &nowait(0));
        // Node 1 receives at step 1 but has no contact at step 1: its copy
        // dies; node 2 is never informed.
        assert_eq!(outcome.informed_at, vec![Some(0), Some(1), None]);
        assert!((outcome.stats().delivery_ratio - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_wait_succeeds_on_back_to_back_contacts() {
        // 0-1 at step 0, 1-2 at step 1: the relay can forward immediately.
        let tr = EvolvingTrace::new(3, vec![BTreeSet::from([(0, 1)]), BTreeSet::from([(1, 2)])]);
        let outcome = run_broadcast(&tr, &nowait(0));
        assert_eq!(outcome.informed_at, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn source_beaconing_matters() {
        // Source's only contact happens twice; without beaconing the
        // second emission never happens.
        let tr = EvolvingTrace::new(2, vec![BTreeSet::new(), BTreeSet::from([(0, 1)])]);
        let with = run_broadcast(&tr, &nowait(0));
        assert_eq!(with.informed_at[1], Some(2));
        let without = run_broadcast(
            &tr,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::NoWaitRelay,
                source_beacons: false,
            },
        );
        // Source copy is active only at step 0, no contact then.
        assert_eq!(without.informed_at[1], None);
    }

    #[test]
    fn bounded_buffer_interpolates() {
        // d = 0 ≡ no-wait relaying; huge d ≡ store-carry-forward;
        // delivery is monotone in d.
        for seed in 0..8u64 {
            let params = EdgeMarkovianParams {
                num_nodes: 10,
                p_birth: 0.04,
                p_death: 0.5,
                steps: 50,
            };
            let tr = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
            let run = |mode| {
                run_broadcast(
                    &tr,
                    &BroadcastConfig {
                        source: 0,
                        mode,
                        source_beacons: true,
                    },
                )
            };
            assert_eq!(
                run(ForwardingMode::BoundedBuffer(0)).informed_at,
                run(ForwardingMode::NoWaitRelay).informed_at,
                "seed {seed}: d=0 must equal no-wait"
            );
            assert_eq!(
                run(ForwardingMode::BoundedBuffer(u64::MAX)).informed_at,
                run(ForwardingMode::StoreCarryForward).informed_at,
                "seed {seed}: d=∞ must equal scf"
            );
            let mut prev = run(ForwardingMode::BoundedBuffer(0)).stats().delivery_ratio;
            for d in [1u64, 2, 4, 8, 16] {
                let cur = run(ForwardingMode::BoundedBuffer(d)).stats().delivery_ratio;
                assert!(cur >= prev, "seed {seed}: delivery must be monotone in d");
                prev = cur;
            }
        }
    }

    #[test]
    fn bounded_buffer_bridges_exact_gaps() {
        // Contact at step 0, next at step 3: the relay needs to hold the
        // copy for 2 extra steps.
        let tr = EvolvingTrace::new(
            3,
            vec![
                BTreeSet::from([(0, 1)]),
                BTreeSet::new(),
                BTreeSet::new(),
                BTreeSet::from([(1, 2)]),
            ],
        );
        let run = |d| {
            run_broadcast(
                &tr,
                &BroadcastConfig {
                    source: 0,
                    mode: ForwardingMode::BoundedBuffer(d),
                    source_beacons: false,
                },
            )
        };
        // Copy arrives at node 1 at step 1; the contact is at step 3, so
        // the buffer must last ≥ 2 further steps.
        assert_eq!(run(1).informed_at[2], None);
        assert_eq!(run(2).informed_at[2], Some(4));
    }

    #[test]
    fn scf_dominates_nowait_on_random_traces() {
        // On every seeded trace, SCF informs a superset of nodes, no
        // later.
        for seed in 0..10u64 {
            let params = EdgeMarkovianParams {
                num_nodes: 12,
                p_birth: 0.05,
                p_death: 0.4,
                steps: 60,
            };
            let tr = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
            let s = run_broadcast(&tr, &scf(0));
            let nw = run_broadcast(&tr, &nowait(0));
            for node in 0..12 {
                match (s.informed_at[node], nw.informed_at[node]) {
                    (None, Some(_)) => {
                        panic!("seed {seed}: nowait informed node {node}, scf didn't")
                    }
                    (Some(ts), Some(tn)) => assert!(ts <= tn, "seed {seed} node {node}"),
                    _ => {}
                }
            }
            assert!(s.stats().delivery_ratio >= nw.stats().delivery_ratio);
        }
    }

    #[test]
    fn sweep_matches_per_source_broadcasts() {
        // The batched all-sources profile must be exactly the n
        // independent runs, in source order, under every mode.
        let params = EdgeMarkovianParams {
            num_nodes: 9,
            p_birth: 0.08,
            p_death: 0.45,
            steps: 30,
        };
        let tr = edge_markovian_trace(&mut StdRng::seed_from_u64(4), &params);
        for mode in [
            ForwardingMode::StoreCarryForward,
            ForwardingMode::NoWaitRelay,
            ForwardingMode::BoundedBuffer(3),
        ] {
            for beacons in [false, true] {
                let sweep = broadcast_sweep(&tr, mode, beacons);
                assert_eq!(sweep.len(), 9);
                for (source, outcome) in sweep.iter().enumerate() {
                    let single = run_broadcast(
                        &tr,
                        &BroadcastConfig {
                            source,
                            mode,
                            source_beacons: beacons,
                        },
                    );
                    assert_eq!(outcome, &single, "{mode:?} beacons={beacons} src={source}");
                }
            }
        }
    }

    #[test]
    fn broadcast_plan_on_batch_index_matches_trace_path() {
        // The generic plan entry point over a batch-compiled TvgIndex
        // must agree with the trace-streaming path outcome for outcome,
        // and report exactly one engine run per source.
        use tvg_model::TvgIndex;
        let params = EdgeMarkovianParams {
            num_nodes: 8,
            p_birth: 0.09,
            p_death: 0.4,
            steps: 28,
        };
        let tr = edge_markovian_trace(&mut StdRng::seed_from_u64(11), &params);
        let g = tr.to_tvg();
        let horizon = tr.len() as u64;
        let index = TvgIndex::compile(&g, horizon);
        let limits = SearchLimits::new(horizon, tr.len());
        let sources: Vec<usize> = (0..tr.num_nodes()).collect();
        for (mode, policy) in [
            (ForwardingMode::StoreCarryForward, WaitingPolicy::Unbounded),
            (ForwardingMode::NoWaitRelay, WaitingPolicy::NoWait),
            (ForwardingMode::BoundedBuffer(3), WaitingPolicy::Bounded(3)),
        ] {
            for beacons in [false, true] {
                let (planned, stats) =
                    broadcast_plan(&index, &policy, beacons, &sources, &limits, Batch::auto());
                assert_eq!(
                    stats.runs,
                    sources.len() as u64,
                    "{policy} beacons={beacons}"
                );
                let swept = broadcast_sweep(&tr, mode, beacons);
                assert_eq!(planned, swept, "{policy} beacons={beacons}");
            }
        }
    }

    #[test]
    fn broadcast_agrees_with_journey_semantics() {
        // SCF delivery == unbounded-waiting journey existence on the
        // trace-TVG; NoWait delivery (without beaconing) == direct-journey
        // existence. This pins the simulator to the paper's formal
        // definitions.
        use tvg_journeys::{foremost_journey, SearchLimits, WaitingPolicy};
        use tvg_model::NodeId;
        for seed in 0..6u64 {
            let params = EdgeMarkovianParams {
                num_nodes: 8,
                p_birth: 0.1,
                p_death: 0.5,
                steps: 25,
            };
            let tr = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
            let g = tr.to_tvg();
            let limits = SearchLimits::new(tr.len() as u64, tr.len() + 1);
            let scf_run = run_broadcast(&tr, &scf(0));
            let nw_run = run_broadcast(
                &tr,
                &BroadcastConfig {
                    source: 0,
                    mode: ForwardingMode::NoWaitRelay,
                    source_beacons: false,
                },
            );
            for node in 1..8usize {
                let wait_reach = foremost_journey(
                    &g,
                    NodeId::from_index(0),
                    NodeId::from_index(node),
                    &0,
                    &WaitingPolicy::Unbounded,
                    &limits,
                )
                .is_some();
                assert_eq!(
                    scf_run.informed_at[node].is_some(),
                    wait_reach,
                    "seed {seed} node {node} (scf vs wait journey)"
                );
                let direct_reach = foremost_journey(
                    &g,
                    NodeId::from_index(0),
                    NodeId::from_index(node),
                    &0,
                    &WaitingPolicy::NoWait,
                    &limits,
                )
                .is_some();
                assert_eq!(
                    nw_run.informed_at[node].is_some(),
                    direct_reach,
                    "seed {seed} node {node} (nowait vs direct journey)"
                );
            }
        }
    }
}
