//! Concrete evolving-graph traces: a dynamic network observed step by
//! step, convertible to a [`Tvg`] for journey analysis.

use std::collections::BTreeSet;
use tvg_model::{Latency, Presence, Tvg, TvgBuilder};

/// An undirected contact trace: for each discrete step, the set of node
/// pairs in contact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolvingTrace {
    num_nodes: usize,
    /// `snapshots[t]` holds normalized pairs `(min, max)`.
    snapshots: Vec<BTreeSet<(usize, usize)>>,
}

impl EvolvingTrace {
    /// A trace over `num_nodes` nodes with the given snapshots.
    ///
    /// Pairs are normalized to `(min, max)`; self-pairs and out-of-range
    /// nodes are rejected.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot references a node `>= num_nodes` or a
    /// self-contact.
    #[must_use]
    pub fn new(num_nodes: usize, snapshots: Vec<BTreeSet<(usize, usize)>>) -> Self {
        let normalized: Vec<BTreeSet<(usize, usize)>> = snapshots
            .into_iter()
            .map(|snap| {
                snap.into_iter()
                    .map(|(a, b)| {
                        assert!(a != b, "self-contact in trace");
                        assert!(a < num_nodes && b < num_nodes, "node out of range in trace");
                        (a.min(b), a.max(b))
                    })
                    .collect::<BTreeSet<_>>()
            })
            .collect();
        EvolvingTrace {
            num_nodes,
            snapshots: normalized,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of observed steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` iff the trace has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The contacts at step `t` (empty set beyond the trace).
    #[must_use]
    pub fn contacts_at(&self, t: usize) -> &BTreeSet<(usize, usize)> {
        static EMPTY: BTreeSet<(usize, usize)> = BTreeSet::new();
        self.snapshots.get(t).unwrap_or(&EMPTY)
    }

    /// Whether `u` and `v` are in contact at step `t`.
    #[must_use]
    pub fn in_contact(&self, u: usize, v: usize, t: usize) -> bool {
        self.contacts_at(t).contains(&(u.min(v), u.max(v)))
    }

    /// Average number of contacts per step.
    #[must_use]
    pub fn mean_contacts(&self) -> f64 {
        if self.snapshots.is_empty() {
            return 0.0;
        }
        let total: usize = self.snapshots.iter().map(BTreeSet::len).sum();
        total as f64 / self.snapshots.len() as f64
    }

    /// Converts the trace to a TVG: one directed edge per orientation of
    /// each pair that is ever in contact, presence = the exact contact
    /// instants, unit latency, label `c`.
    ///
    /// Journey searches over the result reproduce message propagation in
    /// the trace (a hop takes one step).
    #[must_use]
    pub fn to_tvg(&self) -> Tvg<u64> {
        let mut times: std::collections::BTreeMap<(usize, usize), BTreeSet<u64>> =
            std::collections::BTreeMap::new();
        for (t, snap) in self.snapshots.iter().enumerate() {
            for &(a, b) in snap {
                times.entry((a, b)).or_default().insert(t as u64);
            }
        }
        let mut builder = TvgBuilder::<u64>::new();
        let nodes = builder.nodes(self.num_nodes);
        for ((a, b), instants) in times {
            for (src, dst) in [(a, b), (b, a)] {
                builder
                    .edge(
                        nodes[src],
                        nodes[dst],
                        'c',
                        Presence::FiniteSet(instants.clone()),
                        Latency::unit(),
                    )
                    .expect("nodes are builder-owned");
            }
        }
        builder.build().expect("at least one node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_journeys::{foremost_journey, SearchLimits, WaitingPolicy};
    use tvg_model::NodeId;

    fn simple_trace() -> EvolvingTrace {
        // Step 0: 0-1 in contact; step 1: nothing; step 2: 1-2 in contact.
        EvolvingTrace::new(
            3,
            vec![
                BTreeSet::from([(0, 1)]),
                BTreeSet::new(),
                BTreeSet::from([(2, 1)]), // normalization test
            ],
        )
    }

    #[test]
    fn contacts_are_normalized_and_queryable() {
        let tr = simple_trace();
        assert!(tr.in_contact(0, 1, 0));
        assert!(tr.in_contact(1, 0, 0));
        assert!(tr.in_contact(1, 2, 2));
        assert!(tr.in_contact(2, 1, 2));
        assert!(!tr.in_contact(0, 1, 1));
        assert!(!tr.in_contact(0, 2, 0));
        assert!(!tr.in_contact(0, 1, 99));
    }

    #[test]
    fn stats() {
        let tr = simple_trace();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.num_nodes(), 3);
        assert!((tr.mean_contacts() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(EvolvingTrace::new(2, vec![]).mean_contacts(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-contact")]
    fn self_contacts_rejected() {
        let _ = EvolvingTrace::new(3, vec![BTreeSet::from([(1, 1)])]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_checked() {
        let _ = EvolvingTrace::new(2, vec![BTreeSet::from([(0, 5)])]);
    }

    #[test]
    fn tvg_conversion_reproduces_store_carry_forward() {
        // 0→2 requires waiting at node 1 from step 1 to step 2.
        let tr = simple_trace();
        let g = tr.to_tvg();
        let limits = SearchLimits::new(tr.len() as u64, 5);
        let src = NodeId::from_index(0);
        let dst = NodeId::from_index(2);
        let direct = foremost_journey(&g, src, dst, &0, &WaitingPolicy::NoWait, &limits);
        assert!(direct.is_none());
        let waited = foremost_journey(&g, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
            .expect("store-carry-forward connects");
        assert_eq!(waited.arrival(), Some(&3)); // 0→1 at 0..1, wait, 1→2 at 2..3
    }
}
