//! Concrete evolving-graph traces: a dynamic network observed step by
//! step, convertible to a [`Tvg`] for journey analysis — either as one
//! batch compile ([`EvolvingTrace::to_tvg`]) or replayed step by step
//! into a streaming index ([`EvolvingTrace::to_stream`]).

use std::collections::{BTreeMap, BTreeSet};
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::{EdgeId, Latency, Presence, Tvg, TvgBuilder};

/// An undirected contact trace: for each discrete step, the set of node
/// pairs in contact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolvingTrace {
    num_nodes: usize,
    /// `snapshots[t]` holds normalized pairs `(min, max)`.
    snapshots: Vec<BTreeSet<(usize, usize)>>,
}

impl EvolvingTrace {
    /// A trace over `num_nodes` nodes with the given snapshots.
    ///
    /// Pairs are normalized to `(min, max)`; self-pairs and out-of-range
    /// nodes are rejected.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot references a node `>= num_nodes` or a
    /// self-contact.
    #[must_use]
    pub fn new(num_nodes: usize, snapshots: Vec<BTreeSet<(usize, usize)>>) -> Self {
        let normalized: Vec<BTreeSet<(usize, usize)>> = snapshots
            .into_iter()
            .map(|snap| {
                snap.into_iter()
                    .map(|(a, b)| {
                        assert!(a != b, "self-contact in trace");
                        assert!(a < num_nodes && b < num_nodes, "node out of range in trace");
                        (a.min(b), a.max(b))
                    })
                    .collect::<BTreeSet<_>>()
            })
            .collect();
        EvolvingTrace {
            num_nodes,
            snapshots: normalized,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of observed steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` iff the trace has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The contacts at step `t` (empty set beyond the trace).
    #[must_use]
    pub fn contacts_at(&self, t: usize) -> &BTreeSet<(usize, usize)> {
        static EMPTY: BTreeSet<(usize, usize)> = BTreeSet::new();
        self.snapshots.get(t).unwrap_or(&EMPTY)
    }

    /// Whether `u` and `v` are in contact at step `t`.
    #[must_use]
    pub fn in_contact(&self, u: usize, v: usize, t: usize) -> bool {
        self.contacts_at(t).contains(&(u.min(v), u.max(v)))
    }

    /// Average number of contacts per step.
    #[must_use]
    pub fn mean_contacts(&self) -> f64 {
        if self.snapshots.is_empty() {
            return 0.0;
        }
        let total: usize = self.snapshots.iter().map(BTreeSet::len).sum();
        total as f64 / self.snapshots.len() as f64
    }

    /// Converts the trace to a TVG: one directed edge per orientation of
    /// each pair that is ever in contact, presence = the exact contact
    /// instants, unit latency, label `c`.
    ///
    /// Journey searches over the result reproduce message propagation in
    /// the trace (a hop takes one step).
    #[must_use]
    pub fn to_tvg(&self) -> Tvg<u64> {
        let mut times: std::collections::BTreeMap<(usize, usize), BTreeSet<u64>> =
            std::collections::BTreeMap::new();
        for (t, snap) in self.snapshots.iter().enumerate() {
            for &(a, b) in snap {
                times.entry((a, b)).or_default().insert(t as u64);
            }
        }
        let mut builder = TvgBuilder::<u64>::new();
        let nodes = builder.nodes(self.num_nodes);
        for ((a, b), instants) in times {
            for (src, dst) in [(a, b), (b, a)] {
                builder
                    .edge(
                        nodes[src],
                        nodes[dst],
                        'c',
                        Presence::FiniteSet(instants.clone()),
                        Latency::unit(),
                    )
                    .expect("nodes are builder-owned");
            }
        }
        builder.build().expect("at least one node")
    }

    /// Replays the trace into a streaming index, step by step, exactly
    /// as a live contact logger would deliver it: each step is one
    /// ingest batch; a pair's first-ever contact appends its two
    /// directed edges ([`StreamEvent::NewEdge`]) before bringing them
    /// up; a pair leaving contact brings them down; a pair in contact
    /// at the final step is closed at the trace end.
    ///
    /// The resulting [`TvgStream`] answers journey queries identically
    /// to `TvgIndex::compile(&trace.to_tvg(), len)` — edge ids differ
    /// (first-contact order here, pair order there) but every
    /// node-level answer matches, which is what the broadcast and
    /// routing equivalence tests pin. This is the ingestion path
    /// `run_broadcast`/`broadcast_sweep` actually execute.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no nodes.
    #[must_use]
    pub fn to_stream(&self) -> TvgStream<u64> {
        assert!(self.num_nodes > 0, "a streamed trace needs nodes");
        let mut stream =
            TvgStream::new(self.len() as u64).expect("trace lengths fit far below u64::MAX");
        for i in 0..self.num_nodes {
            stream.add_node(&format!("v{i}"));
        }
        let nodes: Vec<_> = stream.index().tvg().nodes().collect();
        // Both orientations of each pair, created at first contact; ids
        // are assigned in ingest order, so they are known up front.
        let mut edges: BTreeMap<(usize, usize), (EdgeId, EdgeId)> = BTreeMap::new();
        let mut next_edge = 0usize;
        let mut previous: &BTreeSet<(usize, usize)> = &BTreeSet::new();
        for (t, snap) in self.snapshots.iter().enumerate() {
            let mut batch: Vec<StreamEvent<u64>> = Vec::new();
            for &(a, b) in snap {
                if let std::collections::btree_map::Entry::Vacant(slot) = edges.entry((a, b)) {
                    let mut declare = |src: usize, dst: usize| {
                        batch.push(StreamEvent::NewEdge {
                            src: nodes[src],
                            dst: nodes[dst],
                            label: 'c',
                            latency: Latency::unit(),
                        });
                        next_edge += 1;
                        EdgeId::from_index(next_edge - 1)
                    };
                    let fwd = declare(a, b);
                    let rev = declare(b, a);
                    slot.insert((fwd, rev));
                }
                if !previous.contains(&(a, b)) {
                    let (fwd, rev) = edges[&(a, b)];
                    batch.push(StreamEvent::Up {
                        edge: fwd,
                        at: t as u64,
                    });
                    batch.push(StreamEvent::Up {
                        edge: rev,
                        at: t as u64,
                    });
                }
            }
            for &(a, b) in previous {
                if !snap.contains(&(a, b)) {
                    let (fwd, rev) = edges[&(a, b)];
                    batch.push(StreamEvent::Down {
                        edge: fwd,
                        at: t as u64,
                    });
                    batch.push(StreamEvent::Down {
                        edge: rev,
                        at: t as u64,
                    });
                }
            }
            stream.ingest(&batch).expect("trace replay is a valid feed");
            previous = snap;
        }
        // Contacts running through the final step end with the trace:
        // presence at instant t means "in contact during step t", so the
        // last possible presence instant is len - 1.
        let close: Vec<StreamEvent<u64>> = previous
            .iter()
            .flat_map(|pair| {
                let (fwd, rev) = edges[pair];
                let at = self.len() as u64;
                [
                    StreamEvent::Down { edge: fwd, at },
                    StreamEvent::Down { edge: rev, at },
                ]
            })
            .collect();
        stream.ingest(&close).expect("final close is a valid feed");
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_journeys::{foremost_journey, SearchLimits, WaitingPolicy};
    use tvg_model::NodeId;

    fn simple_trace() -> EvolvingTrace {
        // Step 0: 0-1 in contact; step 1: nothing; step 2: 1-2 in contact.
        EvolvingTrace::new(
            3,
            vec![
                BTreeSet::from([(0, 1)]),
                BTreeSet::new(),
                BTreeSet::from([(2, 1)]), // normalization test
            ],
        )
    }

    #[test]
    fn contacts_are_normalized_and_queryable() {
        let tr = simple_trace();
        assert!(tr.in_contact(0, 1, 0));
        assert!(tr.in_contact(1, 0, 0));
        assert!(tr.in_contact(1, 2, 2));
        assert!(tr.in_contact(2, 1, 2));
        assert!(!tr.in_contact(0, 1, 1));
        assert!(!tr.in_contact(0, 2, 0));
        assert!(!tr.in_contact(0, 1, 99));
    }

    #[test]
    fn stats() {
        let tr = simple_trace();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.num_nodes(), 3);
        assert!((tr.mean_contacts() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(EvolvingTrace::new(2, vec![]).mean_contacts(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-contact")]
    fn self_contacts_rejected() {
        let _ = EvolvingTrace::new(3, vec![BTreeSet::from([(1, 1)])]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_checked() {
        let _ = EvolvingTrace::new(2, vec![BTreeSet::from([(0, 5)])]);
    }

    #[test]
    fn stream_replay_matches_batch_compile_per_node() {
        use tvg_journeys::{foremost_tree, SearchLimits, WaitingPolicy};
        use tvg_model::{NodeId, TvgIndex};
        let tr = simple_trace();
        let stream = tr.to_stream();
        let g = tr.to_tvg();
        let horizon = tr.len() as u64;
        let index = TvgIndex::compile(&g, horizon);
        let limits = SearchLimits::new(horizon, tr.len() + 1);
        // Edge ids differ between the two paths (first-contact order vs
        // pair order); every node-level journey answer must not.
        for policy in [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(1),
            WaitingPolicy::Unbounded,
        ] {
            for src in 0..tr.num_nodes() {
                let live = foremost_tree(
                    stream.index(),
                    NodeId::from_index(src),
                    &0,
                    &policy,
                    &limits,
                );
                let batch = foremost_tree(&index, NodeId::from_index(src), &0, &policy, &limits);
                for dst in g.nodes() {
                    assert_eq!(
                        live.arrival(dst),
                        batch.arrival(dst),
                        "{policy} {src}->{dst}"
                    );
                }
            }
        }
        // The final-step close really closes: nothing is open.
        for e in stream.index().tvg().edges() {
            assert_eq!(stream.open_since(e), None, "{e}");
        }
    }

    #[test]
    fn tvg_conversion_reproduces_store_carry_forward() {
        // 0→2 requires waiting at node 1 from step 1 to step 2.
        let tr = simple_trace();
        let g = tr.to_tvg();
        let limits = SearchLimits::new(tr.len() as u64, 5);
        let src = NodeId::from_index(0);
        let dst = NodeId::from_index(2);
        let direct = foremost_journey(&g, src, dst, &0, &WaitingPolicy::NoWait, &limits);
        assert!(direct.is_none());
        let waited = foremost_journey(&g, src, dst, &0, &WaitingPolicy::Unbounded, &limits)
            .expect("store-carry-forward connects");
        assert_eq!(waited.arrival(), Some(&3)); // 0→1 at 0..1, wait, 1→2 at 2..3
    }
}
