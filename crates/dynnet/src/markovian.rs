//! Edge-Markovian evolving graphs — the standard random model of highly
//! dynamic networks.
//!
//! Every unordered node pair evolves as an independent two-state Markov
//! chain: an absent edge appears with probability `p_birth` per step, a
//! present edge disappears with probability `p_death`. Low birth/high
//! death rates yield the sparse, disconnected-at-every-instant regime the
//! paper's introduction targets; experiment E5 sweeps these rates.

use crate::EvolvingTrace;
use rand::Rng;
use std::collections::BTreeSet;

/// Parameters of an edge-Markovian trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeMarkovianParams {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Per-step appearance probability of an absent edge, in `[0, 1]`.
    pub p_birth: f64,
    /// Per-step disappearance probability of a present edge, in `[0, 1]`.
    pub p_death: f64,
    /// Number of steps to generate.
    pub steps: usize,
}

impl EdgeMarkovianParams {
    /// The stationary probability that an edge is present:
    /// `p_birth / (p_birth + p_death)` (define 0 when both rates are 0).
    #[must_use]
    pub fn stationary_density(&self) -> f64 {
        let denom = self.p_birth + self.p_death;
        if denom == 0.0 {
            0.0
        } else {
            self.p_birth / denom
        }
    }
}

/// Generates an edge-Markovian contact trace, starting from the
/// stationary distribution.
///
/// # Panics
///
/// Panics if a probability is outside `[0, 1]` or `num_nodes < 2`.
pub fn edge_markovian_trace<R: Rng + ?Sized>(
    rng: &mut R,
    params: &EdgeMarkovianParams,
) -> EvolvingTrace {
    assert!(params.num_nodes >= 2, "need at least two nodes");
    for p in [params.p_birth, params.p_death] {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
    }
    let n = params.num_nodes;
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .collect();
    let density = params.stationary_density();
    let mut present: Vec<bool> = pairs.iter().map(|_| rng.gen_bool(density)).collect();
    let mut snapshots = Vec::with_capacity(params.steps);
    for _ in 0..params.steps {
        let snap: BTreeSet<(usize, usize)> = pairs
            .iter()
            .zip(&present)
            .filter(|(_, &p)| p)
            .map(|(&pair, _)| pair)
            .collect();
        snapshots.push(snap);
        for state in &mut present {
            *state = if *state {
                !rng.gen_bool(params.p_death)
            } else {
                rng.gen_bool(params.p_birth)
            };
        }
    }
    EvolvingTrace::new(n, snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reproducible_from_seed() {
        let params = EdgeMarkovianParams {
            num_nodes: 6,
            p_birth: 0.2,
            p_death: 0.5,
            steps: 30,
        };
        let a = edge_markovian_trace(&mut StdRng::seed_from_u64(1), &params);
        let b = edge_markovian_trace(&mut StdRng::seed_from_u64(1), &params);
        assert_eq!(a, b);
    }

    #[test]
    fn stationary_density_formula() {
        let p = EdgeMarkovianParams {
            num_nodes: 2,
            p_birth: 0.1,
            p_death: 0.3,
            steps: 1,
        };
        assert!((p.stationary_density() - 0.25).abs() < 1e-12);
        let z = EdgeMarkovianParams {
            num_nodes: 2,
            p_birth: 0.0,
            p_death: 0.0,
            steps: 1,
        };
        assert_eq!(z.stationary_density(), 0.0);
    }

    #[test]
    fn empirical_density_tracks_stationary() {
        let params = EdgeMarkovianParams {
            num_nodes: 10,
            p_birth: 0.15,
            p_death: 0.45,
            steps: 400,
        };
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(7), &params);
        let total_pairs = 45.0; // C(10, 2)
        let observed = trace.mean_contacts() / total_pairs;
        let expected = params.stationary_density();
        assert!(
            (observed - expected).abs() < 0.05,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn extreme_rates() {
        let always = EdgeMarkovianParams {
            num_nodes: 4,
            p_birth: 1.0,
            p_death: 0.0,
            steps: 5,
        };
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(3), &always);
        for t in 0..trace.len() {
            assert_eq!(trace.contacts_at(t).len(), 6, "complete graph at {t}");
        }
        let never = EdgeMarkovianParams {
            num_nodes: 4,
            p_birth: 0.0,
            p_death: 1.0,
            steps: 5,
        };
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(3), &never);
        for t in 0..trace.len() {
            assert!(trace.contacts_at(t).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn probabilities_validated() {
        let params = EdgeMarkovianParams {
            num_nodes: 3,
            p_birth: 1.5,
            p_death: 0.1,
            steps: 1,
        };
        let _ = edge_markovian_trace(&mut StdRng::seed_from_u64(0), &params);
    }
}
