//! Dynamic-network protocol simulation: the paper's motivation, measured.
//!
//! *“Clearly the task of designing protocols for these networks is less
//! difficult if the environment allows waiting … than if waiting is not
//! feasible.”* This crate turns that sentence into numbers:
//!
//! * [`EvolvingTrace`] — a concrete contact trace (who meets whom, per
//!   step), convertible to a [`tvg_model::Tvg`] so that the journey
//!   machinery applies verbatim.
//! * [`markovian`] — edge-Markovian random dynamic graphs, the standard
//!   model of highly dynamic, possibly always-disconnected networks.
//! * [`broadcast`] — flooding with store-carry-forward buffering
//!   (indirect journeys) vs. no-wait relaying (direct journeys), on the
//!   same trace. The simulator is pinned to the paper's formal journey
//!   semantics by tests.
//! * [`routing`] — unicast foremost-journey routing per waiting policy.
//! * [`metrics`] — delivery ratios and times, aggregated across seeds.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use tvg_dynnet::broadcast::{run_broadcast, BroadcastConfig, ForwardingMode};
//! use tvg_dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
//!
//! let params = EdgeMarkovianParams { num_nodes: 16, p_birth: 0.05, p_death: 0.4, steps: 80 };
//! let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(7), &params);
//!
//! let scf = run_broadcast(&trace, &BroadcastConfig {
//!     source: 0, mode: ForwardingMode::StoreCarryForward, source_beacons: true });
//! let nowait = run_broadcast(&trace, &BroadcastConfig {
//!     source: 0, mode: ForwardingMode::NoWaitRelay, source_beacons: true });
//!
//! // Waiting (buffering) never delivers to fewer nodes.
//! assert!(scf.stats().delivery_ratio >= nowait.stats().delivery_ratio);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod json;
pub mod markovian;
pub mod metrics;
pub mod routing;
mod trace;

pub use trace::EvolvingTrace;
