//! Unicast routing over contact traces: journey-based path selection
//! under each waiting policy.
//!
//! Where `broadcast` floods, this module *routes*: it asks for the
//! foremost journey from a source to a destination over the trace-TVG and
//! reports how the waiting policy changes feasibility and arrival time —
//! the unicast face of experiment E5.

use crate::EvolvingTrace;
use tvg_journeys::{Batch, BatchRunner, SearchLimits, WaitingPolicy};
use tvg_model::{NodeId, TvgIndex};

/// Outcome of routing one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteReport {
    /// Whether a feasible journey exists.
    pub delivered: bool,
    /// Arrival step of the foremost journey, if delivered.
    pub arrival: Option<u64>,
    /// Number of hops of the foremost journey, if delivered.
    pub hops: Option<usize>,
}

/// Routes from `src` to `dst` over `trace` under `policy`, starting at
/// step `start`: the trace-TVG is compiled once and queried with a
/// single-source engine run.
///
/// # Panics
///
/// Panics if `src` or `dst` is out of range for the trace.
#[must_use]
pub fn route(
    trace: &EvolvingTrace,
    src: usize,
    dst: usize,
    start: u64,
    policy: &WaitingPolicy<u64>,
) -> RouteReport {
    assert!(
        src < trace.num_nodes() && dst < trace.num_nodes(),
        "endpoint out of range"
    );
    if src == dst {
        return RouteReport {
            delivered: true,
            arrival: Some(start),
            hops: Some(0),
        };
    }
    let g = trace.to_tvg();
    let horizon = trace.len() as u64;
    let index = TvgIndex::compile(&g, horizon);
    let limits = SearchLimits::new(horizon, trace.len() + 1);
    // Targeted per-pair query through the batch runtime (a singleton
    // batch runs inline): the engine early-exits at dst's first
    // (already foremost) settle.
    let queries = [(NodeId::from_index(src), NodeId::from_index(dst), start)];
    let outcome = BatchRunner::new(&index, Batch::auto()).run_pairs(&queries, policy, &limits);
    match outcome.into_journeys().pop().flatten() {
        Some(j) => RouteReport {
            delivered: true,
            arrival: j.arrival().copied().or(Some(start)),
            hops: Some(j.num_hops()),
        },
        None => RouteReport {
            delivered: false,
            arrival: None,
            hops: None,
        },
    }
}

/// Fraction of ordered `(src, dst)` pairs deliverable under `policy`:
/// one compiled index, `n` single-source engine runs fanned out over the
/// batch runtime — not `n²` pairwise searches. Bit-identical at every
/// thread count.
#[must_use]
pub fn delivery_ratio(trace: &EvolvingTrace, start: u64, policy: &WaitingPolicy<u64>) -> f64 {
    let n = trace.num_nodes();
    if n < 2 {
        return 1.0;
    }
    let g = trace.to_tvg();
    let horizon = trace.len() as u64;
    let index = TvgIndex::compile(&g, horizon);
    let limits = SearchLimits::new(horizon, trace.len() + 1);
    let sources: Vec<NodeId> = g.nodes().collect();
    // Worker-side reduction: each tree collapses to its reached-count
    // immediately (only counts survive the batch, never n trees).
    let (counts, _stats) = BatchRunner::new(&index, Batch::auto()).map_sources(
        &sources,
        &start,
        policy,
        &limits,
        // Reached nodes include the source itself; ordered pairs
        // exclude it.
        |src, tree| tree.reached_nodes().filter(|node| *node != src).count(),
    );
    let delivered: usize = counts.into_iter().sum();
    delivered as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markovian::{edge_markovian_trace, EdgeMarkovianParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn gap_trace() -> EvolvingTrace {
        EvolvingTrace::new(
            3,
            vec![
                BTreeSet::from([(0, 1)]),
                BTreeSet::new(),
                BTreeSet::from([(1, 2)]),
            ],
        )
    }

    #[test]
    fn route_reports_details() {
        let r = route(&gap_trace(), 0, 2, 0, &WaitingPolicy::Unbounded);
        assert!(r.delivered);
        assert_eq!(r.arrival, Some(3));
        assert_eq!(r.hops, Some(2));
        let r2 = route(&gap_trace(), 0, 2, 0, &WaitingPolicy::NoWait);
        assert!(!r2.delivered);
        assert_eq!(r2.arrival, None);
    }

    #[test]
    fn waiting_never_hurts_delivery() {
        for seed in 0..5u64 {
            let params = EdgeMarkovianParams {
                num_nodes: 7,
                p_birth: 0.1,
                p_death: 0.45,
                steps: 25,
            };
            let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
            let nw = delivery_ratio(&trace, 0, &WaitingPolicy::NoWait);
            let b2 = delivery_ratio(&trace, 0, &WaitingPolicy::Bounded(2));
            let un = delivery_ratio(&trace, 0, &WaitingPolicy::Unbounded);
            assert!(nw <= b2 + 1e-12, "seed {seed}");
            assert!(b2 <= un + 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn single_node_trivial() {
        let trace = EvolvingTrace::new(1, vec![BTreeSet::new()]);
        assert_eq!(delivery_ratio(&trace, 0, &WaitingPolicy::NoWait), 1.0);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn endpoints_validated() {
        let _ = route(&gap_trace(), 0, 9, 0, &WaitingPolicy::NoWait);
    }
}
