//! Property tests for the dynamic-network simulations: dominance laws,
//! semantic pinning to journeys, and config serialization round-trips.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use tvg_dynnet::broadcast::{run_broadcast, BroadcastConfig, ForwardingMode};
use tvg_dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
use tvg_dynnet::metrics::DeliveryStats;
use tvg_dynnet::EvolvingTrace;

fn arb_params() -> impl Strategy<Value = EdgeMarkovianParams> {
    (3usize..10, 0.0f64..0.5, 0.1f64..0.9, 5usize..40).prop_map(
        |(num_nodes, p_birth, p_death, steps)| EdgeMarkovianParams {
            num_nodes,
            p_birth,
            p_death,
            steps,
        },
    )
}

fn arb_trace() -> impl Strategy<Value = EvolvingTrace> {
    (arb_params(), any::<u64>())
        .prop_map(|(params, seed)| edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scf_dominates_nowait_pointwise(trace in arb_trace()) {
        let scf = run_broadcast(
            &trace,
            &BroadcastConfig { source: 0, mode: ForwardingMode::StoreCarryForward, source_beacons: true },
        );
        let nw = run_broadcast(
            &trace,
            &BroadcastConfig { source: 0, mode: ForwardingMode::NoWaitRelay, source_beacons: true },
        );
        for node in 0..trace.num_nodes() {
            match (scf.informed_at[node], nw.informed_at[node]) {
                (None, Some(_)) => prop_assert!(false, "no-wait informed node {node}, scf did not"),
                (Some(a), Some(b)) => prop_assert!(a <= b),
                _ => {}
            }
        }
    }

    #[test]
    fn beaconing_only_helps(trace in arb_trace()) {
        let with = run_broadcast(
            &trace,
            &BroadcastConfig { source: 0, mode: ForwardingMode::NoWaitRelay, source_beacons: true },
        );
        let without = run_broadcast(
            &trace,
            &BroadcastConfig { source: 0, mode: ForwardingMode::NoWaitRelay, source_beacons: false },
        );
        prop_assert!(with.stats().delivery_ratio >= without.stats().delivery_ratio);
    }

    #[test]
    fn informed_times_are_causal(trace in arb_trace()) {
        let scf = run_broadcast(
            &trace,
            &BroadcastConfig { source: 0, mode: ForwardingMode::StoreCarryForward, source_beacons: true },
        );
        prop_assert_eq!(scf.informed_at[0], Some(0));
        for node in 0..trace.num_nodes() {
            if let Some(t) = scf.informed_at[node] {
                prop_assert!(t as usize <= trace.len());
            }
        }
    }

    #[test]
    fn delivery_stats_are_consistent(times in proptest::collection::vec(
        proptest::option::of(0u64..100), 1..30)) {
        let stats = DeliveryStats::from_informed_times(&times);
        prop_assert!((0.0..=1.0).contains(&stats.delivery_ratio));
        let informed: Vec<u64> = times.iter().flatten().copied().collect();
        if informed.is_empty() {
            prop_assert_eq!(stats.mean_time, None);
            prop_assert_eq!(stats.max_time, None);
        } else {
            let max = *informed.iter().max().expect("nonempty");
            prop_assert_eq!(stats.max_time, Some(max));
            let mean = stats.mean_time.expect("nonempty");
            prop_assert!(mean <= max as f64);
            if let Some(p95) = stats.p95_time {
                prop_assert!(p95 <= max);
            }
        }
    }

    #[test]
    fn stationary_density_within_bounds(params in arb_params()) {
        let d = params.stationary_density();
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn params_serde_roundtrip(params in arb_params()) {
        let json = serde_json::to_string(&params).expect("serializable");
        let back: EdgeMarkovianParams = serde_json::from_str(&json).expect("deserializable");
        prop_assert_eq!(params.num_nodes, back.num_nodes);
        prop_assert_eq!(params.steps, back.steps);
        // Floats may lose the last ULP through the textual encoding.
        prop_assert!((params.p_birth - back.p_birth).abs() < 1e-12);
        prop_assert!((params.p_death - back.p_death).abs() < 1e-12);
    }

    #[test]
    fn trace_contacts_are_normalized(trace in arb_trace()) {
        for t in 0..trace.len() {
            for &(a, b) in trace.contacts_at(t) {
                prop_assert!(a < b);
                prop_assert!(b < trace.num_nodes());
                prop_assert!(trace.in_contact(a, b, t));
                prop_assert!(trace.in_contact(b, a, t));
            }
        }
    }

    #[test]
    fn tvg_conversion_has_matching_contacts(trace in arb_trace()) {
        let g = trace.to_tvg();
        prop_assert_eq!(g.num_nodes(), trace.num_nodes());
        // Every contact is traversable in both directions at its instant.
        for t in 0..trace.len() {
            let snapshot: BTreeSet<(usize, usize)> = g
                .snapshot(&(t as u64))
                .into_iter()
                .map(|e| {
                    let edge = g.edge(e);
                    let (a, b) = (edge.src().index(), edge.dst().index());
                    (a.min(b), a.max(b))
                })
                .collect();
            prop_assert_eq!(&snapshot, trace.contacts_at(t));
        }
    }
}
