//! Property tests for the dynamic-network simulations: dominance laws,
//! semantic pinning to journeys, and config serialization round-trips.
//!
//! Runs on `tvg-testkit`'s deterministic harness; random traces come
//! from `tvg_testkit::gen::{markovian_params, markovian_trace}`.

use rand::Rng;
use std::collections::BTreeSet;
use tvg_dynnet::broadcast::{run_broadcast, BroadcastConfig, ForwardingMode};
use tvg_dynnet::json::{FromJson, ToJson};
use tvg_dynnet::markovian::EdgeMarkovianParams;
use tvg_dynnet::metrics::DeliveryStats;
use tvg_testkit::gen;
use tvg_testkit::Config;

#[test]
fn scf_dominates_nowait_pointwise() {
    let cfg = Config::named_with_cases("scf_dominates_nowait_pointwise", 48);
    tvg_testkit::check_with(cfg, |rng, _| {
        let trace = gen::markovian_trace(rng);
        let scf = run_broadcast(
            &trace,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::StoreCarryForward,
                source_beacons: true,
            },
        );
        let nw = run_broadcast(
            &trace,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::NoWaitRelay,
                source_beacons: true,
            },
        );
        for node in 0..trace.num_nodes() {
            match (scf.informed_at[node], nw.informed_at[node]) {
                (None, Some(_)) => panic!("no-wait informed node {node}, scf did not"),
                (Some(a), Some(b)) => assert!(a <= b),
                _ => {}
            }
        }
    });
}

#[test]
fn beaconing_only_helps() {
    let cfg = Config::named_with_cases("beaconing_only_helps", 48);
    tvg_testkit::check_with(cfg, |rng, _| {
        let trace = gen::markovian_trace(rng);
        let with = run_broadcast(
            &trace,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::NoWaitRelay,
                source_beacons: true,
            },
        );
        let without = run_broadcast(
            &trace,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::NoWaitRelay,
                source_beacons: false,
            },
        );
        assert!(with.stats().delivery_ratio >= without.stats().delivery_ratio);
    });
}

#[test]
fn informed_times_are_causal() {
    let cfg = Config::named_with_cases("informed_times_are_causal", 48);
    tvg_testkit::check_with(cfg, |rng, _| {
        let trace = gen::markovian_trace(rng);
        let scf = run_broadcast(
            &trace,
            &BroadcastConfig {
                source: 0,
                mode: ForwardingMode::StoreCarryForward,
                source_beacons: true,
            },
        );
        assert_eq!(scf.informed_at[0], Some(0));
        for node in 0..trace.num_nodes() {
            if let Some(t) = scf.informed_at[node] {
                assert!(t as usize <= trace.len());
            }
        }
    });
}

#[test]
fn delivery_stats_are_consistent() {
    tvg_testkit::check("delivery_stats_are_consistent", |rng, _| {
        let len = rng.gen_range(1usize..30);
        let times: Vec<Option<u64>> = (0..len)
            .map(|_| rng.gen_bool(0.5).then(|| rng.gen_range(0u64..100)))
            .collect();
        let stats = DeliveryStats::from_informed_times(&times);
        assert!((0.0..=1.0).contains(&stats.delivery_ratio));
        let informed: Vec<u64> = times.iter().flatten().copied().collect();
        if informed.is_empty() {
            assert_eq!(stats.mean_time, None);
            assert_eq!(stats.max_time, None);
        } else {
            let max = *informed.iter().max().expect("nonempty");
            assert_eq!(stats.max_time, Some(max));
            let mean = stats.mean_time.expect("nonempty");
            assert!(mean <= max as f64);
            if let Some(p95) = stats.p95_time {
                assert!(p95 <= max);
            }
        }
    });
}

#[test]
fn stationary_density_within_bounds() {
    tvg_testkit::check("stationary_density_within_bounds", |rng, _| {
        let d = gen::markovian_params(rng).stationary_density();
        assert!((0.0..=1.0).contains(&d));
    });
}

#[test]
fn params_json_roundtrip() {
    tvg_testkit::check("params_json_roundtrip", |rng, _| {
        let params = gen::markovian_params(rng);
        let json = params.to_json();
        let back = EdgeMarkovianParams::from_json(&json).expect("deserializable");
        assert_eq!(params.num_nodes, back.num_nodes);
        assert_eq!(params.steps, back.steps);
        // Floats may lose the last ULP through the textual encoding.
        assert!((params.p_birth - back.p_birth).abs() < 1e-12);
        assert!((params.p_death - back.p_death).abs() < 1e-12);
    });
}

#[test]
fn config_json_roundtrip() {
    tvg_testkit::check("config_json_roundtrip", |rng, _| {
        let config = BroadcastConfig {
            source: rng.gen_range(0usize..16),
            mode: match rng.gen_range(0u32..3) {
                0 => ForwardingMode::StoreCarryForward,
                1 => ForwardingMode::NoWaitRelay,
                _ => ForwardingMode::BoundedBuffer(rng.gen_range(0u64..10)),
            },
            source_beacons: rng.gen::<bool>(),
        };
        let back = BroadcastConfig::from_json(&config.to_json()).expect("deserializable");
        assert_eq!(back, config);
    });
}

#[test]
fn trace_contacts_are_normalized() {
    let cfg = Config::named_with_cases("trace_contacts_are_normalized", 48);
    tvg_testkit::check_with(cfg, |rng, _| {
        let trace = gen::markovian_trace(rng);
        for t in 0..trace.len() {
            for &(a, b) in trace.contacts_at(t) {
                assert!(a < b);
                assert!(b < trace.num_nodes());
                assert!(trace.in_contact(a, b, t));
                assert!(trace.in_contact(b, a, t));
            }
        }
    });
}

#[test]
fn tvg_conversion_has_matching_contacts() {
    let cfg = Config::named_with_cases("tvg_conversion_has_matching_contacts", 32);
    tvg_testkit::check_with(cfg, |rng, _| {
        let trace = gen::markovian_trace(rng);
        let g = trace.to_tvg();
        assert_eq!(g.num_nodes(), trace.num_nodes());
        // Every contact is traversable in both directions at its instant.
        for t in 0..trace.len() {
            let snapshot: BTreeSet<(usize, usize)> = g
                .snapshot(&(t as u64))
                .into_iter()
                .map(|e| {
                    let edge = g.edge(e);
                    let (a, b) = (edge.src().index(), edge.dst().index());
                    (a.min(b), a.max(b))
                })
                .collect();
            assert_eq!(&snapshot, trace.contacts_at(t));
        }
    });
}
