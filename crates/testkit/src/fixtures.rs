//! Named deterministic fixtures: the paper's constructions at standard
//! parameters, shared by unit, integration, and bench suites.

use std::collections::BTreeSet;
use tvg_expressivity::anbn::AnbnAutomaton;
use tvg_expressivity::TvgAutomaton;
use tvg_langs::Alphabet;
use tvg_model::generators::{
    line_timetable_tvg, random_periodic_tvg, ring_bus_tvg, scale_free_temporal,
    RandomPeriodicParams,
};
use tvg_model::{NodeId, Tvg};

/// The Figure-1 automaton at the paper's smallest parameters `p=2, q=3`.
#[must_use]
pub fn figure1() -> AnbnAutomaton {
    AnbnAutomaton::smallest()
}

/// The Figure-1 automaton for arbitrary distinct primes.
///
/// # Panics
///
/// Panics if the parameters are not distinct primes (fixtures are for
/// tests; invalid parameters are a test bug).
#[must_use]
pub fn figure1_pq(p: u64, q: u64) -> AnbnAutomaton {
    AnbnAutomaton::new(p, q).expect("fixture parameters must be distinct primes")
}

/// The standard prime pairs theorem tests sweep (small, mixed order).
pub const PRIME_PAIRS: [(u64, u64); 4] = [(2, 3), (3, 2), (2, 5), (5, 3)];

/// The commuter-line timetable used by `examples/bus_network.rs` and the
/// user-story suite: four stops, three timetabled hops, label `'t'`.
#[must_use]
pub fn commuter_line() -> Tvg<u64> {
    let timetable = vec![
        BTreeSet::from([2u64, 10, 18]),
        BTreeSet::from([5u64, 13, 21]),
        BTreeSet::from([6u64, 14, 22]),
    ];
    line_timetable_tvg(4, &timetable, 't')
}

/// A staggered circular bus line: `n` stops, period `period`, label `'r'`.
#[must_use]
pub fn ring_bus(n: usize, period: u64) -> Tvg<u64> {
    ring_bus_tvg(n, period, 'r')
}

/// Horizon the [`scale_free`] fixture's contacts are drawn below (and
/// the natural index/search horizon for it).
pub const SCALE_FREE_HORIZON: u64 = 48;

/// The standard scale-free temporal contact fixture at `n` nodes:
/// preferential-attachment topology, contact instants below
/// [`SCALE_FREE_HORIZON`], fixed seed. The test-scale face of the E8
/// batch workload (the bench regenerates it at much larger `n`).
#[must_use]
pub fn scale_free(n: usize) -> Tvg<u64> {
    scale_free_temporal(n, SCALE_FREE_HORIZON, 17)
}

/// The standard small random-periodic family at a given period —
/// the scale the E3/E4 cross-checking experiments run at.
#[must_use]
pub fn small_periodic_params(period: u64) -> RandomPeriodicParams {
    RandomPeriodicParams {
        num_nodes: 4,
        num_edges: 7,
        period,
        phase_density: 0.5,
        alphabet: Alphabet::ab(),
    }
}

/// The `seed`-th member of a random-periodic TVG family.
#[must_use]
pub fn periodic_family_tvg(params: &RandomPeriodicParams, seed: u64) -> Tvg<u64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    random_periodic_tvg(&mut StdRng::seed_from_u64(seed), params)
}

/// The `seed`-th member of a random-periodic family as a TVG-automaton
/// (initial = node 0, accepting = last node, start time 0).
#[must_use]
pub fn periodic_family_automaton(params: &RandomPeriodicParams, seed: u64) -> TvgAutomaton<u64> {
    TvgAutomaton::new(
        periodic_family_tvg(params, seed),
        BTreeSet::from([NodeId::from_index(0)]),
        BTreeSet::from([NodeId::from_index(params.num_nodes - 1)]),
        0,
    )
    .expect("family automaton is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_expressivity::anbn::{anbn_word, is_anbn};

    #[test]
    fn figure1_fixture_is_the_paper_instance() {
        let aut = figure1();
        assert_eq!((aut.p(), aut.q()), (2, 3));
        assert!(aut.accepts_nowait(&anbn_word(3)));
        assert!(is_anbn(&anbn_word(3)));
    }

    #[test]
    fn commuter_line_shape() {
        let line = commuter_line();
        assert_eq!(line.num_nodes(), 4);
        assert_eq!(line.num_edges(), 3);
    }

    #[test]
    fn periodic_family_is_reproducible() {
        let params = small_periodic_params(3);
        let a = periodic_family_automaton(&params, 9);
        let b = periodic_family_automaton(&params, 9);
        assert_eq!(a.tvg().num_edges(), b.tvg().num_edges());
        for (e1, e2) in a.tvg().edges().zip(b.tvg().edges()) {
            assert_eq!(a.tvg().edge(e1).label(), b.tvg().edge(e2).label());
        }
    }
}
