//! Deterministic cross-crate test harness for the *Waiting in Dynamic
//! Networks* reproduction.
//!
//! Every test suite in the workspace draws its randomness, fixtures, and
//! reference oracles from this crate, so that `cargo test` is
//! byte-for-byte reproducible: the same seeds, the same case counts, the
//! same pass/fail output on every run and platform.
//!
//! * [`rng`] — seeded RNG construction. Suite seeds are derived from
//!   stable FNV-1a hashes of test names; there is no wall-clock and no
//!   `thread_rng` anywhere in a test path (the vendored `rand` shim does
//!   not even provide one).
//! * [`prop`] — a small deterministic property-test loop (the workspace's
//!   offline replacement for `proptest`): fixed case counts, per-case
//!   seeds, and failure messages that name the exact case and seed to
//!   replay.
//! * [`gen`] — random-value generators (words, DFAs, schedule ASTs,
//!   policies, TVG automata, contact traces) shared by every suite.
//! * [`fixtures`] — the paper's named constructions: the Figure-1
//!   automaton, periodic bus networks, random-periodic families.
//! * [`oracles`] — reference language deciders (`is_anbn`, regular
//!   deciders from regexes/DFAs, `Σ*`, the empty language) that theorem
//!   tests compare constructions against.
//! * [`tickscan`] — the pre-index tick-scan journey searches, preserved
//!   as the reference oracle the compiled single-source engine is
//!   checked against.
//! * [`refengine`] — the pre-overhaul generic explorer (BTree-based
//!   frontiers, branchy policy dispatch), preserved as the differential
//!   oracle the cache-local monomorphized cores are pinned
//!   bit-identical to (arrivals, witnesses, work counters).
//! * [`batchcheck`] — the parallel-vs-serial oracle: a batch run at
//!   several thread counts must reproduce the serial reference exactly
//!   (arrivals, witness journeys, and work counters) — against
//!   batch-compiled and live (streaming) indexes alike.
//! * [`streamcheck`] — the live-vs-recompile differential oracle: after
//!   every ingested event batch, the streaming `LiveIndex` must be
//!   structurally identical to a from-scratch recompile of the
//!   accumulated schedule, and a repaired `IncrementalForemost` must
//!   answer exactly like a fresh engine run.
//! * [`speccheck`] — the scenario-runtime oracle: spec text
//!   round-trips through `tvg_scenarios::parse_specs`, reports are
//!   thread-count invariant, and bundled specs reproduce their
//!   checked-in goldens byte for byte.
//! * [`tvgicheck`] — the `.tvgi` round-trip oracle: an index opened
//!   from an on-disk file must answer bit-identically (arrivals,
//!   witnesses, engine counters) to the in-memory compile it
//!   serialized, at every shard count.
//! * [`servecheck`] — the serve-runtime oracles: a pinned
//!   `Arc<ServeSnapshot>` answers byte-identically while the writer
//!   publishes newer epochs, served answers equal from-scratch
//!   computations on their pinned tick prefix, and the logical outcome
//!   is reader-count invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batchcheck;
pub mod fixtures;
pub mod gen;
pub mod oracles;
pub mod prop;
pub mod refengine;
pub mod rng;
pub mod servecheck;
pub mod speccheck;
pub mod streamcheck;
pub mod tickscan;
pub mod tvgicheck;

pub use prop::{check, check_with, Config};
pub use rng::{case_rng, rng_for, seed_for};
