//! A deterministic property-test loop — the workspace's offline
//! replacement for `proptest`.
//!
//! Differences from `proptest`, on purpose:
//!
//! * **Fixed seeds, fixed case counts.** Every run of `cargo test`
//!   executes exactly the same cases in the same order; two consecutive
//!   runs produce identical pass/fail output.
//! * **No shrinking.** Failures print the `(suite seed, case index)`
//!   pair; replaying one case is [`case_rng`]`(seed, index)`, and
//!   generators are explicit functions of the RNG, so minimization is
//!   done by reading the generator, not by a shrinker.
//!
//! ```
//! use rand::Rng;
//!
//! tvg_testkit::check("doubling_is_even", |rng, _case| {
//!     let n: u64 = rng.gen_range(0..1_000_000);
//!     assert_eq!((n * 2) % 2, 0);
//! });
//! ```

use crate::rng::{case_rng, seed_for};
use rand::rngs::StdRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Configuration of one property run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// The property's name: the seed derivation input and the label
    /// printed in failure replay coordinates (kept together so the two
    /// can never diverge).
    pub name: String,
    /// Number of cases to execute (all of them, always — no early exit).
    pub cases: usize,
    /// Seed of the whole run; each case derives its own stream from it.
    pub seed: u64,
}

/// Default number of cases per property, chosen so the full workspace
/// suite stays fast while still sweeping each property's input space.
pub const DEFAULT_CASES: usize = 64;

impl Config {
    /// The standard configuration for a named property: [`DEFAULT_CASES`]
    /// cases under the name-derived seed.
    #[must_use]
    pub fn named(name: &str) -> Config {
        Config {
            name: name.to_string(),
            cases: DEFAULT_CASES,
            seed: seed_for(name),
        }
    }

    /// Same seed derivation with an explicit case count (for properties
    /// whose single case is expensive).
    #[must_use]
    pub fn named_with_cases(name: &str, cases: usize) -> Config {
        Config {
            name: name.to_string(),
            cases,
            seed: seed_for(name),
        }
    }
}

/// Runs `property` for [`DEFAULT_CASES`] deterministic cases derived from
/// `name`.
///
/// The property receives a per-case RNG and the case index. Failures
/// (panics, including `assert!`) are annotated with the suite seed and
/// case index before being re-raised, so the exact instance can be
/// replayed with [`case_rng`].
///
/// # Panics
///
/// Re-raises the property's panic after printing replay coordinates.
pub fn check<F>(name: &str, property: F)
where
    F: FnMut(&mut StdRng, usize),
{
    check_with(Config::named(name), property);
}

/// [`check`] with an explicit [`Config`].
///
/// # Panics
///
/// Re-raises the property's panic after printing replay coordinates.
pub fn check_with<F>(config: Config, mut property: F)
where
    F: FnMut(&mut StdRng, usize),
{
    for case in 0..config.cases {
        let mut rng = case_rng(config.seed, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng, case)));
        if let Err(payload) = outcome {
            eprintln!(
                "property {:?} failed at case {case}/{} \
                 (suite seed {:#018x}; replay with tvg_testkit::case_rng({:#018x}, {case}))",
                config.name, config.cases, config.seed, config.seed,
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn runs_every_case_deterministically() {
        let mut seen = Vec::new();
        check_with(Config::named_with_cases("probe", 10), |rng, case| {
            seen.push((case, rng.gen_range(0..1000u64)));
        });
        assert_eq!(seen.len(), 10);
        let mut again = Vec::new();
        check_with(Config::named_with_cases("probe", 10), |rng, case| {
            again.push((case, rng.gen_range(0..1000u64)));
        });
        assert_eq!(seen, again);
        // Cases draw distinct streams.
        assert!(seen.windows(2).any(|w| w[0].1 != w[1].1));
    }

    #[test]
    fn failure_is_propagated() {
        let result = catch_unwind(|| {
            check_with(Config::named_with_cases("fails", 5), |_rng, case| {
                assert!(case < 3, "boom at case {case}");
            });
        });
        assert!(result.is_err());
    }
}
