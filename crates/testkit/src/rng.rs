//! Seeded RNG construction for deterministic tests.
//!
//! All workspace tests obtain generators through these helpers. Seeds are
//! derived from *names* (usually the test function's name) through a
//! stable hash, so adding or reordering tests never perturbs another
//! test's stream, and a failure message naming `(suite, case)` is enough
//! to replay the exact instance.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-wide base seed. Changing it reshuffles every
/// testkit-derived stream at once (useful for soak runs); tests must pass
/// for any value, but CI pins this default.
pub const BASE_SEED: u64 = 0x7f6a_2012_0000_0001;

/// Stable FNV-1a hash of a name, mixed with [`BASE_SEED`].
///
/// Deliberately *not* `std::hash::Hash`: `DefaultHasher` makes no
/// stability promise across Rust releases, and these seeds must never
/// drift.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^ BASE_SEED
}

/// A deterministic generator for the given suite/test name.
#[must_use]
pub fn rng_for(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// The generator for one case of a property run: independent per case,
/// reproducible from `(suite_seed, case)` alone.
#[must_use]
pub fn case_rng(suite_seed: u64, case: usize) -> StdRng {
    // SplitMix64-style avalanche over the pair, so consecutive case
    // indices yield uncorrelated streams.
    let mut z = suite_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeds_are_stable() {
        // Pinned: these values are the contract that test streams never
        // drift between runs, platforms, or toolchains.
        assert_eq!(seed_for("example"), seed_for("example"));
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for(""), 0xcbf2_9ce4_8422_2325 ^ BASE_SEED);
    }

    #[test]
    fn case_rngs_are_independent_and_reproducible() {
        let s = seed_for("suite");
        let a1 = case_rng(s, 0).next_u64();
        let a2 = case_rng(s, 0).next_u64();
        let b = case_rng(s, 1).next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
