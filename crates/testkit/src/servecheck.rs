//! The serve-runtime oracles: snapshot pinning, serve-vs-offline
//! equivalence, and reader-count invariance.
//!
//! `tvg_serve` promises three things the `serve_props` suite pins on
//! generated workloads (extending the `streamcheck` oracle family from
//! the live index to the publication layer above it):
//!
//! 1. **Pinning** — a reader holding an old `Arc<ServeSnapshot>` keeps
//!    getting byte-identical answers from it while the writer publishes
//!    arbitrarily many newer epochs ([`assert_pinned_snapshot_is_frozen`]
//!    checks this *during* real concurrent publication, not after it);
//! 2. **Offline equivalence** — every served answer equals a
//!    from-scratch computation on the epoch its timestamp pins: replay
//!    exactly that prefix of ingest ticks into a fresh stream and run a
//!    fresh engine pass ([`assert_serve_matches_offline`]);
//! 3. **Reader-count invariance** — the logical outcome (answers,
//!    epochs, grouping, work counters, publication counters) is
//!    identical at every reader count
//!    ([`assert_serve_is_reader_count_invariant`]), which is the
//!    property that lets serve reports be golden-gated in CI;
//! 4. **O(changes) publication is observable and deterministic** — the
//!    per-epoch sharing/copying counters of a concurrent run equal a
//!    single-threaded offline replay ([`assert_publication_counters`]),
//!    and every structure-sharing snapshot is byte-identical to a
//!    from-scratch rebuild of its epoch's tick prefix
//!    ([`assert_snapshots_match_rebuild`]).

use std::sync::Arc;
use tvg_journeys::{foremost_tree_multi, SearchLimits, WaitingPolicy};
use tvg_model::stream::{LiveIndex, StreamEvent, TvgStream};
use tvg_model::{NodeId, TemporalIndex, Tvg};
use tvg_serve::{
    availability, epoch_of, serve, Answer, EpochRing, PublishStats, Request, ServeConfig,
    ServeSnapshot, TimedRequest,
};

/// Replays `g` into a fresh stream and chops the feed into ingest ticks
/// of `chunk` events (the serve writer's workload shape).
///
/// # Panics
///
/// Panics if `horizon + 1` is unrepresentable or `chunk` is zero.
#[must_use]
pub fn replay_ticks(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
) -> (TvgStream<u64>, Vec<Vec<StreamEvent<u64>>>) {
    assert!(chunk > 0, "tick chunk must be positive");
    let (stream, events) = TvgStream::replay_of(g, &horizon).expect("representable horizon");
    let ticks = events.chunks(chunk).map(<[_]>::to_vec).collect();
    (stream, ticks)
}

/// The full answer surface of one snapshot for a single-seed query:
/// every node's foremost arrival, in node order. Two snapshots are
/// "byte-identical" to a client exactly when these vectors are equal.
fn answer_surface(
    snapshot: &Arc<ServeSnapshot<u64>>,
    src: NodeId,
    policy: &WaitingPolicy<u64>,
    limits: &SearchLimits<u64>,
) -> Vec<Option<u64>> {
    let tree = foremost_tree_multi(snapshot, &[(src, 0u64)], policy, limits);
    snapshot
        .tvg()
        .nodes()
        .map(|n| tree.arrival(n).copied())
        .collect()
}

/// Asserts the pinning property: a reader that acquired epoch 0 keeps
/// computing byte-identical answers from it **while** a concurrent
/// writer ingests every tick and publishes every later epoch.
///
/// The reader re-derives its full answer surface on every poll of the
/// ring — if publication mutated anything reachable from the pinned
/// `Arc`, some poll would diverge from the pre-publication reference.
///
/// # Panics
///
/// Panics (with `label` in the message) if any poll's answers diverge
/// from the reference, or if the writer fails to publish every epoch.
pub fn assert_pinned_snapshot_is_frozen(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
    policy: &WaitingPolicy<u64>,
    label: &str,
) {
    let (stream, ticks) = replay_ticks(g, horizon, chunk);
    let hops = usize::try_from(horizon.saturating_add(1))
        .unwrap_or(usize::MAX)
        .min(64);
    let limits = SearchLimits::new(horizon, hops);
    let src = NodeId::from_index(0);
    let ring: EpochRing<u64> = EpochRing::new(ticks.len() + 1);
    ring.publish(ServeSnapshot::new(0, stream.snapshot()));
    let pinned = ring.get(0).expect("epoch 0 just published");
    let reference = answer_surface(&pinned, src, policy, &limits);

    std::thread::scope(|scope| {
        let (ring, ticks) = (&ring, &ticks);
        let writer = scope.spawn(move || {
            let mut stream = stream;
            for (i, tick) in ticks.iter().enumerate() {
                stream.ingest(tick).expect("replay feeds are valid");
                ring.publish(ServeSnapshot::new(i as u64 + 1, stream.snapshot()));
            }
        });
        // Poll the pinned snapshot throughout the writer's run: every
        // answer surface must match the pre-publication reference.
        let mut polls = 0u32;
        while ring.published() < ring.capacity() {
            assert_eq!(
                answer_surface(&pinned, src, policy, &limits),
                reference,
                "{label}: pinned epoch-0 answers drifted mid-publication (poll {polls})"
            );
            polls += 1;
        }
        writer.join().expect("writer does not panic");
    });
    assert_eq!(
        ring.published(),
        ticks.len() + 1,
        "{label}: writer published every epoch"
    );
    // One final check after all epochs exist: the old Arc still answers
    // from its frozen world even though the ring has moved on.
    assert_eq!(
        answer_surface(&pinned, src, policy, &limits),
        reference,
        "{label}: pinned epoch-0 answers drifted after publication finished"
    );
    assert_eq!(
        ring.latest().expect("published").epoch(),
        ticks.len() as u64,
        "{label}: latest epoch"
    );
}

/// The offline reference answer for one request against one index: the
/// same seeds and reads the serve runner uses, on a freshly built
/// prefix of the schedule.
fn offline_answer<I: TemporalIndex<u64>>(
    index: &I,
    request: Request,
    config: &ServeConfig,
) -> Answer {
    let source = NodeId::from_index(request.src());
    let seeds: Vec<(NodeId, u64)> = match request {
        Request::Foremost { .. } | Request::Matrix { .. } => vec![(source, config.start)],
        Request::Broadcast { .. } => (config.start..=config.limits.horizon)
            .map(|t| (source, t))
            .collect(),
    };
    let tree = foremost_tree_multi(index, &seeds, &config.policy, &config.limits);
    match request {
        Request::Foremost { dst, .. } => {
            Answer::Arrival(tree.arrival(NodeId::from_index(dst)).copied())
        }
        Request::Matrix { .. } => Answer::Reached(tree.num_reached() as u64),
        Request::Broadcast { .. } => Answer::Informed(tree.num_reached() as u64),
    }
}

/// Asserts the serve-vs-offline differential: every answer a concurrent
/// [`serve`] run produced equals a from-scratch computation against a
/// fresh stream that ingested exactly the tick prefix of the request's
/// pinned epoch — and the pinned epoch itself equals the
/// [`epoch_of`]/[`availability`] timestamp arithmetic.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first diverging epoch or
/// answer.
pub fn assert_serve_matches_offline(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
    requests: &[TimedRequest],
    config: &ServeConfig,
    label: &str,
) {
    let (stream, ticks) = replay_ticks(g, horizon, chunk);
    let outcome = serve(stream, &ticks, requests, config).expect("replay feeds are valid");
    assert_eq!(
        outcome.served.len(),
        requests.len(),
        "{label}: every request answered"
    );
    let avail = availability(&ticks);

    // Build the offline reference worlds once: the index after each
    // tick prefix, exactly what each epoch's snapshot froze.
    let (mut fresh, _) = replay_ticks(g, horizon, chunk);
    let mut worlds = vec![fresh.snapshot()];
    for tick in &ticks {
        fresh.ingest(tick).expect("replay feeds are valid");
        worlds.push(fresh.snapshot());
    }

    for (i, served) in outcome.served.iter().enumerate() {
        let expected_epoch = epoch_of(&avail, requests[i].at);
        assert_eq!(
            served.epoch, expected_epoch,
            "{label}: request {i} pinned to the wrong epoch"
        );
        let world = &worlds[usize::try_from(expected_epoch).expect("epochs fit in usize")];
        let expected = offline_answer(world, requests[i].request, config);
        assert_eq!(
            served.answer, expected,
            "{label}: request {i} ({:?} at {}) diverges from the offline epoch-{expected_epoch} reference",
            requests[i].request, requests[i].at
        );
    }
}

/// Asserts that the logical serve outcome — answers, pinned epochs,
/// publication count, grouping, and summed work counters — is identical
/// at every reader count in `readers`.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first reader count whose
/// outcome differs from the first one's.
pub fn assert_serve_is_reader_count_invariant(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
    requests: &[TimedRequest],
    config: &ServeConfig,
    readers: &[usize],
    label: &str,
) {
    let mut reference = None;
    for &count in readers {
        let (stream, ticks) = replay_ticks(g, horizon, chunk);
        let config = ServeConfig {
            readers: count,
            ..config.clone()
        };
        let outcome = serve(stream, &ticks, requests, &config).expect("replay feeds are valid");
        let logical = (
            outcome.served,
            outcome.epochs_published,
            outcome.grouped_runs,
            outcome.stats,
            // Publication counters are part of the logical outcome too:
            // readers only clone the outer snapshot `Arc`, never inner
            // chunk handles, so sharing/copying is writer-determined.
            outcome.publications,
        );
        match &reference {
            None => reference = Some((readers[0], logical)),
            Some((first, expected)) => assert_eq!(
                expected, &logical,
                "{label}: logical outcome at {count} readers diverges from {first} readers"
            ),
        }
    }
}

/// Replays the serve writer's publication schedule offline — same
/// ticks, same *retained* snapshots (retention is what forces the
/// copy-on-write the counters measure) — and returns the
/// [`PublishStats`] sequence the writer must produce.
///
/// # Panics
///
/// Panics if the replay feed is invalid (it never is for a
/// [`replay_ticks`] feed).
#[must_use]
pub fn offline_publications(g: &Tvg<u64>, horizon: u64, chunk: usize) -> Vec<PublishStats> {
    let (mut stream, ticks) = replay_ticks(g, horizon, chunk);
    let mut retained: Vec<LiveIndex<u64>> = Vec::with_capacity(ticks.len() + 1);
    let mut stats = Vec::with_capacity(ticks.len() + 1);
    let mut last_copied = 0u64;
    let mut publish = |stream: &TvgStream<u64>,
                       retained: &mut Vec<LiveIndex<u64>>,
                       last_copied: &mut u64,
                       epoch: u64,
                       events: u64| {
        retained.push(stream.snapshot());
        let copied = stream.index().chunks_copied();
        stats.push(PublishStats {
            epoch,
            events,
            chunks_frozen: stream.index().chunks_frozen(),
            chunks_copied: copied - *last_copied,
        });
        *last_copied = copied;
    };
    publish(&stream, &mut retained, &mut last_copied, 0, 0);
    for (i, tick) in ticks.iter().enumerate() {
        stream.ingest(tick).expect("replay feeds are valid");
        publish(
            &stream,
            &mut retained,
            &mut last_copied,
            i as u64 + 1,
            tick.len() as u64,
        );
    }
    stats
}

/// Asserts that a concurrent [`serve`] run's publication counters equal
/// the single-threaded offline replay of the same ticks: per-epoch event
/// counts, shared-chunk counts, and copy-on-write counts all pinned.
/// This is the determinism claim behind exposing the counters in the
/// scenario timing channel.
///
/// # Panics
///
/// Panics (with `label` in the message) if the counters diverge.
pub fn assert_publication_counters(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
    requests: &[TimedRequest],
    config: &ServeConfig,
    label: &str,
) {
    let (stream, ticks) = replay_ticks(g, horizon, chunk);
    let outcome = serve(stream, &ticks, requests, config).expect("replay feeds are valid");
    let expected = offline_publications(g, horizon, chunk);
    assert_eq!(
        outcome.publications, expected,
        "{label}: publication counters diverge from the offline replay"
    );
    for (stats, tick) in outcome.publications.iter().skip(1).zip(&ticks) {
        assert_eq!(
            stats.events,
            tick.len() as u64,
            "{label}: epoch {} event count is not its tick size",
            stats.epoch
        );
    }
}

/// Asserts that two live indexes are structurally identical: horizon,
/// node/edge counts, per-edge presence spans and monotonicity, per-node
/// adjacency, edge destinations, and the global event timeline.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first divergence.
pub fn assert_index_structure_eq(a: &LiveIndex<u64>, b: &LiveIndex<u64>, label: &str) {
    assert_eq!(a.horizon(), b.horizon(), "{label}: horizon diverges");
    assert_eq!(
        a.tvg().num_nodes(),
        b.tvg().num_nodes(),
        "{label}: node count diverges"
    );
    assert_eq!(
        a.tvg().num_edges(),
        b.tvg().num_edges(),
        "{label}: edge count diverges"
    );
    for e in b.tvg().edges() {
        assert_eq!(
            a.presence(e).spans(),
            b.presence(e).spans(),
            "{label}: presence spans of {e} diverge"
        );
        assert_eq!(
            a.arrival_is_monotone(e),
            b.arrival_is_monotone(e),
            "{label}: monotonicity cache of {e} diverges"
        );
        assert_eq!(a.dst(e), b.dst(e), "{label}: destination of {e} diverges");
    }
    for n in b.tvg().nodes() {
        assert_eq!(
            a.out_edges(n),
            b.out_edges(n),
            "{label}: adjacency of {n} diverges"
        );
    }
    let a_events: Vec<_> = a.edge_events().cloned().collect();
    let b_events: Vec<_> = b.edge_events().cloned().collect();
    assert_eq!(a_events, b_events, "{label}: edge-event timeline diverges");
}

/// Asserts that structure-sharing snapshots are byte-identical to
/// from-scratch rebuilds: retain the snapshot of every epoch while the
/// stream keeps mutating underneath (the chunk-sharing worst case),
/// then compare each one structurally against a fresh stream that
/// ingested exactly that epoch's tick prefix and shares nothing.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first epoch whose
/// retained snapshot diverges from its rebuild.
pub fn assert_snapshots_match_rebuild(g: &Tvg<u64>, horizon: u64, chunk: usize, label: &str) {
    let (mut stream, ticks) = replay_ticks(g, horizon, chunk);
    let mut snapshots = vec![stream.snapshot()];
    for tick in &ticks {
        stream.ingest(tick).expect("replay feeds are valid");
        snapshots.push(stream.snapshot());
    }
    for (epoch, snapshot) in snapshots.iter().enumerate() {
        let (mut fresh, _) = replay_ticks(g, horizon, chunk);
        for tick in &ticks[..epoch] {
            fresh.ingest(tick).expect("replay feeds are valid");
        }
        assert_index_structure_eq(
            snapshot,
            fresh.index(),
            &format!("{label}: epoch {epoch} snapshot vs rebuild"),
        );
    }
}
