//! The serve-runtime oracles: snapshot pinning, serve-vs-offline
//! equivalence, and reader-count invariance.
//!
//! `tvg_serve` promises three things the `serve_props` suite pins on
//! generated workloads (extending the `streamcheck` oracle family from
//! the live index to the publication layer above it):
//!
//! 1. **Pinning** — a reader holding an old `Arc<ServeSnapshot>` keeps
//!    getting byte-identical answers from it while the writer publishes
//!    arbitrarily many newer epochs ([`assert_pinned_snapshot_is_frozen`]
//!    checks this *during* real concurrent publication, not after it);
//! 2. **Offline equivalence** — every served answer equals a
//!    from-scratch computation on the epoch its timestamp pins: replay
//!    exactly that prefix of ingest ticks into a fresh stream and run a
//!    fresh engine pass ([`assert_serve_matches_offline`]);
//! 3. **Reader-count invariance** — the logical outcome (answers,
//!    epochs, grouping, work counters) is identical at every reader
//!    count ([`assert_serve_is_reader_count_invariant`]), which is the
//!    property that lets serve reports be golden-gated in CI.

use std::sync::Arc;
use tvg_journeys::{foremost_tree_multi, SearchLimits, WaitingPolicy};
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::{NodeId, TemporalIndex, Tvg};
use tvg_serve::{
    availability, epoch_of, serve, Answer, EpochRing, Request, ServeConfig, ServeSnapshot,
    TimedRequest,
};

/// Replays `g` into a fresh stream and chops the feed into ingest ticks
/// of `chunk` events (the serve writer's workload shape).
///
/// # Panics
///
/// Panics if `horizon + 1` is unrepresentable or `chunk` is zero.
#[must_use]
pub fn replay_ticks(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
) -> (TvgStream<u64>, Vec<Vec<StreamEvent<u64>>>) {
    assert!(chunk > 0, "tick chunk must be positive");
    let (stream, events) = TvgStream::replay_of(g, &horizon).expect("representable horizon");
    let ticks = events.chunks(chunk).map(<[_]>::to_vec).collect();
    (stream, ticks)
}

/// The full answer surface of one snapshot for a single-seed query:
/// every node's foremost arrival, in node order. Two snapshots are
/// "byte-identical" to a client exactly when these vectors are equal.
fn answer_surface(
    snapshot: &Arc<ServeSnapshot<u64>>,
    src: NodeId,
    policy: &WaitingPolicy<u64>,
    limits: &SearchLimits<u64>,
) -> Vec<Option<u64>> {
    let tree = foremost_tree_multi(snapshot, &[(src, 0u64)], policy, limits);
    snapshot
        .tvg()
        .nodes()
        .map(|n| tree.arrival(n).copied())
        .collect()
}

/// Asserts the pinning property: a reader that acquired epoch 0 keeps
/// computing byte-identical answers from it **while** a concurrent
/// writer ingests every tick and publishes every later epoch.
///
/// The reader re-derives its full answer surface on every poll of the
/// ring — if publication mutated anything reachable from the pinned
/// `Arc`, some poll would diverge from the pre-publication reference.
///
/// # Panics
///
/// Panics (with `label` in the message) if any poll's answers diverge
/// from the reference, or if the writer fails to publish every epoch.
pub fn assert_pinned_snapshot_is_frozen(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
    policy: &WaitingPolicy<u64>,
    label: &str,
) {
    let (stream, ticks) = replay_ticks(g, horizon, chunk);
    let hops = usize::try_from(horizon.saturating_add(1))
        .unwrap_or(usize::MAX)
        .min(64);
    let limits = SearchLimits::new(horizon, hops);
    let src = NodeId::from_index(0);
    let ring: EpochRing<u64> = EpochRing::new(ticks.len() + 1);
    ring.publish(ServeSnapshot::new(0, stream.snapshot()));
    let pinned = ring.get(0).expect("epoch 0 just published");
    let reference = answer_surface(&pinned, src, policy, &limits);

    std::thread::scope(|scope| {
        let (ring, ticks) = (&ring, &ticks);
        let writer = scope.spawn(move || {
            let mut stream = stream;
            for (i, tick) in ticks.iter().enumerate() {
                stream.ingest(tick).expect("replay feeds are valid");
                ring.publish(ServeSnapshot::new(i as u64 + 1, stream.snapshot()));
            }
        });
        // Poll the pinned snapshot throughout the writer's run: every
        // answer surface must match the pre-publication reference.
        let mut polls = 0u32;
        while ring.published() < ring.capacity() {
            assert_eq!(
                answer_surface(&pinned, src, policy, &limits),
                reference,
                "{label}: pinned epoch-0 answers drifted mid-publication (poll {polls})"
            );
            polls += 1;
        }
        writer.join().expect("writer does not panic");
    });
    assert_eq!(
        ring.published(),
        ticks.len() + 1,
        "{label}: writer published every epoch"
    );
    // One final check after all epochs exist: the old Arc still answers
    // from its frozen world even though the ring has moved on.
    assert_eq!(
        answer_surface(&pinned, src, policy, &limits),
        reference,
        "{label}: pinned epoch-0 answers drifted after publication finished"
    );
    assert_eq!(
        ring.latest().expect("published").epoch(),
        ticks.len() as u64,
        "{label}: latest epoch"
    );
}

/// The offline reference answer for one request against one index: the
/// same seeds and reads the serve runner uses, on a freshly built
/// prefix of the schedule.
fn offline_answer<I: TemporalIndex<u64>>(
    index: &I,
    request: Request,
    config: &ServeConfig,
) -> Answer {
    let source = NodeId::from_index(request.src());
    let seeds: Vec<(NodeId, u64)> = match request {
        Request::Foremost { .. } | Request::Matrix { .. } => vec![(source, config.start)],
        Request::Broadcast { .. } => (config.start..=config.limits.horizon)
            .map(|t| (source, t))
            .collect(),
    };
    let tree = foremost_tree_multi(index, &seeds, &config.policy, &config.limits);
    match request {
        Request::Foremost { dst, .. } => {
            Answer::Arrival(tree.arrival(NodeId::from_index(dst)).copied())
        }
        Request::Matrix { .. } => Answer::Reached(tree.num_reached() as u64),
        Request::Broadcast { .. } => Answer::Informed(tree.num_reached() as u64),
    }
}

/// Asserts the serve-vs-offline differential: every answer a concurrent
/// [`serve`] run produced equals a from-scratch computation against a
/// fresh stream that ingested exactly the tick prefix of the request's
/// pinned epoch — and the pinned epoch itself equals the
/// [`epoch_of`]/[`availability`] timestamp arithmetic.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first diverging epoch or
/// answer.
pub fn assert_serve_matches_offline(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
    requests: &[TimedRequest],
    config: &ServeConfig,
    label: &str,
) {
    let (stream, ticks) = replay_ticks(g, horizon, chunk);
    let outcome = serve(stream, &ticks, requests, config).expect("replay feeds are valid");
    assert_eq!(
        outcome.served.len(),
        requests.len(),
        "{label}: every request answered"
    );
    let avail = availability(&ticks);

    // Build the offline reference worlds once: the index after each
    // tick prefix, exactly what each epoch's snapshot froze.
    let (mut fresh, _) = replay_ticks(g, horizon, chunk);
    let mut worlds = vec![fresh.snapshot()];
    for tick in &ticks {
        fresh.ingest(tick).expect("replay feeds are valid");
        worlds.push(fresh.snapshot());
    }

    for (i, served) in outcome.served.iter().enumerate() {
        let expected_epoch = epoch_of(&avail, requests[i].at);
        assert_eq!(
            served.epoch, expected_epoch,
            "{label}: request {i} pinned to the wrong epoch"
        );
        let world = &worlds[usize::try_from(expected_epoch).expect("epochs fit in usize")];
        let expected = offline_answer(world, requests[i].request, config);
        assert_eq!(
            served.answer, expected,
            "{label}: request {i} ({:?} at {}) diverges from the offline epoch-{expected_epoch} reference",
            requests[i].request, requests[i].at
        );
    }
}

/// Asserts that the logical serve outcome — answers, pinned epochs,
/// publication count, grouping, and summed work counters — is identical
/// at every reader count in `readers`.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first reader count whose
/// outcome differs from the first one's.
pub fn assert_serve_is_reader_count_invariant(
    g: &Tvg<u64>,
    horizon: u64,
    chunk: usize,
    requests: &[TimedRequest],
    config: &ServeConfig,
    readers: &[usize],
    label: &str,
) {
    let mut reference = None;
    for &count in readers {
        let (stream, ticks) = replay_ticks(g, horizon, chunk);
        let config = ServeConfig {
            readers: count,
            ..config.clone()
        };
        let outcome = serve(stream, &ticks, requests, &config).expect("replay feeds are valid");
        let logical = (
            outcome.served,
            outcome.epochs_published,
            outcome.grouped_runs,
            outcome.stats,
        );
        match &reference {
            None => reference = Some((readers[0], logical)),
            Some((first, expected)) => assert_eq!(
                expected, &logical,
                "{label}: logical outcome at {count} readers diverges from {first} readers"
            ),
        }
    }
}
