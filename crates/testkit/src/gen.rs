//! Random-value generators shared by every workspace test suite.
//!
//! Each generator is an explicit function of the RNG — the testkit
//! analogue of a `proptest` strategy. Given equal RNG states they produce
//! equal values, which is what makes whole suites replayable from a
//! `(seed, case)` pair.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tvg_dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
use tvg_dynnet::EvolvingTrace;
use tvg_expressivity::TvgAutomaton;
use tvg_journeys::WaitingPolicy;
use tvg_langs::{Alphabet, Dfa, Word};
use tvg_model::generators::{random_periodic_tvg, scale_free_temporal, RandomPeriodicParams};
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::{Latency, NodeId, Presence, Tvg};

/// A uniform `u128` (the `rand` shim's `gen` covers only one machine
/// word).
pub fn u128_any<R: Rng + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.gen::<u64>()) << 64) | u128::from(rng.gen::<u64>())
}

/// A uniform `f64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi` or either bound is not finite.
pub fn f64_in<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "bad range [{lo}, {hi})"
    );
    lo + rng.gen::<f64>() * (hi - lo)
}

/// A random word over `alphabet` with length drawn uniformly from
/// `0..=max_len`.
pub fn word<R: Rng + ?Sized>(rng: &mut R, alphabet: &Alphabet, max_len: usize) -> Word {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| alphabet.letter(rng.gen_range(0..alphabet.len())))
        .collect()
}

/// A random total DFA over `alphabet` with `2..=max_states` states,
/// uniform transitions, uniform accepting set.
///
/// # Panics
///
/// Panics if `max_states < 2`.
pub fn dfa<R: Rng + ?Sized>(rng: &mut R, alphabet: &Alphabet, max_states: usize) -> Dfa {
    assert!(max_states >= 2, "need at least two states");
    let n = rng.gen_range(2..=max_states);
    let delta: Vec<Vec<usize>> = (0..n)
        .map(|_| (0..alphabet.len()).map(|_| rng.gen_range(0..n)).collect())
        .collect();
    let start = rng.gen_range(0..n);
    let accepting: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
    Dfa::new(alphabet.clone(), delta, start, accepting).expect("generated shape is valid")
}

/// A random presence AST over `u64`: the leaves and combinators of the
/// schedule algebra (excluding `Custom`, which is covered by targeted
/// unit tests), recursing up to `depth`.
pub fn presence<R: Rng + ?Sized>(rng: &mut R, depth: usize) -> Presence<u64> {
    if depth == 0 || rng.gen_bool(0.55) {
        return match rng.gen_range(0..8u32) {
            0 => Presence::Always,
            1 => Presence::Never,
            2 => Presence::At(rng.gen_range(0..40)),
            3 => Presence::After(rng.gen_range(0..40)),
            4 => Presence::Before(rng.gen_range(1..40)),
            5 => {
                let (a, b) = (rng.gen_range(0..20), rng.gen_range(0..20));
                Presence::Window {
                    from: a.min(b),
                    until: a.max(b),
                }
            }
            6 => {
                let count = rng.gen_range(0..5);
                Presence::FiniteSet((0..count).map(|_| rng.gen_range(0..40)).collect())
            }
            _ => {
                let period = rng.gen_range(1..8);
                let count = rng.gen_range(0..4);
                Presence::Periodic {
                    period,
                    phases: (0..count).map(|_| rng.gen_range(0..period)).collect(),
                }
            }
        };
    }
    match rng.gen_range(0..5u32) {
        0 => Presence::Not(Box::new(presence(rng, depth - 1))),
        1 => Presence::And(
            Box::new(presence(rng, depth - 1)),
            Box::new(presence(rng, depth - 1)),
        ),
        2 => Presence::Or(
            Box::new(presence(rng, depth - 1)),
            Box::new(presence(rng, depth - 1)),
        ),
        3 => presence(rng, depth - 1).dilate(rng.gen_range(1..5)),
        _ => Presence::PqPower { p: 2, q: 3 },
    }
}

/// A random latency: constant, affine, or dilated-constant.
pub fn latency<R: Rng + ?Sized>(rng: &mut R) -> Latency<u64> {
    match rng.gen_range(0..3u32) {
        0 => Latency::Const(rng.gen_range(0..10)),
        1 => Latency::Affine {
            mul: rng.gen_range(0..4),
            add: rng.gen_range(0..10),
        },
        _ => Latency::Const(rng.gen_range(0..6)).dilate(rng.gen_range(1..4)),
    }
}

/// A random waiting policy: no-wait, a small bound, or unbounded.
pub fn policy<R: Rng + ?Sized>(rng: &mut R) -> WaitingPolicy<u64> {
    match rng.gen_range(0..3u32) {
        0 => WaitingPolicy::NoWait,
        1 => WaitingPolicy::Bounded(rng.gen_range(0..5)),
        _ => WaitingPolicy::Unbounded,
    }
}

/// Random parameters for a small periodic TVG (the scale every
/// cross-checking property uses).
pub fn periodic_params<R: Rng + ?Sized>(rng: &mut R) -> RandomPeriodicParams {
    RandomPeriodicParams {
        num_nodes: rng.gen_range(2..6),
        num_edges: rng.gen_range(2..10),
        period: rng.gen_range(2..5),
        phase_density: 0.45,
        alphabet: Alphabet::ab(),
    }
}

/// A random periodic TVG drawn via [`periodic_params`]. The graph's own
/// randomness is forked from `rng` so callers keep one seed per case.
pub fn periodic_tvg<R: Rng + ?Sized>(rng: &mut R) -> Tvg<u64> {
    let params = periodic_params(rng);
    random_periodic_tvg(&mut StdRng::seed_from_u64(rng.gen::<u64>()), &params)
}

/// A random periodic TVG-automaton (initial = node 0, accepting = last
/// node, start time 0) together with its period.
pub fn periodic_automaton<R: Rng + ?Sized>(rng: &mut R) -> (TvgAutomaton<u64>, u64) {
    let params = periodic_params(rng);
    let g = random_periodic_tvg(&mut StdRng::seed_from_u64(rng.gen::<u64>()), &params);
    let aut = TvgAutomaton::new(
        g,
        BTreeSet::from([NodeId::from_index(0)]),
        BTreeSet::from([NodeId::from_index(params.num_nodes - 1)]),
        0,
    )
    .expect("generated automaton is structurally valid");
    (aut, params.period)
}

/// A deterministic streamed-ingestion script: a prepared [`TvgStream`]
/// (nodes and edges declared, no events yet) plus the ordered batches
/// to feed it. Produced by [`event_stream`]; consumed by the
/// `stream_props` differential property suite, which re-checks the
/// live-vs-recompile oracle after every batch.
#[derive(Debug, Clone)]
pub struct EventScript {
    /// Which fixture family the base schedule came from.
    pub label: &'static str,
    /// The stream, at its *initial* horizon, before any batch.
    pub stream: TvgStream<u64>,
    /// Event batches in feed order (may include `NewEdge` injections
    /// and one mid-script `ExtendHorizon`).
    pub batches: Vec<Vec<StreamEvent<u64>>>,
    /// The horizon after all batches (equals the initial horizon when
    /// no extension was generated).
    pub final_horizon: u64,
}

/// A random streamed-ingestion script over one of the standard fixture
/// families (commuter line, random-periodic, scale-free temporal).
///
/// The base schedule is compiled once and replayed as interleaved
/// up/down events chopped into randomly-sized batches; with the base
/// events the script interleaves a few never-before-seen edges
/// (`NewEdge` followed by their own up/down, possibly a zero-length
/// pair, possibly left open) and, usually, starts at a reduced horizon
/// with a mid-script `ExtendHorizon` once the feed reaches it.
pub fn event_stream<R: Rng + ?Sized>(rng: &mut R) -> EventScript {
    let (label, base, full_horizon): (&'static str, Tvg<u64>, u64) = match rng.gen_range(0..3u32) {
        0 => ("commuter", crate::fixtures::commuter_line(), 24),
        1 => {
            let params = periodic_params(rng);
            let g = random_periodic_tvg(&mut StdRng::seed_from_u64(rng.gen::<u64>()), &params);
            ("periodic", g, 4 * params.period + rng.gen_range(0..4))
        }
        _ => {
            let n = rng.gen_range(5..10);
            let horizon = rng.gen_range(16..28);
            let g = scale_free_temporal(n, horizon, rng.gen::<u64>());
            ("scale_free", g, horizon)
        }
    };
    // Base feed: the compiled schedule replayed in timeline order.
    let (_, base_events) =
        TvgStream::replay_of(&base, &full_horizon).expect("generated horizons are small");
    // Keyed merge list: (event time, generation seq). The stable key
    // order keeps per-edge causality (NewEdge before Up before Down).
    let mut keyed: Vec<(u64, usize, StreamEvent<u64>)> = Vec::new();
    for ev in base_events {
        let key = match &ev {
            StreamEvent::Up { at, .. } | StreamEvent::Down { at, .. } => *at,
            _ => unreachable!("replay emits only up/down"),
        };
        keyed.push((key, keyed.len(), ev));
    }
    // Injected fresh edges: ids continue after the base graph's, in the
    // sorted order their NewEdge events will be ingested.
    let num_nodes = base.num_nodes();
    let mut injections: Vec<(u64, NodeId, NodeId, Option<u64>)> = (0..rng.gen_range(0..3u32))
        .map(|_| {
            let up = rng.gen_range(0..=full_horizon);
            let src = NodeId::from_index(rng.gen_range(0..num_nodes));
            let dst = NodeId::from_index(rng.gen_range(0..num_nodes));
            // Down at the same instant (zero-length), later, or never.
            let down = match rng.gen_range(0..4u32) {
                0 => Some(up),
                1 | 2 => Some(rng.gen_range(up..=full_horizon)),
                _ => None,
            };
            (up, src, dst, down)
        })
        .collect();
    injections.sort_by_key(|(up, ..)| *up);
    for (i, (up, src, dst, down)) in injections.into_iter().enumerate() {
        let edge = tvg_model::EdgeId::from_index(base.num_edges() + i);
        let seq = keyed.len();
        keyed.push((
            up,
            seq,
            StreamEvent::NewEdge {
                src,
                dst,
                label: 'z',
                latency: Latency::unit(),
            },
        ));
        keyed.push((up, seq + 1, StreamEvent::Up { edge, at: up }));
        if let Some(down) = down {
            keyed.push((down, seq + 2, StreamEvent::Down { edge, at: down }));
        }
    }
    keyed.sort_by_key(|entry| (entry.0, entry.1));

    // Usually start below the full horizon and extend mid-feed.
    let initial_horizon = if rng.gen_bool(0.7) && full_horizon > 2 {
        rng.gen_range(full_horizon / 2..full_horizon)
    } else {
        full_horizon
    };
    let (stream, _) =
        TvgStream::replay_of(&base, &initial_horizon).expect("generated horizons are small");
    let mut batches: Vec<Vec<StreamEvent<u64>>> = Vec::new();
    let mut batch: Vec<StreamEvent<u64>> = Vec::new();
    let mut extended = initial_horizon == full_horizon;
    for (key, _, ev) in keyed {
        if !extended && key > initial_horizon {
            if !batch.is_empty() {
                batches.push(std::mem::take(&mut batch));
            }
            batches.push(vec![StreamEvent::ExtendHorizon { to: full_horizon }]);
            extended = true;
        }
        batch.push(ev);
        if rng.gen_bool(0.3) {
            batches.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    if !extended {
        batches.push(vec![StreamEvent::ExtendHorizon { to: full_horizon }]);
    }
    EventScript {
        label,
        stream,
        batches,
        final_horizon: full_horizon,
    }
}

/// A random *churn* script: a feed that shrinks the node set mid-stream
/// (and usually grows it back). Two families:
///
/// * `peer_lifecycle` — the model generator's native join/leave feed,
///   valid by construction, ingested into an initially **empty** stream
///   (every node arrives as a `NewNode` event);
/// * `commuter_churn` / `scale_free_churn` — a standard fixture's
///   replay with 1–2 node departures injected. Incident events strictly
///   after a departure are dropped (the leave itself closes any open
///   incident span); incident events *at* the departure instant are
///   kept, so leaves land on just-opened (zero-length) and just-closed
///   spans too. About half the victims rejoin later under a fresh id
///   with a live edge of their own.
pub fn churn_script<R: Rng + ?Sized>(rng: &mut R) -> EventScript {
    let chop = |rng: &mut R, feed: Vec<StreamEvent<u64>>| -> Vec<Vec<StreamEvent<u64>>> {
        let mut batches = Vec::new();
        let mut batch = Vec::new();
        for ev in feed {
            batch.push(ev);
            if rng.gen_bool(0.25) {
                batches.push(std::mem::take(&mut batch));
            }
        }
        if !batch.is_empty() {
            batches.push(batch);
        }
        batches
    };
    if rng.gen_bool(0.4) {
        let n = rng.gen_range(4..9usize);
        let swaps = rng.gen_range(1..4usize);
        let horizon = rng.gen_range(16..40u64);
        let feed = tvg_model::generators::peer_lifecycle_churn(n, swaps, horizon, rng.gen::<u64>());
        let stream = TvgStream::new(horizon).expect("generated horizons are small");
        let batches = chop(rng, feed);
        return EventScript {
            label: "peer_lifecycle",
            stream,
            batches,
            final_horizon: horizon,
        };
    }
    let (label, base, horizon): (&'static str, Tvg<u64>, u64) = if rng.gen_bool(0.5) {
        ("commuter_churn", crate::fixtures::commuter_line(), 24)
    } else {
        let n = rng.gen_range(6..10);
        let h = rng.gen_range(16..28);
        let g = scale_free_temporal(n, h, rng.gen::<u64>());
        ("scale_free_churn", g, h)
    };
    let (stream, base_events) =
        TvgStream::replay_of(&base, &horizon).expect("generated horizons are small");
    // Victims: distinct nodes, each with a leave instant. Keep at least
    // two nodes alive so rejoin edges always have a safe endpoint.
    let mut victims: Vec<(NodeId, u64)> = Vec::new();
    for _ in 0..rng.gen_range(1..3u32) {
        let v = NodeId::from_index(rng.gen_range(0..base.num_nodes()));
        if victims.iter().all(|(w, _)| *w != v) {
            victims.push((v, rng.gen_range(1..horizon)));
        }
    }
    let survivors: Vec<NodeId> = (0..base.num_nodes())
        .map(NodeId::from_index)
        .filter(|n| victims.iter().all(|(v, _)| v != n))
        .collect();
    // Keyed merge (time, seq): base events keep feed order; a leave
    // sorts after every base event at its own instant.
    let mut keyed: Vec<(u64, usize, StreamEvent<u64>)> = Vec::new();
    for ev in base_events {
        let at = match &ev {
            StreamEvent::Up { at, .. } | StreamEvent::Down { at, .. } => *at,
            _ => unreachable!("replay emits only up/down"),
        };
        // Drop events strictly after any incident victim's departure.
        let dropped = victims.iter().any(|(v, leave)| {
            let (edge, at) = match &ev {
                StreamEvent::Up { edge, at } | StreamEvent::Down { edge, at } => (*edge, *at),
                _ => unreachable!("replay emits only up/down"),
            };
            let e = base.edge(edge);
            (e.src() == *v || e.dst() == *v) && at > *leave
        });
        if !dropped {
            keyed.push((at, keyed.len(), ev));
        }
    }
    let base_seq = keyed.len() + base.num_edges();
    for (i, (v, leave)) in victims.iter().enumerate() {
        keyed.push((
            *leave,
            base_seq + i,
            StreamEvent::NodeLeave {
                node: *v,
                at: *leave,
            },
        ));
    }
    // Rejoins: fresh id, one live edge to a survivor. Ids continue
    // after the base graph's in ingestion (time) order.
    let mut rejoins: Vec<(u64, NodeId)> = Vec::new();
    for (_, leave) in &victims {
        if rng.gen_bool(0.5) && leave + 1 < horizon {
            let at = rng.gen_range(leave + 1..horizon);
            rejoins.push((at, survivors[rng.gen_range(0..survivors.len())]));
        }
    }
    rejoins.sort_unstable();
    for (i, (at, peer)) in rejoins.into_iter().enumerate() {
        let node = NodeId::from_index(base.num_nodes() + i);
        let edge = tvg_model::EdgeId::from_index(base.num_edges() + i);
        let seq = base_seq + victims.len() + 3 * i;
        keyed.push((
            at,
            seq,
            StreamEvent::NewNode {
                name: format!("rejoin{i}"),
            },
        ));
        keyed.push((
            at,
            seq + 1,
            StreamEvent::NewEdge {
                src: node,
                dst: peer,
                label: 'r',
                latency: Latency::unit(),
            },
        ));
        keyed.push((at, seq + 2, StreamEvent::Up { edge, at }));
    }
    keyed.sort_by_key(|entry| (entry.0, entry.1));
    let batches = chop(rng, keyed.into_iter().map(|(_, _, ev)| ev).collect());
    EventScript {
        label,
        stream,
        batches,
        final_horizon: horizon,
    }
}

/// Random edge-Markovian trace parameters (small, fast regime).
pub fn markovian_params<R: Rng + ?Sized>(rng: &mut R) -> EdgeMarkovianParams {
    EdgeMarkovianParams {
        num_nodes: rng.gen_range(3..10),
        p_birth: f64_in(rng, 0.0, 0.5),
        p_death: f64_in(rng, 0.1, 0.9),
        steps: rng.gen_range(5..40),
    }
}

/// A random edge-Markovian contact trace via [`markovian_params`].
pub fn markovian_trace<R: Rng + ?Sized>(rng: &mut R) -> EvolvingTrace {
    let params = markovian_params(rng);
    edge_markovian_trace(&mut StdRng::seed_from_u64(rng.gen::<u64>()), &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn generators_are_deterministic() {
        let w1 = word(&mut rng_for("g"), &Alphabet::ab(), 8);
        let w2 = word(&mut rng_for("g"), &Alphabet::ab(), 8);
        assert_eq!(w1, w2);
        let d1 = dfa(&mut rng_for("g"), &Alphabet::ab(), 6);
        let d2 = dfa(&mut rng_for("g"), &Alphabet::ab(), 6);
        assert!(d1.equivalent_to(&d2));
        let (a1, p1) = periodic_automaton(&mut rng_for("g"));
        let (a2, p2) = periodic_automaton(&mut rng_for("g"));
        assert_eq!(p1, p2);
        assert_eq!(a1.tvg().num_edges(), a2.tvg().num_edges());
    }

    #[test]
    fn word_lengths_cover_range() {
        let mut rng = rng_for("lengths");
        let lens: BTreeSet<usize> = (0..200)
            .map(|_| word(&mut rng, &Alphabet::ab(), 5).len())
            .collect();
        assert_eq!(lens, (0..=5).collect());
    }

    #[test]
    fn f64_in_bounds() {
        let mut rng = rng_for("f64");
        for _ in 0..1000 {
            let v = f64_in(&mut rng, 0.25, 0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn presence_generator_terminates_and_evaluates() {
        let mut rng = rng_for("presence");
        for _ in 0..200 {
            let p = presence(&mut rng, 3);
            let _ = p.is_present(&17u64); // must not panic at any depth
        }
    }
}
