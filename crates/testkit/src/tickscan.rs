//! The tick-scan reference searches — the pre-index journey search
//! implementations, preserved verbatim as oracles.
//!
//! `tvg-journeys` used to explore waiting windows tick by tick
//! (`depart.succ()` in a loop). The production searches now run on the
//! compiled [`tvg_model::TvgIndex`]; these functions keep the old
//! behavior alive as an independent reference that the equivalence
//! property suites compare the indexed engine against. An oracle must be
//! simpler than the thing under test: a linear scan of every instant is
//! as simple as journey search gets.
//!
//! Do not "optimize" these: their value is that they share no code with
//! the compiled path.

use std::collections::{BTreeMap, BTreeSet};
use tvg_journeys::{Hop, Journey, SearchLimits, WaitingPolicy};
use tvg_model::{EdgeId, NodeId, Time, Tvg};

/// All admissible single crossings from `node` when ready at `ready`,
/// found by scanning every instant of the policy window.
pub fn expansions<T: Time>(
    g: &Tvg<T>,
    node: NodeId,
    ready: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Vec<(EdgeId, T, T)> {
    let mut out = Vec::new();
    let Some(latest) = policy.latest_departure(ready, &limits.horizon) else {
        return out;
    };
    for &e in g.out_edges(node) {
        let mut depart = ready.clone();
        while depart <= latest {
            if let Some(arrive) = g.traverse(e, &depart) {
                out.push((e, depart.clone(), arrive));
            }
            depart = depart.succ();
        }
    }
    out
}

type ParentMap<T> = BTreeMap<(NodeId, T), (NodeId, T, EdgeId, T)>;

fn rebuild_journey<T: Time>(parents: &ParentMap<T>, mut state: (NodeId, T)) -> Journey<T> {
    let mut hops = Vec::new();
    while let Some((pn, pt, e, dep)) = parents.get(&state).cloned() {
        hops.push(Hop {
            edge: e,
            depart: dep,
            arrive: state.1.clone(),
        });
        state = (pn, pt);
    }
    hops.reverse();
    Journey::from_hops(hops)
}

/// Exhaustive reachable configuration set from `(src, start)` by
/// tick-scan breadth-first exploration.
pub fn reachable_configs<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> BTreeSet<(NodeId, T)> {
    let mut seen: BTreeSet<(NodeId, T)> = BTreeSet::from([(src, start.clone())]);
    let mut frontier = vec![(src, start.clone())];
    for _ in 0..limits.max_hops {
        let mut next = Vec::new();
        for (node, ready) in &frontier {
            for (e, _dep, arr) in expansions(g, *node, ready, policy, limits) {
                let state = (g.edge(e).dst(), arr);
                if seen.insert(state.clone()) {
                    next.push(state);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen
}

/// Nodes reachable from `(src, start)` within the limits (tick-scan).
pub fn reachable_nodes<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> BTreeSet<NodeId> {
    reachable_configs(g, src, start, policy, limits)
        .into_iter()
        .map(|(n, _)| n)
        .collect()
}

/// The foremost journey by time-ordered tick-scan exploration of the
/// `(node, time)` configuration space.
pub fn foremost_journey<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    if src == dst {
        return Some(Journey::empty());
    }
    let mut queue: BTreeSet<(T, NodeId, usize)> = BTreeSet::from([(start.clone(), src, 0)]);
    let mut seen: BTreeSet<(NodeId, T)> = BTreeSet::new();
    let mut parents: ParentMap<T> = BTreeMap::new();
    while let Some((time, node, hops)) = queue.pop_first() {
        if !seen.insert((node, time.clone())) {
            continue;
        }
        if node == dst {
            return Some(rebuild_journey(&parents, (node, time)));
        }
        if hops == limits.max_hops {
            continue;
        }
        for (e, dep, arr) in expansions(g, node, &time, policy, limits) {
            let succ = g.edge(e).dst();
            if !seen.contains(&(succ, arr.clone())) {
                parents
                    .entry((succ, arr.clone()))
                    .or_insert((node, time.clone(), e, dep));
                queue.insert((arr, succ, hops + 1));
            }
        }
    }
    None
}

/// The shortest journey by hop-layered tick-scan exploration.
pub fn shortest_journey<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    if src == dst {
        return Some(Journey::empty());
    }
    let mut seen: BTreeSet<(NodeId, T)> = BTreeSet::from([(src, start.clone())]);
    let mut parents: ParentMap<T> = BTreeMap::new();
    let mut frontier: Vec<(NodeId, T)> = vec![(src, start.clone())];
    for _ in 0..limits.max_hops {
        let mut next = Vec::new();
        for (node, ready) in &frontier {
            for (e, dep, arr) in expansions(g, *node, ready, policy, limits) {
                let succ = g.edge(e).dst();
                let state = (succ, arr.clone());
                if seen.insert(state.clone()) {
                    parents.insert(state.clone(), (*node, ready.clone(), e, dep));
                    if succ == dst {
                        return Some(rebuild_journey(&parents, state));
                    }
                    next.push(state);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        frontier = next;
    }
    None
}

/// The fastest journey: every departure instant is tried by scanning
/// `[start, horizon]` tick by tick, with a pinned first hop and a
/// tick-scan foremost tail.
pub fn fastest_journey<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    if src == dst {
        return Some(Journey::empty());
    }
    let mut best: Option<Journey<T>> = None;
    let mut t = start.clone();
    while t <= limits.horizon {
        let departs_now = g
            .out_edges(src)
            .iter()
            .any(|&e| g.traverse(e, &t).is_some());
        if departs_now {
            let pinned = WaitingPolicy::NoWait;
            for (e, dep, arr) in expansions(g, src, &t, &pinned, limits) {
                let succ = g.edge(e).dst();
                let tail = foremost_journey(g, succ, dst, &arr, policy, limits);
                if let Some(tail) = tail {
                    let mut hops = vec![Hop {
                        edge: e,
                        depart: dep.clone(),
                        arrive: arr.clone(),
                    }];
                    hops.extend(tail.hops().iter().cloned());
                    let candidate = Journey::from_hops(hops);
                    let better = match &best {
                        None => true,
                        Some(b) => candidate.duration() < b.duration(),
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
        t = t.succ();
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_model::{Latency, Presence, TvgBuilder};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Line v0 →a→ v1 →b→ v2 where b exists only at t = 5: the oracle
    /// must reproduce the store-carry-forward archetype by brute force.
    #[test]
    fn oracle_reproduces_the_waiting_archetype() {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(5u64), Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let limits = SearchLimits::new(20, 10);
        assert!(foremost_journey(&g, n(0), n(2), &1, &WaitingPolicy::NoWait, &limits).is_none());
        let j = foremost_journey(&g, n(0), n(2), &1, &WaitingPolicy::Unbounded, &limits)
            .expect("waiting connects");
        assert_eq!(j.arrival(), Some(&6));
        assert_eq!(
            reachable_nodes(&g, n(0), &1, &WaitingPolicy::Bounded(3), &limits),
            BTreeSet::from([n(0), n(1), n(2)])
        );
        let s = shortest_journey(&g, n(0), n(2), &1, &WaitingPolicy::Unbounded, &limits)
            .expect("reachable");
        assert_eq!(s.num_hops(), 2);
        let f = fastest_journey(&g, n(0), n(2), &0, &WaitingPolicy::Unbounded, &limits)
            .expect("reachable");
        assert_eq!(f.duration(), 5);
    }
}
