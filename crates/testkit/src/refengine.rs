//! The pre-overhaul generic single-source explorer, preserved verbatim
//! (modulo renames) as a differential oracle.
//!
//! PR 7 rebuilt the production explorer cores in `tvg-journeys` for
//! cache locality: monomorphized waiting policies, a bump arena of
//! `u32`-indexed labels, flat sorted frontier vectors, and binary-heap
//! queues. The overhaul is a pure representation change — arrivals,
//! witness journeys, and [`EngineStats`] must be *bit-identical* to
//! what the old `BTreeMap`/`BTreeSet` explorer produced. This module
//! keeps that old explorer alive so the equivalence stays executable:
//! `ref_foremost_tree` is the exploration loop exactly as it stood
//! before the overhaul, pointer-chasing data structures and all.
//!
//! Nothing here is reachable from production code; it exists only for
//! the differential properties in `tests/engine_overhaul_props.rs`.

use std::cmp::Reverse;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use tvg_journeys::{EngineStats, Hop, Journey, SearchLimits, WaitingPolicy};
use tvg_model::{EdgeId, NodeId, TemporalIndex, Time};

/// The all-destinations output of one reference engine run — the
/// oracle's counterpart of the production `ForemostTree`.
#[derive(Debug, Clone)]
pub struct RefTree<T> {
    arrival: Vec<Option<T>>,
    repr: RefRepr<T>,
    stats: EngineStats,
}

#[derive(Debug, Clone)]
enum RefRepr<T> {
    Exact(RefParents<T>),
    Pareto {
        arena: Vec<RefLabel<T>>,
        best: Vec<Option<usize>>,
    },
}

impl<T: Time> RefTree<T> {
    /// The foremost arrival at `n`, `None` if unreachable.
    #[must_use]
    pub fn arrival(&self, n: NodeId) -> Option<&T> {
        self.arrival[n.index()].as_ref()
    }

    /// A foremost witness journey to `n`, rebuilt on demand.
    #[must_use]
    pub fn journey_to(&self, n: NodeId) -> Option<Journey<T>> {
        let arrival = self.arrival[n.index()].as_ref()?;
        Some(match &self.repr {
            RefRepr::Exact(parents) => parents.rebuild((n, arrival.clone())),
            RefRepr::Pareto { arena, best } => rebuild_labels(
                arena,
                best[n.index()].expect("reached nodes have a best label"),
            ),
        })
    }

    /// Number of reached nodes (seeds included).
    #[must_use]
    pub fn num_reached(&self) -> usize {
        self.arrival.iter().filter(|r| r.is_some()).count()
    }

    /// Work counters of the run.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// One single-source reference run — the old explorer's `run` entry
/// point, exposed with explicit multi-seed and target parameters so the
/// differential tests can exercise both the all-destinations and the
/// early-exit paths.
#[must_use]
pub fn ref_foremost_tree<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    target: Option<NodeId>,
) -> RefTree<T> {
    match policy {
        WaitingPolicy::Unbounded => pareto_explore(index, seeds, limits, target),
        _ => exact_explore(index, seeds, policy, limits, target),
    }
}

fn one_run() -> EngineStats {
    EngineStats {
        runs: 1,
        ..EngineStats::default()
    }
}

#[derive(Debug, Clone)]
struct RefParents<T> {
    per_node: Vec<BTreeMap<T, (NodeId, T, EdgeId, T)>>,
}

impl<T: Time> RefParents<T> {
    fn new(num_nodes: usize) -> Self {
        RefParents {
            per_node: vec![BTreeMap::new(); num_nodes],
        }
    }

    fn rebuild(&self, mut state: (NodeId, T)) -> Journey<T> {
        let mut hops = Vec::new();
        while let Some((pn, pt, e, dep)) = self.per_node[state.0.index()].get(&state.1).cloned() {
            hops.push(Hop {
                edge: e,
                depart: dep,
                arrive: state.1.clone(),
            });
            state = (pn, pt);
        }
        hops.reverse();
        Journey::from_hops(hops)
    }
}

/// The old exact `(node, time)` explorer: `BTreeMap` settles and parent
/// pointers, a branchy per-label policy dispatch, duplicate pushes
/// deduplicated only at pop time.
fn exact_explore<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    target: Option<NodeId>,
) -> RefTree<T> {
    let num_nodes = index.num_nodes();
    let mut stats = one_run();
    let mut arrival: Vec<Option<T>> = vec![None; num_nodes];
    let mut settled: Vec<BTreeMap<T, usize>> = vec![BTreeMap::new(); num_nodes];
    let mut parents = RefParents::new(num_nodes);
    let mut queue: BinaryHeap<Reverse<(T, NodeId, usize)>> = BinaryHeap::new();
    for (node, t) in seeds {
        queue.push(Reverse((t.clone(), *node, 0)));
    }
    while let Some(Reverse((time, node, hops))) = queue.pop() {
        match settled[node.index()].entry(time.clone()) {
            Entry::Occupied(_) => continue,
            Entry::Vacant(slot) => slot.insert(hops),
        };
        stats.settled += 1;
        if arrival[node.index()].is_none() {
            arrival[node.index()] = Some(time.clone());
            if target == Some(node) {
                break;
            }
        }
        if hops == limits.max_hops {
            continue;
        }
        let Some(latest) = policy.latest_departure(&time, &limits.horizon) else {
            continue;
        };
        for (e, dep, arr) in index.crossings(node, &time, &latest) {
            stats.expanded += 1;
            let succ = index.dst(e);
            if !settled[succ.index()].contains_key(&arr) {
                parents.per_node[succ.index()]
                    .entry(arr.clone())
                    .or_insert((node, time.clone(), e, dep));
                queue.push(Reverse((arr, succ, hops + 1)));
            }
        }
    }
    RefTree {
        arrival,
        repr: RefRepr::Exact(parents),
        stats,
    }
}

#[derive(Debug, Clone)]
struct RefLabel<T> {
    time: T,
    parent: Option<(usize, EdgeId, T)>,
}

fn dominated<T: Time>(frontier: &[(T, usize, usize)], time: &T, hops: usize) -> bool {
    frontier.iter().any(|(a, h, _)| a <= time && *h <= hops)
}

/// The old Pareto label-correcting explorer for unbounded waiting:
/// `BTreeSet` queue, `usize` label ids, per-node frontier vectors.
fn pareto_explore<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    limits: &SearchLimits<T>,
    target: Option<NodeId>,
) -> RefTree<T> {
    let num_nodes = index.num_nodes();
    let mut stats = one_run();
    let mut arrival: Vec<Option<T>> = vec![None; num_nodes];
    let mut best: Vec<Option<usize>> = vec![None; num_nodes];
    let mut arena: Vec<RefLabel<T>> = Vec::new();
    let mut settled: Vec<Vec<(T, usize, usize)>> = vec![Vec::new(); num_nodes];
    let mut queue: BTreeSet<(T, usize, NodeId, usize)> = BTreeSet::new();
    for (node, t) in seeds {
        arena.push(RefLabel {
            time: t.clone(),
            parent: None,
        });
        queue.insert((t.clone(), 0, *node, arena.len() - 1));
    }
    while let Some((time, hops, node, id)) = queue.pop_first() {
        if dominated(&settled[node.index()], &time, hops) {
            continue;
        }
        settled[node.index()].push((time.clone(), hops, id));
        stats.settled += 1;
        if arrival[node.index()].is_none() {
            arrival[node.index()] = Some(time.clone());
            best[node.index()] = Some(id);
            if target == Some(node) {
                break;
            }
        }
        if hops == limits.max_hops || time > limits.horizon {
            continue;
        }
        for e in index.out_edges(node).iter() {
            let succ = index.dst(e);
            let best_crossing: Option<(T, T)> = if index.arrival_is_monotone(e) {
                index
                    .departures_within(e, &time, &limits.horizon)
                    .next()
                    .and_then(|dep| Some((index.arrival(e, &dep)?, dep)))
            } else {
                let mut found: Option<(T, T)> = None;
                for dep in index.departures_within(e, &time, &limits.horizon) {
                    let Some(arr) = index.arrival(e, &dep) else {
                        continue;
                    };
                    match &found {
                        Some((best_arr, _)) if *best_arr <= arr => {}
                        _ => found = Some((arr, dep)),
                    }
                }
                found
            };
            let Some((arr, dep)) = best_crossing else {
                continue;
            };
            if dominated(&settled[succ.index()], &arr, hops + 1) {
                continue;
            }
            stats.expanded += 1;
            arena.push(RefLabel {
                time: arr.clone(),
                parent: Some((id, e, dep)),
            });
            queue.insert((arr, hops + 1, succ, arena.len() - 1));
        }
    }
    RefTree {
        arrival,
        repr: RefRepr::Pareto { arena, best },
        stats,
    }
}

fn rebuild_labels<T: Time>(arena: &[RefLabel<T>], mut id: usize) -> Journey<T> {
    let mut hops = Vec::new();
    while let Some((prev, e, dep)) = &arena[id].parent {
        hops.push(Hop {
            edge: *e,
            depart: dep.clone(),
            arrive: arena[id].time.clone(),
        });
        id = *prev;
    }
    hops.reverse();
    Journey::from_hops(hops)
}
