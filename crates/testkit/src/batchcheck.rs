//! The parallel-vs-serial equivalence oracle for the batch-query
//! runtime.
//!
//! `tvg_journeys::batch` promises that output is **bit-identical to the
//! serial path at every thread count** — that promise is what lets every
//! aggregate consumer adopt the parallel runtime without touching its
//! determinism contract. This module is the single assertion that
//! enforces it: run the same batch at one thread and at several, and
//! compare *everything* — foremost arrivals, witness journeys hop by
//! hop, and the summed work counters.
//!
//! Like `tickscan`, this lives in the testkit so every crate's suite can
//! apply the same oracle to its own fixtures.

use tvg_journeys::{Batch, BatchRunner, SearchLimits, WaitingPolicy};
use tvg_model::{NodeId, TemporalIndex, Time};

/// Thread counts the oracle exercises beyond the serial reference.
/// Chosen to cover "fewer workers than jobs", "about as many", and
/// "more workers than jobs" on the small fixture batches.
pub const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

/// Asserts that running `seed_sets` through [`BatchRunner`] at every
/// thread count in [`THREAD_SWEEP`] reproduces the serial reference
/// exactly: per-tree foremost arrivals, per-tree witness journeys, and
/// summed [`tvg_journeys::EngineStats`] (which also pins "n seed sets ⇒
/// exactly n engine runs").
///
/// # Panics
///
/// Panics (with `label` in the message) on the first divergence.
pub fn assert_batch_matches_serial<T: Time + Send + Sync, I: TemporalIndex<T> + Sync>(
    index: &I,
    seed_sets: &[Vec<(NodeId, T)>],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    label: &str,
) {
    let serial = BatchRunner::new(index, Batch::serial()).run_seed_sets(seed_sets, policy, limits);
    assert_eq!(
        serial.stats().runs,
        seed_sets.len() as u64,
        "{label}: serial batch must run exactly once per seed set"
    );
    for threads in THREAD_SWEEP {
        let parallel = BatchRunner::new(index, Batch::threads(threads))
            .run_seed_sets(seed_sets, policy, limits);
        assert_eq!(
            parallel.stats(),
            serial.stats(),
            "{label}: stats diverge at {threads} threads under {policy}"
        );
        for (i, (s, p)) in serial.trees().iter().zip(parallel.trees()).enumerate() {
            for dst in (0..index.num_nodes()).map(NodeId::from_index) {
                assert_eq!(
                    s.arrival(dst),
                    p.arrival(dst),
                    "{label}: arrival of query #{i} → {dst} diverges at \
                     {threads} threads under {policy}"
                );
                assert_eq!(
                    s.journey_to(dst),
                    p.journey_to(dst),
                    "{label}: witness journey of query #{i} → {dst} diverges at \
                     {threads} threads under {policy}"
                );
            }
        }
    }
}

/// [`assert_batch_matches_serial`] for the common all-sources shape:
/// one single-seed query per node of the graph, all starting at `start`
/// (the `ReachabilityMatrix` / `delivery_ratio` workload).
pub fn assert_all_sources_batch_matches_serial<
    T: Time + Send + Sync,
    I: TemporalIndex<T> + Sync,
>(
    index: &I,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    label: &str,
) {
    let seed_sets: Vec<Vec<(NodeId, T)>> = (0..index.num_nodes())
        .map(|src| vec![(NodeId::from_index(src), start.clone())])
        .collect();
    assert_batch_matches_serial(index, &seed_sets, policy, limits, label);
}
