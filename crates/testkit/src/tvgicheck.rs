//! The `.tvgi` round-trip oracle: a [`ShardedIndex`] opened from a
//! file written by [`write_tvgi`] must answer **bit-identically** to
//! the in-memory [`TvgIndex`] it serialized — same arrival at every
//! node, same witness journey to every node, same engine work counters
//! — under every waiting policy and at every shard count.
//!
//! This is the contract that makes the compile-once workflow sound:
//! `tvg-cli compile` + `run --index` may substitute the file-backed
//! index for a fresh compile anywhere, because nothing observable
//! distinguishes them. Sharding must be invisible too — the file's
//! node-range partition is a storage layout, not a semantic boundary,
//! so the oracle sweeps shard counts including degenerate (1) and
//! more-shards-than-nodes cases.
//!
//! Like the other testkit oracles this is a library function so every
//! suite can apply it to its own graphs; `tvgi_props` applies it to
//! the bundled scenario graphs × 3 policies × shard counts 1/2/4.

use std::path::PathBuf;
use tvg_journeys::{foremost_tree, SearchLimits, WaitingPolicy};
use tvg_model::tvgi::{write_tvgi, ShardedIndex, TvgiTime};
use tvg_model::{TemporalIndex, Tvg, TvgIndex};

/// A scratch `.tvgi` path unique to `label` within this test process.
/// Seed-stable (no wall clock): collisions across processes are
/// prevented by the pid, within a process by the label.
#[must_use]
pub fn scratch_path(label: &str) -> PathBuf {
    let sanitized: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    std::env::temp_dir().join(format!("tvgi-{}-{sanitized}.tvgi", std::process::id()))
}

/// Asserts that `g` compiled at `horizon` and round-tripped through a
/// `.tvgi` file at `shards` answers bit-identically to the in-memory
/// index: for every source node and each of `policies`, the foremost
/// tree's arrivals, witness journeys, and [`tvg_journeys::EngineStats`]
/// are equal. Also pins the structural accessors (presence spans,
/// adjacency, destinations, edge-event timeline).
///
/// # Panics
///
/// Panics (with `label` in the message) on the first divergence, or if
/// the scratch file cannot be written.
pub fn assert_tvgi_round_trip<T: TvgiTime>(
    g: &Tvg<T>,
    horizon: T,
    shards: u32,
    policies: &[WaitingPolicy<T>],
    label: &str,
) {
    let index = TvgIndex::compile(g, horizon);
    let path = scratch_path(&format!("{label}-s{shards}"));
    write_tvgi(&index, shards, None, &path)
        .unwrap_or_else(|e| panic!("{label}: write_tvgi failed: {e}"));
    let mapped =
        ShardedIndex::<T>::open(&path).unwrap_or_else(|e| panic!("{label}: open failed: {e}"));

    // Structural equality first: the mapped index exposes the same
    // graph the compiled one does.
    assert_eq!(
        TemporalIndex::num_nodes(&mapped),
        g.num_nodes(),
        "{label}: node count diverges"
    );
    assert_eq!(
        TemporalIndex::num_edges(&mapped),
        g.num_edges(),
        "{label}: edge count diverges"
    );
    for e in g.edges() {
        assert_eq!(
            TemporalIndex::presence(&mapped, e).spans(),
            index.presence(e).spans(),
            "{label}: presence spans of {e} diverge"
        );
        assert_eq!(
            TemporalIndex::arrival_is_monotone(&mapped, e),
            TemporalIndex::arrival_is_monotone(&index, e),
            "{label}: monotonicity of {e} diverges"
        );
        assert_eq!(
            TemporalIndex::dst(&mapped, e),
            index.dst(e),
            "{label}: destination of {e} diverges"
        );
    }
    for n in g.nodes() {
        assert_eq!(
            TemporalIndex::out_edges(&mapped, n).to_vec(),
            index.out_edges(n),
            "{label}: adjacency of {n} diverges"
        );
        assert_eq!(
            mapped.node_name(n),
            g.node_name(n),
            "{label}: name of {n} diverges"
        );
    }
    assert_eq!(
        mapped.edge_events(),
        index.edge_events().to_vec(),
        "{label}: edge-event timeline diverges"
    );
    assert_eq!(
        mapped.num_edge_events(),
        index.num_edge_events(),
        "{label}: event count diverges"
    );

    // Behavioral equality: every engine answer, witness, and counter.
    let limits = SearchLimits::new(horizon, usize::MAX);
    for policy in policies {
        for src in g.nodes() {
            let on_compiled = foremost_tree(&index, src, &T::zero(), policy, &limits);
            let on_mapped = foremost_tree(&mapped, src, &T::zero(), policy, &limits);
            assert_eq!(
                on_compiled.stats(),
                on_mapped.stats(),
                "{label}: engine stats diverge from {src} under {policy}"
            );
            for node in g.nodes() {
                assert_eq!(
                    on_compiled.arrival(node),
                    on_mapped.arrival(node),
                    "{label}: arrival at {node} from {src} diverges under {policy}"
                );
                assert_eq!(
                    on_compiled.journey_to(node),
                    on_mapped.journey_to(node),
                    "{label}: witness to {node} from {src} diverges under {policy}"
                );
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}
