//! Reference language oracles — independent deciders the theorem tests
//! compare TVG constructions against.
//!
//! An oracle must be *simpler than the thing under test*: `is_anbn` is a
//! direct scan, regular oracles are minimal DFAs compiled from regexes.
//! When a construction and an oracle disagree, the oracle wins.

pub use tvg_expressivity::anbn::{anbn_word, is_anbn};
use tvg_langs::{Alphabet, Dfa, Regex, Word};

/// Compiles `pattern` into a minimal DFA over `alphabet` — the reference
/// decider for a regular language.
///
/// # Panics
///
/// Panics on an unparsable pattern (oracles are test infrastructure;
/// a bad pattern is a test bug).
#[must_use]
pub fn regex_dfa(pattern: &str, alphabet: &Alphabet) -> Dfa {
    Regex::parse(pattern, alphabet)
        .expect("oracle regex must parse")
        .to_nfa(alphabet)
        .to_dfa()
        .minimize()
}

/// A decider closure for `pattern` over `alphabet`.
pub fn regex_decider(pattern: &str, alphabet: &Alphabet) -> impl Fn(&Word) -> bool {
    let dfa = regex_dfa(pattern, alphabet);
    move |w| dfa.accepts(w)
}

/// The minimal DFA of the empty language ∅ over `alphabet` (one
/// non-accepting sink).
#[must_use]
pub fn empty_language_dfa(alphabet: &Alphabet) -> Dfa {
    let delta = vec![vec![0; alphabet.len()]];
    Dfa::new(alphabet.clone(), delta, 0, vec![false]).expect("one-state dfa is valid")
}

/// The minimal DFA of `Σ*` over `alphabet` (one accepting sink).
#[must_use]
pub fn sigma_star_dfa(alphabet: &Alphabet) -> Dfa {
    let delta = vec![vec![0; alphabet.len()]];
    Dfa::new(alphabet.clone(), delta, 0, vec![true]).expect("one-state dfa is valid")
}

/// The single-letter alphabet `{a}` (the degenerate edge of Theorem 2.2's
/// quantification over alphabets).
#[must_use]
pub fn unary_alphabet() -> Alphabet {
    Alphabet::from_chars("a").expect("one printable letter")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_langs::sample::words_upto;
    use tvg_langs::word;

    #[test]
    fn is_anbn_matches_grammar_oracle() {
        let grammar = tvg_langs::Grammar::anbn();
        for w in words_upto(&Alphabet::ab(), 8) {
            assert_eq!(is_anbn(&w), grammar.recognizes(&w), "{w}");
        }
    }

    #[test]
    fn regex_oracle_agrees_with_hand_checks() {
        let ends_ab = regex_decider("(a|b)*ab", &Alphabet::ab());
        assert!(ends_ab(&word("aab")));
        assert!(!ends_ab(&word("aba")));
        assert!(!ends_ab(&Word::empty()));
    }

    #[test]
    fn degenerate_dfas_have_the_right_languages() {
        let sigma = Alphabet::ab();
        let empty = empty_language_dfa(&sigma);
        let all = sigma_star_dfa(&sigma);
        for w in words_upto(&sigma, 5) {
            assert!(!empty.accepts(&w), "{w}");
            assert!(all.accepts(&w), "{w}");
        }
        assert_eq!(empty.num_states(), 1);
        assert_eq!(all.num_states(), 1);
    }

    #[test]
    fn unary_alphabet_is_unary() {
        assert_eq!(unary_alphabet().len(), 1);
        assert_eq!(unary_alphabet().letter(0).as_char(), 'a');
    }
}
