//! The scenario-runtime oracle: spec round-tripping, report thread
//! invariance, and golden comparison, shared by the testkit property
//! suite, the root integration stories, and anything else that wants to
//! pin a scenario's behavior.
//!
//! Three contracts, one per function:
//!
//! * a [`Scenario`]'s canonical `Display` text reparses to the same
//!   scenario ([`assert_roundtrip`]) — the spec format loses nothing;
//! * a scenario's results and engine accounting are identical at every
//!   thread count ([`assert_thread_invariant`]) — reports are bytes,
//!   not approximations;
//! * a spec's concatenated canonical report lines equal a checked-in
//!   golden ([`assert_golden`]) — the in-process face of the
//!   `tvg-cli verify` CI gate.

use tvg_scenarios::{parse_specs, Report, Scenario, Threads};

/// Asserts that `scenario`'s canonical spec text reparses to exactly
/// `scenario`.
///
/// # Panics
///
/// Panics if the canonical text fails to parse, parses to a different
/// scenario, or parses to more than one.
pub fn assert_roundtrip(scenario: &Scenario) {
    let text = scenario.to_string();
    let back = parse_specs(&text).unwrap_or_else(|e| {
        panic!(
            "canonical text of {:?} failed to reparse: {e}\n{text}",
            scenario.name()
        )
    });
    assert_eq!(back.len(), 1, "canonical text holds one scenario\n{text}");
    assert_eq!(
        &back[0], scenario,
        "round-trip changed the scenario\n{text}"
    );
}

/// Runs `scenario` at thread counts 1, 2, and 4 and asserts that the
/// plan results and engine stats are identical; returns the (thread-1)
/// report for further inspection.
///
/// # Panics
///
/// Panics if any thread count changes any result byte or counter.
pub fn assert_thread_invariant(scenario: &Scenario) -> Report {
    let reference = scenario.with_threads(Threads::Fixed(1)).run();
    for threads in [2usize, 4] {
        let other = scenario.with_threads(Threads::Fixed(threads)).run();
        assert_eq!(
            reference.results(),
            other.results(),
            "{}: results changed at {threads} threads",
            scenario.name()
        );
        assert_eq!(
            reference.engine_stats(),
            other.engine_stats(),
            "{}: engine accounting changed at {threads} threads",
            scenario.name()
        );
    }
    reference
}

/// Runs every scenario in `spec_text` and asserts the concatenated
/// canonical report lines equal `golden` byte for byte, naming the
/// first divergent line otherwise.
///
/// # Panics
///
/// Panics if the spec fails to parse or any report byte differs.
pub fn assert_golden(spec_text: &str, golden: &str) {
    let scenarios = parse_specs(spec_text).expect("golden spec parses");
    let mut produced = String::new();
    for scenario in &scenarios {
        produced.push_str(&scenario.run().canonical_json());
        produced.push('\n');
    }
    if produced != golden {
        let line = tvg_scenarios::first_divergent_line(&produced, golden);
        let a = produced.lines().nth(line - 1);
        let b = golden.lines().nth(line - 1);
        if a.is_none() && b.is_none() {
            // Every line compares equal yet the bytes differ: the texts
            // diverge only in trailing bytes (a stripped final newline).
            panic!("report drifted from golden: texts differ only in trailing bytes");
        }
        panic!(
            "report drifted from golden at line {line}\nproduced: {}\ngolden:   {}",
            a.unwrap_or("<end of text>"),
            b.unwrap_or("<end of text>"),
        );
    }
}
