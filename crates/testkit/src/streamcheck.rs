//! The live-vs-recompile differential oracle for streaming ingestion.
//!
//! `tvg_model::stream` promises two things after every ingested batch:
//!
//! 1. the incrementally-maintained [`tvg_model::LiveIndex`] is
//!    **structurally identical** to `TvgIndex::compile` of the
//!    accumulated schedule ([`TvgStream::to_tvg`]) at the current
//!    horizon — same presence spans, same CSR adjacency, same sorted
//!    edge-event timeline, same monotonicity cache;
//! 2. a repaired [`IncrementalForemost`] answers exactly like a *fresh*
//!    engine run on that recompiled index — identical arrivals
//!    everywhere, identical witnesses for the exact explorers
//!    (`NoWait`/`Bounded`), and semantically equivalent witnesses (same
//!    arrival, same hops, validates hop by hop) for the Pareto explorer
//!    (`Unbounded`), whose tie-break between equally-foremost routes is
//!    label-allocation order, which repair deliberately does not replay.
//!
//! Like `tickscan` and `batchcheck`, this lives in the testkit so every
//! crate's suite can apply the same oracle to its own streams; the
//! `stream_props` property suite applies it after every generated batch.

use tvg_journeys::{foremost_tree_multi, IncrementalForemost, Journey, WaitingPolicy};
use tvg_model::stream::TvgStream;
use tvg_model::{NodeId, TemporalIndex, Time, Tvg, TvgIndex};

/// Asserts that `stream`'s live index is structurally identical to a
/// from-scratch `TvgIndex::compile` of the accumulated schedule at the
/// stream's current horizon.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first structural
/// divergence, or if the stream has no nodes yet.
pub fn assert_live_matches_recompile<T: Time>(stream: &TvgStream<T>, label: &str) {
    let live = stream.index();
    let g = stream.to_tvg();
    let compiled = TvgIndex::compile(&g, live.horizon().clone());
    assert_eq!(
        live.tvg().num_nodes(),
        g.num_nodes(),
        "{label}: node count diverges"
    );
    assert_eq!(
        live.tvg().num_edges(),
        g.num_edges(),
        "{label}: edge count diverges"
    );
    for e in g.edges() {
        assert_eq!(
            live.presence(e).spans(),
            TemporalIndex::presence(&compiled, e).spans(),
            "{label}: presence spans of {e} diverge"
        );
        assert_eq!(
            live.arrival_is_monotone(e),
            TemporalIndex::arrival_is_monotone(&compiled, e),
            "{label}: monotonicity cache of {e} diverges"
        );
    }
    for n in g.nodes() {
        assert_eq!(
            live.out_edges(n),
            TemporalIndex::out_edges(&compiled, n).to_vec(),
            "{label}: adjacency of {n} diverges"
        );
    }
    let live_events: Vec<_> = live.edge_events().cloned().collect();
    assert_eq!(
        live_events.as_slice(),
        compiled.edge_events(),
        "{label}: edge-event timeline diverges"
    );
    assert_eq!(
        live.num_edge_events(),
        compiled.num_edge_events(),
        "{label}: event count diverges"
    );
}

/// Asserts that a repaired [`IncrementalForemost`] matches a fresh
/// engine run on the recompiled accumulated schedule: arrivals equal at
/// every node; witnesses byte-identical under the exact explorers,
/// semantically equivalent (same arrival, same hops, validates from a
/// seed) under the Pareto explorer.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first divergence.
pub fn assert_incremental_matches_fresh<T: Time>(
    stream: &TvgStream<T>,
    inc: &IncrementalForemost<T>,
    label: &str,
) {
    let g = stream.to_tvg();
    let compiled = TvgIndex::compile(&g, stream.index().horizon().clone());
    let fresh = foremost_tree_multi(&compiled, inc.seeds(), inc.policy(), inc.limits());
    let policy = inc.policy();
    for node in g.nodes() {
        assert_eq!(
            inc.arrival(node),
            fresh.arrival(node),
            "{label}: arrival at {node} diverges under {policy}"
        );
        let live_witness = inc.journey_to(node);
        let fresh_witness = fresh.journey_to(node);
        match policy {
            WaitingPolicy::Unbounded => match (&live_witness, &fresh_witness) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.num_hops(),
                        b.num_hops(),
                        "{label}: witness hops to {node} diverge under {policy}"
                    );
                    assert_eq!(
                        a.arrival(),
                        b.arrival(),
                        "{label}: witness arrival at {node} diverges under {policy}"
                    );
                    assert!(
                        witness_realizes(&g, inc.seeds(), policy, a, node),
                        "{label}: repaired witness to {node} does not validate under {policy}"
                    );
                }
                (None, None) => {}
                _ => panic!("{label}: witness existence diverges at {node} under {policy}"),
            },
            _ => assert_eq!(
                live_witness, fresh_witness,
                "{label}: witness to {node} diverges under {policy}"
            ),
        }
    }
}

/// Whether `j` is a valid journey from one of `seeds` to `node` under
/// `policy` (an empty journey requires `node` to be a seed).
fn witness_realizes<T: Time>(
    g: &Tvg<T>,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    j: &Journey<T>,
    node: NodeId,
) -> bool {
    if j.is_empty() {
        return seeds.iter().any(|(s, _)| *s == node);
    }
    seeds
        .iter()
        .any(|(s, t)| j.validate(g, *s, t, policy).is_ok() && j.destination(g, *s) == node)
}
