//! Differential properties for the PR-7 engine overhaul: the
//! monomorphized, arena-backed production cores must be *bit-identical*
//! — arrivals, witness journeys, and [`EngineStats`] — to the
//! pre-overhaul generic explorer preserved in
//! [`tvg_testkit::refengine`].
//!
//! The overhaul is licensed as a pure representation change; any
//! divergence caught here (an arrival off by one, a different witness,
//! a settle or expansion miscount) is a correctness bug, not a tuning
//! regression. The suite sweeps the 3 waiting policies × the Figure-1
//! (bigint times), random-periodic, and scale-free fixtures, the
//! narrowed `u32` time domain, the multi-seed and early-exit entry
//! points, and the resumable core under `IncrementalForemost` replay.

use tvg_bigint::Nat;
use tvg_journeys::engine::{foremost_tree, foremost_tree_multi};
use tvg_journeys::{IncrementalForemost, SearchLimits, WaitingPolicy};
use tvg_model::stream::TvgStream;
use tvg_model::{narrow_tvg, NodeId, TemporalIndex, Time, Tvg, TvgIndex};
use tvg_testkit::fixtures;
use tvg_testkit::refengine::ref_foremost_tree;

/// The three policy regimes over any time domain.
fn all_policies<T: Time>(bound: u64) -> [WaitingPolicy<T>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(T::from_u64(bound)),
        WaitingPolicy::Unbounded,
    ]
}

/// One full-sweep comparison: every source, arrivals + witnesses +
/// stats, production core vs. reference explorer.
fn assert_cores_match<T: Time, I: TemporalIndex<T>>(
    index: &I,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    label: &str,
) {
    let nodes = index.num_nodes();
    for src in (0..nodes).map(NodeId::from_index) {
        let tree = foremost_tree(index, src, start, policy, limits);
        let oracle = ref_foremost_tree(index, &[(src, start.clone())], policy, limits, None);
        assert_eq!(
            tree.stats(),
            oracle.stats(),
            "{label}: stats diverge from {src} under {policy}"
        );
        for dst in (0..nodes).map(NodeId::from_index) {
            assert_eq!(
                tree.arrival(dst),
                oracle.arrival(dst),
                "{label}: arrival {src}→{dst} under {policy}"
            );
            assert_eq!(
                tree.journey_to(dst),
                oracle.journey_to(dst),
                "{label}: witness {src}→{dst} under {policy}"
            );
        }
    }
}

#[test]
fn cores_match_oracle_on_figure1_nat_times() {
    // Bigint times: the overhaul must stay generic in the time domain.
    let aut = fixtures::figure1();
    let g = aut.automaton().tvg();
    let limits = aut.limits_for(6);
    let index = TvgIndex::compile(g, limits.horizon.clone());
    for policy in all_policies::<Nat>(2) {
        assert_cores_match(&index, &Nat::zero(), &policy, &limits, "figure-1");
    }
}

#[test]
fn cores_match_oracle_on_periodic_family() {
    let params = fixtures::small_periodic_params(8);
    for seed in [3u64, 17] {
        let g = fixtures::periodic_family_tvg(&params, seed);
        let limits = SearchLimits::new(40u64, 10);
        let index = TvgIndex::compile(&g, limits.horizon);
        for policy in all_policies(3) {
            assert_cores_match(
                &index,
                &0,
                &policy,
                &limits,
                &format!("periodic seed {seed}"),
            );
        }
    }
}

#[test]
fn cores_match_oracle_on_scale_free() {
    let g = fixtures::scale_free(40);
    let limits = SearchLimits::new(fixtures::SCALE_FREE_HORIZON, 8);
    let index = TvgIndex::compile(&g, limits.horizon);
    for policy in all_policies(4) {
        assert_cores_match(&index, &0, &policy, &limits, "scale-free");
    }
}

#[test]
fn cores_match_oracle_in_the_narrowed_u32_domain() {
    // The u32 fast path is its own monomorphization — pin it against
    // the oracle run in the *same* narrowed domain, so any divergence
    // is the core's fault, not the narrowing's (narrowing itself is
    // pinned by `tvg-model`'s narrow tests).
    let g = fixtures::scale_free(40);
    let narrowed: Tvg<u32> =
        narrow_tvg(&g, fixtures::SCALE_FREE_HORIZON).expect("fixture horizon fits u32");
    let limits = SearchLimits::new(
        u32::try_from(fixtures::SCALE_FREE_HORIZON).expect("fits"),
        8,
    );
    let index = TvgIndex::compile(&narrowed, limits.horizon);
    for policy in all_policies(4) {
        assert_cores_match(&index, &0u32, &policy, &limits, "scale-free/u32");
    }
}

#[test]
fn multi_seed_runs_match_oracle() {
    let g = fixtures::scale_free(40);
    let limits = SearchLimits::new(fixtures::SCALE_FREE_HORIZON, 8);
    let index = TvgIndex::compile(&g, limits.horizon);
    let seeds: Vec<(NodeId, u64)> = vec![
        (NodeId::from_index(0), 0),
        (NodeId::from_index(7), 5),
        (NodeId::from_index(13), 2),
    ];
    for policy in all_policies(3) {
        let tree = foremost_tree_multi(&index, &seeds, &policy, &limits);
        let oracle = ref_foremost_tree(&index, &seeds, &policy, &limits, None);
        assert_eq!(
            tree.stats(),
            oracle.stats(),
            "multi-seed stats under {policy}"
        );
        for dst in g.nodes() {
            assert_eq!(
                tree.arrival(dst),
                oracle.arrival(dst),
                "multi-seed arrival →{dst} under {policy}"
            );
            assert_eq!(
                tree.journey_to(dst),
                oracle.journey_to(dst),
                "multi-seed witness →{dst} under {policy}"
            );
        }
    }
}

#[test]
fn incremental_replay_matches_a_fresh_oracle_run() {
    // Stream a fixture in batches; after every refresh, the resumable
    // core's prune/replay repair must land on exactly the tree a fresh
    // oracle run over the live index produces.
    let g = fixtures::scale_free(30);
    let horizon = fixtures::SCALE_FREE_HORIZON;
    let (base, events) = TvgStream::replay_of(&g, &horizon).expect("horizon + 1 is representable");
    let limits = SearchLimits::new(horizon, 8);
    let src = NodeId::from_index(0);
    for policy in all_policies(3) {
        let mut stream = base.clone();
        let mut inc =
            IncrementalForemost::new(stream.index(), &[(src, 0u64)], policy, limits.clone());
        for batch in events.chunks(48) {
            let report = stream.ingest(batch).expect("replay is valid");
            inc.refresh(stream.index(), &report);
            let oracle = ref_foremost_tree(stream.index(), &[(src, 0u64)], &policy, &limits, None);
            for dst in stream.index().tvg().nodes() {
                assert_eq!(
                    inc.arrival(dst),
                    oracle.arrival(dst),
                    "incremental arrival →{dst} under {policy}"
                );
                assert_eq!(
                    inc.journey_to(dst),
                    oracle.journey_to(dst),
                    "incremental witness →{dst} under {policy}"
                );
            }
        }
    }
}
