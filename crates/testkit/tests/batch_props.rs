//! Batch determinism property suite: the scoped-thread batch runtime
//! must be a pure performance change, bit-identical to the serial
//! engine at every thread count.
//!
//! Coverage follows the equivalence-suite pattern of
//! `engine_equiv.rs`: all three waiting policies, on the paper's
//! Figure-1 construction (over `Nat` times — the batch layer is generic
//! in the time domain), the periodic fixtures (commuter line, ring bus,
//! random-periodic families), and the new scale-free temporal workload.
//! Arrivals *and* witness journeys are compared, plus the `EngineStats`
//! accounting ("n sources ⇒ exactly n runs") across thread counts.

use rand::Rng;
use tvg_bigint::Nat;
use tvg_journeys::{Batch, BatchRunner, ReachabilityMatrix, SearchLimits, WaitingPolicy};
use tvg_model::{NodeId, TvgIndex};
use tvg_testkit::batchcheck::{
    assert_all_sources_batch_matches_serial, assert_batch_matches_serial,
};
use tvg_testkit::{fixtures, gen};

fn policies_u64(bound: u64) -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(bound),
        WaitingPolicy::Unbounded,
    ]
}

#[test]
fn batch_matches_serial_on_periodic_fixtures() {
    let commuter = fixtures::commuter_line();
    let ring = fixtures::ring_bus(6, 6);
    for (g, label) in [(&commuter, "commuter"), (&ring, "ring bus")] {
        let limits = SearchLimits::new(30, 8);
        let index = TvgIndex::compile(g, limits.horizon);
        for policy in policies_u64(3) {
            assert_all_sources_batch_matches_serial(&index, &0, &policy, &limits, label);
        }
    }
}

#[test]
fn batch_matches_serial_on_random_periodic_tvgs() {
    tvg_testkit::check_with(
        tvg_testkit::Config::named_with_cases("batch_matches_serial_on_random_periodic_tvgs", 12),
        |rng, _| {
            let g = gen::periodic_tvg(rng);
            let start = rng.gen_range(0u64..5);
            let bound = rng.gen_range(0u64..4);
            let limits = SearchLimits::new(25, 6);
            let index = TvgIndex::compile(&g, limits.horizon);
            for policy in policies_u64(bound) {
                assert_all_sources_batch_matches_serial(
                    &index,
                    &start,
                    &policy,
                    &limits,
                    "random periodic",
                );
            }
        },
    );
}

#[test]
fn batch_matches_serial_on_scale_free_fixture() {
    let g = fixtures::scale_free(48);
    let limits = SearchLimits::new(fixtures::SCALE_FREE_HORIZON, 10);
    let index = TvgIndex::compile(&g, limits.horizon);
    for policy in policies_u64(2) {
        assert_all_sources_batch_matches_serial(&index, &0, &policy, &limits, "scale-free");
    }
    // Multi-seed sets too: re-emitting sources (the broadcast shape).
    let seed_sets: Vec<Vec<(NodeId, u64)>> = (0..8)
        .map(|i| {
            (0..4u64)
                .map(|t| (NodeId::from_index(i * 5), 2 * t))
                .collect()
        })
        .collect();
    for policy in policies_u64(2) {
        assert_batch_matches_serial(
            &index,
            &seed_sets,
            &policy,
            &limits,
            "scale-free multi-seed",
        );
    }
}

#[test]
fn batch_matches_serial_on_figure1_nat_times() {
    // The Figure-1 construction runs over bigint times: the batch layer
    // must be generic in the time domain, not a u64 special case.
    let aut = fixtures::figure1();
    let g = aut.automaton().tvg();
    let limits = aut.limits_for(6);
    let index = TvgIndex::compile(g, limits.horizon.clone());
    let policies: [WaitingPolicy<Nat>; 3] = [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(Nat::from(2u64)),
        WaitingPolicy::Unbounded,
    ];
    for policy in &policies {
        assert_all_sources_batch_matches_serial(&index, &Nat::zero(), policy, &limits, "figure-1");
    }
}

#[test]
fn n_sources_is_exactly_n_runs_at_every_thread_count() {
    let g = fixtures::scale_free(30);
    let limits = SearchLimits::new(fixtures::SCALE_FREE_HORIZON, 8);
    let index = TvgIndex::compile(&g, limits.horizon);
    let sources: Vec<NodeId> = g.nodes().collect();
    for policy in policies_u64(2) {
        let mut stats_by_threads = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let out = BatchRunner::new(&index, Batch::threads(threads))
                .run_sources(&sources, &0, &policy, &limits);
            assert_eq!(
                out.stats().runs,
                sources.len() as u64,
                "{policy} x{threads}: one engine run per source, no more, no fewer"
            );
            stats_by_threads.push(out.stats());
        }
        // The *whole* accounting (settled configurations, expanded
        // crossings) is thread-count invariant, not just the run count.
        assert!(
            stats_by_threads.windows(2).all(|w| w[0] == w[1]),
            "{policy}: stats vary with thread count: {stats_by_threads:?}"
        );
    }
}

#[test]
fn reachability_matrix_is_thread_count_invariant() {
    let g = fixtures::scale_free(36);
    let limits = SearchLimits::new(fixtures::SCALE_FREE_HORIZON, 10);
    for policy in policies_u64(3) {
        let serial = ReachabilityMatrix::compute_with(&g, &1, &policy, &limits, Batch::serial());
        for threads in [2usize, 4, 8] {
            let parallel =
                ReachabilityMatrix::compute_with(&g, &1, &policy, &limits, Batch::threads(threads));
            assert_eq!(parallel, serial, "{policy} x{threads}");
        }
        assert_eq!(serial.stats().runs, g.num_nodes() as u64, "{policy}");
    }
}
