//! Property suite for the declarative scenario runtime: randomly
//! assembled specs must round-trip through the parser, run on every
//! plan, and produce thread-invariant, rerun-identical reports.
//!
//! The generators here build *spec text*, not `Scenario` values — the
//! property enters the runtime through the same front door a user's
//! `.tvgs` file does, so formatting quirks (defaults, directive order,
//! comments) are part of what is swept.

use rand::rngs::StdRng;
use rand::Rng;
use tvg_scenarios::{parse_specs, SpecError, Threads};
use tvg_testkit::speccheck::{assert_roundtrip, assert_thread_invariant};

/// A random generator directive, kept small enough that every property
/// case runs in milliseconds. Returns `(directive text, node count)`.
fn random_generator(rng: &mut StdRng) -> (String, usize) {
    match rng.gen_range(0..8u32) {
        0 => {
            let n = rng.gen_range(2..7usize);
            (
                format!("ring_bus n={n} period={}", rng.gen_range(1..6u64)),
                n,
            )
        }
        1 => {
            let n = rng.gen_range(2..7usize);
            (format!("star_ferry n={n}"), n)
        }
        2 => {
            let (r, c) = (rng.gen_range(1..4usize), rng.gen_range(1..4usize));
            (format!("grid_two_phase rows={r} cols={c}"), r * c)
        }
        3 => {
            let n = rng.gen_range(2..6usize);
            (
                format!(
                    "random_periodic nodes={n} edges={} period={} density=0.5 seed={}",
                    rng.gen_range(1..9usize),
                    rng.gen_range(1..5u64),
                    rng.gen_range(0..1000u64)
                ),
                n,
            )
        }
        4 => {
            let n = rng.gen_range(2..9usize);
            (
                format!(
                    "scale_free n={n} horizon={} seed={}",
                    rng.gen_range(4..16u64),
                    rng.gen_range(0..1000u64)
                ),
                n,
            )
        }
        5 => {
            let n = rng.gen_range(2..7usize);
            (
                format!(
                    "edge_markovian n={n} horizon={} p_birth=0.25 p_death=0.5 seed={}",
                    rng.gen_range(4..16u64),
                    rng.gen_range(0..1000u64)
                ),
                n,
            )
        }
        6 => {
            let w = rng.gen_range(2..6usize);
            (
                format!(
                    "waypoint_grid walkers={w} rows={} cols={} horizon={} seed={}",
                    rng.gen_range(1..4usize),
                    rng.gen_range(1..4usize),
                    rng.gen_range(4..12u64),
                    rng.gen_range(0..1000u64)
                ),
                w,
            )
        }
        _ => {
            let (lines, stops) = (rng.gen_range(1..3usize), rng.gen_range(1..3usize));
            (
                format!(
                    "commuter_fleet lines={lines} stops={stops} headway={} shift={} runs={}",
                    rng.gen_range(1..6u64),
                    rng.gen_range(0..4u64),
                    rng.gen_range(1..3usize)
                ),
                1 + lines * stops,
            )
        }
    }
}

fn random_policy(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u32) {
        0 => "nowait".to_string(),
        1 => "wait".to_string(),
        _ => format!("wait[{}]", rng.gen_range(0..5u64)),
    }
}

fn random_plan(rng: &mut StdRng, nodes: usize) -> String {
    let horizon = rng.gen_range(4..20u64);
    let src = rng.gen_range(0..nodes);
    match rng.gen_range(0..4u32) {
        0 => format!("single_source src={src} horizon={horizon}"),
        1 => format!(
            "matrix horizon={horizon} max_hops={}",
            rng.gen_range(1..12usize)
        ),
        2 => {
            let source = if rng.gen_bool(0.5) {
                format!(" source={src}")
            } else {
                String::new()
            };
            format!(
                "broadcast{source} beacons={} horizon={horizon}",
                rng.gen_bool(0.5)
            )
        }
        _ => format!(
            "streaming src={src} horizon={horizon} batch={}",
            rng.gen_range(1..40usize)
        ),
    }
}

fn random_spec(rng: &mut StdRng, name: &str) -> String {
    let (generator, nodes) = random_generator(rng);
    let policy = random_policy(rng);
    let plan = random_plan(rng, nodes);
    // Shuffle directive order: the format is order-insensitive.
    let mut directives = vec![
        format!("generator {generator}"),
        format!("policy {policy}"),
        format!("plan {plan}"),
    ];
    if rng.gen_bool(0.5) {
        directives.push(format!("threads {}", rng.gen_range(1..5usize)));
    }
    for i in (1..directives.len()).rev() {
        directives.swap(i, rng.gen_range(0..=i));
    }
    let mut text = format!("# generated case\nscenario {name}\n");
    for d in directives {
        text.push_str(&d);
        text.push('\n');
    }
    text
}

#[test]
fn random_specs_roundtrip_and_run_thread_invariantly() {
    tvg_testkit::check_with(
        tvg_testkit::Config::named_with_cases("scenario_props::roundtrip_run", 48),
        |rng, case| {
            let text = random_spec(rng, &format!("case-{case}"));
            let scenarios = parse_specs(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(scenarios.len(), 1, "{text}");
            let s = &scenarios[0];
            assert_roundtrip(s);
            // Reports are identical across thread counts and across
            // reruns (full determinism, not just stability).
            let report = assert_thread_invariant(s);
            let again = s.with_threads(Threads::Fixed(1)).run();
            assert_eq!(report.canonical_json(), again.canonical_json(), "{text}");
        },
    );
}

#[test]
fn scenario_engine_accounting_matches_plan_shape() {
    // The report's run counter is structural: matrix = n runs,
    // single-source = 1, broadcast sweep = n, targeted broadcast = 1.
    let text = "\
scenario m
generator ring_bus n=5 period=5
policy wait
plan matrix horizon=20
scenario s
generator ring_bus n=5 period=5
policy wait
plan single_source src=0 horizon=20
scenario b
generator ring_bus n=5 period=5
policy wait
plan broadcast source=2 beacons=true horizon=20
scenario sweep
generator ring_bus n=5 period=5
policy wait
plan broadcast beacons=true horizon=20
";
    let scenarios = parse_specs(text).expect("valid");
    let runs: Vec<u64> = scenarios
        .iter()
        .map(|s| s.run().engine_stats().runs)
        .collect();
    assert_eq!(runs, vec![5, 1, 1, 5]);
}

#[test]
fn duplicate_names_rejected_across_blocks() {
    let text = "\
scenario twin
generator ring_bus n=3 period=3
policy wait
plan matrix horizon=9
scenario twin
generator star_ferry n=3
policy nowait
plan matrix horizon=9
";
    assert_eq!(
        parse_specs(text).unwrap_err(),
        SpecError::DuplicateScenario {
            name: "twin".into()
        }
    );
}

#[test]
fn corrupting_a_valid_spec_always_fails_typed() {
    // Property-flavored failure injection: take a valid random spec and
    // break exactly one facet; the parser must return the matching
    // typed error, never panic and never silently accept.
    tvg_testkit::check_with(
        tvg_testkit::Config::named_with_cases("scenario_props::corruption", 32),
        |rng, case| {
            let good = random_spec(rng, &format!("victim-{case}"));
            assert!(parse_specs(&good).is_ok(), "{good}");
            let (bad, expect): (String, fn(&SpecError) -> bool) = match rng.gen_range(0..5u32) {
                0 => (good.replace("generator ", "generator bogus_"), |e| {
                    matches!(e, SpecError::UnknownGenerator { .. })
                }),
                1 => (good.replace("plan ", "plan bogus_"), |e| {
                    matches!(e, SpecError::UnknownPlan { .. })
                }),
                2 => (good.replace("policy ", "policy sleep_"), |e| {
                    matches!(e, SpecError::BadPolicy { .. })
                }),
                3 => (good.replace("horizon=", "horizon=zzz"), |e| {
                    matches!(e, SpecError::BadParamType { .. })
                }),
                _ => (
                    good.lines()
                        .filter(|l| !l.starts_with("policy"))
                        .collect::<Vec<_>>()
                        .join("\n"),
                    |e| {
                        matches!(
                            e,
                            SpecError::MissingDirective {
                                directive: "policy",
                                ..
                            }
                        )
                    },
                ),
            };
            let err = parse_specs(&bad).expect_err(&bad);
            assert!(expect(&err), "{bad}\nunexpected error: {err}");
        },
    );
}
