//! Properties of the serve runtime, applied to generated workloads via
//! the [`servecheck`] oracles:
//!
//! * a reader holding an old `Arc<ServeSnapshot>` computes
//!   byte-identical answers while the writer concurrently publishes
//!   every later epoch (the snapshot-pinning property);
//! * every concurrently-served answer equals a from-scratch engine run
//!   on a fresh stream that ingested exactly the request's pinned tick
//!   prefix (the serve-vs-offline differential);
//! * the logical outcome is identical at reader counts 1, 2, and 4 —
//!   the invariance the CI golden gate relies on;
//! * the per-epoch publication counters (events, chunks shared, chunks
//!   copied-on-write) of a concurrent run equal a single-threaded
//!   offline replay of the same ticks;
//! * every structure-sharing snapshot is byte-identical to a
//!   from-scratch rebuild of its epoch's tick prefix, even while the
//!   stream keeps mutating the shared chunks underneath.

use rand::Rng;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_model::generators::{edge_markovian_contacts, scale_free_temporal};
use tvg_model::Tvg;
use tvg_serve::{generate_load, LoadSpec, ServeConfig};
use tvg_testkit::{servecheck, Config};

fn policies() -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(2),
        WaitingPolicy::Unbounded,
    ]
}

/// Draws a small serve workload: a contact schedule, its horizon, and
/// an ingest tick size.
fn workload<R: Rng + ?Sized>(rng: &mut R) -> (Tvg<u64>, u64, usize) {
    if rng.gen_bool(0.5) {
        let horizon = rng.gen_range(12..24);
        let g = scale_free_temporal(rng.gen_range(6..12), horizon, rng.gen::<u64>());
        (g, horizon, rng.gen_range(4..12))
    } else {
        let horizon = rng.gen_range(10..20);
        let g = edge_markovian_contacts(rng.gen_range(5..9), horizon, 0.3, 0.4, rng.gen::<u64>());
        (g, horizon, rng.gen_range(3..9))
    }
}

fn config_for(
    g: &Tvg<u64>,
    horizon: u64,
    policy: WaitingPolicy<u64>,
    readers: usize,
) -> ServeConfig {
    let _ = g;
    ServeConfig {
        readers,
        policy,
        limits: SearchLimits::new(horizon, horizon as usize + 1),
        start: 0,
    }
}

#[test]
fn pinned_snapshots_answer_identically_under_concurrent_publication() {
    tvg_testkit::check_with(
        Config::named_with_cases("serve::pinning", 12),
        |rng, case| {
            let (g, horizon, chunk) = workload(rng);
            for policy in policies() {
                servecheck::assert_pinned_snapshot_is_frozen(
                    &g,
                    horizon,
                    chunk,
                    &policy,
                    &format!("serve::pinning case {case} under {policy}"),
                );
            }
        },
    );
}

#[test]
fn served_answers_match_offline_recomputation_of_their_epoch() {
    tvg_testkit::check_with(
        Config::named_with_cases("serve::offline", 10),
        |rng, case| {
            let (g, horizon, chunk) = workload(rng);
            let requests = generate_load(&LoadSpec {
                requests: rng.gen_range(8..24),
                mean_gap: rng.gen_range(1..4),
                mix: (2, 1, 1),
                nodes: g.num_nodes(),
                seed_instant: 0,
                seed: rng.gen::<u64>(),
            });
            let policy = policies()[case % 3];
            let config = config_for(&g, horizon, policy, rng.gen_range(1..5));
            servecheck::assert_serve_matches_offline(
                &g,
                horizon,
                chunk,
                &requests,
                &config,
                &format!("serve::offline case {case} under {policy}"),
            );
        },
    );
}

#[test]
fn serve_outcome_is_reader_count_invariant() {
    tvg_testkit::check_with(
        Config::named_with_cases("serve::readers", 8),
        |rng, case| {
            let (g, horizon, chunk) = workload(rng);
            let requests = generate_load(&LoadSpec {
                requests: rng.gen_range(12..32),
                mean_gap: rng.gen_range(1..3),
                mix: (3, 2, 1),
                nodes: g.num_nodes(),
                seed_instant: 0,
                seed: rng.gen::<u64>(),
            });
            let policy = policies()[case % 3];
            let config = config_for(&g, horizon, policy, 1);
            servecheck::assert_serve_is_reader_count_invariant(
                &g,
                horizon,
                chunk,
                &requests,
                &config,
                &[1, 2, 4],
                &format!("serve::readers case {case} under {policy}"),
            );
        },
    );
}

#[test]
fn publication_counters_match_offline_replay() {
    tvg_testkit::check_with(
        Config::named_with_cases("serve::publications", 10),
        |rng, case| {
            let (g, horizon, chunk) = workload(rng);
            let requests = generate_load(&LoadSpec {
                requests: rng.gen_range(6..16),
                mean_gap: rng.gen_range(1..4),
                mix: (2, 1, 1),
                nodes: g.num_nodes(),
                seed_instant: 0,
                seed: rng.gen::<u64>(),
            });
            let policy = policies()[case % 3];
            let config = config_for(&g, horizon, policy, rng.gen_range(1..5));
            servecheck::assert_publication_counters(
                &g,
                horizon,
                chunk,
                &requests,
                &config,
                &format!("serve::publications case {case} under {policy}"),
            );
        },
    );
}

#[test]
fn shared_snapshots_are_structurally_identical_to_rebuilds() {
    tvg_testkit::check_with(
        Config::named_with_cases("serve::structure", 10),
        |rng, case| {
            let (g, horizon, chunk) = workload(rng);
            servecheck::assert_snapshots_match_rebuild(
                &g,
                horizon,
                chunk,
                &format!("serve::structure case {case}"),
            );
        },
    );
}
