//! Property tests for the compiled interval layer: on every fixture and
//! on random schedule ASTs, `Presence::intervals` must agree with the
//! closure evaluation instant for instant, and the compiled
//! `next_within` must agree with the scanning `next_present_within`.
//!
//! These pin the satellite contract of the temporal index: compilation
//! is a pure change of representation, never of semantics.

use rand::Rng;
use tvg_model::{Time, Tvg, TvgIndex};
use tvg_testkit::fixtures;
use tvg_testkit::gen;

/// Asserts closure/compiled agreement for every edge of `g` over
/// `[0, horizon]`, both membership and next-present queries.
fn assert_index_matches_closures<T: Time>(g: &Tvg<T>, horizon: u64, label: &str) {
    let h = T::from_u64(horizon);
    let index = TvgIndex::compile(g, h.clone());
    for e in g.edges() {
        let rho = g.edge(e).presence();
        let set = index.presence(e);
        let mut t = T::zero();
        loop {
            assert_eq!(
                set.contains(&t),
                rho.is_present(&t),
                "{label}: edge {e} membership at t={t}"
            );
            // next_within from t to the horizon vs. the linear scan.
            assert_eq!(
                set.next_within(&t, &h),
                rho.next_present_within(&t, &h),
                "{label}: edge {e} next-present from t={t}"
            );
            if t == h {
                break;
            }
            t = t.succ();
        }
    }
}

#[test]
fn periodic_fixtures_compile_exactly() {
    let params = fixtures::small_periodic_params(4);
    for seed in 0..8u64 {
        let g = fixtures::periodic_family_tvg(&params, seed);
        assert_index_matches_closures(&g, 40, &format!("periodic seed {seed}"));
    }
    assert_index_matches_closures(&fixtures::ring_bus(5, 4), 32, "ring bus");
}

#[test]
fn commuter_line_compiles_exactly() {
    assert_index_matches_closures(&fixtures::commuter_line(), 30, "commuter line");
}

#[test]
fn figure1_schedules_compile_exactly() {
    // The paper's Figure-1 automaton runs on Nat time with the Table-1
    // schedules (including the prime-power predicate). A small horizon
    // covers the first witnesses (p²q = 12 for p=2, q=3).
    let aut = fixtures::figure1();
    let g = aut.automaton().tvg();
    assert_index_matches_closures(g, 200, "figure 1 (p=2, q=3)");
    let aut53 = fixtures::figure1_pq(5, 3);
    assert_index_matches_closures(aut53.automaton().tvg(), 200, "figure 1 (p=5, q=3)");
}

#[test]
fn random_presence_asts_compile_exactly() {
    tvg_testkit::check("random_presence_asts_compile_exactly", |rng, _| {
        let rho = gen::presence(rng, 3);
        let horizon: u64 = rng.gen_range(0..70);
        let set = rho.intervals(&horizon);
        for t in 0..=horizon {
            assert_eq!(
                set.contains(&t),
                rho.is_present(&t),
                "{rho:?} at t={t} (horizon {horizon})"
            );
        }
        for t in horizon + 1..horizon + 4 {
            assert!(!set.contains(&t), "{rho:?} beyond horizon at t={t}");
        }
        // Windows with arbitrary bounds, including empty and clipped ones.
        for _ in 0..8 {
            let from = rng.gen_range(0..=horizon);
            let until = rng.gen_range(0..=horizon);
            assert_eq!(
                set.next_within(&from, &until),
                rho.next_present_within(&from, &until),
                "{rho:?} next in [{from}, {until}]"
            );
        }
    });
}

#[test]
fn compilation_is_consistent_across_horizons() {
    // Compiling further out never changes what happens below a shorter
    // horizon: intervals(h₂) restricted to [0, h₁] equals intervals(h₁).
    tvg_testkit::check_with(
        tvg_testkit::Config::named_with_cases("compilation_is_consistent_across_horizons", 32),
        |rng, _| {
            let rho = gen::presence(rng, 3);
            let h1 = rng.gen_range(0..40u64);
            let h2 = h1 + rng.gen_range(0..30u64);
            let near = rho.intervals(&h1);
            let far = rho.intervals(&h2);
            for t in 0..=h1 {
                assert_eq!(
                    near.contains(&t),
                    far.contains(&t),
                    "{rho:?} at t={t} (h1={h1}, h2={h2})"
                );
            }
        },
    );
}

#[test]
fn streamed_appends_equal_batch_normalization() {
    // The streaming maintenance primitives (append at the right edge,
    // truncate the provisional close) must land on exactly the set that
    // batch normalization (`from_spans`) produces from the same closed
    // spans — for any monotone up/down sequence, adjacency merges and
    // zero-length pairs included.
    use tvg_model::IntervalSet;
    tvg_testkit::check_with(
        tvg_testkit::Config::named_with_cases("streamed_appends_equal_batch_normalization", 64),
        |rng, _| {
            let horizon = 40u64;
            let end = horizon + 1;
            let mut live = IntervalSet::empty();
            let mut closed: Vec<(u64, u64)> = Vec::new();
            let mut t = 0u64;
            let mut open: Option<u64> = None;
            for _ in 0..rng.gen_range(1..12usize) {
                // Monotone clock; steps of zero exercise same-instant
                // transitions (zero-length pairs, reopen-at-close).
                t = (t + rng.gen_range(0..6u64)).min(horizon);
                match open {
                    None => {
                        live.append_span(t, end);
                        open = Some(t);
                    }
                    Some(up) => {
                        live.truncate_last_span(&t);
                        closed.push((up, t));
                        open = None;
                    }
                }
            }
            if let Some(up) = open {
                closed.push((up, end));
            }
            let batch = IntervalSet::from_spans(closed.clone());
            assert_eq!(
                live.spans(),
                batch.spans(),
                "closed spans {closed:?} (open tail {open:?})"
            );
        },
    );
}

#[test]
fn append_at_boundary_edge_cases() {
    use tvg_model::stream::{StreamError, StreamEvent, TvgStream};
    use tvg_model::{Latency, TemporalIndex};

    // Event exactly at the horizon: a single-instant open span.
    let mut s = TvgStream::<u64>::new(8).expect("8 + 1 is representable");
    let u = s.add_node("u");
    let v = s.add_node("v");
    let e = s.add_edge(u, v, 'a', Latency::unit()).expect("valid");
    s.ingest(&[StreamEvent::Up { edge: e, at: 8 }])
        .expect("the horizon is inside the window");
    assert_eq!(s.index().presence(e).spans(), &[(8, 9)]);
    assert!(s.index().is_present(e, &8));

    // One past the horizon is a typed rejection, not a panic.
    let mut s2 = TvgStream::<u64>::new(8).expect("8 + 1 is representable");
    let u2 = s2.add_node("u");
    let v2 = s2.add_node("v");
    let e2 = s2.add_edge(u2, v2, 'a', Latency::unit()).expect("valid");
    assert_eq!(
        s2.ingest(&[StreamEvent::Up { edge: e2, at: 9 }]),
        Err(StreamError::BeyondHorizon { at: 9, horizon: 8 })
    );

    // Zero-length up/down pair: accepted, leaves no presence, no events.
    s2.ingest(&[
        StreamEvent::Up { edge: e2, at: 3 },
        StreamEvent::Down { edge: e2, at: 3 },
    ])
    .expect("zero-length pairs are dropped, not rejected");
    assert!(s2.index().presence(e2).is_empty());
    assert_eq!(s2.index().num_edge_events(), 0);

    // Down before any up: typed error, stream state untouched.
    assert_eq!(
        s2.ingest(&[StreamEvent::Down { edge: e2, at: 5 }]),
        Err(StreamError::DownBeforeUp { edge: e2, at: 5 })
    );
    assert!(s2.index().presence(e2).is_empty());

    // Out-of-order (before the watermark): typed error.
    assert_eq!(
        s2.ingest(&[StreamEvent::Up { edge: e2, at: 1 }]),
        Err(StreamError::OutOfOrder {
            at: 1,
            watermark: 3
        })
    );
}
