//! Property tests for the compiled interval layer: on every fixture and
//! on random schedule ASTs, `Presence::intervals` must agree with the
//! closure evaluation instant for instant, and the compiled
//! `next_within` must agree with the scanning `next_present_within`.
//!
//! These pin the satellite contract of the temporal index: compilation
//! is a pure change of representation, never of semantics.

use rand::Rng;
use tvg_model::{Time, Tvg, TvgIndex};
use tvg_testkit::fixtures;
use tvg_testkit::gen;

/// Asserts closure/compiled agreement for every edge of `g` over
/// `[0, horizon]`, both membership and next-present queries.
fn assert_index_matches_closures<T: Time>(g: &Tvg<T>, horizon: u64, label: &str) {
    let h = T::from_u64(horizon);
    let index = TvgIndex::compile(g, h.clone());
    for e in g.edges() {
        let rho = g.edge(e).presence();
        let set = index.presence(e);
        let mut t = T::zero();
        loop {
            assert_eq!(
                set.contains(&t),
                rho.is_present(&t),
                "{label}: edge {e} membership at t={t}"
            );
            // next_within from t to the horizon vs. the linear scan.
            assert_eq!(
                set.next_within(&t, &h),
                rho.next_present_within(&t, &h),
                "{label}: edge {e} next-present from t={t}"
            );
            if t == h {
                break;
            }
            t = t.succ();
        }
    }
}

#[test]
fn periodic_fixtures_compile_exactly() {
    let params = fixtures::small_periodic_params(4);
    for seed in 0..8u64 {
        let g = fixtures::periodic_family_tvg(&params, seed);
        assert_index_matches_closures(&g, 40, &format!("periodic seed {seed}"));
    }
    assert_index_matches_closures(&fixtures::ring_bus(5, 4), 32, "ring bus");
}

#[test]
fn commuter_line_compiles_exactly() {
    assert_index_matches_closures(&fixtures::commuter_line(), 30, "commuter line");
}

#[test]
fn figure1_schedules_compile_exactly() {
    // The paper's Figure-1 automaton runs on Nat time with the Table-1
    // schedules (including the prime-power predicate). A small horizon
    // covers the first witnesses (p²q = 12 for p=2, q=3).
    let aut = fixtures::figure1();
    let g = aut.automaton().tvg();
    assert_index_matches_closures(g, 200, "figure 1 (p=2, q=3)");
    let aut53 = fixtures::figure1_pq(5, 3);
    assert_index_matches_closures(aut53.automaton().tvg(), 200, "figure 1 (p=5, q=3)");
}

#[test]
fn random_presence_asts_compile_exactly() {
    tvg_testkit::check("random_presence_asts_compile_exactly", |rng, _| {
        let rho = gen::presence(rng, 3);
        let horizon: u64 = rng.gen_range(0..70);
        let set = rho.intervals(&horizon);
        for t in 0..=horizon {
            assert_eq!(
                set.contains(&t),
                rho.is_present(&t),
                "{rho:?} at t={t} (horizon {horizon})"
            );
        }
        for t in horizon + 1..horizon + 4 {
            assert!(!set.contains(&t), "{rho:?} beyond horizon at t={t}");
        }
        // Windows with arbitrary bounds, including empty and clipped ones.
        for _ in 0..8 {
            let from = rng.gen_range(0..=horizon);
            let until = rng.gen_range(0..=horizon);
            assert_eq!(
                set.next_within(&from, &until),
                rho.next_present_within(&from, &until),
                "{rho:?} next in [{from}, {until}]"
            );
        }
    });
}

#[test]
fn compilation_is_consistent_across_horizons() {
    // Compiling further out never changes what happens below a shorter
    // horizon: intervals(h₂) restricted to [0, h₁] equals intervals(h₁).
    tvg_testkit::check_with(
        tvg_testkit::Config::named_with_cases("compilation_is_consistent_across_horizons", 32),
        |rng, _| {
            let rho = gen::presence(rng, 3);
            let h1 = rng.gen_range(0..40u64);
            let h2 = h1 + rng.gen_range(0..30u64);
            let near = rho.intervals(&h1);
            let far = rho.intervals(&h2);
            for t in 0..=h1 {
                assert_eq!(
                    near.contains(&t),
                    far.contains(&t),
                    "{rho:?} at t={t} (h1={h1}, h2={h2})"
                );
            }
        },
    );
}
