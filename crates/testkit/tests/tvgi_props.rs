//! The `.tvgi` on-disk index gates.
//!
//! Two families of properties:
//!
//! 1. **Round-trip fidelity** — the bundled batch scenarios, run
//!    through `compile_index` + `run_with_index` at shard counts 1, 2,
//!    and 4, must reproduce `Scenario::run`'s canonical report bytes
//!    exactly, under all three waiting policies; and the engine-level
//!    oracle (`tvgicheck`) pins arrivals, witnesses, and stats
//!    bit-identical on generated graphs.
//! 2. **Failure modes** — every way a file can be wrong (truncated,
//!    foreign magic, future version, overlapping or misaligned section
//!    table, any single flipped byte) is a typed [`TvgiError`], never
//!    a panic and never a silently-wrong index.

use tvg_journeys::WaitingPolicy;
use tvg_model::generators::scale_free_temporal;
use tvg_model::tvgi::{peek_tvgi, write_tvgi, ShardedIndex, TvgiError, MAGIC, VERSION};
use tvg_model::{narrow_tvg, TvgIndex};
use tvg_scenarios::{compile_index, parse_specs, run_with_index, IndexFileError, Plan};
use tvg_testkit::tvgicheck::{assert_tvgi_round_trip, scratch_path};

/// The three policy archetypes of the paper, in the `u64` domain.
fn policies() -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(3),
        WaitingPolicy::Unbounded,
    ]
}

// ---------------------------------------------------------------------
// Round-trip fidelity
// ---------------------------------------------------------------------

#[test]
fn generated_graphs_round_trip_at_every_shard_count() {
    let g = scale_free_temporal(50, 40, 11);
    for shards in [1, 2, 4] {
        assert_tvgi_round_trip(&g, 40, shards, &policies(), "sf50");
    }
}

#[test]
fn narrowed_graphs_round_trip_in_the_u32_domain() {
    let g = scale_free_temporal(30, 24, 5);
    let narrowed = narrow_tvg(&g, 24).expect("small horizons narrow");
    let narrowed_policies = [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(3u32),
        WaitingPolicy::Unbounded,
    ];
    for shards in [1, 2, 4] {
        assert_tvgi_round_trip(&narrowed, 24u32, shards, &narrowed_policies, "sf30-u32");
    }
}

/// The acceptance oracle: every bundled batch-plan scenario, swept
/// across the three policies, reports byte-identically from a `.tvgi`
/// at shard counts 1, 2, and 4.
#[test]
fn bundled_batch_scenarios_report_identically_from_tvgi() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut covered = 0usize;
    for entry in std::fs::read_dir(&dir).expect("bundled scenario dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "tvgs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("spec reads");
        for scenario in parse_specs(&text).expect("bundled specs are valid") {
            if matches!(scenario.plan(), Plan::Streaming { .. } | Plan::Serve { .. }) {
                continue;
            }
            let direct = scenario.run().canonical_json();
            for shards in [1u32, 2, 4] {
                let file = scratch_path(&format!("{}-s{shards}", scenario.name()));
                compile_index(&scenario, shards, &file).expect("batch scenarios compile");
                let mapped = run_with_index(&scenario, &file)
                    .expect("compiled file runs")
                    .canonical_json();
                assert_eq!(
                    mapped,
                    direct,
                    "{}: report from .tvgi at {shards} shards diverges",
                    scenario.name()
                );
                let _ = std::fs::remove_file(&file);
            }
            covered += 1;
        }
    }
    assert!(
        covered >= 5,
        "the bundle should hold at least five batch scenarios (got {covered})"
    );
}

#[test]
fn feed_defined_plans_are_refused_typed() {
    let spec = "\
scenario s
generator ring_bus n=4 period=4
policy nowait
plan streaming src=0 horizon=16 batch=4
";
    let scenario = parse_specs(spec).expect("valid spec").remove(0);
    let file = scratch_path("streaming-refused");
    assert_eq!(
        compile_index(&scenario, 1, &file),
        Err(IndexFileError::UnsupportedPlan { plan: "streaming" })
    );
    assert_eq!(
        run_with_index(&scenario, &file),
        Err(IndexFileError::UnsupportedPlan { plan: "streaming" })
    );
}

#[test]
fn a_file_compiled_for_another_workload_is_refused() {
    let specs = |n: u64| {
        format!(
            "scenario s\ngenerator ring_bus n=4 period=4\npolicy nowait\nplan matrix horizon={n}\n"
        )
    };
    let a = parse_specs(&specs(16)).expect("valid").remove(0);
    let b = parse_specs(&specs(32)).expect("valid").remove(0);
    let file = scratch_path("workload-mismatch");
    compile_index(&a, 2, &file).expect("compiles");
    assert_eq!(
        run_with_index(&b, &file),
        Err(IndexFileError::SpecMismatch {
            scenario: "s".to_string()
        })
    );
    let _ = std::fs::remove_file(&file);
}

// ---------------------------------------------------------------------
// Failure modes: every corruption is a typed error, never a panic
// ---------------------------------------------------------------------

/// Writes a small valid `.tvgi` and returns its bytes.
fn valid_file(label: &str) -> (std::path::PathBuf, Vec<u8>) {
    let g = scale_free_temporal(12, 20, 3);
    let index = TvgIndex::compile(&g, 20u64);
    let path = scratch_path(label);
    write_tvgi(&index, 3, Some("spec text"), &path).expect("writes");
    let bytes = std::fs::read(&path).expect("reads back");
    (path, bytes)
}

/// FNV-1a 64 over everything except the checksum field at [16, 24) —
/// the same whole-file checksum the format uses, so a test can patch
/// payload bytes and re-seal the file.
fn reseal(bytes: &mut [u8]) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut upd = |chunk: &[u8]| {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    upd(&bytes[0..16]);
    upd(&bytes[24..]);
    bytes[16..24].copy_from_slice(&h.to_le_bytes());
}

fn open_bytes(label: &str, bytes: &[u8]) -> Result<ShardedIndex<u64>, TvgiError> {
    let path = scratch_path(label);
    std::fs::write(&path, bytes).expect("scratch write");
    let out = ShardedIndex::<u64>::open(&path);
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    let (path, bytes) = valid_file("truncate");
    let _ = std::fs::remove_file(&path);
    // The empty file, a partial header, a partial section table, and a
    // partial payload: every prefix is an error, never a panic.
    for cut in [0, 7, 23, 24, 40, bytes.len() / 2, bytes.len() - 1] {
        let err = open_bytes("truncate-cut", &bytes[..cut]).expect_err("prefix must fail");
        assert!(
            matches!(
                err,
                TvgiError::Truncated
                    | TvgiError::SectionOutOfBounds(_)
                    | TvgiError::ChecksumMismatch
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn foreign_magic_and_future_version_are_typed() {
    let (path, bytes) = valid_file("header");
    let _ = std::fs::remove_file(&path);

    let mut wrong_magic = bytes.clone();
    wrong_magic[0..4].copy_from_slice(b"ELF\x7f");
    assert_eq!(
        open_bytes("bad-magic", &wrong_magic).expect_err("must fail"),
        TvgiError::BadMagic
    );
    assert_eq!(MAGIC, *b"TVGI");

    let mut future = bytes.clone();
    future[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert_eq!(
        open_bytes("bad-version", &future).expect_err("must fail"),
        TvgiError::UnsupportedVersion(VERSION + 1)
    );

    // Opening a u64 file as u32 (and vice versa) is the typed width
    // error, and peek reports the true width for dispatch.
    let path = scratch_path("width");
    std::fs::write(&path, &bytes).expect("scratch write");
    assert_eq!(peek_tvgi(&path).expect("valid header").width, 8);
    assert_eq!(
        ShardedIndex::<u32>::open(&path).expect_err("wrong domain"),
        TvgiError::BadWidth {
            found: 8,
            expected: 4
        }
    );
    let _ = std::fs::remove_file(&path);
}

/// Section-table entries live at `24 + 24·i`; offset is at +8, len at
/// +16 within an entry.
fn entry_field(bytes: &mut [u8], entry: usize, field_off: usize) -> &mut [u8] {
    let at = 24 + 24 * entry + field_off;
    &mut bytes[at..at + 8]
}

#[test]
fn overlapping_sections_are_typed() {
    let (path, mut bytes) = valid_file("overlap");
    let _ = std::fs::remove_file(&path);
    // Point entry 1's offset at entry 0's payload: a structural
    // overlap, caught before any decode (no reseal needed — the table
    // is validated before the checksum pass).
    let first_off = u64::from_le_bytes(entry_field(&mut bytes, 0, 8).try_into().unwrap());
    entry_field(&mut bytes, 1, 8).copy_from_slice(&first_off.to_le_bytes());
    let err = open_bytes("overlap-open", &bytes).expect_err("must fail");
    assert!(
        matches!(err, TvgiError::SectionOverlap(..)),
        "unexpected error {err:?}"
    );
}

#[test]
fn misaligned_sections_are_typed() {
    let (path, mut bytes) = valid_file("misalign");
    let _ = std::fs::remove_file(&path);
    let off = u64::from_le_bytes(entry_field(&mut bytes, 0, 8).try_into().unwrap());
    entry_field(&mut bytes, 0, 8).copy_from_slice(&(off + 1).to_le_bytes());
    let err = open_bytes("misalign-open", &bytes).expect_err("must fail");
    assert!(
        matches!(err, TvgiError::Misaligned(_)),
        "unexpected error {err:?}"
    );
}

/// The sweep: flip one byte at a time across the whole file (stepping
/// through every region — header, table, payload) and open it. Every
/// flip must surface as a typed error; none may open successfully,
/// because the checksum covers everything except its own field, and a
/// flipped checksum byte makes the stored and computed sums disagree.
#[test]
fn single_byte_corruption_never_opens_and_never_panics() {
    let (path, bytes) = valid_file("sweep");
    let _ = std::fs::remove_file(&path);
    // Step 7 keeps the sweep fast while visiting every section and
    // every byte-within-word position; the first 64 bytes (header +
    // first table entries) are swept exhaustively.
    let positions = (0..bytes.len().min(64)).chain((64..bytes.len()).step_by(7));
    for at in positions {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x01;
        let err = open_bytes("sweep-open", &corrupt)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {at} opened successfully"));
        // Which typed error depends on the region hit; the contract is
        // "typed, not panic, not silence".
        let _ = err;
    }
}

#[test]
fn resealed_payload_corruption_is_caught_by_consistency_checks() {
    let (path, bytes) = valid_file("reseal");
    let _ = std::fs::remove_file(&path);
    // Zero out the SHARD_RANGES partition end and reseal the checksum:
    // the checksum now passes, so the cross-section consistency layer
    // must catch the lie.
    let mut forged = bytes.clone();
    // Find the SHARD_RANGES table entry (id 10, global shard).
    let n_sections = u32::from_le_bytes(forged[12..16].try_into().unwrap()) as usize;
    let mut target = None;
    for i in 0..n_sections {
        let at = 24 + 24 * i;
        let id = u32::from_le_bytes(forged[at..at + 4].try_into().unwrap());
        if id == 10 {
            let off = u64::from_le_bytes(forged[at + 8..at + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(forged[at + 16..at + 24].try_into().unwrap()) as usize;
            target = Some((off, len));
        }
    }
    let (off, len) = target.expect("SHARD_RANGES present");
    forged[off + len - 4..off + len].copy_from_slice(&0u32.to_le_bytes());
    reseal(&mut forged);
    let err = open_bytes("reseal-open", &forged).expect_err("forged partition must fail");
    assert!(
        matches!(err, TvgiError::Inconsistent(_)),
        "unexpected error {err:?}"
    );
}
