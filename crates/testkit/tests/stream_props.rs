//! Differential properties of streaming ingestion: after *every*
//! ingested batch of every generated event script,
//!
//! * the live index must be structurally identical to a from-scratch
//!   recompile of the accumulated schedule ([`streamcheck`]);
//! * repaired incremental foremost trees must answer exactly like
//!   fresh engine runs, across all three waiting policies;
//! * query batches against the live snapshot must be thread-count
//!   invariant (the [`batchcheck`] oracle, here applied to a live
//!   index for the first time).
//!
//! Plus targeted coverage the generator cannot guarantee to hit:
//! `Nat`-domain streaming of the Figure-1 schedule, the
//! append-at-boundary edge cases of the stream layer, and a
//! chunk-boundary torture test that lands mutations exactly on the
//! persistent columns' chunk edges (`COL_CHUNK`/`LOG_CHUNK`) with
//! reopen-at-close retractions and a horizon extension, while retained
//! snapshots pin every intermediate epoch against a rebuild.

use tvg_bigint::Nat;
use tvg_journeys::{IncrementalForemost, SearchLimits, WaitingPolicy};
use tvg_model::stream::TvgStream;
use tvg_model::{NodeId, TemporalIndex, Time};
use tvg_testkit::{batchcheck, gen, streamcheck, Config};

fn policies() -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(2),
        WaitingPolicy::Unbounded,
    ]
}

#[test]
fn live_index_and_incremental_trees_match_recompile_after_every_batch() {
    tvg_testkit::check_with(
        Config::named_with_cases("stream::differential", 32),
        |rng, case| {
            let script = gen::event_stream(rng);
            let mut stream = script.stream;
            let limits = SearchLimits::new(script.final_horizon, 12);
            let seeds = vec![(NodeId::from_index(0), 0u64)];
            let mut incs: Vec<IncrementalForemost<u64>> = policies()
                .into_iter()
                .map(|policy| {
                    IncrementalForemost::new(stream.index(), &seeds, policy, limits.clone())
                })
                .collect();
            for (i, batch) in script.batches.iter().enumerate() {
                let report = stream
                    .ingest(batch)
                    .expect("generated scripts are valid feeds");
                let label = format!("{} case {case} batch {i}", script.label);
                streamcheck::assert_live_matches_recompile(&stream, &label);
                for inc in &mut incs {
                    inc.refresh(stream.index(), &report);
                }
                for inc in &incs {
                    streamcheck::assert_incremental_matches_fresh(&stream, inc, &label);
                }
            }
        },
    );
}

#[test]
fn churn_scripts_match_recompile_and_fresh_after_every_batch() {
    // Same oracle, feeds that shrink the node set: the peer-lifecycle
    // generator's native join/leave feed (from an empty stream) and
    // fixture replays with injected departures and rejoins.
    tvg_testkit::check_with(
        Config::named_with_cases("stream::churn_differential", 32),
        |rng, case| {
            let script = gen::churn_script(rng);
            let mut stream = script.stream;
            let limits = SearchLimits::new(script.final_horizon, 12);
            let seeds = vec![(NodeId::from_index(0), 0u64)];
            let mut incs: Vec<IncrementalForemost<u64>> = policies()
                .into_iter()
                .map(|policy| {
                    IncrementalForemost::new(stream.index(), &seeds, policy, limits.clone())
                })
                .collect();
            for (i, batch) in script.batches.iter().enumerate() {
                let report = stream
                    .ingest(batch)
                    .expect("generated churn scripts are valid feeds");
                let label = format!("{} case {case} batch {i}", script.label);
                streamcheck::assert_live_matches_recompile(&stream, &label);
                for inc in &mut incs {
                    inc.refresh(stream.index(), &report);
                    streamcheck::assert_incremental_matches_fresh(&stream, inc, &label);
                }
            }
        },
    );
}

#[test]
fn leave_then_rejoin_keeps_ids_fresh_and_answers_exact() {
    use tvg_model::stream::StreamEvent;
    use tvg_model::Latency;

    // v departs mid-stream with an open contact to the source; a later
    // joiner takes over under a FRESH id (the departed id is never
    // reused), with its own edge. After every step the live index and
    // all three repaired trees must match from-scratch runs.
    for policy in policies() {
        let mut s = TvgStream::<u64>::new(20).expect("20 + 1 is representable");
        let src = s.add_node("src");
        let v = s.add_node("v");
        let e = s.add_edge(src, v, 'a', Latency::unit()).expect("valid");
        let limits = SearchLimits::new(20, 8);
        let mut inc = IncrementalForemost::new(s.index(), &[(src, 0u64)], policy, limits);
        let report = s
            .ingest(&[
                StreamEvent::Up { edge: e, at: 2 },
                StreamEvent::NodeLeave { node: v, at: 4 },
            ])
            .expect("valid feed");
        inc.refresh(s.index(), &report);
        streamcheck::assert_live_matches_recompile(&s, "leave");
        streamcheck::assert_incremental_matches_fresh(&s, &inc, "leave");
        assert_eq!(s.departed_at(v), Some(&4), "{}", inc.policy());

        let report = s
            .ingest(&[
                StreamEvent::NewNode {
                    name: "v-replacement".into(),
                },
                StreamEvent::NewEdge {
                    src,
                    dst: NodeId::from_index(2),
                    label: 'b',
                    latency: Latency::unit(),
                },
                StreamEvent::Up {
                    edge: tvg_model::EdgeId::from_index(1),
                    at: 6,
                },
            ])
            .expect("rejoin under a fresh id is valid");
        inc.refresh(s.index(), &report);
        streamcheck::assert_live_matches_recompile(&s, "rejoin");
        streamcheck::assert_incremental_matches_fresh(&s, &inc, "rejoin");
        let rejoined = NodeId::from_index(2);
        assert_eq!(s.index().tvg().num_nodes(), 3, "fresh id, not reuse");
        assert_eq!(s.departed_at(v), Some(&4), "departure is permanent");
        assert_eq!(s.departed_at(rejoined), None, "{}", inc.policy());
        // The replacement's edge opens at t=6, long after the seed
        // instant — only unbounded waiting can use it from a t=0 seed.
        if matches!(inc.policy(), WaitingPolicy::Unbounded) {
            assert!(
                inc.arrival(rejoined).is_some(),
                "replacement reachable under unbounded waiting"
            );
        }
        // Events on the departed id stay rejected even after the rejoin.
        let err = s
            .ingest(&[StreamEvent::Up { edge: e, at: 8 }])
            .expect_err("departed endpoint must reject");
        assert!(
            matches!(
                err,
                tvg_model::stream::StreamError::NodeDeparted { node, at: 4 } if node == v
            ),
            "got {err:?}"
        );
    }
}

#[test]
fn a_leave_at_the_chunk_boundary_closes_every_open_span() {
    use tvg_model::pcol::{COL_CHUNK, LOG_CHUNK};
    use tvg_model::stream::StreamEvent;
    use tvg_model::Latency;
    use tvg_testkit::servecheck;

    // The torture fixture — a hub with COL_CHUNK + 1 spokes, so the
    // per-edge columns straddle a frozen chunk and its tail — but the
    // final mutation is a NodeLeave of the hub with every span OPEN:
    // one event that retracts COL_CHUNK + 1 provisional closes, the two
    // boundary edges included, across the frozen/tail divide.
    let build = || {
        let mut stream = TvgStream::<u64>::new(90).expect("representable horizon");
        let hub = stream.add_node("hub");
        let edges: Vec<_> = (0..=COL_CHUNK)
            .map(|i| {
                let v = stream.add_node(&format!("s{i}"));
                stream
                    .add_edge(hub, v, 'a', Latency::unit())
                    .expect("valid edge")
            })
            .collect();
        (stream, edges)
    };
    let (mut stream, edges) = build();
    // Enough up/down rounds to push the timeline past one log chunk,
    // then reopen everything and cut it all down with one leave.
    let mut batches: Vec<Vec<StreamEvent<u64>>> = Vec::new();
    for r in 0..9u64 {
        let mut batch = Vec::new();
        for &e in &edges {
            batch.push(StreamEvent::Up { edge: e, at: 8 * r });
        }
        for &e in &edges {
            batch.push(StreamEvent::Down {
                edge: e,
                at: 8 * r + 4,
            });
        }
        batches.push(batch);
    }
    let reopen = edges
        .iter()
        .map(|&e| StreamEvent::Up { edge: e, at: 80 })
        .collect();
    batches.push(reopen);
    batches.push(vec![StreamEvent::NodeLeave {
        node: NodeId::from_index(0),
        at: 84,
    }]);

    let mut snapshots = vec![stream.snapshot()];
    for (i, batch) in batches.iter().enumerate() {
        stream.ingest(batch).expect("churn torture feed is valid");
        streamcheck::assert_live_matches_recompile(&stream, &format!("churn torture batch {i}"));
        snapshots.push(stream.snapshot());
    }
    assert!(
        stream.index().num_edge_events() > LOG_CHUNK,
        "timeline must cross the log-chunk boundary"
    );
    assert!(stream.index().chunks_frozen() > 1, "columns froze chunks");
    assert_eq!(stream.num_departed(), 1);

    // Every retained snapshot — the post-leave one included — must be
    // structurally identical to a fresh stream replaying its prefix.
    for (epoch, snapshot) in snapshots.iter().enumerate() {
        let (mut fresh, _) = build();
        for batch in &batches[..epoch] {
            fresh.ingest(batch).expect("churn torture feed is valid");
        }
        servecheck::assert_index_structure_eq(
            snapshot,
            fresh.index(),
            &format!("churn torture epoch {epoch} snapshot vs rebuild"),
        );
    }
}

#[test]
fn incremental_tree_survives_the_roots_neighbor_departing() {
    use tvg_model::stream::StreamEvent;
    use tvg_model::Latency;

    // A line 0-1-2-3 where everything beyond the source routes through
    // node 1; when node 1 departs with every edge open, the whole
    // downstream subtree's arrivals must be retracted exactly as a
    // fresh run on the truncated schedule would compute them.
    for policy in policies() {
        let mut s = TvgStream::<u64>::new(30).expect("30 + 1 is representable");
        let v: Vec<NodeId> = (0..4).map(|i| s.add_node(&format!("v{i}"))).collect();
        let edges: Vec<_> = (0..3)
            .map(|i| {
                s.add_edge(v[i], v[i + 1], 'a', Latency::unit())
                    .expect("valid edge")
            })
            .collect();
        let limits = SearchLimits::new(30, 10);
        let ups: Vec<StreamEvent<u64>> = edges
            .iter()
            .map(|&e| StreamEvent::Up { edge: e, at: 2 })
            .collect();
        let mut s2 = s.clone();
        let report = s2.ingest(&ups).expect("valid feed");
        let mut inc = IncrementalForemost::new(s2.index(), &[(v[0], 2u64)], policy, limits);
        let _ = report; // initial state built after the ups
        assert!(inc.arrival(v[3]).is_some(), "{}", inc.policy());

        let report = s2
            .ingest(&[StreamEvent::NodeLeave { node: v[1], at: 3 }])
            .expect("valid leave");
        inc.refresh(s2.index(), &report);
        streamcheck::assert_live_matches_recompile(&s2, "neighbor departs");
        streamcheck::assert_incremental_matches_fresh(&s2, &inc, "neighbor departs");
        // The source keeps its own arrival; everything routed through
        // the departed neighbor is gone (the spans closed at t=3, and
        // nothing re-opens them).
        assert_eq!(inc.arrival(v[0]), Some(&2), "{}", inc.policy());
        assert_eq!(inc.arrival(v[2]), None, "{}", inc.policy());
        assert_eq!(inc.arrival(v[3]), None, "{}", inc.policy());
    }
}

#[test]
fn live_snapshot_query_batches_are_thread_invariant() {
    tvg_testkit::check_with(
        Config::named_with_cases("stream::batch_threads", 6),
        |rng, case| {
            let script = gen::event_stream(rng);
            let mut stream = script.stream;
            // Query the snapshot mid-feed (after the first batch) and at
            // the end — the "ingest tick, query tick" loop.
            let checkpoints = [0, script.batches.len() - 1];
            let limits = SearchLimits::new(script.final_horizon, 10);
            for (i, batch) in script.batches.iter().enumerate() {
                stream.ingest(batch).expect("valid feed");
                if !checkpoints.contains(&i) {
                    continue;
                }
                for policy in policies() {
                    batchcheck::assert_all_sources_batch_matches_serial(
                        stream.index(),
                        &0,
                        &policy,
                        &limits,
                        &format!("{} case {case} batch {i}", script.label),
                    );
                }
            }
        },
    );
}

#[test]
fn figure1_nat_schedule_streams_identically() {
    // The theorem constructions run over `Nat`; the stream layer is
    // generic over the time domain, and the Figure-1 automaton's
    // schedule (prime-power presence included) must replay exactly.
    let aut = tvg_testkit::fixtures::figure1();
    let g = aut.automaton().tvg();
    let horizon = Nat::from_u64(60);
    let (mut stream, events) = TvgStream::replay_of(g, &horizon).expect("60 + 1 is representable");
    assert!(!events.is_empty(), "figure-1 has presence below 60");
    // One event per batch: the oracle holds at every prefix.
    for ev in &events {
        stream.ingest(std::slice::from_ref(ev)).expect("valid feed");
        streamcheck::assert_live_matches_recompile(&stream, "figure1-nat");
    }
    for e in g.edges() {
        for t in 0u64..=60 {
            let t = Nat::from_u64(t);
            assert_eq!(
                stream.index().is_present(e, &t),
                g.is_present(e, &t),
                "{e} at {t}"
            );
        }
    }
}

#[test]
fn chunk_boundary_torture_survives_sharing_and_retraction() {
    use tvg_journeys::foremost_tree_multi;
    use tvg_model::pcol::{COL_CHUNK, LOG_CHUNK};
    use tvg_model::stream::StreamEvent;
    use tvg_model::{Latency, TvgIndex};
    use tvg_testkit::servecheck;

    // A hub with COL_CHUNK + 1 spokes: every per-edge column (presence,
    // monotonicity, destinations, latencies) and the per-node adjacency
    // column get exactly one full frozen chunk plus a one-element tail,
    // so the boundary indices COL_CHUNK - 1 and COL_CHUNK straddle the
    // frozen/tail divide.
    let build = || {
        let mut stream = TvgStream::<u64>::new(40).expect("representable horizon");
        let hub = stream.add_node("hub");
        let edges: Vec<_> = (0..=COL_CHUNK)
            .map(|i| {
                let v = stream.add_node(&format!("s{i}"));
                stream
                    .add_edge(hub, v, 'a', Latency::unit())
                    .expect("valid edge")
            })
            .collect();
        (stream, edges)
    };
    let (mut stream, edges) = build();
    let boundary = [edges[COL_CHUNK - 1], edges[COL_CHUNK]];

    // Nine up/down rounds over all edges push the global timeline past
    // LOG_CHUNK events. Rounds 3 and 6 reopen the boundary edges at
    // exactly their previous close — the merge retraction that rewrites
    // already-recorded events at the watermark. The last round leaves
    // the hub's first edge and both boundary edges open so the final
    // horizon extension moves their provisional closes.
    let mut batches: Vec<Vec<StreamEvent<u64>>> = Vec::new();
    for r in 0..9u64 {
        let reopen = r == 3 || r == 6;
        let last = r == 8;
        let mut batch = Vec::new();
        if reopen {
            for &e in &boundary {
                batch.push(StreamEvent::Up {
                    edge: e,
                    at: 4 * (r - 1) + 2,
                });
            }
        }
        for (i, &e) in edges.iter().enumerate() {
            if reopen && (i == COL_CHUNK - 1 || i == COL_CHUNK) {
                continue;
            }
            batch.push(StreamEvent::Up { edge: e, at: 4 * r });
        }
        for (i, &e) in edges.iter().enumerate() {
            if last && (i == 0 || i == COL_CHUNK - 1 || i == COL_CHUNK) {
                continue;
            }
            batch.push(StreamEvent::Down {
                edge: e,
                at: 4 * r + 2,
            });
        }
        batches.push(batch);
    }
    batches.push(vec![StreamEvent::ExtendHorizon { to: 60 }]);

    let mut snapshots = vec![stream.snapshot()];
    for (i, batch) in batches.iter().enumerate() {
        stream.ingest(batch).expect("torture feed is valid");
        streamcheck::assert_live_matches_recompile(&stream, &format!("torture batch {i}"));
        snapshots.push(stream.snapshot());
    }

    // The workload really crossed the chunk boundaries it targets.
    assert!(edges.len() > COL_CHUNK, "per-edge columns span two chunks");
    let events = stream.index().num_edge_events();
    assert!(
        events > LOG_CHUNK,
        "timeline must cross the log-chunk boundary, got {events}"
    );
    let frozen = stream.index().chunks_frozen();
    assert!(frozen > 1, "columns froze chunks, got {frozen}");
    let copied = stream.index().chunks_copied();
    assert!(
        copied > 0,
        "retained snapshots forced copy-on-write, got {copied}"
    );

    // Every retained snapshot — all sharing chunks with the stream that
    // kept mutating — is structurally identical to a fresh stream that
    // replayed exactly its batch prefix and shares nothing.
    for (epoch, snapshot) in snapshots.iter().enumerate() {
        let (mut fresh, _) = build();
        for batch in &batches[..epoch] {
            fresh.ingest(batch).expect("torture feed is valid");
        }
        servecheck::assert_index_structure_eq(
            snapshot,
            fresh.index(),
            &format!("torture epoch {epoch} snapshot vs rebuild"),
        );
    }

    // And the final index answers bit-identically to a batch compile:
    // arrivals and engine work counters under all three policies.
    let g = stream.to_tvg();
    let compiled = TvgIndex::compile(&g, *stream.index().horizon());
    let limits = SearchLimits::new(60, 12);
    let seeds = vec![(NodeId::from_index(0), 0u64)];
    for policy in policies() {
        let live = foremost_tree_multi(stream.index(), &seeds, &policy, &limits);
        let fresh = foremost_tree_multi(&compiled, &seeds, &policy, &limits);
        for n in g.nodes() {
            assert_eq!(
                live.arrival(n),
                fresh.arrival(n),
                "torture: arrival at {n} diverges under {policy}"
            );
        }
        assert_eq!(
            live.stats(),
            fresh.stats(),
            "torture: engine stats diverge under {policy}"
        );
    }
}

#[test]
fn incremental_repair_really_reuses_work() {
    // The repair must not silently degenerate into a full re-run: on a
    // long feed, total incremental work (settles across the initial run
    // plus every refresh) must stay well below the recompute strategy's
    // total (a fresh run per batch).
    use tvg_journeys::foremost_tree;
    use tvg_model::generators::scale_free_temporal;
    use tvg_model::TvgIndex;
    let g = scale_free_temporal(16, 48, 3);
    let (mut stream, events) = TvgStream::replay_of(&g, &48).expect("48 + 1 is representable");
    let limits = SearchLimits::new(48, 12);
    let src = NodeId::from_index(0);
    let mut inc = IncrementalForemost::new(
        stream.index(),
        &[(src, 0u64)],
        WaitingPolicy::Bounded(3),
        limits.clone(),
    );
    let mut recompute_settled = 0u64;
    let mut ticks = 0u64;
    for batch in events.chunks(8) {
        let report = stream.ingest(batch).expect("valid feed");
        inc.refresh(stream.index(), &report);
        let batch_tvg = stream.to_tvg();
        let index = TvgIndex::compile(&batch_tvg, *stream.index().horizon());
        let fresh = foremost_tree(&index, src, &0, &WaitingPolicy::Bounded(3), &limits);
        recompute_settled += fresh.stats().settled;
        ticks += 1;
    }
    assert!(ticks > 5, "workload must span several ticks, got {ticks}");
    let incremental_settled = inc.stats().settled;
    assert!(
        incremental_settled * 2 < recompute_settled,
        "repair must reuse work: incremental settled {incremental_settled} \
         vs recompute total {recompute_settled}"
    );
}
