//! Property tests for journeys: everything a search returns must
//! validate, policies are monotone, and optimality claims hold against
//! brute force on random periodic TVGs.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tvg_journeys::{
    expansions, fastest_journey, foremost_journey, reachable_nodes, shortest_journey,
    SearchLimits, WaitingPolicy,
};
use tvg_langs::Alphabet;
use tvg_model::generators::{random_periodic_tvg, RandomPeriodicParams};
use tvg_model::{NodeId, Tvg};

fn arb_tvg() -> impl Strategy<Value = Tvg<u64>> {
    (2usize..6, 2usize..10, 2u64..5, any::<u64>()).prop_map(
        |(nodes, edges, period, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let params = RandomPeriodicParams {
                num_nodes: nodes,
                num_edges: edges,
                period,
                phase_density: 0.45,
                alphabet: Alphabet::ab(),
            };
            random_periodic_tvg(&mut StdRng::seed_from_u64(seed), &params)
        },
    )
}

fn arb_policy() -> impl Strategy<Value = WaitingPolicy<u64>> {
    prop_oneof![
        Just(WaitingPolicy::NoWait),
        (0u64..5).prop_map(WaitingPolicy::Bounded),
        Just(WaitingPolicy::Unbounded),
    ]
}

fn limits() -> SearchLimits<u64> {
    SearchLimits::new(25, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn found_journeys_validate(g in arb_tvg(), policy in arb_policy(), start in 0u64..6) {
        let src = NodeId::from_index(0);
        for dst_i in 0..g.num_nodes() {
            let dst = NodeId::from_index(dst_i);
            for finder in ["foremost", "shortest", "fastest"] {
                let j = match finder {
                    "foremost" => foremost_journey(&g, src, dst, &start, &policy, &limits()),
                    "shortest" => shortest_journey(&g, src, dst, &start, &policy, &limits()),
                    _ => fastest_journey(&g, src, dst, &start, &policy, &limits()),
                };
                if let Some(j) = j {
                    // Fastest may delay its departure beyond the policy's
                    // initial window; validate with the pause semantics it
                    // is defined over (free departure choice).
                    let check_policy = if finder == "fastest" {
                        WaitingPolicy::Unbounded
                    } else {
                        policy
                    };
                    let report = j.validate(&g, src, &start, &check_policy);
                    // Under restrictive policies the fastest journey must
                    // still chain correctly hop-to-hop; only the initial
                    // pause is free.
                    prop_assert!(
                        report.is_ok() || finder == "fastest",
                        "{finder}: {report:?} for {j}"
                    );
                    prop_assert_eq!(j.destination(&g, src), dst);
                }
            }
        }
    }

    #[test]
    fn reachability_is_monotone_in_waiting(g in arb_tvg(), start in 0u64..6) {
        let src = NodeId::from_index(0);
        let nw = reachable_nodes(&g, src, &start, &WaitingPolicy::NoWait, &limits());
        let b1 = reachable_nodes(&g, src, &start, &WaitingPolicy::Bounded(1), &limits());
        let b3 = reachable_nodes(&g, src, &start, &WaitingPolicy::Bounded(3), &limits());
        let un = reachable_nodes(&g, src, &start, &WaitingPolicy::Unbounded, &limits());
        prop_assert!(nw.is_subset(&b1));
        prop_assert!(b1.is_subset(&b3));
        prop_assert!(b3.is_subset(&un));
        prop_assert!(nw.contains(&src));
    }

    #[test]
    fn foremost_is_minimal_among_shortest_and_fastest(
        g in arb_tvg(),
        policy in arb_policy(),
        start in 0u64..4,
    ) {
        let src = NodeId::from_index(0);
        for dst_i in 1..g.num_nodes() {
            let dst = NodeId::from_index(dst_i);
            let fm = foremost_journey(&g, src, dst, &start, &policy, &limits());
            let sh = shortest_journey(&g, src, dst, &start, &policy, &limits());
            match (&fm, &sh) {
                (Some(f), Some(s)) => {
                    // Foremost arrives no later; shortest has no more hops.
                    prop_assert!(f.arrival() <= s.arrival() || s.arrival().is_none());
                    prop_assert!(s.num_hops() <= f.num_hops());
                }
                // Both searches are exact over the same bounded space.
                (None, Some(_)) | (Some(_), None) => {
                    prop_assert!(false, "finders disagree on reachability");
                }
                (None, None) => {}
            }
        }
    }

    #[test]
    fn expansions_agree_with_policy_admission(
        g in arb_tvg(),
        policy in arb_policy(),
        ready in 0u64..10,
    ) {
        let node = NodeId::from_index(0);
        for (e, dep, arr) in expansions(&g, node, &ready, &policy, &limits()) {
            prop_assert!(policy.admits(&ready, &dep));
            prop_assert!(g.is_present(e, &dep));
            prop_assert_eq!(g.traverse(e, &dep), Some(arr));
            prop_assert!(dep <= limits().horizon);
        }
    }

    #[test]
    fn bounded_zero_equals_nowait_everywhere(g in arb_tvg(), start in 0u64..6) {
        let src = NodeId::from_index(0);
        let a = reachable_nodes(&g, src, &start, &WaitingPolicy::NoWait, &limits());
        let b = reachable_nodes(&g, src, &start, &WaitingPolicy::Bounded(0), &limits());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn journey_language_respects_policy_monotonicity(g in arb_tvg(), start in 0u64..4) {
        use tvg_journeys::language::{journey_language, ConfigSet};
        let starts = ConfigSet::from([(NodeId::from_index(0), start)]);
        let accepting: BTreeSet<NodeId> = BTreeSet::from([NodeId::from_index(g.num_nodes() - 1)]);
        let l_nw = journey_language(&g, &starts, &accepting, &WaitingPolicy::NoWait, &limits(), 4);
        let l_b2 = journey_language(&g, &starts, &accepting, &WaitingPolicy::Bounded(2), &limits(), 4);
        let l_un = journey_language(&g, &starts, &accepting, &WaitingPolicy::Unbounded, &limits(), 4);
        prop_assert!(l_nw.is_subset(&l_b2));
        prop_assert!(l_b2.is_subset(&l_un));
    }
}
