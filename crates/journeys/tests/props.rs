//! Property tests for journeys: everything a search returns must
//! validate, policies are monotone, and optimality claims hold against
//! brute force on random periodic TVGs.
//!
//! Runs on `tvg-testkit`'s deterministic harness; random TVGs and
//! policies come from `tvg_testkit::gen`.

use rand::Rng;
use std::collections::BTreeSet;
use tvg_journeys::{
    expansions, fastest_journey, foremost_journey, reachable_nodes, shortest_journey, SearchLimits,
    WaitingPolicy,
};
use tvg_model::NodeId;
use tvg_testkit::gen;

fn limits() -> SearchLimits<u64> {
    SearchLimits::new(25, 6)
}

#[test]
fn found_journeys_validate() {
    tvg_testkit::check("found_journeys_validate", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let policy = gen::policy(rng);
        let start = rng.gen_range(0u64..6);
        let src = NodeId::from_index(0);
        for dst_i in 0..g.num_nodes() {
            let dst = NodeId::from_index(dst_i);
            for finder in ["foremost", "shortest", "fastest"] {
                let j = match finder {
                    "foremost" => foremost_journey(&g, src, dst, &start, &policy, &limits()),
                    "shortest" => shortest_journey(&g, src, dst, &start, &policy, &limits()),
                    _ => fastest_journey(&g, src, dst, &start, &policy, &limits()),
                };
                if let Some(j) = j {
                    // Fastest may delay its departure beyond the policy's
                    // initial window; validate with the pause semantics it
                    // is defined over (free departure choice).
                    let check_policy = if finder == "fastest" {
                        WaitingPolicy::Unbounded
                    } else {
                        policy
                    };
                    let report = j.validate(&g, src, &start, &check_policy);
                    // Under restrictive policies the fastest journey must
                    // still chain correctly hop-to-hop; only the initial
                    // pause is free.
                    assert!(
                        report.is_ok() || finder == "fastest",
                        "{finder}: {report:?} for {j}"
                    );
                    assert_eq!(j.destination(&g, src), dst);
                }
            }
        }
    });
}

#[test]
fn reachability_is_monotone_in_waiting() {
    tvg_testkit::check("reachability_is_monotone_in_waiting", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let start = rng.gen_range(0u64..6);
        let src = NodeId::from_index(0);
        let nw = reachable_nodes(&g, src, &start, &WaitingPolicy::NoWait, &limits());
        let b1 = reachable_nodes(&g, src, &start, &WaitingPolicy::Bounded(1), &limits());
        let b3 = reachable_nodes(&g, src, &start, &WaitingPolicy::Bounded(3), &limits());
        let un = reachable_nodes(&g, src, &start, &WaitingPolicy::Unbounded, &limits());
        assert!(nw.is_subset(&b1));
        assert!(b1.is_subset(&b3));
        assert!(b3.is_subset(&un));
        assert!(nw.contains(&src));
    });
}

#[test]
fn foremost_is_minimal_among_shortest_and_fastest() {
    tvg_testkit::check(
        "foremost_is_minimal_among_shortest_and_fastest",
        |rng, _| {
            let g = gen::periodic_tvg(rng);
            let policy = gen::policy(rng);
            let start = rng.gen_range(0u64..4);
            let src = NodeId::from_index(0);
            for dst_i in 1..g.num_nodes() {
                let dst = NodeId::from_index(dst_i);
                let fm = foremost_journey(&g, src, dst, &start, &policy, &limits());
                let sh = shortest_journey(&g, src, dst, &start, &policy, &limits());
                match (&fm, &sh) {
                    (Some(f), Some(s)) => {
                        // Foremost arrives no later; shortest has no more hops.
                        assert!(f.arrival() <= s.arrival() || s.arrival().is_none());
                        assert!(s.num_hops() <= f.num_hops());
                    }
                    // Both searches are exact over the same bounded space.
                    (None, Some(_)) | (Some(_), None) => {
                        panic!("finders disagree on reachability");
                    }
                    (None, None) => {}
                }
            }
        },
    );
}

#[test]
fn expansions_agree_with_policy_admission() {
    tvg_testkit::check("expansions_agree_with_policy_admission", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let policy = gen::policy(rng);
        let ready = rng.gen_range(0u64..10);
        let node = NodeId::from_index(0);
        for (e, dep, arr) in expansions(&g, node, &ready, &policy, &limits()) {
            assert!(policy.admits(&ready, &dep));
            assert!(g.is_present(e, &dep));
            assert_eq!(g.traverse(e, &dep), Some(arr));
            assert!(dep <= limits().horizon);
        }
    });
}

#[test]
fn bounded_zero_equals_nowait_everywhere() {
    tvg_testkit::check("bounded_zero_equals_nowait_everywhere", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let start = rng.gen_range(0u64..6);
        let src = NodeId::from_index(0);
        let a = reachable_nodes(&g, src, &start, &WaitingPolicy::NoWait, &limits());
        let b = reachable_nodes(&g, src, &start, &WaitingPolicy::Bounded(0), &limits());
        assert_eq!(a, b);
    });
}

#[test]
fn journey_language_respects_policy_monotonicity() {
    tvg_testkit::check("journey_language_respects_policy_monotonicity", |rng, _| {
        use tvg_journeys::language::{journey_language, ConfigSet};
        let g = gen::periodic_tvg(rng);
        let start = rng.gen_range(0u64..4);
        let starts = ConfigSet::from([(NodeId::from_index(0), start)]);
        let accepting: BTreeSet<NodeId> = BTreeSet::from([NodeId::from_index(g.num_nodes() - 1)]);
        let l_nw = journey_language(
            &g,
            &starts,
            &accepting,
            &WaitingPolicy::NoWait,
            &limits(),
            4,
        );
        let l_b2 = journey_language(
            &g,
            &starts,
            &accepting,
            &WaitingPolicy::Bounded(2),
            &limits(),
            4,
        );
        let l_un = journey_language(
            &g,
            &starts,
            &accepting,
            &WaitingPolicy::Unbounded,
            &limits(),
            4,
        );
        assert!(l_nw.is_subset(&l_b2));
        assert!(l_b2.is_subset(&l_un));
    });
}
