//! Equivalence suite: the compiled single-source engine vs. the
//! tick-scan reference oracle (`tvg_testkit::tickscan`), across all
//! three waiting policies and all three optimality notions.
//!
//! The oracle is the pre-index implementation preserved verbatim; the
//! production searches share no scanning code with it. Agreement on
//! random periodic TVGs and on the paper fixtures is what licenses the
//! index as a pure performance change.

use rand::Rng;
use tvg_journeys::{
    engine::foremost_tree, fastest_journey, foremost_journey, shortest_journey, ReachabilityMatrix,
    SearchLimits, WaitingPolicy,
};
use tvg_model::{NodeId, Tvg, TvgIndex};
use tvg_testkit::{fixtures, gen, tickscan};

fn limits() -> SearchLimits<u64> {
    SearchLimits::new(25, 6)
}

/// The three policy regimes, with a case-specific waiting bound.
fn all_policies(bound: u64) -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(bound),
        WaitingPolicy::Unbounded,
    ]
}

fn n(i: usize) -> NodeId {
    NodeId::from_index(i)
}

/// Foremost equivalence on one graph: engine tree vs. per-pair oracle.
fn assert_foremost_matches(g: &Tvg<u64>, start: u64, limits: &SearchLimits<u64>, label: &str) {
    let index = TvgIndex::compile(g, limits.horizon);
    for policy in all_policies(3) {
        for src in g.nodes() {
            let tree = foremost_tree(&index, src, &start, &policy, limits);
            for dst in g.nodes() {
                if dst == src {
                    continue;
                }
                let oracle = tickscan::foremost_journey(g, src, dst, &start, &policy, limits);
                assert_eq!(
                    tree.arrival(dst),
                    oracle.as_ref().and_then(|j| j.arrival()),
                    "{label}: foremost {src}→{dst} under {policy} from {start}"
                );
                if let Some(j) = tree.journey_to(dst) {
                    assert_eq!(
                        j.validate(g, src, &start, &policy),
                        Ok(()),
                        "{label}: engine journey invalid {src}→{dst} under {policy}"
                    );
                    assert_eq!(j.destination(g, src), dst, "{label}: wrong destination");
                }
            }
        }
    }
}

#[test]
fn engine_foremost_matches_oracle_on_random_tvgs() {
    tvg_testkit::check("engine_foremost_matches_oracle_on_random_tvgs", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let start = rng.gen_range(0u64..6);
        let bound = rng.gen_range(0u64..5);
        let index = TvgIndex::compile(&g, limits().horizon);
        for policy in all_policies(bound) {
            for src in g.nodes() {
                let tree = foremost_tree(&index, src, &start, &policy, &limits());
                for dst in g.nodes() {
                    if dst == src {
                        continue;
                    }
                    let oracle =
                        tickscan::foremost_journey(&g, src, dst, &start, &policy, &limits());
                    assert_eq!(
                        tree.arrival(dst),
                        oracle.as_ref().and_then(|j| j.arrival()),
                        "foremost {src}→{dst} under {policy} from {start}"
                    );
                }
            }
        }
    });
}

#[test]
fn wrapper_foremost_matches_oracle_on_random_tvgs() {
    tvg_testkit::check(
        "wrapper_foremost_matches_oracle_on_random_tvgs",
        |rng, _| {
            let g = gen::periodic_tvg(rng);
            let start = rng.gen_range(0u64..6);
            let bound = rng.gen_range(0u64..5);
            let src = n(0);
            for policy in all_policies(bound) {
                for dst in g.nodes() {
                    let ours = foremost_journey(&g, src, dst, &start, &policy, &limits());
                    let oracle =
                        tickscan::foremost_journey(&g, src, dst, &start, &policy, &limits());
                    assert_eq!(
                        ours.is_some(),
                        oracle.is_some(),
                        "reachability {src}→{dst} under {policy}"
                    );
                    assert_eq!(
                        ours.as_ref().and_then(|j| j.arrival()),
                        oracle.as_ref().and_then(|j| j.arrival()),
                        "arrival {src}→{dst} under {policy}"
                    );
                }
            }
        },
    );
}

#[test]
fn shortest_matches_oracle_on_random_tvgs() {
    tvg_testkit::check("shortest_matches_oracle_on_random_tvgs", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let start = rng.gen_range(0u64..6);
        let bound = rng.gen_range(0u64..5);
        let src = n(0);
        for policy in all_policies(bound) {
            for dst in g.nodes() {
                let ours = shortest_journey(&g, src, dst, &start, &policy, &limits());
                let oracle = tickscan::shortest_journey(&g, src, dst, &start, &policy, &limits());
                assert_eq!(
                    ours.as_ref().map(tvg_journeys::Journey::num_hops),
                    oracle.as_ref().map(tvg_journeys::Journey::num_hops),
                    "shortest hops {src}→{dst} under {policy}"
                );
                if let Some(j) = &ours {
                    assert_eq!(j.validate(&g, src, &start, &policy), Ok(()), "{policy}");
                }
            }
        }
    });
}

#[test]
fn fastest_matches_oracle_on_random_tvgs() {
    tvg_testkit::check("fastest_matches_oracle_on_random_tvgs", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let start = rng.gen_range(0u64..4);
        let bound = rng.gen_range(0u64..5);
        let src = n(0);
        for policy in all_policies(bound) {
            for dst in g.nodes() {
                if dst == src {
                    continue;
                }
                let ours = fastest_journey(&g, src, dst, &start, &policy, &limits());
                let oracle = tickscan::fastest_journey(&g, src, dst, &start, &policy, &limits());
                assert_eq!(
                    ours.is_some(),
                    oracle.is_some(),
                    "fastest feasibility {src}→{dst} under {policy}"
                );
                assert_eq!(
                    ours.as_ref().map(tvg_journeys::Journey::duration),
                    oracle.as_ref().map(tvg_journeys::Journey::duration),
                    "fastest duration {src}→{dst} under {policy}"
                );
            }
        }
    });
}

#[test]
fn reachable_sets_match_oracle_on_random_tvgs() {
    tvg_testkit::check("reachable_sets_match_oracle_on_random_tvgs", |rng, _| {
        let g = gen::periodic_tvg(rng);
        let start = rng.gen_range(0u64..6);
        let bound = rng.gen_range(0u64..5);
        let index = TvgIndex::compile(&g, limits().horizon);
        for policy in all_policies(bound) {
            for src in g.nodes() {
                let tree = foremost_tree(&index, src, &start, &policy, &limits());
                let reached: Vec<NodeId> = tree.reached_nodes().collect();
                let oracle: Vec<NodeId> =
                    tickscan::reachable_nodes(&g, src, &start, &policy, &limits())
                        .into_iter()
                        .collect();
                assert_eq!(reached, oracle, "reachable set from {src} under {policy}");
            }
        }
    });
}

#[test]
fn engine_matches_oracle_on_paper_fixtures() {
    assert_foremost_matches(
        &fixtures::commuter_line(),
        0,
        &SearchLimits::new(25, 6),
        "commuter",
    );
    assert_foremost_matches(
        &fixtures::commuter_line(),
        3,
        &SearchLimits::new(25, 6),
        "commuter@3",
    );
    assert_foremost_matches(
        &fixtures::ring_bus(5, 5),
        0,
        &SearchLimits::new(30, 8),
        "ring bus",
    );
    let params = fixtures::small_periodic_params(3);
    for seed in 0..4u64 {
        let g = fixtures::periodic_family_tvg(&params, seed);
        assert_foremost_matches(&g, 1, &SearchLimits::new(20, 5), &format!("family {seed}"));
    }
}

#[test]
fn reachability_matrix_matches_per_pair_oracle() {
    tvg_testkit::check_with(
        tvg_testkit::Config::named_with_cases("reachability_matrix_matches_per_pair_oracle", 24),
        |rng, _| {
            let g = gen::periodic_tvg(rng);
            let start = rng.gen_range(0u64..4);
            let bound = rng.gen_range(0u64..4);
            for policy in all_policies(bound) {
                let m = ReachabilityMatrix::compute(&g, &start, &policy, &limits());
                for src in g.nodes() {
                    for dst in g.nodes() {
                        if src == dst {
                            // The diagonal is the explicit trivial
                            // self-journey, never an "unreachable" hole.
                            assert_eq!(m.arrival(src, dst), Some(&start));
                            continue;
                        }
                        let oracle =
                            tickscan::foremost_journey(&g, src, dst, &start, &policy, &limits());
                        assert_eq!(
                            m.arrival(src, dst),
                            oracle.as_ref().and_then(|j| j.arrival()),
                            "matrix {src}→{dst} under {policy}"
                        );
                    }
                }
            }
        },
    );
}
