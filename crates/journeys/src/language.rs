//! Journey languages: the words spelled by feasible journeys.
//!
//! This is the bridge between journeys and expressivity: the language
//! `L_f(G)` of the paper is exactly the set of words computed here, with
//! `f` given by the [`WaitingPolicy`]. The `tvg-expressivity` crate's
//! TVG-automaton acceptance delegates to [`step_configs`], so simulation
//! and acceptance cannot drift apart.

use crate::{SearchLimits, WaitingPolicy};
use std::collections::BTreeSet;
use tvg_langs::{Alphabet, Letter, Word};
use tvg_model::{NodeId, Time, Tvg};

/// A set of `(node, ready-time)` configurations a partial journey may be
/// in after reading some word prefix.
pub type ConfigSet<T> = BTreeSet<(NodeId, T)>;

/// All configurations reachable from `configs` by reading exactly one
/// `letter`-labeled edge, pausing as `policy` admits.
pub fn step_configs<T: Time>(
    g: &Tvg<T>,
    configs: &ConfigSet<T>,
    letter: Letter,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> ConfigSet<T> {
    let mut out = ConfigSet::new();
    for (node, ready) in configs {
        for (e, _dep, arr) in crate::search::expansions(g, *node, ready, policy, limits) {
            if g.edge(e).label() == letter {
                out.insert((g.edge(e).dst(), arr));
            }
        }
    }
    out
}

/// Configurations after reading the whole `word` starting from `starts`.
///
/// Returns the empty set as soon as the word becomes unspellable.
pub fn read_word<T: Time>(
    g: &Tvg<T>,
    starts: &ConfigSet<T>,
    word: &Word,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> ConfigSet<T> {
    let mut configs = starts.clone();
    for letter in word.iter() {
        if configs.is_empty() {
            break;
        }
        configs = step_configs(g, &configs, letter, policy, limits);
    }
    configs
}

/// `true` iff some journey from `starts` spelling `word` ends on a node of
/// `accepting`.
pub fn spells<T: Time>(
    g: &Tvg<T>,
    starts: &ConfigSet<T>,
    word: &Word,
    accepting: &BTreeSet<NodeId>,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> bool {
    read_word(g, starts, word, policy, limits)
        .iter()
        .any(|(n, _)| accepting.contains(n))
}

/// The alphabet actually used by `g`'s edge labels (sorted, deduplicated).
///
/// Returns `None` if the graph has no edges (empty alphabets are not
/// representable).
#[must_use]
pub fn label_alphabet<T: Time>(g: &Tvg<T>) -> Option<Alphabet> {
    let letters: BTreeSet<char> = g.edges().map(|e| g.edge(e).label().as_char()).collect();
    if letters.is_empty() {
        return None;
    }
    let joined: String = letters.into_iter().collect();
    Some(Alphabet::from_chars(&joined).expect("labels are printable ascii"))
}

/// All words of length at most `max_len` spelled by journeys from
/// `starts` to `accepting` — the sampled journey language `L_f(G)`.
///
/// Explored as a trie of word prefixes with config-set pruning: a prefix
/// with no live configurations expands no further, so the cost tracks the
/// reachable part of the language rather than `|Σ|^max_len`.
pub fn journey_language<T: Time>(
    g: &Tvg<T>,
    starts: &ConfigSet<T>,
    accepting: &BTreeSet<NodeId>,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    max_len: usize,
) -> BTreeSet<Word> {
    let mut out = BTreeSet::new();
    let Some(alphabet) = label_alphabet(g) else {
        if starts.iter().any(|(n, _)| accepting.contains(n)) {
            out.insert(Word::empty());
        }
        return out;
    };
    // Depth-first over the prefix trie.
    let mut stack: Vec<(Word, ConfigSet<T>)> = vec![(Word::empty(), starts.clone())];
    while let Some((prefix, configs)) = stack.pop() {
        if configs.iter().any(|(n, _)| accepting.contains(n)) {
            out.insert(prefix.clone());
        }
        if prefix.len() == max_len {
            continue;
        }
        for letter in alphabet.iter() {
            let next = step_configs(g, &configs, letter, policy, limits);
            if !next.is_empty() {
                stack.push((prefix.appended(letter), next));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet as Set;
    use tvg_langs::word;
    use tvg_model::{Latency, Presence, TvgBuilder};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// v0 --a @1--> v1 --b @5--> v2: "ab" requires waiting.
    fn line_gap() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(5u64), Latency::unit())
            .expect("valid");
        b.build().expect("valid")
    }

    fn limits() -> SearchLimits<u64> {
        SearchLimits::new(20, 10)
    }

    #[test]
    fn language_depends_on_policy() {
        let g = line_gap();
        let starts = ConfigSet::from([(n(0), 1u64)]);
        let accepting = Set::from([n(2)]);
        let lang_nowait = journey_language(
            &g,
            &starts,
            &accepting,
            &WaitingPolicy::NoWait,
            &limits(),
            4,
        );
        assert!(lang_nowait.is_empty());
        let lang_wait = journey_language(
            &g,
            &starts,
            &accepting,
            &WaitingPolicy::Unbounded,
            &limits(),
            4,
        );
        assert_eq!(lang_wait, Set::from([word("ab")]));
    }

    #[test]
    fn read_word_tracks_configs() {
        let g = line_gap();
        let starts = ConfigSet::from([(n(0), 1u64)]);
        let after_a = read_word(&g, &starts, &word("a"), &WaitingPolicy::NoWait, &limits());
        assert_eq!(after_a, ConfigSet::from([(n(1), 2u64)]));
        let after_ab = read_word(&g, &starts, &word("ab"), &WaitingPolicy::NoWait, &limits());
        assert!(after_ab.is_empty());
        let after_ab_wait = read_word(
            &g,
            &starts,
            &word("ab"),
            &WaitingPolicy::Unbounded,
            &limits(),
        );
        assert_eq!(after_ab_wait, ConfigSet::from([(n(2), 6u64)]));
    }

    #[test]
    fn spells_requires_accepting_node() {
        let g = line_gap();
        let starts = ConfigSet::from([(n(0), 1u64)]);
        assert!(spells(
            &g,
            &starts,
            &word("a"),
            &Set::from([n(1)]),
            &WaitingPolicy::NoWait,
            &limits()
        ));
        assert!(!spells(
            &g,
            &starts,
            &word("a"),
            &Set::from([n(2)]),
            &WaitingPolicy::NoWait,
            &limits()
        ));
    }

    #[test]
    fn empty_word_accepted_iff_start_accepting() {
        let g = line_gap();
        let starts = ConfigSet::from([(n(0), 1u64)]);
        let lang = journey_language(
            &g,
            &starts,
            &Set::from([n(0)]),
            &WaitingPolicy::NoWait,
            &limits(),
            2,
        );
        assert!(lang.contains(&Word::empty()));
    }

    #[test]
    fn label_alphabet_collects_letters() {
        let g = line_gap();
        let sigma = label_alphabet(&g).expect("has edges");
        assert_eq!(sigma.len(), 2);
        assert!(sigma.index_of_char('a').is_some());
        assert!(sigma.index_of_char('b').is_some());
    }

    #[test]
    fn self_loop_languages() {
        // Single node with an always-present a-self-loop: L = a* under
        // every policy.
        let mut b = TvgBuilder::new();
        let v = b.nodes(1);
        b.edge(v[0], v[0], 'a', Presence::Always, Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let starts = ConfigSet::from([(n(0), 0u64)]);
        let accepting = Set::from([n(0)]);
        for policy in [WaitingPolicy::NoWait, WaitingPolicy::Unbounded] {
            let lang = journey_language(&g, &starts, &accepting, &policy, &limits(), 3);
            assert_eq!(
                lang,
                Set::from([Word::empty(), word("a"), word("aa"), word("aaa")]),
                "{policy}"
            );
        }
    }

    #[test]
    fn nondeterministic_labels_explored() {
        // Two a-labeled edges from v0 to different nodes; only one leads on
        // to v3 with b.
        let mut b = TvgBuilder::new();
        let v = b.nodes(4);
        b.edge(v[0], v[1], 'a', Presence::Always, Latency::unit())
            .expect("valid");
        b.edge(v[0], v[2], 'a', Presence::Always, Latency::unit())
            .expect("valid");
        b.edge(v[2], v[3], 'b', Presence::Always, Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let starts = ConfigSet::from([(n(0), 0u64)]);
        let lang = journey_language(
            &g,
            &starts,
            &Set::from([n(3)]),
            &WaitingPolicy::NoWait,
            &limits(),
            2,
        );
        assert_eq!(lang, Set::from([word("ab")]));
    }
}
