//! Journey search: the three classic optimality notions over a compiled
//! temporal index.
//!
//! Three classic journey optimality notions are provided: *foremost*
//! (earliest arrival), *shortest* (fewest hops), and *fastest* (smallest
//! duration). Each compiles the graph into a [`TvgIndex`] for the
//! requested horizon and queries it — [`foremost_journey`] is a thin
//! wrapper over one single-source [`crate::engine`] run, and the other
//! two enumerate departures interval-by-interval instead of
//! tick-by-tick. Callers issuing many queries against one graph should
//! compile the index once themselves and use the engine directly.
//!
//! Dominance arguments ("earlier is always better") are only sound for
//! unbounded waiting; under `NoWait`/`Bounded(d)` an early arrival can be
//! a dead end while a later one connects, so those policies keep exact
//! `(node, time)` configuration exploration — the regime differences are
//! precisely what the experiments measure. The historical tick-scan
//! implementations survive as `tvg_testkit::tickscan`, the reference
//! oracle the equivalence suite checks this module against.
//!
//! [`expansions`], [`reachable_configs`] and [`all_journeys`] remain
//! window-bounded tick scans on purpose: they are exhaustive-enumeration
//! primitives (the journey-language layer steps through them letter by
//! letter) and must work even for time domains whose horizons are too
//! distant to materialize (the theorem constructions run at `Nat` times
//! like `pⁿqⁿ⁻¹`).

use crate::engine::{foremost_to, rebuild, ParentMap};
use crate::{Hop, Journey, WaitingPolicy};
use std::collections::{BTreeMap, BTreeSet};
use tvg_model::{EdgeId, NodeId, Time, Tvg, TvgIndex};

/// Hard bounds on a journey search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchLimits<T> {
    /// Latest admissible *departure* instant (arrivals may exceed it).
    pub horizon: T,
    /// Maximum number of hops explored.
    pub max_hops: usize,
}

impl<T: Time> SearchLimits<T> {
    /// Limits with the given horizon and a hop bound.
    #[must_use]
    pub fn new(horizon: T, max_hops: usize) -> Self {
        SearchLimits { horizon, max_hops }
    }
}

/// All admissible single crossings from `node` when ready at `ready`:
/// `(edge, depart, arrive)` triples, departures within the policy window
/// and the horizon.
pub fn expansions<T: Time>(
    g: &Tvg<T>,
    node: NodeId,
    ready: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Vec<(EdgeId, T, T)> {
    let mut out = Vec::new();
    let Some(latest) = policy.latest_departure(ready, &limits.horizon) else {
        return out;
    };
    for &e in g.out_edges(node) {
        let mut depart = ready.clone();
        while depart <= latest {
            if let Some(arrive) = g.traverse(e, &depart) {
                out.push((e, depart.clone(), arrive));
            }
            depart = depart.succ();
        }
    }
    out
}

/// Exhaustive reachable configuration set from `(src, start)`.
///
/// Returns every `(node, arrival-time)` configuration reachable within the
/// limits, including the start itself.
pub fn reachable_configs<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> BTreeSet<(NodeId, T)> {
    let mut seen: BTreeSet<(NodeId, T)> = BTreeSet::from([(src, start.clone())]);
    let mut frontier = vec![(src, start.clone())];
    for _ in 0..limits.max_hops {
        let mut next = Vec::new();
        for (node, ready) in &frontier {
            for (e, _dep, arr) in expansions(g, *node, ready, policy, limits) {
                let state = (g.edge(e).dst(), arr);
                if seen.insert(state.clone()) {
                    next.push(state);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen
}

/// Nodes reachable from `(src, start)` within the limits.
pub fn reachable_nodes<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> BTreeSet<NodeId> {
    reachable_configs(g, src, start, policy, limits)
        .into_iter()
        .map(|(n, _)| n)
        .collect()
}

/// Enumerates *all* journeys from `src` starting at `start` within the
/// limits (including the empty journey), in breadth-first hop order.
///
/// The count grows exponentially with hops and waiting windows; intended
/// for inspection and small exhaustive analyses. `max_results` caps the
/// output (hard stop, documented truncation).
pub fn all_journeys<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    max_results: usize,
) -> Vec<Journey<T>> {
    let mut out: Vec<Journey<T>> = vec![Journey::empty()];
    // Frontier entries: (current node, ready time, hops so far).
    let mut frontier: Vec<(NodeId, T, Vec<Hop<T>>)> = vec![(src, start.clone(), Vec::new())];
    for _ in 0..limits.max_hops {
        let mut next = Vec::new();
        for (node, ready, hops) in &frontier {
            for (e, dep, arr) in expansions(g, *node, ready, policy, limits) {
                if out.len() >= max_results {
                    return out;
                }
                let mut extended = hops.clone();
                extended.push(Hop {
                    edge: e,
                    depart: dep,
                    arrive: arr.clone(),
                });
                out.push(Journey::from_hops(extended.clone()));
                next.push((g.edge(e).dst(), arr, extended));
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

/// The *foremost* journey: reaches `dst` with the earliest possible
/// arrival. `None` if `dst` is unreachable within the limits.
///
/// Thin wrapper: compiles a [`TvgIndex`] for the horizon and runs one
/// single-source [`crate::engine`] pass. For many queries over one
/// graph, compile the index once and call the engine directly.
pub fn foremost_journey<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    if src == dst {
        return Some(Journey::empty());
    }
    let index = TvgIndex::compile(g, limits.horizon.clone());
    foremost_to(&index, src, dst, start, policy, limits)
}

/// The *shortest* journey: reaches `dst` with the fewest hops.
///
/// Breadth-first over hop layers on the compiled index; within a layer,
/// departures are enumerated interval-by-interval.
pub fn shortest_journey<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    if src == dst {
        return Some(Journey::empty());
    }
    let index = TvgIndex::compile(g, limits.horizon.clone());
    let mut seen: BTreeSet<(NodeId, T)> = BTreeSet::from([(src, start.clone())]);
    let mut parents: ParentMap<T> = BTreeMap::new();
    let mut frontier: Vec<(NodeId, T)> = vec![(src, start.clone())];
    for _ in 0..limits.max_hops {
        let mut next = Vec::new();
        for (node, ready) in &frontier {
            let Some(latest) = policy.latest_departure(ready, &limits.horizon) else {
                continue;
            };
            for (e, dep, arr) in index.crossings(*node, ready, &latest) {
                let succ = index.tvg().edge(e).dst();
                let state = (succ, arr.clone());
                if seen.insert(state.clone()) {
                    parents.insert(state.clone(), (*node, ready.clone(), e, dep));
                    if succ == dst {
                        return Some(rebuild(&parents, state));
                    }
                    next.push(state);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        frontier = next;
    }
    None
}

/// The *fastest* journey: smallest duration (last arrival minus first
/// departure), allowed to delay its departure to any instant in
/// `[start, horizon]`.
///
/// Compiles the index once, then tries only the instants at which some
/// out-edge of `src` actually departs (skipping empty ticks entirely);
/// each candidate pins the first hop and completes with a single-source
/// foremost pass from its endpoint.
pub fn fastest_journey<T: Time>(
    g: &Tvg<T>,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    if src == dst {
        return Some(Journey::empty());
    }
    let index = TvgIndex::compile(g, limits.horizon.clone());
    // Candidate first-hop departures: the union of the source's out-edge
    // presence instants within [start, horizon], in increasing order.
    let departures: BTreeSet<T> = index
        .out_edges(src)
        .iter()
        .flat_map(|&e| index.departures_within(e, start, &limits.horizon))
        .collect();
    let mut best: Option<Journey<T>> = None;
    for t in departures {
        for &e in index.out_edges(src) {
            if !index.is_present(e, &t) {
                continue;
            }
            let Some(arr) = index.arrival(e, &t) else {
                continue;
            };
            let succ = index.tvg().edge(e).dst();
            let tail = if succ == dst {
                Some(Journey::empty())
            } else {
                foremost_to(&index, succ, dst, &arr, policy, limits)
            };
            if let Some(tail) = tail {
                let mut hops = vec![Hop {
                    edge: e,
                    depart: t.clone(),
                    arrive: arr.clone(),
                }];
                hops.extend(tail.hops().iter().cloned());
                let candidate = Journey::from_hops(hops);
                let better = match &best {
                    None => true,
                    Some(b) => candidate.duration() < b.duration(),
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet as Set;
    use tvg_model::{Latency, Presence, TvgBuilder};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Line v0 →a→ v1 →b→ v2 where b exists only at t = 5.
    fn line_gap() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(5u64), Latency::unit())
            .expect("valid");
        b.build().expect("valid")
    }

    fn limits() -> SearchLimits<u64> {
        SearchLimits::new(20, 10)
    }

    #[test]
    fn waiting_separates_reachability() {
        // The archetypal store-carry-forward situation: the connection at
        // v1 requires waiting 3 units.
        let g = line_gap();
        let no = reachable_nodes(&g, n(0), &1, &WaitingPolicy::NoWait, &limits());
        assert_eq!(no, Set::from([n(0), n(1)]));
        let b2 = reachable_nodes(&g, n(0), &1, &WaitingPolicy::Bounded(2), &limits());
        assert_eq!(b2, Set::from([n(0), n(1)]));
        let b3 = reachable_nodes(&g, n(0), &1, &WaitingPolicy::Bounded(3), &limits());
        assert_eq!(b3, Set::from([n(0), n(1), n(2)]));
        let un = reachable_nodes(&g, n(0), &1, &WaitingPolicy::Unbounded, &limits());
        assert_eq!(un, Set::from([n(0), n(1), n(2)]));
    }

    #[test]
    fn foremost_journey_is_earliest() {
        let g = line_gap();
        let j = foremost_journey(&g, n(0), n(2), &1, &WaitingPolicy::Unbounded, &limits())
            .expect("reachable with waiting");
        assert_eq!(j.arrival(), Some(&6)); // depart 1→2 (a), wait, 5→6 (b)
        assert_eq!(j.num_hops(), 2);
        assert_eq!(j.word(&g).to_string(), "ab");
        assert_eq!(j.validate(&g, n(0), &1, &WaitingPolicy::Unbounded), Ok(()));
        assert!(foremost_journey(&g, n(0), n(2), &1, &WaitingPolicy::NoWait, &limits()).is_none());
    }

    #[test]
    fn foremost_prefers_early_arrival_over_few_hops() {
        // Two routes to v3: direct edge at t=9 (1 hop) vs two hops arriving
        // at 3.
        let mut b = TvgBuilder::new();
        let v = b.nodes(4);
        b.edge(v[0], v[3], 'd', Presence::At(9u64), Latency::unit())
            .expect("valid");
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[3], 'b', Presence::At(2u64), Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let j = foremost_journey(&g, n(0), n(3), &1, &WaitingPolicy::Unbounded, &limits())
            .expect("reachable");
        assert_eq!(j.arrival(), Some(&3));
        assert_eq!(j.num_hops(), 2);

        let s = shortest_journey(&g, n(0), n(3), &1, &WaitingPolicy::Unbounded, &limits())
            .expect("reachable");
        assert_eq!(s.num_hops(), 1);
        assert_eq!(s.arrival(), Some(&10));
    }

    #[test]
    fn fastest_delays_departure() {
        // Departing immediately means waiting mid-route (long duration);
        // departing late gives a 2-unit trip.
        let g = line_gap();
        let f = fastest_journey(&g, n(0), n(2), &0, &WaitingPolicy::Unbounded, &limits())
            .expect("reachable");
        // Only departure of edge a is t=1, so fastest = foremost here:
        // duration 6 - 1 = 5.
        assert_eq!(f.duration(), 5);

        // Add a second 'a' departure at t=4 → duration 4→6 = 2.
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::FiniteSet(Set::from([1u64, 4])),
            Latency::unit(),
        )
        .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(5u64), Latency::unit())
            .expect("valid");
        let g2 = b.build().expect("valid");
        let f2 = fastest_journey(&g2, n(0), n(2), &0, &WaitingPolicy::Unbounded, &limits())
            .expect("reachable");
        assert_eq!(f2.duration(), 2);
        assert_eq!(f2.departure(), Some(&4));
    }

    #[test]
    fn trivial_source_equals_destination() {
        let g = line_gap();
        let p = WaitingPolicy::NoWait;
        let j = foremost_journey(&g, n(1), n(1), &0, &p, &limits()).expect("trivial");
        assert!(j.is_empty());
        let j = shortest_journey(&g, n(1), n(1), &0, &p, &limits()).expect("trivial");
        assert!(j.is_empty());
        let j = fastest_journey(&g, n(1), n(1), &0, &p, &limits()).expect("trivial");
        assert!(j.is_empty());
    }

    #[test]
    fn horizon_cuts_search() {
        let g = line_gap();
        let tight = SearchLimits::new(4, 10); // departure at 5 excluded
        assert!(foremost_journey(&g, n(0), n(2), &1, &WaitingPolicy::Unbounded, &tight).is_none());
    }

    #[test]
    fn hop_limit_cuts_search() {
        let g = line_gap();
        let tight = SearchLimits::new(20, 1);
        assert!(foremost_journey(&g, n(0), n(2), &1, &WaitingPolicy::Unbounded, &tight).is_none());
    }

    #[test]
    fn journeys_found_are_valid() {
        let g = line_gap();
        for policy in [WaitingPolicy::Bounded(3), WaitingPolicy::Unbounded] {
            let j = foremost_journey(&g, n(0), n(2), &1, &policy, &limits()).expect("reachable");
            assert_eq!(j.validate(&g, n(0), &1, &policy), Ok(()), "{policy}");
        }
    }

    #[test]
    fn all_journeys_enumerates_and_validates() {
        let g = line_gap();
        let journeys = all_journeys(&g, n(0), &1, &WaitingPolicy::Unbounded, &limits(), 100);
        // Empty journey + a@1 + (a@1 then b@5).
        assert_eq!(journeys.len(), 3);
        for j in &journeys {
            assert_eq!(
                j.validate(&g, n(0), &1, &WaitingPolicy::Unbounded),
                Ok(()),
                "{j}"
            );
        }
        // NoWait sees only the empty journey and a@1 (b@5 unreachable).
        let direct = all_journeys(&g, n(0), &1, &WaitingPolicy::NoWait, &limits(), 100);
        assert_eq!(direct.len(), 2);
    }

    #[test]
    fn all_journeys_respects_result_cap() {
        // Self-loop always present: journeys of every hop count exist.
        let mut b = TvgBuilder::new();
        let v = b.nodes(1);
        b.edge(v[0], v[0], 'a', Presence::Always, Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let journeys = all_journeys(&g, n(0), &0, &WaitingPolicy::NoWait, &limits(), 5);
        assert_eq!(journeys.len(), 5);
    }

    #[test]
    fn expansions_respect_policy_window() {
        let g = line_gap();
        // Ready at 1: edge a departs at 1 only.
        let exp = expansions(&g, n(0), &1, &WaitingPolicy::NoWait, &limits());
        assert_eq!(exp.len(), 1);
        // Ready at 0: NoWait can't take the t=1 departure.
        let exp0 = expansions(&g, n(0), &0, &WaitingPolicy::NoWait, &limits());
        assert!(exp0.is_empty());
        // Bounded(1) from 0 can.
        let exp1 = expansions(&g, n(0), &0, &WaitingPolicy::Bounded(1), &limits());
        assert_eq!(exp1.len(), 1);
    }
}
