//! The batch-query runtime: independent single-source engine runs fanned
//! out over scoped worker threads that share one compiled [`TvgIndex`].
//!
//! Every aggregate consumer in the workspace — `ReachabilityMatrix`
//! (all-pairs reachability), `delivery_ratio` (all-sources delivery),
//! broadcast sweeps — is "one compile, n independent engine runs". The
//! runs share the index immutably (`TvgIndex` is `Send + Sync` whenever
//! its time domain is) and touch nothing else, so the layer is
//! embarrassingly parallel:
//!
//! ```text
//! queries ──▶ atomic claim ──▶ worker₀ ─ engine run ─┐
//!                         ├──▶ worker₁ ─ engine run ─┼─▶ merge by input
//!                         └──▶ workerₖ ─ engine run ─┘   index (stable)
//! ```
//!
//! Workers claim queries from an atomic counter (no static chunking, so
//! a straggler query cannot idle the other workers) and return
//! `(input index, result)` pairs; the merge step reorders results into
//! **input order**, which makes the output bit-identical to the serial
//! path at every thread count. [`Batch::serial`] keeps a canonical
//! single-threaded reference for deterministic tests, and the CI
//! determinism job diffs a canonical dump between `TVG_BATCH_THREADS=1`
//! and `=4` so parallel nondeterminism can never land silently.
//!
//! Work accounting survives the fan-out because [`EngineStats`] are
//! values carried by each run's tree, summed at the merge — "n sources ⇒
//! exactly n runs" holds at any thread count.
//!
//! Consumers that keep less than a full tree per query (a matrix row, a
//! count) should use the `map_*` variants: the reduction runs inside
//! the worker and the tree is dropped there, so peak memory is
//! O(workers) trees instead of O(batch).

use crate::engine::{self, EngineStats, ForemostTree};
use crate::{Journey, SearchLimits, WaitingPolicy};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use tvg_model::{NodeId, TemporalIndex, Time};

/// Environment variable overriding [`Batch::auto`]'s thread count.
/// `0`, unset, or unparsable means "use the machine's parallelism".
pub const THREADS_ENV: &str = "TVG_BATCH_THREADS";

/// Thread-count policy of a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    threads: NonZeroUsize,
}

impl Batch {
    /// The canonical single-threaded reference: every query runs inline
    /// on the calling thread, in input order. Deterministic tests and
    /// the CI determinism diff pin against this.
    #[must_use]
    pub fn serial() -> Self {
        Batch {
            threads: NonZeroUsize::MIN,
        }
    }

    /// Exactly `n` worker threads (clamped up to 1; a zero-thread batch
    /// is the serial one).
    #[must_use]
    pub fn threads(n: usize) -> Self {
        Batch {
            threads: NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The deployment default: the `TVG_BATCH_THREADS` environment
    /// variable if set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    ///
    /// A set-but-invalid value (`"four"`, `"-2"`) still falls back to
    /// machine parallelism, but emits a one-line warning on stderr
    /// naming the rejected value — a typo in a deployment script should
    /// not silently change the thread count. `"0"` and unset are the
    /// documented "ask the machine" spellings and warn nothing.
    #[must_use]
    pub fn auto() -> Self {
        let from_env =
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| match parse_thread_override(&v) {
                    ThreadOverride::Fixed(n) => Some(n),
                    ThreadOverride::Machine => None,
                    ThreadOverride::Invalid => {
                        eprintln!(
                            "warning: ignoring invalid {THREADS_ENV}={v:?} \
                         (want a non-negative integer); using machine parallelism"
                        );
                        None
                    }
                });
        let threads = from_env
            .or_else(|| std::thread::available_parallelism().ok())
            .unwrap_or(NonZeroUsize::MIN);
        Batch { threads }
    }

    /// Number of worker threads this batch will use.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.get()
    }
}

/// What a `TVG_BATCH_THREADS` value means, as three distinct cases so
/// [`Batch::auto`] can warn on the invalid one without conflating it
/// with the documented "ask the machine" spellings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadOverride {
    /// A positive integer: use exactly this many workers.
    Fixed(NonZeroUsize),
    /// `"0"` (with optional surrounding whitespace): explicitly defer
    /// to machine parallelism, same as unset.
    Machine,
    /// Anything else (`"four"`, `"-2"`, `""`): a mistake worth a
    /// warning before falling back.
    Invalid,
}

/// The pure classification behind [`Batch::auto`]'s env handling, kept
/// separate so tests can cover every case without racing on the
/// process-global environment.
fn parse_thread_override(v: &str) -> ThreadOverride {
    match v.trim().parse::<usize>() {
        Ok(0) => ThreadOverride::Machine,
        Ok(n) => ThreadOverride::Fixed(NonZeroUsize::new(n).expect("n > 0")),
        Err(_) => ThreadOverride::Invalid,
    }
}

/// The results of a batch of all-destinations queries: one
/// [`ForemostTree`] per input query, **in input order**, plus the summed
/// work counters.
#[derive(Debug, Clone)]
pub struct BatchOutcome<T> {
    trees: Vec<ForemostTree<T>>,
    stats: EngineStats,
}

impl<T: Time> BatchOutcome<T> {
    /// The per-query trees, index-aligned with the input slice.
    #[must_use]
    pub fn trees(&self) -> &[ForemostTree<T>] {
        &self.trees
    }

    /// Consumes the outcome into its index-aligned trees.
    #[must_use]
    pub fn into_trees(self) -> Vec<ForemostTree<T>> {
        self.trees
    }

    /// Summed [`EngineStats`] over every run in the batch
    /// (`stats().runs` equals the number of input queries).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// The results of a batch of targeted (single-destination) queries: one
/// optional witness [`Journey`] per input query, in input order.
#[derive(Debug, Clone)]
pub struct BatchJourneys<T> {
    journeys: Vec<Option<Journey<T>>>,
    stats: EngineStats,
}

impl<T: Time> BatchJourneys<T> {
    /// The per-query journeys, index-aligned with the input slice
    /// (`None` where the destination is unreachable within the limits).
    #[must_use]
    pub fn journeys(&self) -> &[Option<Journey<T>>] {
        &self.journeys
    }

    /// Consumes the outcome into its index-aligned journeys.
    #[must_use]
    pub fn into_journeys(self) -> Vec<Option<Journey<T>>> {
        self.journeys
    }

    /// Summed [`EngineStats`] over every run in the batch.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// Shares one compiled index across a batch of engine runs.
///
/// Generic over the index form ([`TemporalIndex`]): a batch-compiled
/// [`tvg_model::TvgIndex`] and a streaming [`tvg_model::LiveIndex`]
/// snapshot run identically — a live workload borrows the index between
/// ingest ticks, fans a query batch out, and returns the borrow before
/// the next tick mutates the schedule (the borrow checker enforces the
/// tick discipline: no worker can outlive the snapshot).
///
/// ```
/// use tvg_journeys::{Batch, BatchRunner, SearchLimits, WaitingPolicy};
/// use tvg_model::{generators::ring_bus_tvg, TvgIndex};
///
/// let g = ring_bus_tvg(4, 4, 'r');
/// let index = TvgIndex::compile(&g, 40);
/// let runner = BatchRunner::new(&index, Batch::auto());
/// let sources: Vec<_> = g.nodes().collect();
/// let limits = SearchLimits::new(40, 12);
/// let out = runner.run_sources(&sources, &0, &WaitingPolicy::Unbounded, &limits);
/// assert_eq!(out.stats().runs, 4); // one engine run per source
/// assert!(out.trees().iter().all(|t| t.num_reached() == 4));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner<'i, I> {
    index: &'i I,
    batch: Batch,
}

impl<'i, I> BatchRunner<'i, I> {
    /// A runner over `index` with the given thread-count policy.
    #[must_use]
    pub fn new(index: &'i I, batch: Batch) -> Self {
        BatchRunner { index, batch }
    }

    /// The thread-count policy of this runner.
    #[must_use]
    pub fn batch(&self) -> Batch {
        self.batch
    }

    /// One all-destinations foremost run per source, all starting at
    /// `start` — the `ReachabilityMatrix` / `delivery_ratio` workload.
    #[must_use]
    pub fn run_sources<T: Time + Send + Sync>(
        &self,
        sources: &[NodeId],
        start: &T,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
    ) -> BatchOutcome<T>
    where
        I: TemporalIndex<T> + Sync,
    {
        self.collect(fan_out(self.batch.num_threads(), sources, |&src| {
            engine::foremost_tree(self.index, src, start, policy, limits)
        }))
    }

    /// One all-destinations foremost run per seed *set* (multi-seed runs
    /// model re-emitting sources, e.g. beaconing broadcasts).
    #[must_use]
    pub fn run_seed_sets<T: Time + Send + Sync>(
        &self,
        seed_sets: &[Vec<(NodeId, T)>],
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
    ) -> BatchOutcome<T>
    where
        I: TemporalIndex<T> + Sync,
    {
        self.collect(fan_out(self.batch.num_threads(), seed_sets, |seeds| {
            engine::foremost_tree_multi(self.index, seeds, policy, limits)
        }))
    }

    /// [`BatchRunner::run_sources`] with worker-side reduction: `reduce`
    /// distills each tree into whatever the consumer keeps (a matrix
    /// row, a reached-count), and the tree — parent maps included — is
    /// dropped inside the worker. A batch of n queries therefore holds
    /// O(workers) trees in flight instead of n, which is what lets the
    /// aggregate consumers run at graph scale. Results stay in input
    /// order; the summed stats still count one run per query.
    #[must_use]
    pub fn map_sources<T: Time + Send + Sync, R: Send>(
        &self,
        sources: &[NodeId],
        start: &T,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        reduce: impl Fn(NodeId, &ForemostTree<T>) -> R + Sync,
    ) -> (Vec<R>, EngineStats)
    where
        I: TemporalIndex<T> + Sync,
    {
        split_stats(fan_out(self.batch.num_threads(), sources, |&src| {
            let tree = engine::foremost_tree(self.index, src, start, policy, limits);
            (reduce(src, &tree), tree.stats())
        }))
    }

    /// [`BatchRunner::run_seed_sets`] with worker-side reduction (see
    /// [`BatchRunner::map_sources`]); `reduce` also receives the seed
    /// set its tree answers for.
    #[must_use]
    pub fn map_seed_sets<T: Time + Send + Sync, R: Send>(
        &self,
        seed_sets: &[Vec<(NodeId, T)>],
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        reduce: impl Fn(&[(NodeId, T)], &ForemostTree<T>) -> R + Sync,
    ) -> (Vec<R>, EngineStats)
    where
        I: TemporalIndex<T> + Sync,
    {
        split_stats(fan_out(self.batch.num_threads(), seed_sets, |seeds| {
            let tree = engine::foremost_tree_multi(self.index, seeds, policy, limits);
            (reduce(seeds, &tree), tree.stats())
        }))
    }

    /// One targeted `(src, dst, start)` query per entry, each with the
    /// engine's early exit at the destination's first (already foremost)
    /// settle — the unicast `route` workload.
    #[must_use]
    pub fn run_pairs<T: Time + Send + Sync>(
        &self,
        queries: &[(NodeId, NodeId, T)],
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
    ) -> BatchJourneys<T>
    where
        I: TemporalIndex<T> + Sync,
    {
        let (journeys, stats) = split_stats(fan_out(
            self.batch.num_threads(),
            queries,
            |(src, dst, start): &(NodeId, NodeId, T)| {
                let tree = engine::run(
                    self.index,
                    &[(*src, start.clone())],
                    policy,
                    limits,
                    Some(*dst),
                );
                (tree.journey_to(*dst), tree.stats())
            },
        ));
        BatchJourneys { journeys, stats }
    }

    fn collect<T: Time>(&self, trees: Vec<ForemostTree<T>>) -> BatchOutcome<T> {
        let stats = trees.iter().map(ForemostTree::stats).sum();
        BatchOutcome { trees, stats }
    }
}

/// Splits worker `(result, per-run stats)` pairs into the ordered
/// results and their summed stats.
fn split_stats<R>(results: Vec<(R, EngineStats)>) -> (Vec<R>, EngineStats) {
    let stats = results.iter().map(|(_, s)| *s).sum();
    (results.into_iter().map(|(r, _)| r).collect(), stats)
}

/// Runs `f` over every job and returns the results in input order.
///
/// With one thread (or at most one job) everything runs inline on the
/// calling thread — the serial escape hatch costs no spawn. Otherwise
/// `min(threads, jobs)` scoped workers claim job indices from a shared
/// atomic counter, each collecting `(index, result)` pairs; the join
/// loop writes results back by index. Every index is claimed exactly
/// once, so the merged vector is a permutation-free image of the serial
/// output — bit-identical at every thread count.
///
/// A panicking job does not abort the process: every worker is joined
/// before the first panic payload is rethrown on the calling thread
/// (std's scope would abort on a panicking `Drop` of an unjoined
/// handle, and `join().expect(..)` would double-panic while siblings
/// are still mid-query). Callers see the original payload via
/// [`std::panic::resume_unwind`], with no stranded threads behind it.
fn fan_out<J, R, F>(threads: usize, jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(f).collect();
    }
    let workers = threads.min(jobs.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else {
                            return done;
                        };
                        done.push((i, f(job)));
                    }
                })
            })
            .collect();
        // Join every worker before reacting to any failure: a panic in
        // one must not strand its siblings mid-scope.
        for handle in handles {
            match handle.join() {
                Ok(results) => {
                    for (i, result) in results {
                        slots[i] = Some(result);
                    }
                }
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every claimed job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_model::generators::{ring_bus_tvg, scale_free_temporal};
    use tvg_model::TvgIndex;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn policies() -> [WaitingPolicy<u64>; 3] {
        [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(2),
            WaitingPolicy::Unbounded,
        ]
    }

    #[test]
    fn thread_count_never_changes_results() {
        let g = scale_free_temporal(40, 32, 5);
        let index = TvgIndex::compile(&g, 32);
        let sources: Vec<NodeId> = g.nodes().collect();
        let limits = SearchLimits::new(32, 8);
        for policy in policies() {
            let serial = BatchRunner::new(&index, Batch::serial())
                .run_sources(&sources, &0, &policy, &limits);
            for threads in [2, 4, 7] {
                let parallel = BatchRunner::new(&index, Batch::threads(threads))
                    .run_sources(&sources, &0, &policy, &limits);
                assert_eq!(parallel.stats(), serial.stats(), "{policy} x{threads}");
                for (i, (s, p)) in serial.trees().iter().zip(parallel.trees()).enumerate() {
                    for dst in g.nodes() {
                        assert_eq!(
                            s.arrival(dst),
                            p.arrival(dst),
                            "{policy} x{threads}: source #{i} → {dst}"
                        );
                        assert_eq!(
                            s.journey_to(dst),
                            p.journey_to(dst),
                            "{policy} x{threads}: witness #{i} → {dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        let g = ring_bus_tvg(6, 6, 'r');
        let index = TvgIndex::compile(&g, 36);
        let limits = SearchLimits::new(36, 12);
        // Deliberately scrambled source order: tree i must belong to
        // sources[i], not to the completion order of the workers.
        let sources = [n(3), n(0), n(5), n(1), n(4), n(2)];
        let out = BatchRunner::new(&index, Batch::threads(4)).run_sources(
            &sources,
            &0,
            &WaitingPolicy::Unbounded,
            &limits,
        );
        assert_eq!(out.stats().runs, sources.len() as u64);
        for (tree, src) in out.trees().iter().zip(sources) {
            assert_eq!(tree.arrival(src), Some(&0), "seed of {src} is itself");
            assert!(tree.journey_to(src).expect("seed journey").is_empty());
        }
    }

    #[test]
    fn seed_sets_and_pairs_match_their_serial_engines() {
        let g = ring_bus_tvg(5, 5, 'r');
        let index = TvgIndex::compile(&g, 30);
        let limits = SearchLimits::new(30, 10);
        let seed_sets: Vec<Vec<(NodeId, u64)>> = (0..5)
            .map(|i| (0..3u64).map(|t| (n(i), t)).collect())
            .collect();
        for policy in policies() {
            let serial = BatchRunner::new(&index, Batch::serial())
                .run_seed_sets(&seed_sets, &policy, &limits);
            let parallel = BatchRunner::new(&index, Batch::threads(3))
                .run_seed_sets(&seed_sets, &policy, &limits);
            for (s, p) in serial.trees().iter().zip(parallel.trees()) {
                for dst in g.nodes() {
                    assert_eq!(s.arrival(dst), p.arrival(dst), "{policy}");
                }
            }

            let pairs: Vec<(NodeId, NodeId, u64)> =
                (0..5).map(|i| (n(i), n((i + 2) % 5), 0u64)).collect();
            let sj = BatchRunner::new(&index, Batch::serial()).run_pairs(&pairs, &policy, &limits);
            let pj =
                BatchRunner::new(&index, Batch::threads(4)).run_pairs(&pairs, &policy, &limits);
            assert_eq!(sj.journeys(), pj.journeys(), "{policy}");
            assert_eq!(sj.stats().runs, pairs.len() as u64);
            assert_eq!(pj.stats(), sj.stats(), "{policy}");
        }
    }

    #[test]
    fn map_variants_match_the_full_tree_path() {
        let g = scale_free_temporal(25, 24, 3);
        let index = TvgIndex::compile(&g, 24);
        let sources: Vec<NodeId> = g.nodes().collect();
        let limits = SearchLimits::new(24, 6);
        for policy in policies() {
            for threads in [1usize, 4] {
                let runner = BatchRunner::new(&index, Batch::threads(threads));
                let full = runner.run_sources(&sources, &0, &policy, &limits);
                let (counts, stats) =
                    runner
                        .map_sources(&sources, &0, &policy, &limits, |_, tree| tree.num_reached());
                assert_eq!(stats, full.stats(), "{policy} x{threads}");
                let expected: Vec<usize> =
                    full.trees().iter().map(ForemostTree::num_reached).collect();
                assert_eq!(counts, expected, "{policy} x{threads}");

                let seed_sets: Vec<Vec<(NodeId, u64)>> =
                    sources.iter().map(|&s| vec![(s, 0u64)]).collect();
                let (arrivals, _) =
                    runner.map_seed_sets(&seed_sets, &policy, &limits, |seeds, tree| {
                        tree.arrival(seeds[0].0).cloned()
                    });
                assert!(
                    arrivals.iter().all(|a| a == &Some(0)),
                    "{policy} x{threads}: every seed reaches itself at its seed time"
                );
            }
        }
    }

    #[test]
    fn batch_thread_policy_clamps_and_reports() {
        assert_eq!(Batch::serial().num_threads(), 1);
        assert_eq!(Batch::threads(0).num_threads(), 1);
        assert_eq!(Batch::threads(8).num_threads(), 8);
        assert!(Batch::auto().num_threads() >= 1);
    }

    /// The env-override classification behind [`Batch::auto`]: positive
    /// integers fix the count, `"0"` (like unset) defers to the
    /// machine, and garbage is a distinct invalid case (which `auto`
    /// warns about before falling back). The pure function carries the
    /// coverage so tests never mutate the process-global environment.
    #[test]
    fn thread_env_override_classifies_all_spellings() {
        assert_eq!(
            parse_thread_override("4"),
            ThreadOverride::Fixed(NonZeroUsize::new(4).unwrap())
        );
        assert_eq!(
            parse_thread_override(" 12 "),
            ThreadOverride::Fixed(NonZeroUsize::new(12).unwrap())
        );
        // The documented "ask the machine" spelling.
        assert_eq!(parse_thread_override("0"), ThreadOverride::Machine);
        // Garbage of every flavor is invalid, never a silent fallback.
        for garbage in ["four", "-2", "", "3.5", "0x4", "18446744073709551616"] {
            assert_eq!(
                parse_thread_override(garbage),
                ThreadOverride::Invalid,
                "{garbage:?}"
            );
        }
    }

    /// Regression for the fan-out panic path: a poisoned query must
    /// unwind cleanly out of the batch (original payload, every sibling
    /// worker joined) instead of aborting the process from a panicking
    /// scope-internal `expect`.
    #[test]
    fn worker_panic_propagates_without_aborting() {
        let jobs: Vec<usize> = (0..32).collect();
        // Silence the default hook while the deliberate panic unwinds
        // so the test log stays clean; restore it before asserting.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(|| {
            fan_out(4, &jobs, |&i| {
                assert!(i != 17, "poisoned query #{i}");
                i * 2
            })
        });
        std::panic::set_hook(hook);
        let payload = caught.expect_err("the poisoned job must unwind");
        let message = payload
            .downcast_ref::<String>()
            .expect("a formatted assert carries a String payload");
        assert!(
            message.contains("poisoned query #17"),
            "original payload is preserved: {message}"
        );
        // The scope has exited, so every sibling is joined; a healthy
        // batch on the same runner still works afterwards.
        let healthy = fan_out(4, &jobs, |&i| i * 2);
        assert_eq!(healthy, (0..64).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_empty() {
        let g = ring_bus_tvg(3, 3, 'r');
        let index = TvgIndex::compile(&g, 9);
        let limits = SearchLimits::new(9, 3);
        let out = BatchRunner::new(&index, Batch::threads(4)).run_sources(
            &[],
            &0,
            &WaitingPolicy::Unbounded,
            &limits,
        );
        assert!(out.trees().is_empty());
        assert_eq!(out.stats(), EngineStats::default());
    }
}
