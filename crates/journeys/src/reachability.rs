//! Temporal reachability analysis.
//!
//! Aggregate views over journey search: who can reach whom, how fast, and
//! how much the waiting policy changes the picture — the quantitative
//! face of the paper's "waiting makes protocol design easier" claim.

use crate::batch::{Batch, BatchRunner};
use crate::engine::EngineStats;
use crate::{SearchLimits, WaitingPolicy};
use tvg_model::{NodeId, TemporalIndex, Time, Tvg, TvgIndex};

/// Foremost arrival times between all node pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityMatrix<T> {
    start: T,
    /// `arrivals[src][dst]`: earliest arrival, `None` if unreachable.
    arrivals: Vec<Vec<Option<T>>>,
    /// Summed engine work over the rows (`stats.runs == n`).
    stats: EngineStats,
}

impl<T: Time + Send + Sync> ReachabilityMatrix<T> {
    /// Computes the matrix for `g` with journeys starting at `start`:
    /// the index is compiled once and each row is one single-source
    /// engine run (n runs total, not n² pairwise searches), fanned out
    /// over the batch runtime at [`Batch::auto`]'s thread count. The
    /// result is bit-identical at every thread count.
    ///
    /// The diagonal is the trivial self-journey — every node "reaches"
    /// itself at `start` by the empty journey — modeled explicitly so an
    /// absent entry always means genuine unreachability.
    pub fn compute(
        g: &Tvg<T>,
        start: &T,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
    ) -> Self {
        Self::compute_with(g, start, policy, limits, Batch::auto())
    }

    /// [`ReachabilityMatrix::compute`] with an explicit thread-count
    /// policy ([`Batch::serial`] is the canonical reference).
    pub fn compute_with(
        g: &Tvg<T>,
        start: &T,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        batch: Batch,
    ) -> Self {
        let index = TvgIndex::compile(g, limits.horizon.clone());
        Self::compute_on(&index, start, policy, limits, batch)
    }

    /// [`ReachabilityMatrix::compute_with`] on an already-compiled
    /// index, for callers (like the scenario runtime) that hold one —
    /// avoids paying index compilation a second time. Generic over
    /// [`TemporalIndex`], so a mapped [`tvg_model::tvgi::ShardedIndex`]
    /// serves a matrix just like a freshly compiled [`TvgIndex`].
    pub fn compute_on<I: TemporalIndex<T> + Sync>(
        index: &I,
        start: &T,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        batch: Batch,
    ) -> Self {
        let n = index.num_nodes();
        let sources: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        // Worker-side reduction: each tree collapses to its matrix row
        // before the next query runs, so peak memory is O(workers)
        // trees, not n.
        let (arrivals, stats) = BatchRunner::new(index, batch).map_sources(
            &sources,
            start,
            policy,
            limits,
            |src, tree| {
                (0..n)
                    .map(NodeId::from_index)
                    .map(|dst| {
                        if dst == src {
                            Some(start.clone())
                        } else {
                            tree.arrival(dst).cloned()
                        }
                    })
                    .collect()
            },
        );
        ReachabilityMatrix {
            start: start.clone(),
            arrivals,
            stats,
        }
    }

    /// Summed engine work behind this matrix: exactly one single-source
    /// run per node, at any thread count.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

impl<T: Time> ReachabilityMatrix<T> {
    /// Earliest arrival from `src` to `dst`, `None` if unreachable.
    #[must_use]
    pub fn arrival(&self, src: NodeId, dst: NodeId) -> Option<&T> {
        self.arrivals[src.index()][dst.index()].as_ref()
    }

    /// Fraction of ordered node pairs `(src, dst)`, `src ≠ dst`, that are
    /// reachable. `1.0` for graphs with fewer than two nodes.
    #[must_use]
    pub fn reachability_ratio(&self) -> f64 {
        let n = self.arrivals.len();
        if n < 2 {
            return 1.0;
        }
        let mut reachable = 0usize;
        for (i, row) in self.arrivals.iter().enumerate() {
            for (j, a) in row.iter().enumerate() {
                if i != j && a.is_some() {
                    reachable += 1;
                }
            }
        }
        reachable as f64 / (n * (n - 1)) as f64
    }

    /// The *temporal eccentricity* of the whole graph: the latest foremost
    /// arrival over all reachable pairs, minus the start time. `None` if
    /// no pair is reachable.
    #[must_use]
    pub fn temporal_diameter(&self) -> Option<T> {
        let mut worst: Option<&T> = None;
        for (i, row) in self.arrivals.iter().enumerate() {
            for (j, a) in row.iter().enumerate() {
                if i == j {
                    continue;
                }
                if let Some(a) = a {
                    worst = Some(match worst {
                        None => a,
                        Some(w) if a > w => a,
                        Some(w) => w,
                    });
                }
            }
        }
        worst.map(|w| {
            w.checked_sub(&self.start)
                .expect("arrivals never precede the start time")
        })
    }

    /// `true` iff every ordered pair is reachable.
    #[must_use]
    pub fn is_temporally_connected(&self) -> bool {
        self.arrivals
            .iter()
            .enumerate()
            .all(|(i, row)| row.iter().enumerate().all(|(j, a)| i == j || a.is_some()))
    }

    /// Nodes that reach *every* other node — *temporal sources* in the
    /// TVG-class terminology of the framework paper (a graph with at
    /// least one temporal source supports broadcast from it).
    #[must_use]
    pub fn temporal_sources(&self) -> Vec<NodeId> {
        self.arrivals
            .iter()
            .enumerate()
            .filter(|(i, row)| row.iter().enumerate().all(|(j, a)| *i == j || a.is_some()))
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Nodes reachable from *every* other node — *temporal sinks*
    /// (a graph with a temporal sink supports gathering/aggregation).
    #[must_use]
    pub fn temporal_sinks(&self) -> Vec<NodeId> {
        let n = self.arrivals.len();
        (0..n)
            .filter(|&j| (0..n).all(|i| i == j || self.arrivals[i][j].is_some()))
            .map(NodeId::from_index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_model::{generators::ring_bus_tvg, Latency, Presence, TvgBuilder};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn ring_is_connected_with_waiting_only() {
        // Staggered ring: consecutive hops require waiting for the phase.
        let g = ring_bus_tvg(4, 4, 'r');
        let limits = SearchLimits::new(40, 12);
        let wait = ReachabilityMatrix::compute(&g, &0, &WaitingPolicy::Unbounded, &limits);
        assert!(wait.is_temporally_connected());
        assert_eq!(wait.reachability_ratio(), 1.0);

        let nowait = ReachabilityMatrix::compute(&g, &0, &WaitingPolicy::NoWait, &limits);
        // Phases are staggered by 1 and latency is 1, so direct journeys
        // happen to chain: edge i departs at phase i, arrives i+1 — the
        // ring is traversable directly from phase 0. Reachability is full
        // here; the *difference* shows on the staggered variant below.
        assert!(nowait.reachability_ratio() > 0.0);

        // Stagger by 2: arrival at phase i+1 but next departure at i+2 —
        // direct journeys break after one hop.
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        for i in 0..3usize {
            b.edge(
                v[i],
                v[(i + 1) % 3],
                'r',
                Presence::Periodic {
                    period: 6,
                    phases: std::collections::BTreeSet::from([(2 * i) as u64]),
                },
                Latency::unit(),
            )
            .expect("valid");
        }
        let g2 = b.build().expect("valid");
        let nowait2 = ReachabilityMatrix::compute(&g2, &0, &WaitingPolicy::NoWait, &limits);
        let wait2 = ReachabilityMatrix::compute(&g2, &0, &WaitingPolicy::Unbounded, &limits);
        assert!(wait2.is_temporally_connected());
        assert!(!nowait2.is_temporally_connected());
        assert!(nowait2.reachability_ratio() < wait2.reachability_ratio());
    }

    #[test]
    fn arrivals_and_diameter() {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::At(2u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(7u64), Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let limits = SearchLimits::new(20, 5);
        let m = ReachabilityMatrix::compute(&g, &0, &WaitingPolicy::Unbounded, &limits);
        assert_eq!(m.arrival(n(0), n(1)), Some(&3));
        assert_eq!(m.arrival(n(0), n(2)), Some(&8));
        assert_eq!(m.arrival(n(2), n(0)), None);
        assert_eq!(m.temporal_diameter(), Some(8));
        assert!(!m.is_temporally_connected());
    }

    #[test]
    fn sources_and_sinks() {
        // Chain 0 → 1 → 2 with generous schedules: 0 is a source, 2 a sink.
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::Always, Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::Always, Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let m =
            ReachabilityMatrix::compute(&g, &0, &WaitingPolicy::NoWait, &SearchLimits::new(10, 4));
        assert_eq!(m.temporal_sources(), vec![n(0)]);
        assert_eq!(m.temporal_sinks(), vec![n(2)]);
        assert!(!m.is_temporally_connected());
    }

    #[test]
    fn compute_is_exactly_n_single_source_runs() {
        // The matrix must not fall back to per-pair searches: one engine
        // run per source node, measured by the summed per-run stats —
        // which hold at any worker thread count.
        let g = ring_bus_tvg(5, 5, 'r');
        let limits = SearchLimits::new(30, 10);
        for policy in [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(2),
            WaitingPolicy::Unbounded,
        ] {
            let serial = ReachabilityMatrix::compute_with(
                &g,
                &0,
                &policy,
                &limits,
                crate::batch::Batch::serial(),
            );
            assert_eq!(
                serial.stats().runs,
                g.num_nodes() as u64,
                "{policy}: expected one engine run per source"
            );
            let parallel = ReachabilityMatrix::compute_with(
                &g,
                &0,
                &policy,
                &limits,
                crate::batch::Batch::threads(4),
            );
            assert_eq!(parallel.stats(), serial.stats(), "{policy}");
            assert_eq!(
                parallel, serial,
                "{policy}: thread count changed the matrix"
            );
        }
    }

    #[test]
    fn single_node_graph() {
        let mut b = TvgBuilder::<u64>::new();
        b.node("only");
        let g = b.build().expect("valid");
        let m =
            ReachabilityMatrix::compute(&g, &0, &WaitingPolicy::NoWait, &SearchLimits::new(5, 3));
        assert!(m.is_temporally_connected());
        assert_eq!(m.reachability_ratio(), 1.0);
        assert_eq!(m.temporal_diameter(), None);
    }
}
