//! Journeys — paths over time — in time-varying graphs.
//!
//! The defining feature of dynamic networks is that a route may exist
//! *over time* even when no snapshot contains it end-to-end. A
//! [`Journey`] is the formal object: a walk plus departure instants, each
//! hop crossing an edge that is present when taken. Whether the traveler
//! may *pause* between hops is the [`WaitingPolicy`] — the knob whose
//! expressive consequences the paper quantifies (direct vs. indirect
//! journeys; `L_nowait`, `L_wait[d]`, `L_wait`).
//!
//! The crate provides:
//!
//! * [`Journey`] / [`Hop`] — representation and validation against a TVG
//!   under a policy, with typed failure reasons ([`JourneyError`]).
//! * [`engine`] — the single-source journey engine over a compiled
//!   [`tvg_model::TvgIndex`]: one label-correcting pass returns foremost
//!   arrivals (and witness journeys) to *every* node, with per-run
//!   [`EngineStats`] work counters.
//! * [`batch`] — the batch-query runtime: slices of independent engine
//!   runs fanned out over scoped worker threads sharing one index, with
//!   results merged back in input order (bit-identical to the serial
//!   path at every thread count). Generic over
//!   [`tvg_model::TemporalIndex`], so batches run against a
//!   batch-compiled index or a streaming [`tvg_model::LiveIndex`]
//!   snapshot between ingest ticks.
//! * [`incremental`] — [`IncrementalForemost`]: a foremost tree that
//!   repairs itself after each ingested event batch (re-relaxing only
//!   labels at or after the batch's earliest change) instead of
//!   rerunning the engine from scratch.
//! * [`foremost_journey`], [`shortest_journey`], [`fastest_journey`] —
//!   the classic journey-optimality triple, exact for every policy;
//!   thin wrappers that compile an index and query the engine.
//! * [`language`] — journey languages `L_f(G)`: the bridge to the
//!   `tvg-expressivity` crate.
//! * [`ReachabilityMatrix`] — who reaches whom, how fast, under which
//!   policy.
//!
//! # Examples
//!
//! The archetypal store-carry-forward situation — the second edge only
//! appears after the first one is gone, so only waiting connects:
//!
//! ```
//! use tvg_journeys::{foremost_journey, SearchLimits, WaitingPolicy};
//! use tvg_model::{Latency, Presence, TvgBuilder};
//!
//! let mut b = TvgBuilder::<u64>::new();
//! let v = b.nodes(3);
//! b.edge(v[0], v[1], 'a', Presence::At(1), Latency::unit())?;
//! b.edge(v[1], v[2], 'b', Presence::At(5), Latency::unit())?;
//! let g = b.build()?;
//!
//! let limits = SearchLimits::new(10, 5);
//! let direct = foremost_journey(&g, v[0], v[2], &1, &WaitingPolicy::NoWait, &limits);
//! assert!(direct.is_none()); // no direct journey exists
//!
//! let waited = foremost_journey(&g, v[0], v[2], &1, &WaitingPolicy::Unbounded, &limits)
//!     .expect("waiting connects");
//! assert_eq!(waited.arrival(), Some(&6));
//! # Ok::<(), tvg_model::TvgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod incremental;
mod journey;
pub mod language;
mod policy;
mod reachability;
pub mod search;

pub use batch::{Batch, BatchJourneys, BatchOutcome, BatchRunner};
pub use engine::{foremost_to, foremost_tree, foremost_tree_multi, EngineStats, ForemostTree};
pub use incremental::IncrementalForemost;
pub use journey::{Hop, Journey, JourneyError};
pub use policy::WaitingPolicy;
pub use reachability::ReachabilityMatrix;
pub use search::{
    all_journeys, expansions, fastest_journey, foremost_journey, reachable_configs,
    reachable_nodes, shortest_journey, SearchLimits,
};
