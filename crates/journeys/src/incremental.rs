//! Incremental repair of foremost trees as a streamed schedule grows.
//!
//! A [`crate::ForemostTree`] answers "when does every node first hear
//! from the source?" against one fixed schedule. Under streaming
//! ingestion ([`tvg_model::stream`]) the schedule changes after every
//! batch of edge events, and rerunning [`crate::foremost_tree`] from
//! scratch repeats all the work the batch could not have invalidated.
//! [`IncrementalForemost`] keeps the explorer's internal state alive
//! between batches and repairs it instead:
//!
//! 1. **Prune.** Every accepted stream event changes presence only at
//!    or after its own instant, and the earliest such instant `t₀`
//!    arrives with the batch's
//!    [`tvg_model::stream::IngestReport::earliest_change`]. Because
//!    latencies are non-negative, a crossing departing at or after `t₀`
//!    also *arrives* at or after `t₀` — so every settled conclusion with
//!    arrival before `t₀` is untouchable, and everything at or after it
//!    is discarded (additions can improve those arrivals, a `Down`
//!    closing an open span can invalidate them; discarding handles
//!    both).
//! 2. **Replay.** Surviving configurations are re-expanded against the
//!    *new* schedule, in the exact global order a fresh run would have
//!    expanded them. Crossings landing before `t₀` find their targets
//!    already settled and are skipped; crossings into the repaired
//!    region re-enter the queue.
//! 3. **Drain.** The ordinary exploration loop finishes the repaired
//!    region.
//!
//! For the exact explorers (`NoWait` / `Bounded`) this reproduces a
//! fresh run's arrivals *and* parent structure bit for bit — the
//! `streamcheck` differential oracle in `tvg-testkit` asserts witness
//! journeys hop by hop. The Pareto explorer (`Unbounded`) reproduces
//! arrivals and witness hop counts exactly; on exact ties between
//! equally-foremost routes the surviving witness may differ from the
//! fresh run's pick (label ids — the final tiebreak — are allocation
//! order, which repair does not replay), so the oracle checks those
//! witnesses semantically: same arrival, same hops, validates.
//!
//! The work saved is the point, stated precisely: per refresh, the
//! *settling* work is bounded by the repaired region (the churn), and
//! what remains of the history's cost is one re-expansion sweep over
//! the surviving settled frontier — no schedule recompilation, no
//! re-settling, no witness reconstruction. A refresh therefore costs
//! `O(frontier + churn)` where the recompute baseline pays
//! `O(accumulated schedule + full exploration)` every tick; the
//! `stream_props` work-reuse property pins the settle ratio, and
//! `benches/stream_ingest.rs` (experiment E9) measures the end-to-end
//! gap on the scale-free feed.

use crate::engine::{rebuild_labels, EngineStats, ExactCore, ForemostTree, ParetoCore, TreeRepr};
use crate::{Journey, SearchLimits, WaitingPolicy};
use tvg_model::stream::IngestReport;
use tvg_model::{NodeId, TemporalIndex, Time};

/// A foremost tree that stays current across ingest batches by
/// repairing itself instead of recomputing.
///
/// ```
/// use tvg_journeys::{IncrementalForemost, SearchLimits, WaitingPolicy};
/// use tvg_model::stream::{StreamEvent, TvgStream};
/// use tvg_model::Latency;
///
/// let mut s = TvgStream::<u64>::new(10)?;
/// let (u, v) = (s.add_node("u"), s.add_node("v"));
/// let e = s.add_edge(u, v, 'a', Latency::unit())?;
/// let limits = SearchLimits::new(10, 5);
/// let mut inc = IncrementalForemost::new(
///     s.index(), &[(u, 0)], WaitingPolicy::Unbounded, limits);
/// assert_eq!(inc.arrival(v), None);
///
/// let report = s.ingest(&[StreamEvent::Up { edge: e, at: 3 }])?;
/// inc.refresh(s.index(), &report);
/// assert_eq!(inc.arrival(v), Some(&4));
/// # Ok::<(), tvg_model::stream::StreamError<u64>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalForemost<T> {
    seeds: Vec<(NodeId, T)>,
    /// Node-count high-water mark at the last seeding pass. Seeds
    /// naming a node beyond it are *deferred*: under churn (node join
    /// and leave events in the feed) a source may not have joined the
    /// stream yet when the tree is created, and it enters the
    /// exploration on the first refresh that sees it exist.
    known_nodes: usize,
    policy: WaitingPolicy<T>,
    limits: SearchLimits<T>,
    state: State<T>,
    stats: EngineStats,
}

#[derive(Debug, Clone)]
enum State<T> {
    Exact(ExactCore<T>),
    Pareto(ParetoCore<T>),
}

impl<T: Time> IncrementalForemost<T> {
    /// Runs the initial full exploration from `seeds` and keeps the
    /// explorer state for later repairs. Seeds naming a node the index
    /// does not hold yet (a source that joins the stream later) are
    /// deferred, not rejected: they enter the exploration on the first
    /// [`IncrementalForemost::refresh`] after their node exists.
    #[must_use]
    pub fn new<I: TemporalIndex<T>>(
        index: &I,
        seeds: &[(NodeId, T)],
        policy: WaitingPolicy<T>,
        limits: SearchLimits<T>,
    ) -> Self {
        let n = index.num_nodes();
        let mut stats = EngineStats {
            runs: 1,
            ..EngineStats::default()
        };
        let live = seeds.iter().filter(|(s, _)| s.index() < n);
        let state = match &policy {
            WaitingPolicy::Unbounded => {
                let mut core = ParetoCore::new(n);
                core.seed(live);
                core.drain(index, &limits, None, &mut stats);
                State::Pareto(core)
            }
            _ => {
                let mut core = ExactCore::new(n);
                core.seed(live);
                core.drain(index, &policy, &limits, None, &mut stats);
                State::Exact(core)
            }
        };
        IncrementalForemost {
            seeds: seeds.to_vec(),
            known_nodes: n,
            policy,
            limits,
            state,
            stats,
        }
    }

    /// Brings the tree up to date after one ingested batch, repairing
    /// only from the batch's earliest presence change onward (a pure
    /// topology batch just grows the per-node state).
    pub fn refresh<I: TemporalIndex<T>>(&mut self, index: &I, report: &IngestReport<T>) {
        match &report.earliest_change {
            Some(t0) => self.refresh_since(index, t0),
            None => {
                self.resize(index);
                // A pure topology batch can still make a deferred seed's
                // node exist (`NewNode`); explore from it now so its own
                // arrival is settled before any presence arrives.
                let n = index.num_nodes();
                let prev = std::mem::replace(&mut self.known_nodes, n);
                let late: Vec<&(NodeId, T)> = self
                    .seeds
                    .iter()
                    .filter(|(s, _)| (prev..n).contains(&s.index()))
                    .collect();
                if !late.is_empty() {
                    self.stats.runs += 1;
                    match &mut self.state {
                        State::Exact(core) => {
                            core.seed(late);
                            core.drain(index, &self.policy, &self.limits, None, &mut self.stats);
                        }
                        State::Pareto(core) => {
                            core.seed(late);
                            core.drain(index, &self.limits, None, &mut self.stats);
                        }
                    }
                }
            }
        }
    }

    /// [`IncrementalForemost::refresh`] from an explicit repair
    /// watermark: every conclusion with arrival `>= since` is discarded
    /// and recomputed against the current index. Passing a watermark
    /// earlier than the true earliest change is always sound (it merely
    /// repairs more); passing a later one is not.
    pub fn refresh_since<I: TemporalIndex<T>>(&mut self, index: &I, since: &T) {
        self.resize(index);
        self.stats.runs += 1;
        let n = index.num_nodes();
        let prev = std::mem::replace(&mut self.known_nodes, n);
        let seeds = &self.seeds;
        // Re-seed what the prune discarded (`t >= since`), plus any
        // deferred seed whose node joined since the last pass — its
        // settled state never existed, whatever its seed time.
        let to_seed = move |seed: &&(NodeId, T)| {
            seed.0.index() < n && (&seed.1 >= since || seed.0.index() >= prev)
        };
        match &mut self.state {
            State::Exact(core) => {
                core.prune(since);
                core.replay(index, &self.policy, &self.limits, &mut self.stats);
                core.seed(seeds.iter().filter(to_seed));
                core.drain(index, &self.policy, &self.limits, None, &mut self.stats);
            }
            State::Pareto(core) => {
                core.prune(since);
                core.replay(index, &self.limits, &mut self.stats);
                core.seed(seeds.iter().filter(to_seed));
                core.drain(index, &self.limits, None, &mut self.stats);
            }
        }
    }

    fn resize<I: TemporalIndex<T>>(&mut self, index: &I) {
        let n = index.num_nodes();
        match &mut self.state {
            State::Exact(core) => core.resize(n),
            State::Pareto(core) => core.resize(n),
        }
    }

    /// The seed configurations the tree answers for.
    #[must_use]
    pub fn seeds(&self) -> &[(NodeId, T)] {
        &self.seeds
    }

    /// The waiting policy of the exploration.
    #[must_use]
    pub fn policy(&self) -> &WaitingPolicy<T> {
        &self.policy
    }

    /// The search limits of the exploration.
    #[must_use]
    pub fn limits(&self) -> &SearchLimits<T> {
        &self.limits
    }

    /// The foremost arrival at `n` under the current schedule, `None`
    /// if unreachable within the limits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the indexed graph.
    #[must_use]
    pub fn arrival(&self, n: NodeId) -> Option<&T> {
        match &self.state {
            State::Exact(core) => core.arrival[n.index()].as_ref(),
            State::Pareto(core) => core.arrival[n.index()].as_ref(),
        }
    }

    /// A foremost witness journey to `n` (empty for a seed node),
    /// rebuilt on demand from the repaired parent structure.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the indexed graph.
    #[must_use]
    pub fn journey_to(&self, n: NodeId) -> Option<Journey<T>> {
        let (arrival, best, arena) = match &self.state {
            State::Exact(core) => (&core.arrival, &core.best, &core.arena),
            State::Pareto(core) => (&core.arrival, &core.best, &core.arena),
        };
        arrival[n.index()].as_ref()?;
        let id = best[n.index()].expect("reached nodes have a best label");
        Some(rebuild_labels(arena, id))
    }

    /// Number of nodes currently reached (seeds included).
    #[must_use]
    pub fn num_reached(&self) -> usize {
        let arrival = match &self.state {
            State::Exact(core) => &core.arrival,
            State::Pareto(core) => &core.arrival,
        };
        arrival.iter().filter(|a| a.is_some()).count()
    }

    /// Cumulative work counters: `runs` counts the initial run plus one
    /// per repairing refresh; `settled`/`expanded` accumulate, so the
    /// total is directly comparable against the recompute strategy's
    /// sum of fresh runs (the E9 benchmark's accounting).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// A snapshot of the current answers as an ordinary
    /// [`ForemostTree`] (cloned out of the live state).
    #[must_use]
    pub fn tree(&self) -> ForemostTree<T> {
        let (arrival, best, arena) = match &self.state {
            State::Exact(core) => (&core.arrival, &core.best, &core.arena),
            State::Pareto(core) => (&core.arrival, &core.best, &core.arena),
        };
        ForemostTree::from_parts(
            arrival.clone(),
            TreeRepr {
                arena: arena.clone(),
                best: best.clone(),
            },
            self.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::foremost_tree_multi;
    use tvg_model::stream::{StreamEvent, TvgStream};
    use tvg_model::{Latency, TvgIndex};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn policies() -> [WaitingPolicy<u64>; 3] {
        [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(2),
            WaitingPolicy::Unbounded,
        ]
    }

    /// Repaired answers must match a fresh run on the recompiled
    /// accumulated schedule (the in-crate smoke version of the testkit
    /// streamcheck oracle).
    fn assert_matches_fresh(stream: &TvgStream<u64>, inc: &IncrementalForemost<u64>, label: &str) {
        let g = stream.to_tvg();
        let index = TvgIndex::compile(&g, *stream.index().horizon());
        let fresh = foremost_tree_multi(&index, inc.seeds(), inc.policy(), inc.limits());
        for node in g.nodes() {
            assert_eq!(
                inc.arrival(node),
                fresh.arrival(node),
                "{label}: arrival at {node} under {}",
                inc.policy()
            );
            let (i, f) = (inc.journey_to(node), fresh.journey_to(node));
            match inc.policy() {
                WaitingPolicy::Unbounded => match (&i, &f) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.num_hops(), b.num_hops(), "{label}: hops to {node}");
                        assert_eq!(a.arrival(), b.arrival(), "{label}: witness arrival {node}");
                    }
                    (None, None) => {}
                    _ => panic!("{label}: witness existence diverges at {node}"),
                },
                // Exact explorers: the repair replays the fresh run's
                // expansion order, so parents are identical.
                _ => assert_eq!(i, f, "{label}: witness to {node} under {}", inc.policy()),
            }
        }
    }

    fn line_stream() -> (TvgStream<u64>, Vec<tvg_model::EdgeId>) {
        let mut s = TvgStream::new(30).expect("30 + 1 is representable");
        let v: Vec<NodeId> = (0..4).map(|i| s.add_node(&format!("v{i}"))).collect();
        let edges = (0..3)
            .map(|i| {
                s.add_edge(v[i], v[i + 1], 'a', Latency::unit())
                    .expect("ok")
            })
            .collect();
        (s, edges)
    }

    #[test]
    fn growth_extends_reach_incrementally() {
        for policy in policies() {
            let (mut s, e) = line_stream();
            let limits = SearchLimits::new(30, 10);
            // Seed at t=1 so the chain is live even under NoWait.
            let mut inc = IncrementalForemost::new(s.index(), &[(n(0), 1)], policy, limits);
            assert_eq!(inc.num_reached(), 1);
            let report = s
                .ingest(&[
                    StreamEvent::Up { edge: e[0], at: 1 },
                    StreamEvent::Down { edge: e[0], at: 2 },
                ])
                .expect("ok");
            inc.refresh(s.index(), &report);
            assert_matches_fresh(&s, &inc, "hop 1");
            let report = s
                .ingest(&[
                    StreamEvent::Up { edge: e[1], at: 2 },
                    StreamEvent::Down { edge: e[1], at: 3 },
                    StreamEvent::Up { edge: e[2], at: 6 },
                ])
                .expect("ok");
            inc.refresh(s.index(), &report);
            assert_matches_fresh(&s, &inc, "hops 2-3");
            assert_eq!(inc.arrival(n(2)), Some(&3));
        }
    }

    #[test]
    fn a_down_can_retract_an_arrival() {
        // While e1 is open it is presumed present through the horizon,
        // so v2 looks reachable; the Down closes the span *before* any
        // usable departure, and the repair must take the arrival back.
        let (mut s, e) = line_stream();
        let limits = SearchLimits::new(30, 10);
        let report = s
            .ingest(&[
                StreamEvent::Up { edge: e[0], at: 1 },
                StreamEvent::Down { edge: e[0], at: 2 },
                StreamEvent::Up { edge: e[1], at: 4 },
            ])
            .expect("ok");
        for policy in [WaitingPolicy::Bounded(5), WaitingPolicy::Unbounded] {
            let mut s = s.clone();
            let mut inc = IncrementalForemost::new(s.index(), &[(n(0), 0)], policy, limits.clone());
            let _ = report; // initial state built after the first batch
            assert_eq!(inc.arrival(n(2)), Some(&5), "{}", inc.policy());
            let report = s
                .ingest(&[StreamEvent::Down { edge: e[1], at: 4 }])
                .expect("zero-length close is valid");
            inc.refresh(s.index(), &report);
            assert_eq!(inc.arrival(n(2)), None, "{}", inc.policy());
            assert_matches_fresh(&s, &inc, "retraction");
        }
    }

    #[test]
    fn horizon_extension_repairs_open_edges() {
        let (mut s, e) = line_stream();
        let limits = SearchLimits::new(100, 10);
        s.ingest(&[StreamEvent::Up { edge: e[0], at: 1 }])
            .expect("ok");
        for policy in policies() {
            let mut s = s.clone();
            let mut inc = IncrementalForemost::new(s.index(), &[(n(0), 0)], policy, limits.clone());
            let report = s
                .ingest(&[StreamEvent::ExtendHorizon { to: 60 }])
                .expect("ok");
            inc.refresh(s.index(), &report);
            assert_matches_fresh(&s, &inc, "extension");
        }
    }

    #[test]
    fn new_edges_and_nodes_enter_the_tree() {
        for policy in policies() {
            let (mut s, e) = line_stream();
            let limits = SearchLimits::new(30, 10);
            let report = s
                .ingest(&[
                    StreamEvent::Up { edge: e[0], at: 1 },
                    StreamEvent::Down { edge: e[0], at: 2 },
                ])
                .expect("ok");
            let mut inc = IncrementalForemost::new(s.index(), &[(n(0), 1)], policy, limits.clone());
            let _ = report;
            let fresh_node = s.add_node("late");
            let report = s
                .ingest(&[StreamEvent::NewEdge {
                    src: n(1),
                    dst: fresh_node,
                    label: 'z',
                    latency: Latency::unit(),
                }])
                .expect("ok");
            assert_eq!(report.earliest_change, None);
            inc.refresh(s.index(), &report);
            assert_eq!(inc.arrival(fresh_node), None);
            let late_edge = tvg_model::EdgeId::from_index(3);
            let report = s
                .ingest(&[StreamEvent::Up {
                    edge: late_edge,
                    at: 2,
                }])
                .expect("ok");
            inc.refresh(s.index(), &report);
            assert_matches_fresh(&s, &inc, "late edge");
            assert!(inc.arrival(fresh_node).is_some(), "{}", inc.policy());
        }
    }

    #[test]
    fn a_source_that_joins_later_is_deferred_not_panicked() {
        // Churn feeds start from an EMPTY stream — the source named in
        // the seed list joins via `NewNode` events later. Until then the
        // tree answers "nothing reached"; once the node exists it must
        // enter the exploration on the next refresh, whichever refresh
        // path (pure topology or presence repair) sees it first.
        for policy in policies() {
            let mut s = TvgStream::<u64>::new(30).expect("30 + 1 is representable");
            let limits = SearchLimits::new(30, 10);
            let mut inc = IncrementalForemost::new(s.index(), &[(n(0), 2)], policy, limits);
            assert_eq!(inc.num_reached(), 0, "{}", inc.policy());
            // Pure-topology batch: the seed's node joins, nothing else.
            let report = s
                .ingest(&[StreamEvent::NewNode { name: "a".into() }])
                .expect("ok");
            assert_eq!(report.earliest_change, None);
            inc.refresh(s.index(), &report);
            assert_eq!(inc.arrival(n(0)), Some(&2), "{}", inc.policy());
            // Presence batch: a second node and a live edge follow.
            let report = s
                .ingest(&[
                    StreamEvent::NewNode { name: "b".into() },
                    StreamEvent::NewEdge {
                        src: n(0),
                        dst: n(1),
                        label: 'x',
                        latency: Latency::unit(),
                    },
                    StreamEvent::Up {
                        edge: tvg_model::EdgeId::from_index(0),
                        at: 2,
                    },
                ])
                .expect("ok");
            inc.refresh(s.index(), &report);
            assert_matches_fresh(&s, &inc, "late source");
            assert!(inc.arrival(n(1)).is_some(), "{}", inc.policy());
        }
    }

    #[test]
    fn refresh_since_zero_equals_fresh_everything() {
        let (mut s, e) = line_stream();
        let limits = SearchLimits::new(30, 10);
        s.ingest(&[
            StreamEvent::Up { edge: e[0], at: 1 },
            StreamEvent::Down { edge: e[0], at: 3 },
            StreamEvent::Up { edge: e[1], at: 3 },
            StreamEvent::Down { edge: e[1], at: 7 },
        ])
        .expect("ok");
        for policy in policies() {
            let mut inc = IncrementalForemost::new(s.index(), &[(n(0), 1)], policy, limits.clone());
            // Repairing from t=0 discards everything: still correct.
            inc.refresh_since(s.index(), &0);
            assert_matches_fresh(&s, &inc, "from zero");
            assert_eq!(inc.stats().runs, 2);
        }
    }
}
