//! Journeys: paths over time.
//!
//! A journey is a walk `⟨e₁, …, e_k⟩` together with departure instants
//! `⟨t₁, …, t_k⟩` such that edge `eᵢ` is present at `tᵢ` and
//! `t_{i+1} ≥ tᵢ + ζ(eᵢ, tᵢ)` (with equality for direct journeys). The
//! word spelled by the labels of its edges is what the TVG "expresses" —
//! the object Theorems 2.1–2.3 classify.

use crate::WaitingPolicy;
use std::error::Error;
use std::fmt;
use tvg_langs::Word;
use tvg_model::{EdgeId, NodeId, Time, Tvg};

/// One hop of a journey: an edge crossed at a departure instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop<T> {
    /// The edge crossed.
    pub edge: EdgeId,
    /// Departure instant (edge must be present then).
    pub depart: T,
    /// Arrival instant (`depart + ζ(edge, depart)`).
    pub arrive: T,
}

/// Why a journey fails validation against a TVG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JourneyError {
    /// A hop's edge does not start where the previous hop ended.
    Disconnected {
        /// Index of the offending hop.
        hop: usize,
    },
    /// A hop departs before the traveler is ready (time travel).
    DepartsTooEarly {
        /// Index of the offending hop.
        hop: usize,
    },
    /// A hop's pause exceeds what the waiting policy admits.
    WaitTooLong {
        /// Index of the offending hop.
        hop: usize,
    },
    /// A hop departs at an instant where its edge is absent.
    EdgeAbsent {
        /// Index of the offending hop.
        hop: usize,
    },
    /// A hop's recorded arrival does not equal `depart + ζ(depart)`.
    WrongArrival {
        /// Index of the offending hop.
        hop: usize,
    },
    /// The journey does not start at the required node.
    WrongSource,
}

impl fmt::Display for JourneyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JourneyError::Disconnected { hop } => {
                write!(f, "hop {hop} does not start where the previous hop ended")
            }
            JourneyError::DepartsTooEarly { hop } => {
                write!(f, "hop {hop} departs before the traveler arrives")
            }
            JourneyError::WaitTooLong { hop } => {
                write!(f, "pause before hop {hop} exceeds the waiting bound")
            }
            JourneyError::EdgeAbsent { hop } => {
                write!(f, "edge of hop {hop} is absent at its departure time")
            }
            JourneyError::WrongArrival { hop } => {
                write!(f, "arrival of hop {hop} does not match the edge latency")
            }
            JourneyError::WrongSource => write!(f, "journey does not start at the required node"),
        }
    }
}

impl Error for JourneyError {}

/// A journey: a sequence of hops (possibly empty — "stay where you are").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journey<T> {
    hops: Vec<Hop<T>>,
}

impl<T: Time> Journey<T> {
    /// The empty journey.
    #[must_use]
    pub fn empty() -> Self {
        Journey { hops: Vec::new() }
    }

    /// A journey from a list of hops.
    #[must_use]
    pub fn from_hops(hops: Vec<Hop<T>>) -> Self {
        Journey { hops }
    }

    /// The hops, in travel order.
    #[must_use]
    pub fn hops(&self) -> &[Hop<T>] {
        &self.hops
    }

    /// Number of hops (the journey's *topological length*).
    #[must_use]
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// `true` iff the journey has no hops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Arrival instant of the last hop, if any.
    #[must_use]
    pub fn arrival(&self) -> Option<&T> {
        self.hops.last().map(|h| &h.arrive)
    }

    /// Departure instant of the first hop, if any.
    #[must_use]
    pub fn departure(&self) -> Option<&T> {
        self.hops.first().map(|h| &h.depart)
    }

    /// The journey's *temporal length* (duration): last arrival minus
    /// first departure. Zero for the empty journey.
    #[must_use]
    pub fn duration(&self) -> T {
        match (self.departure(), self.arrival()) {
            (Some(d), Some(a)) => a
                .checked_sub(d)
                .expect("arrivals never precede departures in a valid journey"),
            _ => T::zero(),
        }
    }

    /// The word spelled by the edge labels along `g`.
    #[must_use]
    pub fn word(&self, g: &Tvg<T>) -> Word {
        self.hops.iter().map(|h| g.edge(h.edge).label()).collect()
    }

    /// Destination node along `g` given the starting node.
    #[must_use]
    pub fn destination(&self, g: &Tvg<T>, start: NodeId) -> NodeId {
        self.hops.last().map_or(start, |h| g.edge(h.edge).dst())
    }

    /// Validates this journey against `g`.
    ///
    /// Checks: starts at `src`; hops are contiguous; the first hop departs
    /// no earlier than `start_time` and every pause (including the initial
    /// one) satisfies `policy`; every edge is present at its departure;
    /// every recorded arrival equals `depart + ζ(depart)`.
    ///
    /// # Errors
    ///
    /// Returns the first [`JourneyError`] encountered in travel order.
    pub fn validate(
        &self,
        g: &Tvg<T>,
        src: NodeId,
        start_time: &T,
        policy: &WaitingPolicy<T>,
    ) -> Result<(), JourneyError> {
        let mut at = src;
        let mut ready = start_time.clone();
        for (i, hop) in self.hops.iter().enumerate() {
            let edge = g.edge(hop.edge);
            if edge.src() != at {
                return Err(if i == 0 {
                    JourneyError::WrongSource
                } else {
                    JourneyError::Disconnected { hop: i }
                });
            }
            if hop.depart < ready {
                return Err(JourneyError::DepartsTooEarly { hop: i });
            }
            if !policy.admits(&ready, &hop.depart) {
                return Err(JourneyError::WaitTooLong { hop: i });
            }
            if !edge.presence().is_present(&hop.depart) {
                return Err(JourneyError::EdgeAbsent { hop: i });
            }
            match edge.latency().arrival(&hop.depart) {
                Some(a) if a == hop.arrive => {}
                _ => return Err(JourneyError::WrongArrival { hop: i }),
            }
            at = edge.dst();
            ready = hop.arrive.clone();
        }
        Ok(())
    }

    /// `true` iff the journey is *direct* (no pause anywhere, starting
    /// from `start_time`).
    #[must_use]
    pub fn is_direct(&self, start_time: &T) -> bool {
        let mut ready = start_time.clone();
        for hop in &self.hops {
            if hop.depart != ready {
                return false;
            }
            ready = hop.arrive.clone();
        }
        true
    }
}

impl<T: Time> Default for Journey<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T: Time> fmt::Display for Journey<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hops.is_empty() {
            return write!(f, "(empty journey)");
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}@{}→{}", hop.edge, hop.depart, hop.arrive)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use tvg_model::{Latency, Presence, TvgBuilder};

    /// v0 --a(even t)--> v1 --b(t>3)--> v2, unit/2 latencies.
    fn g() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 2,
                phases: BTreeSet::from([0u64]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::After(3u64), Latency::Const(2))
            .expect("valid");
        b.build().expect("valid")
    }

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn e(i: usize) -> EdgeId {
        EdgeId::from_index(i)
    }

    #[test]
    fn empty_journey_is_valid_everywhere() {
        let g = g();
        let j = Journey::<u64>::empty();
        for node in g.nodes() {
            assert!(j.validate(&g, node, &0, &WaitingPolicy::NoWait).is_ok());
        }
        assert_eq!(j.duration(), 0);
        assert!(j.word(&g).is_empty());
        assert_eq!(j.destination(&g, n(1)), n(1));
    }

    #[test]
    fn direct_journey_validates_under_all_policies() {
        let g = g();
        // Depart v0 at 4 (even), arrive v1 at 5... but edge b needs t>3 and
        // we arrive at 5: direct departure at 5 works.
        let j = Journey::from_hops(vec![
            Hop {
                edge: e(0),
                depart: 4,
                arrive: 5,
            },
            Hop {
                edge: e(1),
                depart: 5,
                arrive: 7,
            },
        ]);
        for policy in [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(0),
            WaitingPolicy::Bounded(5),
            WaitingPolicy::Unbounded,
        ] {
            assert_eq!(j.validate(&g, n(0), &4, &policy), Ok(()), "{policy}");
        }
        assert_eq!(j.word(&g).to_string(), "ab");
        assert_eq!(j.duration(), 3);
        assert_eq!(j.destination(&g, n(0)), n(2));
        assert!(j.is_direct(&4));
    }

    #[test]
    fn indirect_journey_needs_waiting() {
        let g = g();
        // Depart v0 at 2, arrive v1 at 3; edge b absent at 3 (needs t>3),
        // so wait one unit and depart at 4.
        let j = Journey::from_hops(vec![
            Hop {
                edge: e(0),
                depart: 2,
                arrive: 3,
            },
            Hop {
                edge: e(1),
                depart: 4,
                arrive: 6,
            },
        ]);
        assert_eq!(
            j.validate(&g, n(0), &2, &WaitingPolicy::NoWait),
            Err(JourneyError::WaitTooLong { hop: 1 })
        );
        assert_eq!(j.validate(&g, n(0), &2, &WaitingPolicy::Bounded(1)), Ok(()));
        assert_eq!(j.validate(&g, n(0), &2, &WaitingPolicy::Unbounded), Ok(()));
        assert!(!j.is_direct(&2));
    }

    #[test]
    fn initial_pause_counts_against_policy() {
        let g = g();
        // Ready at 1 but the 'a' edge is absent until 2.
        let j = Journey::from_hops(vec![Hop {
            edge: e(0),
            depart: 2,
            arrive: 3,
        }]);
        assert_eq!(
            j.validate(&g, n(0), &1, &WaitingPolicy::NoWait),
            Err(JourneyError::WaitTooLong { hop: 0 })
        );
        assert_eq!(j.validate(&g, n(0), &1, &WaitingPolicy::Bounded(1)), Ok(()));
    }

    #[test]
    fn structural_errors_detected() {
        let g = g();
        // Starts at the wrong node.
        let j = Journey::from_hops(vec![Hop {
            edge: e(1),
            depart: 4,
            arrive: 6,
        }]);
        assert_eq!(
            j.validate(&g, n(0), &4, &WaitingPolicy::Unbounded),
            Err(JourneyError::WrongSource)
        );
        // Disconnected second hop (e0 again from v1).
        let j = Journey::from_hops(vec![
            Hop {
                edge: e(0),
                depart: 4,
                arrive: 5,
            },
            Hop {
                edge: e(0),
                depart: 6,
                arrive: 7,
            },
        ]);
        assert_eq!(
            j.validate(&g, n(0), &4, &WaitingPolicy::Unbounded),
            Err(JourneyError::Disconnected { hop: 1 })
        );
    }

    #[test]
    fn temporal_errors_detected() {
        let g = g();
        // Departs before ready.
        let j = Journey::from_hops(vec![Hop {
            edge: e(0),
            depart: 2,
            arrive: 3,
        }]);
        assert_eq!(
            j.validate(&g, n(0), &4, &WaitingPolicy::Unbounded),
            Err(JourneyError::DepartsTooEarly { hop: 0 })
        );
        // Edge absent (odd t).
        let j = Journey::from_hops(vec![Hop {
            edge: e(0),
            depart: 5,
            arrive: 6,
        }]);
        assert_eq!(
            j.validate(&g, n(0), &5, &WaitingPolicy::Unbounded),
            Err(JourneyError::EdgeAbsent { hop: 0 })
        );
        // Wrong recorded arrival.
        let j = Journey::from_hops(vec![Hop {
            edge: e(0),
            depart: 4,
            arrive: 9,
        }]);
        assert_eq!(
            j.validate(&g, n(0), &4, &WaitingPolicy::Unbounded),
            Err(JourneyError::WrongArrival { hop: 0 })
        );
    }

    #[test]
    fn display_is_readable() {
        let j = Journey::from_hops(vec![Hop {
            edge: e(0),
            depart: 4u64,
            arrive: 5,
        }]);
        assert_eq!(j.to_string(), "e0@4→5");
        assert_eq!(Journey::<u64>::empty().to_string(), "(empty journey)");
    }
}
