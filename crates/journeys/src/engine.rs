//! The single-source journey engine: one pass over a compiled
//! [`TvgIndex`](tvg_model::TvgIndex) computes foremost arrivals (and
//! witness journeys) from a source to *every* node.
//!
//! Two explorers share the [`ForemostTree`] output:
//!
//! * **Unbounded waiting** uses label-correcting search with Pareto
//!   dominance on `(arrival, hops)`. Under unbounded waiting an earlier
//!   arrival can do everything a later one can (its departure window is a
//!   superset) as long as it has not spent more hops, so a label
//!   dominated in both coordinates is pruned soundly — and the hop
//!   coordinate keeps the pruning exact even when `max_hops` binds.
//! * **`NoWait` / `Bounded(d)`** retain exact `(node, time)`
//!   configuration exploration, because under restricted waiting an
//!   early arrival can be a dead end while a later one connects
//!   (the phenomenon the paper is about). The index still pays off: the
//!   waiting window is enumerated interval-by-interval instead of
//!   tick-by-tick.
//!
//! # Core layout
//!
//! Both explorers are built for cache locality:
//!
//! * **Label arena.** Every generated configuration/label lives in one
//!   bump arena of [`Label`]s addressed by `u32` id; parent pointers are
//!   arena ids, not map keys, so witness reconstruction is a pointer
//!   walk and the two explorers share one [`TreeRepr`].
//! * **Flat frontiers.** Each node's frontier is one flat sorted map
//!   ([`FlatMap`]) from configuration time to a merged generation-and-
//!   settlement record ([`Conf`]), laid out struct-of-arrays: an
//!   expanded crossing resolves its target with a single binary search
//!   over a dense key array, and because settle times per node are
//!   non-decreasing, fresh settles land at the tail.
//! * **Monomorphized policies.** The waiting policy is dispatched once
//!   per drain/replay into loops generic over [`DeparturePolicy`], so
//!   the per-label policy branch of the old explorer is compiled away.
//! * **Queue dedup.** The exact explorer pushes a heap entry only when a
//!   crossing improves the best hop count enqueued for its target
//!   configuration (a decrease-key emulation); the old explorer pushed
//!   every admissible crossing and deduplicated at pop time.
//!
//! These are representation changes only: arrivals, witnesses, and
//! [`EngineStats`] are bit-identical to the pre-overhaul explorer,
//! which `tvg-testkit` keeps alive as a differential oracle
//! (`refengine`).
//!
//! Every run carries its own [`EngineStats`] (run count, settled
//! configurations, expanded crossings) inside the returned tree. Stats
//! are values, not thread-local counters, so they aggregate correctly
//! when the batch runtime fans runs out over worker threads — summing
//! per-tree stats is how tests pin aggregate consumers (e.g.
//! `ReachabilityMatrix`) to "exactly n single-source runs, no per-pair
//! search", at any thread count.

use crate::{Hop, Journey, SearchLimits, WaitingPolicy};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use tvg_model::{EdgeId, NodeId, TemporalIndex, Time};

/// Work counters of one single-source engine run — or, summed, of a
/// whole batch. Returned by value with every [`ForemostTree`], so the
/// accounting stays exact when runs execute on different worker threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of single-source engine runs (1 per tree; a batch sums).
    pub runs: u64,
    /// Configurations (exact explorer) or labels (Pareto explorer)
    /// settled.
    pub settled: u64,
    /// Admissible crossings generated during expansion.
    pub expanded: u64,
}

impl EngineStats {
    fn one_run() -> Self {
        EngineStats {
            runs: 1,
            ..EngineStats::default()
        }
    }
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        self.runs += rhs.runs;
        self.settled += rhs.settled;
        self.expanded += rhs.expanded;
    }
}

impl std::ops::Add for EngineStats {
    type Output = EngineStats;

    fn add(mut self, rhs: EngineStats) -> EngineStats {
        self += rhs;
        self
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> EngineStats {
        iter.fold(EngineStats::default(), std::ops::Add::add)
    }
}

/// The departure-window computation of a waiting policy, as a trait so
/// the exploration loops monomorphize per policy instead of branching
/// per label. Implementations mirror
/// [`WaitingPolicy::latest_departure`] exactly.
pub(crate) trait DeparturePolicy<T: Time> {
    /// The latest admissible departure from a node reached at `ready`,
    /// `None` if the window is empty or overflows the representation.
    fn latest(&self, ready: &T, horizon: &T) -> Option<T>;
}

/// Direct journeys: depart exactly at the ready instant.
struct NoWaitDeparture;

impl<T: Time> DeparturePolicy<T> for NoWaitDeparture {
    #[inline]
    fn latest(&self, ready: &T, horizon: &T) -> Option<T> {
        (*ready <= *horizon).then(|| ready.clone())
    }
}

/// Pauses of at most `d`: depart within `[ready, ready + d]`.
struct BoundedDeparture<T>(T);

impl<T: Time> DeparturePolicy<T> for BoundedDeparture<T> {
    #[inline]
    fn latest(&self, ready: &T, horizon: &T) -> Option<T> {
        let latest = ready.checked_add(&self.0)?.min(horizon.clone());
        (*ready <= *horizon).then_some(latest)
    }
}

/// Arbitrary pauses: the whole remaining horizon is the window.
struct UnboundedDeparture;

impl<T: Time> DeparturePolicy<T> for UnboundedDeparture {
    #[inline]
    fn latest(&self, ready: &T, horizon: &T) -> Option<T> {
        (*ready <= *horizon).then(|| horizon.clone())
    }
}

/// The hop ceiling in the engine's internal `u32` hop arithmetic. A
/// `max_hops` beyond `u32::MAX` is unreachable anyway: every hop settles
/// at least one configuration, and the `u32`-indexed arena caps those.
fn hops_cap<T>(limits: &SearchLimits<T>) -> u32 {
    u32::try_from(limits.max_hops).unwrap_or(u32::MAX)
}

/// A sorted flat map laid out struct-of-arrays: binary searches touch
/// only the dense key array; values live apart. Inserts are
/// binary-search + shift, appends when the key is maximal — which is
/// the common case for per-node settle frontiers, whose keys arrive in
/// non-decreasing pop order.
#[derive(Debug, Clone)]
struct FlatMap<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
}

impl<K: Ord + Clone, V> FlatMap<K, V> {
    fn new() -> Self {
        FlatMap {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.keys.binary_search(key).ok().map(|i| &self.vals[i])
    }

    /// Binary search: `Ok(i)` if present, `Err(i)` with the insertion
    /// point otherwise (the raw handle for insert-or-update call sites).
    ///
    /// The tail is probed first: frontier keys arrive in roughly
    /// non-decreasing order, so the hottest lookups resolve against the
    /// last entry without a full search.
    fn search(&self, key: &K) -> Result<usize, usize> {
        match self.keys.last() {
            None => Err(0),
            Some(last) => match key.cmp(last) {
                std::cmp::Ordering::Greater => Err(self.keys.len()),
                std::cmp::Ordering::Equal => Ok(self.keys.len() - 1),
                std::cmp::Ordering::Less => self.keys[..self.keys.len() - 1].binary_search(key),
            },
        }
    }

    fn val_mut(&mut self, i: usize) -> &mut V {
        &mut self.vals[i]
    }

    fn insert_at(&mut self, i: usize, key: K, val: V) {
        self.keys.insert(i, key);
        self.vals.insert(i, val);
    }

    /// Discards every entry with key `>= t0` (keys are sorted, so this
    /// is a truncation).
    fn truncate_from(&mut self, t0: &K) {
        let keep = self.keys.partition_point(|k| k < t0);
        self.keys.truncate(keep);
        self.vals.truncate(keep);
    }

    fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys.iter().zip(self.vals.iter())
    }
}

/// One explored configuration/label: its arrival instant plus the
/// parent pointer `(parent arena id, edge, departure)` that realizes it
/// (`None` for seeds). Both explorers allocate these in one bump arena
/// addressed by `u32` id — witness journeys are rebuilt by walking
/// parent ids.
#[derive(Debug, Clone)]
pub(crate) struct Label<T> {
    pub(crate) time: T,
    pub(crate) parent: Option<(u32, EdgeId, T)>,
}

fn alloc_label<T>(arena: &mut Vec<Label<T>>, time: T, parent: Option<(u32, EdgeId, T)>) -> u32 {
    let id = u32::try_from(arena.len()).expect("label arena exceeds u32 capacity");
    arena.push(Label { time, parent });
    id
}

/// Journey-reconstruction data shared by both explorers: the label
/// arena plus, per node, the arena id realizing its foremost arrival.
/// Journeys are rebuilt lazily in [`ForemostTree::journey_to`] so
/// arrival-only consumers (reachability rows, delivery ratios,
/// broadcasts) pay nothing for witnesses they never read.
#[derive(Debug, Clone)]
pub(crate) struct TreeRepr<T> {
    pub(crate) arena: Vec<Label<T>>,
    pub(crate) best: Vec<Option<u32>>,
}

/// The all-destinations output of one single-source engine run: for each
/// node, the foremost (earliest) arrival from the seed configuration(s),
/// plus the parent structure to rebuild a witness journey on demand.
///
/// Seed nodes are reached at their seed time by the empty journey.
#[derive(Debug, Clone)]
pub struct ForemostTree<T> {
    arrival: Vec<Option<T>>,
    repr: TreeRepr<T>,
    stats: EngineStats,
}

impl<T: Time> ForemostTree<T> {
    /// Assembles a tree from explorer state (the fresh path and the
    /// incremental repair in [`crate::incremental`] share this).
    pub(crate) fn from_parts(
        arrival: Vec<Option<T>>,
        repr: TreeRepr<T>,
        stats: EngineStats,
    ) -> Self {
        ForemostTree {
            arrival,
            repr,
            stats,
        }
    }

    /// The foremost arrival at `n`, `None` if unreachable within the
    /// limits.
    #[must_use]
    pub fn arrival(&self, n: NodeId) -> Option<&T> {
        self.arrival[n.index()].as_ref()
    }

    /// A foremost journey to `n` (empty for a seed node), `None` if
    /// unreachable within the limits. Rebuilt on demand from the parent
    /// structure.
    #[must_use]
    pub fn journey_to(&self, n: NodeId) -> Option<Journey<T>> {
        self.arrival[n.index()].as_ref()?;
        Some(rebuild_labels(
            &self.repr.arena,
            self.repr.best[n.index()].expect("reached nodes have a best label"),
        ))
    }

    /// The reached nodes, in id order.
    pub fn reached_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.arrival
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Number of reached nodes (seeds included).
    #[must_use]
    pub fn num_reached(&self) -> usize {
        self.arrival.iter().filter(|r| r.is_some()).count()
    }

    /// Work counters of the run that produced this tree
    /// (`stats().runs == 1` for a single engine pass).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// One single-source foremost run from `(src, start)` over a compiled
/// index (batch-compiled or live): foremost arrivals to every node in
/// one pass.
///
/// Departures are bounded by `limits.horizon` (the index's own horizon
/// also applies) and journeys by `limits.max_hops` hops.
#[must_use]
pub fn foremost_tree<T: Time, I: TemporalIndex<T>>(
    index: &I,
    src: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> ForemostTree<T> {
    foremost_tree_multi(index, &[(src, start.clone())], policy, limits)
}

/// [`foremost_tree`] from several seed configurations at once.
///
/// A node's foremost arrival is the earliest over journeys from *any*
/// seed. Multiple seeds model sources that re-emit over time (e.g. a
/// beaconing broadcast source is a seed at every step).
#[must_use]
pub fn foremost_tree_multi<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> ForemostTree<T> {
    run(index, seeds, policy, limits, None)
}

/// A single-target foremost query with early exit: the run stops as soon
/// as `dst` settles (its first settle is already foremost), skipping the
/// rest of the configuration space. This is what the per-pair
/// `foremost_journey` wrapper uses; all-destinations consumers use
/// [`foremost_tree`] instead.
#[must_use]
pub fn foremost_to<T: Time, I: TemporalIndex<T>>(
    index: &I,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    run(index, &[(src, start.clone())], policy, limits, Some(dst)).journey_to(dst)
}

pub(crate) fn run<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    target: Option<NodeId>,
) -> ForemostTree<T> {
    match policy {
        WaitingPolicy::Unbounded => {
            let mut stats = EngineStats::one_run();
            let mut core = ParetoCore::new(index.num_nodes());
            core.seed(seeds);
            core.drain(index, limits, target, &mut stats);
            ForemostTree {
                arrival: core.arrival,
                repr: TreeRepr {
                    arena: core.arena,
                    best: core.best,
                },
                stats,
            }
        }
        _ => {
            let mut stats = EngineStats::one_run();
            let mut core = ExactCore::new(index.num_nodes());
            core.seed(seeds);
            core.drain(index, policy, limits, target, &mut stats);
            ForemostTree {
                arrival: core.arrival,
                repr: TreeRepr {
                    arena: core.arena,
                    best: core.best,
                },
                stats,
            }
        }
    }
}

/// Maps an arrival configuration to `(parent node, parent ready time,
/// edge, departure)` — the same parent structure as the tick-scan
/// reference search, so reconstructed journeys match it hop for hop.
/// Used by `search::shortest_journey`, which builds the same map.
pub(crate) type ParentMap<T> = BTreeMap<(NodeId, T), (NodeId, T, EdgeId, T)>;

pub(crate) fn rebuild<T: Time>(parents: &ParentMap<T>, mut state: (NodeId, T)) -> Journey<T> {
    let mut hops = Vec::new();
    while let Some((pn, pt, e, dep)) = parents.get(&state).cloned() {
        hops.push(Hop {
            edge: e,
            depart: dep,
            arrive: state.1.clone(),
        });
        state = (pn, pt);
    }
    hops.reverse();
    Journey::from_hops(hops)
}

/// Per-configuration state in the merged per-node frontier map:
/// the first-generated witness label (the same first-crossing-wins rule
/// as the old `or_insert` parent map), the best hop count — the
/// decrease-key key while enqueued, the settle hops once settled (equal
/// by the time the first pop happens, since the heap pops hop-minimal
/// ties first) — and whether the configuration has settled.
///
/// Keeping generation and settlement in ONE sorted map means each
/// expanded crossing resolves its target with a single binary search
/// where the split `settled`/`gen` layout needed two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Conf {
    label: u32,
    hops: u32,
    settled: bool,
}

/// Resumable state of the exact `(node, time)` explorer — the fresh run
/// drives it from empty seeds; [`crate::incremental`] prunes and
/// replays it when the underlying schedule grows at the right edge.
///
/// `conf` is the merged frontier: per node, a flat sorted map from
/// configuration time to its [`Conf`] state. Settles flip the flag in
/// place (pop times per node are non-decreasing, so fresh settles land
/// at the tail); generation inserts by binary search but lands at the
/// tail in the common case.
#[derive(Debug, Clone)]
pub(crate) struct ExactCore<T> {
    pub(crate) arrival: Vec<Option<T>>,
    pub(crate) best: Vec<Option<u32>>,
    pub(crate) arena: Vec<Label<T>>,
    /// Per node: configuration time → generation/settlement state.
    conf: Vec<FlatMap<T, Conf>>,
    /// Seed configurations and their arena slots, for resolving the
    /// origin label of a settled seed that no crossing generated.
    seed_slots: Vec<(NodeId, T, u32)>,
    // Min-heap on (arrival, node, hops, label id): pops in time order,
    // so the first settle of a node is its foremost arrival. Residual
    // duplicates are deduplicated at pop time against the settled flag.
    queue: BinaryHeap<Reverse<(T, NodeId, u32, u32)>>,
}

impl<T: Time> ExactCore<T> {
    pub(crate) fn new(num_nodes: usize) -> Self {
        ExactCore {
            arrival: vec![None; num_nodes],
            best: vec![None; num_nodes],
            arena: Vec::new(),
            conf: vec![FlatMap::new(); num_nodes],
            seed_slots: Vec::new(),
            queue: BinaryHeap::new(),
        }
    }

    /// Grows the per-node state after streamed topology growth.
    pub(crate) fn resize(&mut self, num_nodes: usize) {
        self.arrival.resize(num_nodes, None);
        self.best.resize(num_nodes, None);
        self.conf.resize(num_nodes, FlatMap::new());
    }

    /// Enqueues seed configurations (hop count zero).
    pub(crate) fn seed<'s>(&mut self, seeds: impl IntoIterator<Item = &'s (NodeId, T)>)
    where
        T: 's,
    {
        for (node, t) in seeds {
            let id = alloc_label(&mut self.arena, t.clone(), None);
            self.seed_slots.push((*node, t.clone(), id));
            self.queue.push(Reverse((t.clone(), *node, 0, id)));
        }
    }

    /// Discards every conclusion at or after `t0`: settles, generated
    /// labels, and foremost arrivals from `t0` on may all be
    /// invalidated by schedule changes at `t0`, while everything
    /// strictly earlier is untouchable (a crossing departing at or
    /// after `t0` arrives at or after it — latencies are non-negative).
    /// The arena keeps pruned labels as unreachable garbage, which
    /// costs memory proportional to the churn but keeps every surviving
    /// parent chain valid by construction.
    pub(crate) fn prune(&mut self, t0: &T) {
        self.queue.clear();
        for map in &mut self.conf {
            map.truncate_from(t0);
        }
        self.seed_slots.retain(|(_, t, _)| t < t0);
        for (slot, best) in self.arrival.iter_mut().zip(&mut self.best) {
            if slot.as_ref().is_some_and(|t| t >= t0) {
                *slot = None;
                *best = None;
            }
        }
    }

    /// Re-expands every surviving configuration in global settle order
    /// (time, node, hops) — the order a fresh run would have expanded
    /// them in. Crossings arriving before the prune watermark find
    /// their targets already settled and are skipped; crossings into
    /// the repaired region re-enter the queue, so the subsequent
    /// [`ExactCore::drain`] reproduces a fresh run's conclusions there.
    pub(crate) fn replay<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        stats: &mut EngineStats,
    ) {
        match policy {
            WaitingPolicy::NoWait => self.replay_inner(index, &NoWaitDeparture, limits, stats),
            WaitingPolicy::Bounded(d) => {
                self.replay_inner(index, &BoundedDeparture(d.clone()), limits, stats);
            }
            WaitingPolicy::Unbounded => {
                self.replay_inner(index, &UnboundedDeparture, limits, stats);
            }
        }
    }

    fn replay_inner<I: TemporalIndex<T>, P: DeparturePolicy<T>>(
        &mut self,
        index: &I,
        policy: &P,
        limits: &SearchLimits<T>,
        stats: &mut EngineStats,
    ) {
        let cap = hops_cap(limits);
        let mut survivors: Vec<(T, NodeId, u32)> = Vec::new();
        for (i, map) in self.conf.iter().enumerate() {
            let node = NodeId::from_index(i);
            survivors.extend(
                map.iter()
                    .filter(|(_, c)| c.settled)
                    .map(|(t, c)| (t.clone(), node, c.hops)),
            );
        }
        survivors.sort();
        let mut cursor = vec![0usize; index.num_edges()];
        for (time, node, hops) in survivors {
            if hops == cap {
                continue;
            }
            let id = self.origin_label(node, &time);
            self.expand(
                index,
                policy,
                limits,
                &mut cursor,
                node,
                &time,
                hops,
                id,
                stats,
            );
        }
    }

    /// The arena id reconstructing the journey of a settled
    /// configuration: its first-generated label if any crossing reached
    /// it, otherwise its seed slot.
    fn origin_label(&self, node: NodeId, time: &T) -> u32 {
        self.conf[node.index()]
            .get(time)
            .map(|c| c.label)
            .or_else(|| {
                self.seed_slots
                    .iter()
                    .find(|(n, t, _)| *n == node && t == time)
                    .map(|&(_, _, id)| id)
            })
            .expect("settled configuration has an origin label")
    }

    /// Runs the exploration to exhaustion (or to `target`'s first,
    /// already-foremost settle).
    pub(crate) fn drain<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        target: Option<NodeId>,
        stats: &mut EngineStats,
    ) {
        match policy {
            WaitingPolicy::NoWait => {
                self.drain_inner(index, &NoWaitDeparture, limits, target, stats);
            }
            WaitingPolicy::Bounded(d) => {
                self.drain_inner(index, &BoundedDeparture(d.clone()), limits, target, stats);
            }
            WaitingPolicy::Unbounded => {
                self.drain_inner(index, &UnboundedDeparture, limits, target, stats);
            }
        }
    }

    fn drain_inner<I: TemporalIndex<T>, P: DeparturePolicy<T>>(
        &mut self,
        index: &I,
        policy: &P,
        limits: &SearchLimits<T>,
        target: Option<NodeId>,
        stats: &mut EngineStats,
    ) {
        let cap = hops_cap(limits);
        let mut cursor = vec![0usize; index.num_edges()];
        while let Some(Reverse((time, node, hops, id))) = self.queue.pop() {
            let ni = node.index();
            // The witness label of this configuration: its
            // first-generated crossing if one exists (a zero-latency
            // cycle can generate into a seed configuration before the
            // seed pops), otherwise the label carried by the queue.
            let id = match self.conf[ni].search(&time) {
                Ok(at) => {
                    let entry = self.conf[ni].val_mut(at);
                    if entry.settled {
                        continue;
                    }
                    // The heap pops hop-minimal ties first, so the
                    // popped hops equal the best enqueued hops here.
                    entry.settled = true;
                    entry.hops = hops;
                    entry.label
                }
                // A seed configuration no crossing generated into. Pop
                // times per node are non-decreasing, so this is an
                // append in all but name.
                Err(at) => {
                    let entry = Conf {
                        label: id,
                        hops,
                        settled: true,
                    };
                    self.conf[ni].insert_at(at, time.clone(), entry);
                    id
                }
            };
            stats.settled += 1;
            if self.arrival[ni].is_none() {
                self.arrival[ni] = Some(time.clone());
                self.best[ni] = Some(id);
                // The first settle is already foremost: a targeted query
                // is done here.
                if target == Some(node) {
                    break;
                }
            }
            if hops == cap {
                continue;
            }
            self.expand(
                index,
                policy,
                limits,
                &mut cursor,
                node,
                &time,
                hops,
                id,
                stats,
            );
        }
    }

    /// Expands every admissible crossing from a settled configuration —
    /// the same `(edge, depart, arrive)` triples in the same order as
    /// [`TemporalIndex::crossings`], but enumerated through a per-edge
    /// span `cursor`: expansion times within one drain/replay are
    /// non-decreasing, so the span holding the next departure is found
    /// by walking forward from the last position (amortized O(1) per
    /// call) instead of a fresh binary search per `(settle, edge)`.
    #[allow(clippy::too_many_arguments)] // one settled configuration, spelled out
    fn expand<I: TemporalIndex<T>, P: DeparturePolicy<T>>(
        &mut self,
        index: &I,
        policy: &P,
        limits: &SearchLimits<T>,
        cursor: &mut [usize],
        node: NodeId,
        time: &T,
        hops: u32,
        id: u32,
        stats: &mut EngineStats,
    ) {
        let Some(latest) = policy.latest(time, &limits.horizon) else {
            return;
        };
        let until = latest.min(limits.horizon.clone());
        let edges = index.out_edges(node);
        for e in edges.iter() {
            let spans = index.presence(e);
            // Expansion times only grow, so spans ending at or before
            // `time` can never serve a later call either: skip them for
            // good by advancing the edge's cursor.
            let mut i = cursor[e.index()];
            while i < spans.len() && *spans.end(i) <= *time {
                i += 1;
            }
            cursor[e.index()] = i;
            while i < spans.len() && *spans.start(i) <= until {
                let (start, end) = (spans.start(i), spans.end(i));
                let mut dep = if *start > *time {
                    start.clone()
                } else {
                    time.clone()
                };
                while dep < *end && dep <= until {
                    let Some(arr) = index.arrival(e, &dep) else {
                        // Latency overflow: the crossing is dropped
                        // before it counts as expanded.
                        dep = dep.succ();
                        continue;
                    };
                    stats.expanded += 1;
                    let succ = index.dst(e);
                    let si = succ.index();
                    match self.conf[si].search(&arr) {
                        Ok(at) => {
                            // Already generated: the first crossing keeps
                            // the witness; re-enqueue only on a strict hop
                            // improvement into a not-yet-settled
                            // configuration (decrease-key).
                            let entry = self.conf[si].val_mut(at);
                            if !entry.settled && hops + 1 < entry.hops {
                                entry.hops = hops + 1;
                                let gen_id = entry.label;
                                self.queue.push(Reverse((arr, succ, hops + 1, gen_id)));
                            }
                        }
                        Err(at) => {
                            let new_id = alloc_label(
                                &mut self.arena,
                                arr.clone(),
                                Some((id, e, dep.clone())),
                            );
                            let entry = Conf {
                                label: new_id,
                                hops: hops + 1,
                                settled: false,
                            };
                            self.conf[si].insert_at(at, arr.clone(), entry);
                            self.queue.push(Reverse((arr, succ, hops + 1, new_id)));
                        }
                    }
                    dep = dep.succ();
                }
                i += 1;
            }
        }
    }
}

/// A settled Pareto frontier entry: `(arrival, hops, label id)`.
type ParetoEntry<T> = (T, u32, u32);

fn dominated<T: Time>(frontier: &[ParetoEntry<T>], time: &T, hops: u32) -> bool {
    frontier.iter().any(|(a, h, _)| a <= time && *h <= hops)
}

/// Resumable state of the Pareto label-correcting explorer (unbounded
/// waiting), the counterpart of [`ExactCore`]. Pruning keeps the label
/// arena intact — labels in the repaired region become unreachable
/// garbage, which costs memory proportional to the churn but keeps
/// every surviving parent chain valid by construction.
#[derive(Debug, Clone)]
pub(crate) struct ParetoCore<T> {
    pub(crate) arrival: Vec<Option<T>>,
    pub(crate) best: Vec<Option<u32>>,
    pub(crate) arena: Vec<Label<T>>,
    /// Settled Pareto frontier per node, sorted by arrival (settle
    /// order is time-ordered and per-node ties are dominated away).
    settled: Vec<Vec<ParetoEntry<T>>>,
    // Min-heap on (arrival, hops, node, label id); pops in (time, hops)
    // order, and label ids make every entry unique, so the pop sequence
    // is exactly the old ordered-set iteration order.
    queue: BinaryHeap<Reverse<(T, u32, NodeId, u32)>>,
}

impl<T: Time> ParetoCore<T> {
    pub(crate) fn new(num_nodes: usize) -> Self {
        ParetoCore {
            arrival: vec![None; num_nodes],
            best: vec![None; num_nodes],
            arena: Vec::new(),
            settled: vec![Vec::new(); num_nodes],
            queue: BinaryHeap::new(),
        }
    }

    /// Grows the per-node state after streamed topology growth.
    pub(crate) fn resize(&mut self, num_nodes: usize) {
        self.arrival.resize(num_nodes, None);
        self.best.resize(num_nodes, None);
        self.settled.resize(num_nodes, Vec::new());
    }

    /// Enqueues seed labels (hop count zero, no parent).
    pub(crate) fn seed<'s>(&mut self, seeds: impl IntoIterator<Item = &'s (NodeId, T)>)
    where
        T: 's,
    {
        for (node, t) in seeds {
            let id = alloc_label(&mut self.arena, t.clone(), None);
            self.queue.push(Reverse((t.clone(), 0, *node, id)));
        }
    }

    /// Discards every conclusion at or after `t0` (see
    /// [`ExactCore::prune`] for the soundness argument).
    pub(crate) fn prune(&mut self, t0: &T) {
        self.queue.clear();
        for frontier in &mut self.settled {
            let keep = frontier.partition_point(|(t, _, _)| t < t0);
            frontier.truncate(keep);
        }
        for (slot, best) in self.arrival.iter_mut().zip(&mut self.best) {
            if slot.as_ref().is_some_and(|t| t >= t0) {
                *slot = None;
                *best = None;
            }
        }
    }

    /// Re-expands every surviving settled label in global settle order
    /// (time, hops, node, id). Crossings whose best arrival lands
    /// before the prune watermark are dominated by surviving frontier
    /// entries and skipped; crossings into the repaired region re-enter
    /// the queue for [`ParetoCore::drain`].
    pub(crate) fn replay<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        limits: &SearchLimits<T>,
        stats: &mut EngineStats,
    ) {
        let cap = hops_cap(limits);
        let mut survivors: Vec<(T, u32, NodeId, u32)> = Vec::new();
        for (i, frontier) in self.settled.iter().enumerate() {
            let node = NodeId::from_index(i);
            survivors.extend(frontier.iter().map(|(t, h, id)| (t.clone(), *h, node, *id)));
        }
        survivors.sort();
        for (time, hops, node, id) in survivors {
            if hops == cap || time > limits.horizon {
                continue;
            }
            self.expand(index, limits, node, &time, hops, id, stats);
        }
    }

    /// Runs the exploration to exhaustion (or to `target`'s first,
    /// already-foremost settle).
    pub(crate) fn drain<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        limits: &SearchLimits<T>,
        target: Option<NodeId>,
        stats: &mut EngineStats,
    ) {
        let cap = hops_cap(limits);
        while let Some(Reverse((time, hops, node, id))) = self.queue.pop() {
            if dominated(&self.settled[node.index()], &time, hops) {
                continue;
            }
            self.settled[node.index()].push((time.clone(), hops, id));
            stats.settled += 1;
            if self.arrival[node.index()].is_none() {
                self.arrival[node.index()] = Some(time.clone());
                self.best[node.index()] = Some(id);
                if target == Some(node) {
                    break;
                }
            }
            if hops == cap || time > limits.horizon {
                continue;
            }
            self.expand(index, limits, node, &time, hops, id, stats);
        }
    }

    #[allow(clippy::too_many_arguments)] // one settled label, spelled out
    fn expand<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        limits: &SearchLimits<T>,
        node: NodeId,
        time: &T,
        hops: u32,
        id: u32,
        stats: &mut EngineStats,
    ) {
        let edges = index.out_edges(node);
        for e in edges.iter() {
            let succ = index.dst(e);
            // All crossings of `e` from this label cost the same hops, so
            // only the minimal-arrival departure can survive dominance —
            // one label per (label, edge). With a monotone arrival the
            // earliest departure realizes it (one binary search); an
            // opaque latency needs the full window scanned.
            let best_crossing: Option<(T, T)> = if index.arrival_is_monotone(e) {
                index
                    .next_departure(e, time)
                    .filter(|dep| dep <= &limits.horizon && dep <= index.horizon())
                    .and_then(|dep| Some((index.arrival(e, &dep)?, dep)))
            } else {
                let mut best: Option<(T, T)> = None;
                for dep in index.departures_within(e, time, &limits.horizon) {
                    let Some(arr) = index.arrival(e, &dep) else {
                        continue;
                    };
                    match &best {
                        Some((best_arr, _)) if *best_arr <= arr => {}
                        _ => best = Some((arr, dep)),
                    }
                }
                best
            };
            let Some((arr, dep)) = best_crossing else {
                continue;
            };
            if dominated(&self.settled[succ.index()], &arr, hops + 1) {
                continue;
            }
            stats.expanded += 1;
            let new_id = alloc_label(&mut self.arena, arr.clone(), Some((id, e, dep)));
            self.queue.push(Reverse((arr, hops + 1, succ, new_id)));
        }
    }
}

pub(crate) fn rebuild_labels<T: Time>(arena: &[Label<T>], mut id: u32) -> Journey<T> {
    let mut hops = Vec::new();
    while let Some((prev, e, dep)) = &arena[id as usize].parent {
        hops.push(Hop {
            edge: *e,
            depart: dep.clone(),
            arrive: arena[id as usize].time.clone(),
        });
        id = *prev;
    }
    hops.reverse();
    Journey::from_hops(hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_model::{Latency, Presence, Tvg, TvgBuilder, TvgIndex};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Line v0 →a→ v1 →b→ v2 where b exists only at t = 5.
    fn line_gap() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(5u64), Latency::unit())
            .expect("valid");
        b.build().expect("valid")
    }

    fn limits() -> SearchLimits<u64> {
        SearchLimits::new(20, 10)
    }

    #[test]
    fn tree_separates_policies() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let no = foremost_tree(&idx, n(0), &1, &WaitingPolicy::NoWait, &limits());
        assert_eq!(no.arrival(n(0)), Some(&1));
        assert_eq!(no.arrival(n(1)), Some(&2));
        assert_eq!(no.arrival(n(2)), None);
        assert_eq!(no.num_reached(), 2);

        let wait = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &limits());
        assert_eq!(wait.arrival(n(2)), Some(&6));
        let j = wait.journey_to(n(2)).expect("reachable");
        assert_eq!(j.num_hops(), 2);
        assert_eq!(j.validate(&g, n(0), &1, &WaitingPolicy::Unbounded), Ok(()));
        assert_eq!(
            wait.reached_nodes().collect::<Vec<_>>(),
            vec![n(0), n(1), n(2)]
        );

        let b3 = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Bounded(3), &limits());
        assert_eq!(b3.arrival(n(2)), Some(&6));
        let b2 = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Bounded(2), &limits());
        assert_eq!(b2.arrival(n(2)), None);
    }

    #[test]
    fn seed_nodes_reach_themselves_by_empty_journeys() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let tree = foremost_tree(&idx, n(1), &3, &WaitingPolicy::NoWait, &limits());
        assert_eq!(tree.arrival(n(1)), Some(&3));
        assert!(tree.journey_to(n(1)).expect("seed").is_empty());
    }

    #[test]
    fn multi_seed_takes_the_earliest() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        // Seeding v0 late misses edge a; an extra seed at v1 connects.
        let seeds = [(n(0), 4u64), (n(1), 4u64)];
        let tree = foremost_tree_multi(&idx, &seeds, &WaitingPolicy::Unbounded, &limits());
        assert_eq!(tree.arrival(n(2)), Some(&6));
        assert_eq!(tree.arrival(n(0)), Some(&4));
        assert_eq!(tree.arrival(n(1)), Some(&4));
    }

    #[test]
    fn hop_and_horizon_limits_bind() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let one_hop = SearchLimits::new(20, 1);
        let tree = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &one_hop);
        assert_eq!(tree.arrival(n(2)), None);
        let tight = SearchLimits::new(4, 10);
        let tree = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &tight);
        assert_eq!(tree.arrival(n(2)), None);
    }

    #[test]
    fn pareto_hop_pruning_is_exact_under_hop_limits() {
        // Two routes to v2: 1 hop arriving late (t=9→10) vs 2 hops
        // arriving early (t=3). With max_hops = 1 only the late route is
        // admissible; naive arrival-only dominance would prune it.
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[2], 'd', Presence::At(9u64), Latency::unit())
            .expect("valid");
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(2u64), Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let idx = TvgIndex::compile(&g, 20);
        let full = foremost_tree(&idx, n(0), &0, &WaitingPolicy::Unbounded, &limits());
        assert_eq!(full.arrival(n(2)), Some(&3));
        let one_hop = SearchLimits::new(20, 1);
        let tree = foremost_tree(&idx, n(0), &0, &WaitingPolicy::Unbounded, &one_hop);
        assert_eq!(tree.arrival(n(2)), Some(&10));
        assert_eq!(tree.journey_to(n(2)).expect("direct").num_hops(), 1);
    }

    #[test]
    fn sentinel_unbounded_horizon_does_not_wrap() {
        // A "search forever" horizon at the top of the u64 domain must
        // compile to the clamped window, not wrap to emptiness or panic.
        let g = line_gap();
        let idx = TvgIndex::compile(&g, u64::MAX);
        let huge = SearchLimits::new(u64::MAX, 10);
        let tree = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &huge);
        assert_eq!(tree.arrival(n(2)), Some(&6));
        let no = foremost_tree(&idx, n(0), &1, &WaitingPolicy::NoWait, &huge);
        assert_eq!(no.arrival(n(2)), None);
    }

    #[test]
    fn pareto_scans_the_window_for_non_monotone_latencies() {
        // Departing later is *faster* here: ζ(t) = 20 - 2t on a window.
        // The monotone fast path would take the earliest departure; the
        // explorer must scan and find the best arrival.
        let mut b = TvgBuilder::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Window {
                from: 0u64,
                until: 9,
            },
            Latency::from_fn(|t: &u64| 20u64.saturating_sub(2 * t)),
        )
        .expect("valid");
        let g = b.build().expect("valid");
        let idx = TvgIndex::compile(&g, 30);
        let tree = foremost_tree(
            &idx,
            n(0),
            &0,
            &WaitingPolicy::Unbounded,
            &SearchLimits::new(30, 3),
        );
        // depart 9 → arrive 9 + 2 = 11; every earlier departure is later.
        assert_eq!(tree.arrival(n(1)), Some(&11));
        let j = tree.journey_to(n(1)).expect("reachable");
        assert_eq!(j.departure(), Some(&9));
    }

    #[test]
    fn stats_count_one_run_per_tree() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let wait = foremost_tree(&idx, n(0), &0, &WaitingPolicy::Unbounded, &limits());
        let no = foremost_tree(&idx, n(0), &0, &WaitingPolicy::NoWait, &limits());
        for tree in [&wait, &no] {
            assert_eq!(tree.stats().runs, 1);
            assert!(tree.stats().settled >= 1, "the seed itself settles");
        }
        // Stats are values: summing them is the batch aggregation.
        let total: EngineStats = [wait.stats(), no.stats()].into_iter().sum();
        assert_eq!(total.runs, 2);
        assert_eq!(total.settled, wait.stats().settled + no.stats().settled);
    }

    #[test]
    fn zero_latency_cycles_terminate() {
        // A zero-latency self-loop plus a zero-latency 2-cycle: the
        // configuration space at each instant is finite and the explorers
        // must settle it without spinning.
        let mut b = TvgBuilder::new();
        let v = b.nodes(2);
        b.edge(v[0], v[0], 's', Presence::Always, Latency::Const(0u64))
            .expect("valid");
        b.edge(v[0], v[1], 'a', Presence::Always, Latency::Const(0u64))
            .expect("valid");
        b.edge(v[1], v[0], 'b', Presence::Always, Latency::Const(0u64))
            .expect("valid");
        let g = b.build().expect("valid");
        let idx = TvgIndex::compile(&g, 5);
        for policy in [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(1),
            WaitingPolicy::Unbounded,
        ] {
            let tree = foremost_tree(&idx, n(0), &2, &policy, &SearchLimits::new(5, 4));
            assert_eq!(tree.arrival(n(1)), Some(&2), "{policy}");
        }
    }

    #[test]
    fn flat_map_inserts_and_truncates() {
        let mut m: FlatMap<u64, u32> = FlatMap::new();
        for k in [4u64, 1, 3] {
            let at = m.search(&k).expect_err("absent");
            m.insert_at(at, k, u32::try_from(k).expect("small"));
        }
        assert_eq!(m.get(&3), Some(&3));
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&4), Some(&4));
        assert_eq!(m.search(&2), Err(1));
        m.truncate_from(&3);
        assert_eq!(m.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1]);
    }
}
