//! The single-source journey engine: one pass over a compiled
//! [`TvgIndex`] computes foremost arrivals (and witness journeys) from a
//! source to *every* node.
//!
//! Two explorers share the [`ForemostTree`] output:
//!
//! * **Unbounded waiting** uses label-correcting search with Pareto
//!   dominance on `(arrival, hops)`. Under unbounded waiting an earlier
//!   arrival can do everything a later one can (its departure window is a
//!   superset) as long as it has not spent more hops, so a label
//!   dominated in both coordinates is pruned soundly — and the hop
//!   coordinate keeps the pruning exact even when `max_hops` binds.
//! * **`NoWait` / `Bounded(d)`** retain exact `(node, time)`
//!   configuration exploration, because under restricted waiting an
//!   early arrival can be a dead end while a later one connects
//!   (the phenomenon the paper is about). The index still pays off: the
//!   waiting window is enumerated interval-by-interval instead of
//!   tick-by-tick.
//!
//! Every run carries its own [`EngineStats`] (run count, settled
//! configurations, expanded crossings) inside the returned tree. Stats
//! are values, not thread-local counters, so they aggregate correctly
//! when the batch runtime fans runs out over worker threads — summing
//! per-tree stats is how tests pin aggregate consumers (e.g.
//! `ReachabilityMatrix`) to "exactly n single-source runs, no per-pair
//! search", at any thread count.

use crate::{Hop, Journey, SearchLimits, WaitingPolicy};
use std::cmp::Reverse;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use tvg_model::{EdgeId, NodeId, TemporalIndex, Time};

/// Work counters of one single-source engine run — or, summed, of a
/// whole batch. Returned by value with every [`ForemostTree`], so the
/// accounting stays exact when runs execute on different worker threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of single-source engine runs (1 per tree; a batch sums).
    pub runs: u64,
    /// Configurations (exact explorer) or labels (Pareto explorer)
    /// settled.
    pub settled: u64,
    /// Admissible crossings generated during expansion.
    pub expanded: u64,
}

impl EngineStats {
    fn one_run() -> Self {
        EngineStats {
            runs: 1,
            ..EngineStats::default()
        }
    }
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        self.runs += rhs.runs;
        self.settled += rhs.settled;
        self.expanded += rhs.expanded;
    }
}

impl std::ops::Add for EngineStats {
    type Output = EngineStats;

    fn add(mut self, rhs: EngineStats) -> EngineStats {
        self += rhs;
        self
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> EngineStats {
        iter.fold(EngineStats::default(), std::ops::Add::add)
    }
}

/// The all-destinations output of one single-source engine run: for each
/// node, the foremost (earliest) arrival from the seed configuration(s),
/// plus the parent structure to rebuild a witness journey on demand.
///
/// Seed nodes are reached at their seed time by the empty journey.
#[derive(Debug, Clone)]
pub struct ForemostTree<T> {
    arrival: Vec<Option<T>>,
    repr: TreeRepr<T>,
    stats: EngineStats,
}

/// Journey-reconstruction data, explorer-specific. Journeys are rebuilt
/// lazily in [`ForemostTree::journey_to`] so arrival-only consumers
/// (reachability rows, delivery ratios, broadcasts) pay nothing for
/// witnesses they never read.
#[derive(Debug, Clone)]
pub(crate) enum TreeRepr<T> {
    /// Exact explorer: parent pointers bucketed by dense node id.
    Exact(ExactParents<T>),
    /// Pareto explorer: the label arena plus, per node, the label id
    /// realizing its foremost arrival.
    Pareto {
        arena: Vec<Label<T>>,
        best: Vec<Option<usize>>,
    },
}

impl<T: Time> ForemostTree<T> {
    /// Assembles a tree from explorer state (the fresh path and the
    /// incremental repair in [`crate::incremental`] share this).
    pub(crate) fn from_parts(
        arrival: Vec<Option<T>>,
        repr: TreeRepr<T>,
        stats: EngineStats,
    ) -> Self {
        ForemostTree {
            arrival,
            repr,
            stats,
        }
    }

    /// The foremost arrival at `n`, `None` if unreachable within the
    /// limits.
    #[must_use]
    pub fn arrival(&self, n: NodeId) -> Option<&T> {
        self.arrival[n.index()].as_ref()
    }

    /// A foremost journey to `n` (empty for a seed node), `None` if
    /// unreachable within the limits. Rebuilt on demand from the parent
    /// structure.
    #[must_use]
    pub fn journey_to(&self, n: NodeId) -> Option<Journey<T>> {
        let arrival = self.arrival[n.index()].as_ref()?;
        Some(match &self.repr {
            TreeRepr::Exact(parents) => parents.rebuild((n, arrival.clone())),
            TreeRepr::Pareto { arena, best } => rebuild_labels(
                arena,
                best[n.index()].expect("reached nodes have a best label"),
            ),
        })
    }

    /// The reached nodes, in id order.
    pub fn reached_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.arrival
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Number of reached nodes (seeds included).
    #[must_use]
    pub fn num_reached(&self) -> usize {
        self.arrival.iter().filter(|r| r.is_some()).count()
    }

    /// Work counters of the run that produced this tree
    /// (`stats().runs == 1` for a single engine pass).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// One single-source foremost run from `(src, start)` over a compiled
/// index (batch-compiled or live): foremost arrivals to every node in
/// one pass.
///
/// Departures are bounded by `limits.horizon` (the index's own horizon
/// also applies) and journeys by `limits.max_hops` hops.
#[must_use]
pub fn foremost_tree<T: Time, I: TemporalIndex<T>>(
    index: &I,
    src: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> ForemostTree<T> {
    foremost_tree_multi(index, &[(src, start.clone())], policy, limits)
}

/// [`foremost_tree`] from several seed configurations at once.
///
/// A node's foremost arrival is the earliest over journeys from *any*
/// seed. Multiple seeds model sources that re-emit over time (e.g. a
/// beaconing broadcast source is a seed at every step).
#[must_use]
pub fn foremost_tree_multi<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> ForemostTree<T> {
    run(index, seeds, policy, limits, None)
}

/// A single-target foremost query with early exit: the run stops as soon
/// as `dst` settles (its first settle is already foremost), skipping the
/// rest of the configuration space. This is what the per-pair
/// `foremost_journey` wrapper uses; all-destinations consumers use
/// [`foremost_tree`] instead.
#[must_use]
pub fn foremost_to<T: Time, I: TemporalIndex<T>>(
    index: &I,
    src: NodeId,
    dst: NodeId,
    start: &T,
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
) -> Option<Journey<T>> {
    run(index, &[(src, start.clone())], policy, limits, Some(dst)).journey_to(dst)
}

pub(crate) fn run<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    target: Option<NodeId>,
) -> ForemostTree<T> {
    match policy {
        WaitingPolicy::Unbounded => pareto_explore(index, seeds, limits, target),
        _ => exact_explore(index, seeds, policy, limits, target),
    }
}

/// Maps an arrival configuration to `(parent node, parent ready time,
/// edge, departure)` — the same parent structure as the tick-scan
/// reference search, so reconstructed journeys match it hop for hop.
/// Shared with `search::shortest_journey`, which builds the same map.
pub(crate) type ParentMap<T> = BTreeMap<(NodeId, T), (NodeId, T, EdgeId, T)>;

/// Parent pointers of the exact explorer, bucketed by dense node id: one
/// small per-node arrival-time map instead of one wide map over every
/// `(node, time)` pair. Node lookup is an index, not a tree descent —
/// the dense half of the `(node, time)` key costs nothing.
#[derive(Debug, Clone)]
pub(crate) struct ExactParents<T> {
    pub(crate) per_node: Vec<BTreeMap<T, (NodeId, T, EdgeId, T)>>,
}

impl<T: Time> ExactParents<T> {
    fn new(num_nodes: usize) -> Self {
        ExactParents {
            per_node: vec![BTreeMap::new(); num_nodes],
        }
    }

    pub(crate) fn rebuild(&self, mut state: (NodeId, T)) -> Journey<T> {
        let mut hops = Vec::new();
        while let Some((pn, pt, e, dep)) = self.per_node[state.0.index()].get(&state.1).cloned() {
            hops.push(Hop {
                edge: e,
                depart: dep,
                arrive: state.1.clone(),
            });
            state = (pn, pt);
        }
        hops.reverse();
        Journey::from_hops(hops)
    }
}

pub(crate) fn rebuild<T: Time>(parents: &ParentMap<T>, mut state: (NodeId, T)) -> Journey<T> {
    let mut hops = Vec::new();
    while let Some((pn, pt, e, dep)) = parents.get(&state).cloned() {
        hops.push(Hop {
            edge: e,
            depart: dep,
            arrive: state.1.clone(),
        });
        state = (pn, pt);
    }
    hops.reverse();
    Journey::from_hops(hops)
}

/// Resumable state of the exact `(node, time)` explorer — the fresh run
/// drives it from empty seeds; [`crate::incremental`] prunes and
/// replays it when the underlying schedule grows at the right edge.
///
/// `settled` records the hop count each configuration first settled
/// with (the minimal hops to reach it, since the heap pops ties in hop
/// order). The incremental repair needs those hop counts to re-expand
/// surviving configurations exactly as a fresh run would.
#[derive(Debug, Clone)]
pub(crate) struct ExactCore<T> {
    pub(crate) arrival: Vec<Option<T>>,
    pub(crate) settled: Vec<BTreeMap<T, usize>>,
    pub(crate) parents: ExactParents<T>,
    // Min-heap on (arrival, node, hops): pops in time order, so the
    // first settle of a node is its foremost arrival. Duplicate pushes
    // are deduplicated at pop time against `settled`.
    queue: BinaryHeap<Reverse<(T, NodeId, usize)>>,
}

impl<T: Time> ExactCore<T> {
    pub(crate) fn new(num_nodes: usize) -> Self {
        ExactCore {
            arrival: vec![None; num_nodes],
            settled: vec![BTreeMap::new(); num_nodes],
            parents: ExactParents::new(num_nodes),
            queue: BinaryHeap::new(),
        }
    }

    /// Grows the per-node state after streamed topology growth.
    pub(crate) fn resize(&mut self, num_nodes: usize) {
        self.arrival.resize(num_nodes, None);
        self.settled.resize(num_nodes, BTreeMap::new());
        self.parents.per_node.resize(num_nodes, BTreeMap::new());
    }

    /// Enqueues seed configurations (hop count zero).
    pub(crate) fn seed<'s>(&mut self, seeds: impl IntoIterator<Item = &'s (NodeId, T)>)
    where
        T: 's,
    {
        for (node, t) in seeds {
            self.queue.push(Reverse((t.clone(), *node, 0)));
        }
    }

    /// Discards every conclusion at or after `t0`: settles, parent
    /// pointers, and foremost arrivals from `t0` on may all be
    /// invalidated by schedule changes at `t0`, while everything
    /// strictly earlier is untouchable (a crossing departing at or
    /// after `t0` arrives at or after it — latencies are non-negative).
    pub(crate) fn prune(&mut self, t0: &T) {
        self.queue.clear();
        for map in &mut self.settled {
            map.split_off(t0);
        }
        for map in &mut self.parents.per_node {
            map.split_off(t0);
        }
        for slot in &mut self.arrival {
            if slot.as_ref().is_some_and(|t| t >= t0) {
                *slot = None;
            }
        }
    }

    /// Re-expands every surviving configuration in global settle order
    /// (time, node, hops) — the order a fresh run would have expanded
    /// them in. Crossings arriving before the prune watermark find
    /// their targets already settled and are skipped; crossings into
    /// the repaired region re-enter the queue, so the subsequent
    /// [`ExactCore::drain`] reproduces a fresh run's conclusions there.
    pub(crate) fn replay<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        stats: &mut EngineStats,
    ) {
        let mut survivors: Vec<(T, NodeId, usize)> = Vec::new();
        for (i, map) in self.settled.iter().enumerate() {
            let node = NodeId::from_index(i);
            survivors.extend(map.iter().map(|(t, &h)| (t.clone(), node, h)));
        }
        survivors.sort();
        for (time, node, hops) in survivors {
            if hops == limits.max_hops {
                continue;
            }
            self.expand(index, policy, limits, node, &time, hops, stats);
        }
    }

    /// Runs the exploration to exhaustion (or to `target`'s first,
    /// already-foremost settle).
    pub(crate) fn drain<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        target: Option<NodeId>,
        stats: &mut EngineStats,
    ) {
        while let Some(Reverse((time, node, hops))) = self.queue.pop() {
            match self.settled[node.index()].entry(time.clone()) {
                Entry::Occupied(_) => continue,
                Entry::Vacant(slot) => slot.insert(hops),
            };
            stats.settled += 1;
            if self.arrival[node.index()].is_none() {
                self.arrival[node.index()] = Some(time.clone());
                // The first settle is already foremost: a targeted query
                // is done here.
                if target == Some(node) {
                    break;
                }
            }
            if hops == limits.max_hops {
                continue;
            }
            self.expand(index, policy, limits, node, &time, hops, stats);
        }
    }

    #[allow(clippy::too_many_arguments)] // one settled configuration, spelled out
    fn expand<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        node: NodeId,
        time: &T,
        hops: usize,
        stats: &mut EngineStats,
    ) {
        let Some(latest) = policy.latest_departure(time, &limits.horizon) else {
            return;
        };
        for (e, dep, arr) in index.crossings(node, time, &latest) {
            stats.expanded += 1;
            let succ = index.tvg().edge(e).dst();
            if !self.settled[succ.index()].contains_key(&arr) {
                self.parents.per_node[succ.index()]
                    .entry(arr.clone())
                    .or_insert((node, time.clone(), e, dep));
                self.queue.push(Reverse((arr, succ, hops + 1)));
            }
        }
    }
}

/// Exact `(node, time)` exploration for `NoWait` / `Bounded(d)`:
/// time-ordered expansion of every reachable configuration, with
/// interval-driven departure enumeration. Frontier bookkeeping is
/// bucketed by dense node id (`Vec` of per-node time maps) — the dense
/// half of every `(node, time)` key is an index, not a comparison.
fn exact_explore<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    policy: &WaitingPolicy<T>,
    limits: &SearchLimits<T>,
    target: Option<NodeId>,
) -> ForemostTree<T> {
    let mut stats = EngineStats::one_run();
    let mut core = ExactCore::new(index.tvg().num_nodes());
    core.seed(seeds);
    core.drain(index, policy, limits, target, &mut stats);
    ForemostTree {
        arrival: core.arrival,
        repr: TreeRepr::Exact(core.parents),
        stats,
    }
}

/// A label of the Pareto explorer: one arrival instant plus the parent
/// pointer that realizes it (the node lives in the queue key).
#[derive(Debug, Clone)]
pub(crate) struct Label<T> {
    pub(crate) time: T,
    pub(crate) parent: Option<(usize, EdgeId, T)>,
}

/// A settled Pareto frontier entry: `(arrival, hops, label id)`.
pub(crate) type ParetoEntry<T> = (T, usize, usize);

fn dominated<T: Time>(frontier: &[ParetoEntry<T>], time: &T, hops: usize) -> bool {
    frontier.iter().any(|(a, h, _)| a <= time && *h <= hops)
}

/// Resumable state of the Pareto label-correcting explorer (unbounded
/// waiting), the counterpart of [`ExactCore`]. Pruning keeps the label
/// arena intact — labels in the repaired region become unreachable
/// garbage, which costs memory proportional to the churn but keeps
/// every surviving parent chain valid by construction.
#[derive(Debug, Clone)]
pub(crate) struct ParetoCore<T> {
    pub(crate) arrival: Vec<Option<T>>,
    pub(crate) best: Vec<Option<usize>>,
    pub(crate) arena: Vec<Label<T>>,
    /// Settled Pareto frontier per node.
    pub(crate) settled: Vec<Vec<ParetoEntry<T>>>,
    // (arrival, hops, node, label id); pops in (time, hops) order.
    queue: BTreeSet<(T, usize, NodeId, usize)>,
}

impl<T: Time> ParetoCore<T> {
    pub(crate) fn new(num_nodes: usize) -> Self {
        ParetoCore {
            arrival: vec![None; num_nodes],
            best: vec![None; num_nodes],
            arena: Vec::new(),
            settled: vec![Vec::new(); num_nodes],
            queue: BTreeSet::new(),
        }
    }

    /// Grows the per-node state after streamed topology growth.
    pub(crate) fn resize(&mut self, num_nodes: usize) {
        self.arrival.resize(num_nodes, None);
        self.best.resize(num_nodes, None);
        self.settled.resize(num_nodes, Vec::new());
    }

    /// Enqueues seed labels (hop count zero, no parent).
    pub(crate) fn seed<'s>(&mut self, seeds: impl IntoIterator<Item = &'s (NodeId, T)>)
    where
        T: 's,
    {
        for (node, t) in seeds {
            self.arena.push(Label {
                time: t.clone(),
                parent: None,
            });
            self.queue
                .insert((t.clone(), 0, *node, self.arena.len() - 1));
        }
    }

    /// Discards every conclusion at or after `t0` (see
    /// [`ExactCore::prune`] for the soundness argument).
    pub(crate) fn prune(&mut self, t0: &T) {
        self.queue.clear();
        for frontier in &mut self.settled {
            frontier.retain(|(t, _, _)| t < t0);
        }
        for (slot, best) in self.arrival.iter_mut().zip(&mut self.best) {
            if slot.as_ref().is_some_and(|t| t >= t0) {
                *slot = None;
                *best = None;
            }
        }
    }

    /// Re-expands every surviving settled label in global settle order
    /// (time, hops, node, id). Crossings whose best arrival lands
    /// before the prune watermark are dominated by surviving frontier
    /// entries and skipped; crossings into the repaired region re-enter
    /// the queue for [`ParetoCore::drain`].
    pub(crate) fn replay<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        limits: &SearchLimits<T>,
        stats: &mut EngineStats,
    ) {
        let mut survivors: Vec<(T, usize, NodeId, usize)> = Vec::new();
        for (i, frontier) in self.settled.iter().enumerate() {
            let node = NodeId::from_index(i);
            survivors.extend(frontier.iter().map(|(t, h, id)| (t.clone(), *h, node, *id)));
        }
        survivors.sort();
        for (time, hops, node, id) in survivors {
            if hops == limits.max_hops || time > limits.horizon {
                continue;
            }
            self.expand(index, limits, node, &time, hops, id, stats);
        }
    }

    /// Runs the exploration to exhaustion (or to `target`'s first,
    /// already-foremost settle).
    pub(crate) fn drain<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        limits: &SearchLimits<T>,
        target: Option<NodeId>,
        stats: &mut EngineStats,
    ) {
        while let Some((time, hops, node, id)) = self.queue.pop_first() {
            if dominated(&self.settled[node.index()], &time, hops) {
                continue;
            }
            self.settled[node.index()].push((time.clone(), hops, id));
            stats.settled += 1;
            if self.arrival[node.index()].is_none() {
                self.arrival[node.index()] = Some(time.clone());
                self.best[node.index()] = Some(id);
                if target == Some(node) {
                    break;
                }
            }
            if hops == limits.max_hops || time > limits.horizon {
                continue;
            }
            self.expand(index, limits, node, &time, hops, id, stats);
        }
    }

    #[allow(clippy::too_many_arguments)] // one settled label, spelled out
    fn expand<I: TemporalIndex<T>>(
        &mut self,
        index: &I,
        limits: &SearchLimits<T>,
        node: NodeId,
        time: &T,
        hops: usize,
        id: usize,
        stats: &mut EngineStats,
    ) {
        for &e in index.out_edges(node) {
            let succ = index.tvg().edge(e).dst();
            // All crossings of `e` from this label cost the same hops, so
            // only the minimal-arrival departure can survive dominance —
            // one label per (label, edge). With a monotone arrival the
            // earliest departure realizes it (one binary search); an
            // opaque latency needs the full window scanned.
            let best_crossing: Option<(T, T)> = if index.arrival_is_monotone(e) {
                index
                    .departures_within(e, time, &limits.horizon)
                    .next()
                    .and_then(|dep| Some((index.arrival(e, &dep)?, dep)))
            } else {
                let mut best: Option<(T, T)> = None;
                for dep in index.departures_within(e, time, &limits.horizon) {
                    let Some(arr) = index.arrival(e, &dep) else {
                        continue;
                    };
                    match &best {
                        Some((best_arr, _)) if *best_arr <= arr => {}
                        _ => best = Some((arr, dep)),
                    }
                }
                best
            };
            let Some((arr, dep)) = best_crossing else {
                continue;
            };
            if dominated(&self.settled[succ.index()], &arr, hops + 1) {
                continue;
            }
            stats.expanded += 1;
            self.arena.push(Label {
                time: arr.clone(),
                parent: Some((id, e, dep)),
            });
            self.queue
                .insert((arr, hops + 1, succ, self.arena.len() - 1));
        }
    }
}

/// Label-correcting exploration for unbounded waiting with Pareto
/// `(arrival, hops)` dominance.
fn pareto_explore<T: Time, I: TemporalIndex<T>>(
    index: &I,
    seeds: &[(NodeId, T)],
    limits: &SearchLimits<T>,
    target: Option<NodeId>,
) -> ForemostTree<T> {
    let mut stats = EngineStats::one_run();
    let mut core = ParetoCore::new(index.tvg().num_nodes());
    core.seed(seeds);
    core.drain(index, limits, target, &mut stats);
    ForemostTree {
        arrival: core.arrival,
        repr: TreeRepr::Pareto {
            arena: core.arena,
            best: core.best,
        },
        stats,
    }
}

pub(crate) fn rebuild_labels<T: Time>(arena: &[Label<T>], mut id: usize) -> Journey<T> {
    let mut hops = Vec::new();
    while let Some((prev, e, dep)) = &arena[id].parent {
        hops.push(Hop {
            edge: *e,
            depart: dep.clone(),
            arrive: arena[id].time.clone(),
        });
        id = *prev;
    }
    hops.reverse();
    Journey::from_hops(hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_model::{Latency, Presence, Tvg, TvgBuilder, TvgIndex};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Line v0 →a→ v1 →b→ v2 where b exists only at t = 5.
    fn line_gap() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(5u64), Latency::unit())
            .expect("valid");
        b.build().expect("valid")
    }

    fn limits() -> SearchLimits<u64> {
        SearchLimits::new(20, 10)
    }

    #[test]
    fn tree_separates_policies() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let no = foremost_tree(&idx, n(0), &1, &WaitingPolicy::NoWait, &limits());
        assert_eq!(no.arrival(n(0)), Some(&1));
        assert_eq!(no.arrival(n(1)), Some(&2));
        assert_eq!(no.arrival(n(2)), None);
        assert_eq!(no.num_reached(), 2);

        let wait = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &limits());
        assert_eq!(wait.arrival(n(2)), Some(&6));
        let j = wait.journey_to(n(2)).expect("reachable");
        assert_eq!(j.num_hops(), 2);
        assert_eq!(j.validate(&g, n(0), &1, &WaitingPolicy::Unbounded), Ok(()));
        assert_eq!(
            wait.reached_nodes().collect::<Vec<_>>(),
            vec![n(0), n(1), n(2)]
        );

        let b3 = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Bounded(3), &limits());
        assert_eq!(b3.arrival(n(2)), Some(&6));
        let b2 = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Bounded(2), &limits());
        assert_eq!(b2.arrival(n(2)), None);
    }

    #[test]
    fn seed_nodes_reach_themselves_by_empty_journeys() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let tree = foremost_tree(&idx, n(1), &3, &WaitingPolicy::NoWait, &limits());
        assert_eq!(tree.arrival(n(1)), Some(&3));
        assert!(tree.journey_to(n(1)).expect("seed").is_empty());
    }

    #[test]
    fn multi_seed_takes_the_earliest() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        // Seeding v0 late misses edge a; an extra seed at v1 connects.
        let seeds = [(n(0), 4u64), (n(1), 4u64)];
        let tree = foremost_tree_multi(&idx, &seeds, &WaitingPolicy::Unbounded, &limits());
        assert_eq!(tree.arrival(n(2)), Some(&6));
        assert_eq!(tree.arrival(n(0)), Some(&4));
        assert_eq!(tree.arrival(n(1)), Some(&4));
    }

    #[test]
    fn hop_and_horizon_limits_bind() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let one_hop = SearchLimits::new(20, 1);
        let tree = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &one_hop);
        assert_eq!(tree.arrival(n(2)), None);
        let tight = SearchLimits::new(4, 10);
        let tree = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &tight);
        assert_eq!(tree.arrival(n(2)), None);
    }

    #[test]
    fn pareto_hop_pruning_is_exact_under_hop_limits() {
        // Two routes to v2: 1 hop arriving late (t=9→10) vs 2 hops
        // arriving early (t=3). With max_hops = 1 only the late route is
        // admissible; naive arrival-only dominance would prune it.
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[2], 'd', Presence::At(9u64), Latency::unit())
            .expect("valid");
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(2u64), Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        let idx = TvgIndex::compile(&g, 20);
        let full = foremost_tree(&idx, n(0), &0, &WaitingPolicy::Unbounded, &limits());
        assert_eq!(full.arrival(n(2)), Some(&3));
        let one_hop = SearchLimits::new(20, 1);
        let tree = foremost_tree(&idx, n(0), &0, &WaitingPolicy::Unbounded, &one_hop);
        assert_eq!(tree.arrival(n(2)), Some(&10));
        assert_eq!(tree.journey_to(n(2)).expect("direct").num_hops(), 1);
    }

    #[test]
    fn sentinel_unbounded_horizon_does_not_wrap() {
        // A "search forever" horizon at the top of the u64 domain must
        // compile to the clamped window, not wrap to emptiness or panic.
        let g = line_gap();
        let idx = TvgIndex::compile(&g, u64::MAX);
        let huge = SearchLimits::new(u64::MAX, 10);
        let tree = foremost_tree(&idx, n(0), &1, &WaitingPolicy::Unbounded, &huge);
        assert_eq!(tree.arrival(n(2)), Some(&6));
        let no = foremost_tree(&idx, n(0), &1, &WaitingPolicy::NoWait, &huge);
        assert_eq!(no.arrival(n(2)), None);
    }

    #[test]
    fn pareto_scans_the_window_for_non_monotone_latencies() {
        // Departing later is *faster* here: ζ(t) = 20 - 2t on a window.
        // The monotone fast path would take the earliest departure; the
        // explorer must scan and find the best arrival.
        let mut b = TvgBuilder::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Window {
                from: 0u64,
                until: 9,
            },
            Latency::from_fn(|t: &u64| 20u64.saturating_sub(2 * t)),
        )
        .expect("valid");
        let g = b.build().expect("valid");
        let idx = TvgIndex::compile(&g, 30);
        let tree = foremost_tree(
            &idx,
            n(0),
            &0,
            &WaitingPolicy::Unbounded,
            &SearchLimits::new(30, 3),
        );
        // depart 9 → arrive 9 + 2 = 11; every earlier departure is later.
        assert_eq!(tree.arrival(n(1)), Some(&11));
        let j = tree.journey_to(n(1)).expect("reachable");
        assert_eq!(j.departure(), Some(&9));
    }

    #[test]
    fn stats_count_one_run_per_tree() {
        let g = line_gap();
        let idx = TvgIndex::compile(&g, 20);
        let wait = foremost_tree(&idx, n(0), &0, &WaitingPolicy::Unbounded, &limits());
        let no = foremost_tree(&idx, n(0), &0, &WaitingPolicy::NoWait, &limits());
        for tree in [&wait, &no] {
            assert_eq!(tree.stats().runs, 1);
            assert!(tree.stats().settled >= 1, "the seed itself settles");
        }
        // Stats are values: summing them is the batch aggregation.
        let total: EngineStats = [wait.stats(), no.stats()].into_iter().sum();
        assert_eq!(total.runs, 2);
        assert_eq!(total.settled, wait.stats().settled + no.stats().settled);
    }

    #[test]
    fn zero_latency_cycles_terminate() {
        // A zero-latency self-loop plus a zero-latency 2-cycle: the
        // configuration space at each instant is finite and the explorers
        // must settle it without spinning.
        let mut b = TvgBuilder::new();
        let v = b.nodes(2);
        b.edge(v[0], v[0], 's', Presence::Always, Latency::Const(0u64))
            .expect("valid");
        b.edge(v[0], v[1], 'a', Presence::Always, Latency::Const(0u64))
            .expect("valid");
        b.edge(v[1], v[0], 'b', Presence::Always, Latency::Const(0u64))
            .expect("valid");
        let g = b.build().expect("valid");
        let idx = TvgIndex::compile(&g, 5);
        for policy in [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(1),
            WaitingPolicy::Unbounded,
        ] {
            let tree = foremost_tree(&idx, n(0), &2, &policy, &SearchLimits::new(5, 4));
            assert_eq!(tree.arrival(n(1)), Some(&2), "{policy}");
        }
    }
}
