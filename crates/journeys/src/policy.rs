//! Waiting policies — the knob the whole paper is about.
//!
//! A journey is *direct* when each hop departs exactly when the previous
//! one arrives, and *indirect* when pauses are allowed. The paper's three
//! regimes are [`WaitingPolicy::NoWait`] (direct journeys only,
//! `L_nowait`), [`WaitingPolicy::Bounded`] (pauses of at most `d` time
//! units, `L_wait[d]`), and [`WaitingPolicy::Unbounded`] (arbitrary
//! pauses, `L_wait`).

use std::fmt;
use tvg_model::Time;

/// How long a journey may pause at a node between consecutive hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitingPolicy<T> {
    /// Direct journeys only: `t_{i+1} = t_i + ζ(e_i, t_i)`.
    NoWait,
    /// Pauses of at most `d` time units: `t_{i+1} ≤ t_i + ζ(e_i, t_i) + d`.
    ///
    /// `Bounded(T::zero())` is equivalent to [`WaitingPolicy::NoWait`].
    Bounded(T),
    /// Arbitrary pauses: `t_{i+1} ≥ t_i + ζ(e_i, t_i)` — store-carry-forward.
    Unbounded,
}

impl<T: Time> WaitingPolicy<T> {
    /// The latest admissible departure from a node reached at `ready`,
    /// given a hard search horizon. `None` if the window is empty or
    /// overflows the representation.
    #[must_use]
    pub fn latest_departure(&self, ready: &T, horizon: &T) -> Option<T> {
        let latest = match self {
            WaitingPolicy::NoWait => ready.clone(),
            WaitingPolicy::Bounded(d) => ready.checked_add(d)?.min(horizon.clone()),
            WaitingPolicy::Unbounded => horizon.clone(),
        };
        (latest >= *ready && *ready <= *horizon).then_some(latest)
    }

    /// Whether departing at `depart` after becoming ready at `ready` is
    /// admissible under this policy (ignoring horizons).
    #[must_use]
    pub fn admits(&self, ready: &T, depart: &T) -> bool {
        if depart < ready {
            return false;
        }
        match self {
            WaitingPolicy::NoWait => depart == ready,
            WaitingPolicy::Bounded(d) => match depart.checked_sub(ready) {
                Some(pause) => pause <= *d,
                None => false,
            },
            WaitingPolicy::Unbounded => true,
        }
    }
}

impl<T: fmt::Display> fmt::Display for WaitingPolicy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitingPolicy::NoWait => write!(f, "nowait"),
            WaitingPolicy::Bounded(d) => write!(f, "wait[{d}]"),
            WaitingPolicy::Unbounded => write!(f, "wait"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_matches_definitions() {
        let nowait = WaitingPolicy::<u64>::NoWait;
        assert!(nowait.admits(&5, &5));
        assert!(!nowait.admits(&5, &6));
        assert!(!nowait.admits(&5, &4));

        let bounded = WaitingPolicy::Bounded(3u64);
        assert!(bounded.admits(&5, &5));
        assert!(bounded.admits(&5, &8));
        assert!(!bounded.admits(&5, &9));

        let unbounded = WaitingPolicy::<u64>::Unbounded;
        assert!(unbounded.admits(&5, &1_000_000));
        assert!(!unbounded.admits(&5, &4));
    }

    #[test]
    fn bounded_zero_equals_nowait() {
        let b0 = WaitingPolicy::Bounded(0u64);
        for ready in 0u64..10 {
            for depart in 0u64..10 {
                assert_eq!(
                    b0.admits(&ready, &depart),
                    WaitingPolicy::<u64>::NoWait.admits(&ready, &depart)
                );
            }
        }
    }

    #[test]
    fn latest_departure_windows() {
        assert_eq!(
            WaitingPolicy::<u64>::NoWait.latest_departure(&5, &100),
            Some(5)
        );
        assert_eq!(
            WaitingPolicy::Bounded(3u64).latest_departure(&5, &100),
            Some(8)
        );
        assert_eq!(
            WaitingPolicy::Bounded(3u64).latest_departure(&5, &6),
            Some(6)
        );
        assert_eq!(
            WaitingPolicy::<u64>::Unbounded.latest_departure(&5, &100),
            Some(100)
        );
        // Ready already past the horizon: empty window.
        assert_eq!(
            WaitingPolicy::<u64>::Unbounded.latest_departure(&101, &100),
            None
        );
        assert_eq!(
            WaitingPolicy::<u64>::NoWait.latest_departure(&101, &100),
            None
        );
    }

    #[test]
    fn latest_departure_overflow_safe() {
        assert_eq!(
            WaitingPolicy::Bounded(u64::MAX).latest_departure(&2, &100),
            None
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(WaitingPolicy::<u64>::NoWait.to_string(), "nowait");
        assert_eq!(WaitingPolicy::Bounded(4u64).to_string(), "wait[4]");
        assert_eq!(WaitingPolicy::<u64>::Unbounded.to_string(), "wait");
    }
}
