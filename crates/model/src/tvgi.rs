//! The on-disk index: a compiled schedule persisted as a `.tvgi` file.
//!
//! [`TvgIndex::compile`] pays the full materialization cost — presence
//! spans, CSR adjacency, the event timeline — every time a process
//! starts. This module makes that cost a *build step*: [`write_tvgi`]
//! serializes a compiled index into a versioned, little-endian,
//! section-table binary format, and [`ShardedIndex::open`] gives it
//! back as a read-only [`TemporalIndex`] whose accessors are zero-copy
//! views ([`SpanView::Flat`], [`EdgeRefs::Raw`]) into flat typed
//! arenas, so an index compiles once and any number of processes query
//! it without recompiling.
//!
//! # Format (version 1)
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (24 B): magic "TVGI" · version u16 · width u8 (4|8)   │
//! │   · reserved u8 · shards u32 · sections u32 · checksum u64   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section table: sections × (id u32 · shard u32 ·              │
//! │   offset u64 · len u64)   — offsets 8-byte aligned           │
//! ├──────────────────────────────────────────────────────────────┤
//! │ global sections: META · NAMES_OFF/NAMES_BYTES · SPEC ·       │
//! │   EDGE_SHARD/EDGE_LOCAL/EDGE_DST/EDGE_MONO/EDGE_LAT ·        │
//! │   SHARD_RANGES · EVENT_TIME/EVENT_EDGE                       │
//! ├──────────────────────────────────────────────────────────────┤
//! │ shard 0: CSR_OFF · CSR_EDGES · SPAN_OFF · SPANS · BOUNDARY   │
//! │ shard 1: …                                  (× shards)       │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every multi-byte value is little-endian. *Time-valued* sections
//! (`SPANS`, `EVENT_TIME`, `EDGE_LAT`, the horizon word of `META`)
//! store `width`-byte words — 4 when the index was compiled in the
//! [`narrow_tvg`](crate::narrow_tvg)-compressed `u32` domain, 8 for
//! native `u64` times — so narrowing halves the hot sections on disk
//! exactly as it halves them in memory. The `checksum` is FNV-1a 64
//! over the whole file except the checksum field itself, so any
//! one-byte corruption is either a typed structural error or a
//! [`TvgiError::ChecksumMismatch`], never a panic or a wrong answer.
//!
//! # Sharding
//!
//! `--shards k` splits the node range into `k` balanced contiguous
//! ranges at write time. An edge belongs to its source's shard; each
//! shard carries its own CSR and interval store, plus a boundary
//! summary (the sorted set of shards its edges cross into). Edge ids
//! stay *global*, which is what keeps a [`ShardedIndex`] bit-identical
//! to the in-memory index — same witness journeys, same engine stats —
//! at every shard count. The boundary summaries power
//! [`ShardedIndex::reachable_shards`], the planning step that lets a
//! consumer descend into only the shards a source can ever reach.
//!
//! # Zero-copy, honestly
//!
//! The workspace forbids `unsafe`, so the reader does not `mmap(2)`:
//! [`ShardedIndex::open`] performs one buffered sequential pass that
//! decodes each section into a flat typed arena (`Vec<u32>`/`Vec<u64>`
//! shaped exactly like the file bytes), and every query after that is
//! a slice view into those arenas — the same access pattern an mmap'd
//! reader would have, behind the same safe accessor layer, with one
//! up-front copy as the price of a `#![forbid(unsafe_code)]` workspace.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::index::{EdgeEvent, EdgeEventKind, EdgeRefs, TemporalIndex, TvgIndex};
use crate::interval::SpanView;
use crate::{EdgeId, Latency, NodeId, Time};

/// Magic bytes opening every `.tvgi` file.
pub const MAGIC: [u8; 4] = *b"TVGI";

/// The format version this build writes and reads.
pub const VERSION: u16 = 1;

/// Fixed header length in bytes.
const HEADER_LEN: u64 = 24;

/// Byte length of one section-table entry.
const TABLE_ENTRY_LEN: u64 = 24;

/// The `shard` field of a global (non-sharded) section.
const GLOBAL: u32 = u32::MAX;

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

mod section {
    //! Section identifiers of format version 1.
    pub const META: u32 = 1;
    pub const NAMES_OFF: u32 = 2;
    pub const NAMES_BYTES: u32 = 3;
    pub const SPEC: u32 = 4;
    pub const EDGE_SHARD: u32 = 5;
    pub const EDGE_LOCAL: u32 = 6;
    pub const EDGE_DST: u32 = 7;
    pub const EDGE_MONO: u32 = 8;
    pub const EDGE_LAT: u32 = 9;
    pub const SHARD_RANGES: u32 = 10;
    pub const EVENT_TIME: u32 = 11;
    pub const EVENT_EDGE: u32 = 12;
    pub const CSR_OFF: u32 = 13;
    pub const CSR_EDGES: u32 = 14;
    pub const SPAN_OFF: u32 = 15;
    pub const SPANS: u32 = 16;
    pub const BOUNDARY: u32 = 17;
}

/// Number of `u64` words in the `META` section.
const META_WORDS: usize = 5;

/// Bit marking a disappearance in an `EVENT_EDGE` word (appearances
/// leave it clear); the low 31 bits are the edge index.
const EVENT_DOWN_BIT: u32 = 1 << 31;

/// Everything that can go wrong opening, validating, or writing a
/// `.tvgi` file. Every failure mode is a typed variant — a corrupt or
/// truncated file must never panic the reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvgiError {
    /// An underlying filesystem error (message carried verbatim).
    Io(String),
    /// The file ends before a structure it promised (header, section
    /// table, or section payload).
    Truncated,
    /// The file does not start with the `TVGI` magic.
    BadMagic,
    /// The file's format version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// The time width is not 4 or 8, or does not match the time domain
    /// the caller asked to open the file under.
    BadWidth {
        /// Width recorded in the file header.
        found: u8,
        /// Width of the requested time domain.
        expected: u8,
    },
    /// Two sections overlap in the byte range they claim.
    SectionOverlap(u32, u32),
    /// A section's offset or length is not a multiple of its element
    /// width.
    Misaligned(u32),
    /// A section extends beyond the end of the file or into the header.
    SectionOutOfBounds(u32),
    /// A required section is absent.
    MissingSection(u32),
    /// The same `(id, shard)` section appears twice.
    DuplicateSection(u32),
    /// The whole-file checksum does not match the header.
    ChecksumMismatch,
    /// Structurally well-formed but self-contradictory content (counts
    /// that disagree, offsets that are not monotone, ids out of range).
    Inconsistent(&'static str),
    /// The index uses a non-constant latency on some edge; format
    /// version 1 only persists constant latencies.
    UnsupportedLatency(EdgeId),
}

impl std::fmt::Display for TvgiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TvgiError::Io(e) => write!(f, "tvgi i/o error: {e}"),
            TvgiError::Truncated => write!(f, "tvgi file is truncated"),
            TvgiError::BadMagic => write!(f, "not a tvgi file (bad magic)"),
            TvgiError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported tvgi version {v} (this build reads {VERSION})"
                )
            }
            TvgiError::BadWidth { found, expected } => {
                write!(
                    f,
                    "time width {found} does not match requested width {expected}"
                )
            }
            TvgiError::SectionOverlap(a, b) => write!(f, "sections {a} and {b} overlap"),
            TvgiError::Misaligned(id) => write!(f, "section {id} is misaligned"),
            TvgiError::SectionOutOfBounds(id) => {
                write!(f, "section {id} extends beyond the file")
            }
            TvgiError::MissingSection(id) => write!(f, "required section {id} is missing"),
            TvgiError::DuplicateSection(id) => write!(f, "section {id} appears twice"),
            TvgiError::ChecksumMismatch => write!(f, "tvgi checksum mismatch (corrupt file)"),
            TvgiError::Inconsistent(what) => write!(f, "inconsistent tvgi content: {what}"),
            TvgiError::UnsupportedLatency(e) => {
                write!(
                    f,
                    "edge {e} has a non-constant latency; tvgi v1 stores constants only"
                )
            }
        }
    }
}

impl std::error::Error for TvgiError {}

impl From<std::io::Error> for TvgiError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TvgiError::Truncated
        } else {
            TvgiError::Io(e.to_string())
        }
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// The machine-word time domains a `.tvgi` file can store: `u64`
/// (native simulation times) and `u32` (the
/// [`narrow_tvg`](crate::narrow_tvg)-compressed domain). Sealed — the
/// format has exactly two widths.
pub trait TvgiTime: Time + Copy + sealed::Sealed {
    /// Bytes per stored time word (4 or 8).
    const WIDTH: u8;

    /// Widens to the transport word.
    fn to_word(self) -> u64;

    /// Narrows from the transport word, `None` if it does not fit.
    fn from_word(w: u64) -> Option<Self>;
}

impl TvgiTime for u32 {
    const WIDTH: u8 = 4;

    fn to_word(self) -> u64 {
        u64::from(self)
    }

    fn from_word(w: u64) -> Option<Self> {
        u32::try_from(w).ok()
    }
}

impl TvgiTime for u64 {
    const WIDTH: u8 = 8;

    fn to_word(self) -> u64 {
        self
    }

    fn from_word(w: u64) -> Option<Self> {
        Some(w)
    }
}

/// A streaming FNV-1a 64 hasher (the format's whole-file checksum).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Element width in bytes of a section's words, given the file's time
/// width. `1` means raw bytes (no alignment constraint beyond the
/// table's 8-byte offsets).
fn elem_width(id: u32, time_width: u8) -> u64 {
    match id {
        section::META | section::NAMES_OFF | section::CSR_OFF | section::SPAN_OFF => 8,
        section::NAMES_BYTES | section::SPEC => 1,
        section::EDGE_LAT | section::EVENT_TIME | section::SPANS => u64::from(time_width),
        _ => 4,
    }
}

/// One entry of the section table.
#[derive(Debug, Clone, Copy)]
struct Section {
    id: u32,
    shard: u32,
    offset: u64,
    len: u64,
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// What [`write_tvgi`] produced, for logs and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TvgiSummary {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Shard count actually written (clamped to the node count).
    pub shards: u32,
    /// Stored time width in bytes (4 or 8).
    pub width: u8,
    /// Node count.
    pub num_nodes: usize,
    /// Edge count.
    pub num_edges: usize,
    /// Total presence spans across all shards.
    pub num_spans: usize,
    /// Edge-event timeline length.
    pub num_events: usize,
}

/// Balanced contiguous node ranges: `k` shards over `n` nodes, sizes
/// differing by at most one. Returns the `k + 1` boundary array.
fn shard_ranges(n: usize, k: u32) -> Vec<u32> {
    let k = k as usize;
    let base = n / k;
    let rem = n % k;
    let mut ranges = Vec::with_capacity(k + 1);
    let mut at = 0usize;
    ranges.push(0u32);
    for i in 0..k {
        at += base + usize::from(i < rem);
        ranges.push(u32::try_from(at).expect("node count fits in u32"));
    }
    ranges
}

/// Serializes a compiled index into `path` as a `.tvgi` file with
/// `shards` node-range shards (clamped to `[1, num_nodes]`), embedding
/// `spec` (the canonical scenario text, if any) for provenance checks
/// at open time.
///
/// # Errors
///
/// [`TvgiError::UnsupportedLatency`] if any edge's latency is not
/// [`Latency::Const`] (format v1 persists constant latencies only —
/// every built-in generator emits them), or [`TvgiError::Io`] on a
/// filesystem failure.
pub fn write_tvgi<T: TvgiTime>(
    index: &TvgIndex<'_, T>,
    shards: u32,
    spec: Option<&str>,
    path: &Path,
) -> Result<TvgiSummary, TvgiError> {
    let g = index.tvg();
    let n = g.num_nodes();
    let m = g.num_edges();
    let k = shards.clamp(1, u32::try_from(n.max(1)).unwrap_or(u32::MAX));

    // Per-edge constant latencies — the one schedule feature v1 needs
    // from the AST. Anything fancier must stay on the compile-per-run
    // path.
    let mut edge_lat: Vec<u64> = Vec::with_capacity(m);
    for e in g.edges() {
        match g.edge(e).latency() {
            Latency::Const(c) => edge_lat.push(c.to_word()),
            _ => return Err(TvgiError::UnsupportedLatency(e)),
        }
    }

    let ranges = shard_ranges(n, k);
    let shard_of_node = |node: usize| -> u32 {
        let s = ranges.partition_point(|&r| r as usize <= node);
        u32::try_from(s - 1).expect("shard fits in u32")
    };

    // Edge directory: owning shard (= src's shard) and local slot, in
    // shard-CSR order so SPAN_OFF is a plain prefix sum.
    let mut edge_shard = vec![0u32; m];
    let mut edge_local = vec![0u32; m];
    let mut num_spans = 0usize;

    struct ShardBuf {
        csr_off: Vec<u64>,
        csr_edges: Vec<u32>,
        span_off: Vec<u64>,
        spans: Vec<u64>,
        boundary: BTreeSet<u32>,
    }
    let mut shard_bufs: Vec<ShardBuf> = Vec::with_capacity(k as usize);
    for s in 0..k as usize {
        let (lo, hi) = (ranges[s] as usize, ranges[s + 1] as usize);
        let mut buf = ShardBuf {
            csr_off: Vec::with_capacity(hi - lo + 1),
            csr_edges: Vec::new(),
            span_off: Vec::new(),
            spans: Vec::new(),
            boundary: BTreeSet::new(),
        };
        buf.csr_off.push(0);
        buf.span_off.push(0);
        let mut local = 0u32;
        for node in lo..hi {
            for &e in index.out_edges(NodeId::from_index(node)) {
                let ei = e.index();
                edge_shard[ei] = u32::try_from(s).expect("shard fits in u32");
                edge_local[ei] = local;
                local += 1;
                buf.csr_edges
                    .push(u32::try_from(ei).expect("edge index fits in u32"));
                for (start, end) in index.presence(e).spans() {
                    buf.spans.push(start.to_word());
                    buf.spans.push(end.to_word());
                }
                buf.span_off.push(buf.spans.len() as u64 / 2);
                let dst_shard = shard_of_node(g.edge(e).dst().index());
                if dst_shard as usize != s {
                    buf.boundary.insert(dst_shard);
                }
            }
            buf.csr_off.push(buf.csr_edges.len() as u64);
        }
        num_spans += buf.spans.len() / 2;
        shard_bufs.push(buf);
    }

    // Event timeline, packed as parallel time/edge-word arrays.
    let events = index.edge_events();
    let mut event_time: Vec<u64> = Vec::with_capacity(events.len());
    let mut event_edge: Vec<u32> = Vec::with_capacity(events.len());
    for ev in events {
        let ei = u32::try_from(ev.edge.index())
            .ok()
            .filter(|ei| ei & EVENT_DOWN_BIT == 0)
            .ok_or(TvgiError::Inconsistent("edge index exceeds 31 bits"))?;
        event_time.push(ev.time.to_word());
        event_edge.push(match ev.kind {
            EdgeEventKind::Appear => ei,
            EdgeEventKind::Disappear => ei | EVENT_DOWN_BIT,
        });
    }

    // Node names.
    let mut names_off: Vec<u64> = Vec::with_capacity(n + 1);
    let mut names_bytes: Vec<u8> = Vec::new();
    names_off.push(0);
    for node in g.nodes() {
        names_bytes.extend_from_slice(g.node_name(node).as_bytes());
        names_off.push(names_bytes.len() as u64);
    }

    let spec_bytes = spec.unwrap_or("").as_bytes().to_vec();
    let horizon = index.horizon().to_word();
    let meta: Vec<u64> = vec![
        n as u64,
        m as u64,
        horizon,
        events.len() as u64,
        u64::from(k),
    ];

    // Assemble the payload plan: (id, shard, bytes).
    let width = T::WIDTH;
    let time_bytes = |words: &[u64]| -> Vec<u8> {
        let mut out = Vec::with_capacity(words.len() * width as usize);
        for &w in words {
            out.extend_from_slice(&w.to_le_bytes()[..width as usize]);
        }
        out
    };
    let u64_bytes = |words: &[u64]| -> Vec<u8> {
        let mut out = Vec::with_capacity(words.len() * 8);
        for &w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    };
    let u32_bytes = |words: &[u32]| -> Vec<u8> {
        let mut out = Vec::with_capacity(words.len() * 4);
        for &w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    };

    let mut payloads: Vec<(u32, u32, Vec<u8>)> = vec![
        (section::META, GLOBAL, u64_bytes(&meta)),
        (section::NAMES_OFF, GLOBAL, u64_bytes(&names_off)),
        (section::NAMES_BYTES, GLOBAL, names_bytes),
        (section::SPEC, GLOBAL, spec_bytes),
        (section::EDGE_SHARD, GLOBAL, u32_bytes(&edge_shard)),
        (section::EDGE_LOCAL, GLOBAL, u32_bytes(&edge_local)),
        (
            section::EDGE_DST,
            GLOBAL,
            u32_bytes(
                &g.edges()
                    .map(|e| u32::try_from(g.edge(e).dst().index()).expect("node fits in u32"))
                    .collect::<Vec<u32>>(),
            ),
        ),
        (
            section::EDGE_MONO,
            GLOBAL,
            u32_bytes(
                &g.edges()
                    .map(|e| u32::from(index.arrival_is_monotone(e)))
                    .collect::<Vec<u32>>(),
            ),
        ),
        (section::EDGE_LAT, GLOBAL, time_bytes(&edge_lat)),
        (section::SHARD_RANGES, GLOBAL, u32_bytes(&ranges)),
        (section::EVENT_TIME, GLOBAL, time_bytes(&event_time)),
        (section::EVENT_EDGE, GLOBAL, u32_bytes(&event_edge)),
    ];
    for (s, buf) in shard_bufs.into_iter().enumerate() {
        let s = u32::try_from(s).expect("shard fits in u32");
        payloads.push((section::CSR_OFF, s, u64_bytes(&buf.csr_off)));
        payloads.push((section::CSR_EDGES, s, u32_bytes(&buf.csr_edges)));
        payloads.push((section::SPAN_OFF, s, u64_bytes(&buf.span_off)));
        payloads.push((section::SPANS, s, time_bytes(&buf.spans)));
        payloads.push((
            section::BOUNDARY,
            s,
            u32_bytes(&buf.boundary.into_iter().collect::<Vec<u32>>()),
        ));
    }

    // Lay out sections after the table, each 8-byte aligned.
    let table_len = TABLE_ENTRY_LEN * payloads.len() as u64;
    let mut offset = HEADER_LEN + table_len;
    offset = offset.next_multiple_of(8);
    let mut table: Vec<Section> = Vec::with_capacity(payloads.len());
    for (id, shard, bytes) in &payloads {
        table.push(Section {
            id: *id,
            shard: *shard,
            offset,
            len: bytes.len() as u64,
        });
        offset = (offset + bytes.len() as u64).next_multiple_of(8);
    }
    let file_len = offset;

    // Header with a zero checksum placeholder, then table, then
    // payload — hashing everything but the checksum field as we go —
    // then seek back and patch the real checksum in.
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut fnv = Fnv::new();
    let mut head = Vec::with_capacity(HEADER_LEN as usize);
    head.extend_from_slice(&MAGIC);
    head.extend_from_slice(&VERSION.to_le_bytes());
    head.push(width);
    head.push(0);
    head.extend_from_slice(&k.to_le_bytes());
    head.extend_from_slice(
        &u32::try_from(payloads.len())
            .expect("few sections")
            .to_le_bytes(),
    );
    fnv.update(&head);
    head.extend_from_slice(&0u64.to_le_bytes());
    w.write_all(&head)?;

    fn emit(
        w: &mut BufWriter<File>,
        fnv: &mut Fnv,
        written: &mut u64,
        bytes: &[u8],
    ) -> Result<(), TvgiError> {
        fnv.update(bytes);
        w.write_all(bytes)?;
        *written += bytes.len() as u64;
        Ok(())
    }
    let mut written = HEADER_LEN;
    for sec in &table {
        let mut entry = Vec::with_capacity(TABLE_ENTRY_LEN as usize);
        entry.extend_from_slice(&sec.id.to_le_bytes());
        entry.extend_from_slice(&sec.shard.to_le_bytes());
        entry.extend_from_slice(&sec.offset.to_le_bytes());
        entry.extend_from_slice(&sec.len.to_le_bytes());
        emit(&mut w, &mut fnv, &mut written, &entry)?;
    }
    for (sec, (_, _, bytes)) in table.iter().zip(&payloads) {
        let pad = sec.offset - written;
        emit(&mut w, &mut fnv, &mut written, &vec![0u8; pad as usize])?;
        emit(&mut w, &mut fnv, &mut written, bytes)?;
    }
    let tail_pad = file_len - written;
    emit(
        &mut w,
        &mut fnv,
        &mut written,
        &vec![0u8; tail_pad as usize],
    )?;

    let mut file = w.into_inner().map_err(|e| TvgiError::Io(e.to_string()))?;
    file.seek(SeekFrom::Start(16))?;
    file.write_all(&fnv.finish().to_le_bytes())?;
    file.sync_all()?;

    Ok(TvgiSummary {
        bytes: file_len,
        shards: k,
        width,
        num_nodes: n,
        num_edges: m,
        num_spans,
        num_events: events.len(),
    })
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Header facts readable without decoding the payload — what a caller
/// needs to pick the time domain before [`ShardedIndex::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TvgiInfo {
    /// Format version.
    pub version: u16,
    /// Stored time width in bytes (4 or 8).
    pub width: u8,
    /// Shard count.
    pub shards: u32,
}

/// Reads just the header of `path` (magic, version, width, shards),
/// validating magic/version/width.
///
/// # Errors
///
/// The same header-level [`TvgiError`] variants as
/// [`ShardedIndex::open`].
pub fn peek_tvgi(path: &Path) -> Result<TvgiInfo, TvgiError> {
    let mut f = File::open(path)?;
    let mut head = [0u8; HEADER_LEN as usize];
    f.read_exact(&mut head)?;
    parse_header(&head)
}

fn parse_header(head: &[u8; HEADER_LEN as usize]) -> Result<TvgiInfo, TvgiError> {
    if head[0..4] != MAGIC {
        return Err(TvgiError::BadMagic);
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != VERSION {
        return Err(TvgiError::UnsupportedVersion(version));
    }
    let width = head[6];
    if width != 4 && width != 8 {
        return Err(TvgiError::BadWidth {
            found: width,
            expected: 0,
        });
    }
    if head[7] != 0 {
        return Err(TvgiError::Inconsistent("reserved header byte is set"));
    }
    let shards = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    Ok(TvgiInfo {
        version,
        width,
        shards,
    })
}

/// One shard's decoded arenas.
#[derive(Debug)]
struct ShardData<T> {
    csr_off: Vec<u64>,
    csr_edges: Vec<u32>,
    span_off: Vec<u64>,
    spans: Vec<T>,
    boundary: Vec<u32>,
}

/// A `.tvgi` file opened read-only: flat typed arenas behind the
/// [`TemporalIndex`] trait.
///
/// Every accessor is a slice view into the decoded arenas —
/// [`SpanView::Flat`] over the shard's interleaved span words,
/// [`EdgeRefs::Raw`] over its CSR words — so the engine's hot loops
/// run on the file's own layout. Opened at shard count `k`, it answers
/// bit-identically to the [`TvgIndex`] it was written from (same
/// arrivals, same witness journeys, same engine stats): edge ids are
/// global, adjacency order is preserved, and arrivals use the same
/// checked constant-latency arithmetic.
#[derive(Debug)]
pub struct ShardedIndex<T> {
    horizon: T,
    num_nodes: usize,
    num_edges: usize,
    shard_ranges: Vec<u32>,
    edge_shard: Vec<u32>,
    edge_local: Vec<u32>,
    edge_dst: Vec<u32>,
    edge_mono: Vec<u32>,
    edge_lat: Vec<T>,
    event_time: Vec<T>,
    event_edge: Vec<u32>,
    names_off: Vec<u64>,
    names_bytes: Vec<u8>,
    spec: String,
    shards: Vec<ShardData<T>>,
}

/// Reads `len` bytes from `f` at `offset` and decodes them as
/// little-endian words of `width` bytes, streaming in bounded chunks.
fn read_words<T: TvgiTime>(f: &mut File, offset: u64, len: u64) -> Result<Vec<T>, TvgiError> {
    let width = u64::from(T::WIDTH);
    f.seek(SeekFrom::Start(offset))?;
    let mut out = Vec::with_capacity((len / width) as usize);
    let mut remaining = len;
    let mut buf = vec![0u8; 1 << 20];
    while remaining > 0 {
        let take = remaining.min(buf.len() as u64) as usize;
        f.read_exact(&mut buf[..take])?;
        for chunk in buf[..take].chunks_exact(width as usize) {
            let mut word = [0u8; 8];
            word[..width as usize].copy_from_slice(chunk);
            let w = u64::from_le_bytes(word);
            out.push(T::from_word(w).ok_or(TvgiError::Inconsistent("time word out of range"))?);
        }
        remaining -= take as u64;
    }
    Ok(out)
}

fn read_bytes(f: &mut File, offset: u64, len: u64) -> Result<Vec<u8>, TvgiError> {
    f.seek(SeekFrom::Start(offset))?;
    let mut out = vec![0u8; usize::try_from(len).map_err(|_| TvgiError::Truncated)?];
    f.read_exact(&mut out)?;
    Ok(out)
}

fn read_u32s(f: &mut File, offset: u64, len: u64) -> Result<Vec<u32>, TvgiError> {
    let bytes = read_bytes(f, offset, len)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn read_u64s(f: &mut File, offset: u64, len: u64) -> Result<Vec<u64>, TvgiError> {
    let bytes = read_bytes(f, offset, len)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("exact chunk")))
        .collect())
}

impl<T: TvgiTime> ShardedIndex<T> {
    /// Opens `path`, fully validating the container before decoding:
    /// magic/version/width, section-table bounds, alignment, overlap
    /// and duplicates, the whole-file checksum, then cross-section
    /// consistency. One buffered sequential pass per section; no
    /// recompilation.
    ///
    /// # Errors
    ///
    /// A [`TvgiError`] naming the first failure — a corrupt file is
    /// always a typed error, never a panic.
    pub fn open(path: &Path) -> Result<Self, TvgiError> {
        let mut f = File::open(path)?;
        let file_len = f.metadata()?.len();
        let mut head = [0u8; HEADER_LEN as usize];
        f.read_exact(&mut head)?;
        let info = parse_header(&head)?;
        if info.width != T::WIDTH {
            return Err(TvgiError::BadWidth {
                found: info.width,
                expected: T::WIDTH,
            });
        }
        let checksum = u64::from_le_bytes(head[16..24].try_into().expect("header slice"));
        let n_sections = u32::from_le_bytes(head[12..16].try_into().expect("header slice"));

        // Section table.
        let table_len = TABLE_ENTRY_LEN * u64::from(n_sections);
        if HEADER_LEN + table_len > file_len {
            return Err(TvgiError::Truncated);
        }
        let mut table = Vec::with_capacity(n_sections as usize);
        {
            let mut entry = [0u8; TABLE_ENTRY_LEN as usize];
            for _ in 0..n_sections {
                f.read_exact(&mut entry)?;
                table.push(Section {
                    id: u32::from_le_bytes(entry[0..4].try_into().expect("entry slice")),
                    shard: u32::from_le_bytes(entry[4..8].try_into().expect("entry slice")),
                    offset: u64::from_le_bytes(entry[8..16].try_into().expect("entry slice")),
                    len: u64::from_le_bytes(entry[16..24].try_into().expect("entry slice")),
                });
            }
        }

        // Structural validation before any payload decode.
        let payload_start = HEADER_LEN + table_len;
        let mut seen: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for (i, sec) in table.iter().enumerate() {
            if !(section::META..=section::BOUNDARY).contains(&sec.id) {
                return Err(TvgiError::Inconsistent("unknown section id"));
            }
            let ew = elem_width(sec.id, info.width);
            if sec.offset % 8 != 0 || sec.len % ew != 0 {
                return Err(TvgiError::Misaligned(sec.id));
            }
            if sec.offset < payload_start || sec.len > file_len || sec.offset > file_len - sec.len {
                return Err(TvgiError::SectionOutOfBounds(sec.id));
            }
            if seen.insert((sec.id, sec.shard), i).is_some() {
                return Err(TvgiError::DuplicateSection(sec.id));
            }
        }
        let mut by_offset: Vec<&Section> = table.iter().collect();
        by_offset.sort_by_key(|s| s.offset);
        for pair in by_offset.windows(2) {
            if pair[0].offset + pair[0].len > pair[1].offset {
                return Err(TvgiError::SectionOverlap(pair[0].id, pair[1].id));
            }
        }

        // Whole-file checksum: everything except the checksum field.
        let mut fnv = Fnv::new();
        fnv.update(&head[0..16]);
        f.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut buf = vec![0u8; 1 << 20];
        loop {
            let got = f.read(&mut buf)?;
            if got == 0 {
                break;
            }
            fnv.update(&buf[..got]);
        }
        if fnv.finish() != checksum {
            return Err(TvgiError::ChecksumMismatch);
        }

        // Decode.
        let global = |id: u32| -> Result<&Section, TvgiError> {
            seen.get(&(id, GLOBAL))
                .map(|&i| &table[i])
                .ok_or(TvgiError::MissingSection(id))
        };
        let meta_sec = *global(section::META)?;
        let meta = read_u64s(&mut f, meta_sec.offset, meta_sec.len)?;
        if meta.len() != META_WORDS {
            return Err(TvgiError::Inconsistent("META has the wrong word count"));
        }
        let num_nodes =
            usize::try_from(meta[0]).map_err(|_| TvgiError::Inconsistent("node count"))?;
        let num_edges =
            usize::try_from(meta[1]).map_err(|_| TvgiError::Inconsistent("edge count"))?;
        let horizon =
            T::from_word(meta[2]).ok_or(TvgiError::Inconsistent("horizon exceeds time width"))?;
        let num_events =
            usize::try_from(meta[3]).map_err(|_| TvgiError::Inconsistent("event count"))?;
        if meta[4] != u64::from(info.shards) {
            return Err(TvgiError::Inconsistent(
                "META shard count disagrees with header",
            ));
        }

        let expect_len = |sec: &Section, elems: usize, what: &'static str| {
            let ew = elem_width(sec.id, info.width);
            if sec.len == elems as u64 * ew {
                Ok(())
            } else {
                Err(TvgiError::Inconsistent(what))
            }
        };

        let sec = *global(section::SHARD_RANGES)?;
        expect_len(&sec, info.shards as usize + 1, "SHARD_RANGES length")?;
        let ranges = read_u32s(&mut f, sec.offset, sec.len)?;
        if ranges[0] != 0
            || *ranges.last().expect("nonempty") as usize != num_nodes
            || ranges.windows(2).any(|w| w[0] > w[1])
        {
            return Err(TvgiError::Inconsistent("SHARD_RANGES not a partition"));
        }

        let sec = *global(section::EDGE_SHARD)?;
        expect_len(&sec, num_edges, "EDGE_SHARD length")?;
        let edge_shard = read_u32s(&mut f, sec.offset, sec.len)?;
        let sec = *global(section::EDGE_LOCAL)?;
        expect_len(&sec, num_edges, "EDGE_LOCAL length")?;
        let edge_local = read_u32s(&mut f, sec.offset, sec.len)?;
        let sec = *global(section::EDGE_DST)?;
        expect_len(&sec, num_edges, "EDGE_DST length")?;
        let edge_dst = read_u32s(&mut f, sec.offset, sec.len)?;
        let sec = *global(section::EDGE_MONO)?;
        expect_len(&sec, num_edges, "EDGE_MONO length")?;
        let edge_mono = read_u32s(&mut f, sec.offset, sec.len)?;
        let sec = *global(section::EDGE_LAT)?;
        expect_len(&sec, num_edges, "EDGE_LAT length")?;
        let edge_lat = read_words::<T>(&mut f, sec.offset, sec.len)?;

        let sec = *global(section::EVENT_TIME)?;
        expect_len(&sec, num_events, "EVENT_TIME length")?;
        let event_time = read_words::<T>(&mut f, sec.offset, sec.len)?;
        let sec = *global(section::EVENT_EDGE)?;
        expect_len(&sec, num_events, "EVENT_EDGE length")?;
        let event_edge = read_u32s(&mut f, sec.offset, sec.len)?;

        let sec = *global(section::NAMES_OFF)?;
        expect_len(&sec, num_nodes + 1, "NAMES_OFF length")?;
        let names_off = read_u64s(&mut f, sec.offset, sec.len)?;
        let sec = *global(section::NAMES_BYTES)?;
        let names_bytes = read_bytes(&mut f, sec.offset, sec.len)?;
        if names_off[0] != 0
            || *names_off.last().expect("nonempty") != names_bytes.len() as u64
            || names_off.windows(2).any(|w| w[0] > w[1])
        {
            return Err(TvgiError::Inconsistent(
                "NAMES_OFF not monotone over NAMES_BYTES",
            ));
        }
        let sec = *global(section::SPEC)?;
        let spec = String::from_utf8(read_bytes(&mut f, sec.offset, sec.len)?)
            .map_err(|_| TvgiError::Inconsistent("SPEC is not UTF-8"))?;

        let mut shards = Vec::with_capacity(info.shards as usize);
        for s in 0..info.shards {
            let shard_sec = |id: u32| -> Result<Section, TvgiError> {
                seen.get(&(id, s))
                    .map(|&i| table[i])
                    .ok_or(TvgiError::MissingSection(id))
            };
            let nodes_here = (ranges[s as usize + 1] - ranges[s as usize]) as usize;
            let sec = shard_sec(section::CSR_OFF)?;
            expect_len(&sec, nodes_here + 1, "CSR_OFF length")?;
            let csr_off = read_u64s(&mut f, sec.offset, sec.len)?;
            let sec = shard_sec(section::CSR_EDGES)?;
            let csr_edges = read_u32s(&mut f, sec.offset, sec.len)?;
            let sec = shard_sec(section::SPAN_OFF)?;
            expect_len(&sec, csr_edges.len() + 1, "SPAN_OFF length")?;
            let span_off = read_u64s(&mut f, sec.offset, sec.len)?;
            let sec = shard_sec(section::SPANS)?;
            let spans = read_words::<T>(&mut f, sec.offset, sec.len)?;
            let sec = shard_sec(section::BOUNDARY)?;
            let boundary = read_u32s(&mut f, sec.offset, sec.len)?;

            if csr_off[0] != 0
                || *csr_off.last().expect("nonempty") != csr_edges.len() as u64
                || csr_off.windows(2).any(|w| w[0] > w[1])
            {
                return Err(TvgiError::Inconsistent("CSR_OFF not monotone"));
            }
            if span_off[0] != 0
                || *span_off.last().expect("nonempty") != (spans.len() / 2) as u64
                || spans.len() % 2 != 0
                || span_off.windows(2).any(|w| w[0] > w[1])
            {
                return Err(TvgiError::Inconsistent("SPAN_OFF not monotone over SPANS"));
            }
            if boundary.iter().any(|&b| b >= info.shards) {
                return Err(TvgiError::Inconsistent("BOUNDARY names an absent shard"));
            }
            shards.push(ShardData {
                csr_off,
                csr_edges,
                span_off,
                spans,
                boundary,
            });
        }

        // Cross-section referential checks: every directory entry must
        // land inside the arena it points into, so query paths can
        // index without bounds anxiety beyond the slice ops themselves.
        let total_csr: usize = shards.iter().map(|sh| sh.csr_edges.len()).sum();
        if total_csr != num_edges {
            return Err(TvgiError::Inconsistent(
                "shard CSRs do not cover every edge",
            ));
        }
        for e in 0..num_edges {
            let s = edge_shard[e] as usize;
            if s >= shards.len() {
                return Err(TvgiError::Inconsistent("EDGE_SHARD names an absent shard"));
            }
            if edge_local[e] as usize >= shards[s].span_off.len() - 1 {
                return Err(TvgiError::Inconsistent("EDGE_LOCAL out of range"));
            }
            if edge_dst[e] as usize >= num_nodes {
                return Err(TvgiError::Inconsistent("EDGE_DST out of range"));
            }
        }
        for sh in &shards {
            if sh.csr_edges.iter().any(|&e| e as usize >= num_edges) {
                return Err(TvgiError::Inconsistent("CSR_EDGES out of range"));
            }
        }
        if event_edge
            .iter()
            .any(|&w| (w & !EVENT_DOWN_BIT) as usize >= num_edges)
        {
            return Err(TvgiError::Inconsistent("EVENT_EDGE out of range"));
        }

        Ok(ShardedIndex {
            horizon,
            num_nodes,
            num_edges,
            shard_ranges: ranges,
            edge_shard,
            edge_local,
            edge_dst,
            edge_mono,
            edge_lat,
            event_time,
            event_edge,
            names_off,
            names_bytes,
            spec,
            shards,
        })
    }

    /// Shard count of the file.
    #[must_use]
    pub fn num_shards(&self) -> u32 {
        u32::try_from(self.shards.len()).expect("validated at open")
    }

    /// The shard owning node `n` (its contiguous node range contains
    /// `n`).
    #[must_use]
    pub fn shard_of(&self, n: NodeId) -> u32 {
        let s = self
            .shard_ranges
            .partition_point(|&r| r as usize <= n.index());
        u32::try_from(s - 1).expect("shard fits in u32")
    }

    /// The boundary summary of shard `s`: the sorted shards its edges
    /// cross into.
    #[must_use]
    pub fn boundary(&self, s: u32) -> &[u32] {
        &self.shards[s as usize].boundary
    }

    /// Shards reachable from `src`'s shard through boundary summaries
    /// (BFS; always includes the source's own shard). A conservative
    /// superset of the shards any journey from `src` can touch — the
    /// planning step before descending into per-shard stores.
    #[must_use]
    pub fn reachable_shards(&self, src: NodeId) -> Vec<u32> {
        let start = self.shard_of(src);
        let mut seen = vec![false; self.shards.len()];
        seen[start as usize] = true;
        let mut queue = VecDeque::from([start]);
        let mut out = Vec::new();
        while let Some(s) = queue.pop_front() {
            out.push(s);
            for &t in self.boundary(s) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The canonical scenario text embedded at compile time (empty if
    /// none was).
    #[must_use]
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The name of node `n` from the embedded name table.
    #[must_use]
    pub fn node_name(&self, n: NodeId) -> &str {
        let lo = usize::try_from(self.names_off[n.index()]).expect("validated at open");
        let hi = usize::try_from(self.names_off[n.index() + 1]).expect("validated at open");
        std::str::from_utf8(&self.names_bytes[lo..hi]).unwrap_or("<non-utf8>")
    }

    /// Length of the edge-event timeline (the workload-size measure
    /// scenario reports carry).
    #[must_use]
    pub fn num_edge_events(&self) -> usize {
        self.event_edge.len()
    }

    /// Materializes the edge-event timeline (allocates; for oracles
    /// and reports, not query paths).
    #[must_use]
    pub fn edge_events(&self) -> Vec<EdgeEvent<T>> {
        self.event_time
            .iter()
            .zip(&self.event_edge)
            .map(|(t, &w)| EdgeEvent {
                time: *t,
                edge: EdgeId::from_index((w & !EVENT_DOWN_BIT) as usize),
                kind: if w & EVENT_DOWN_BIT == 0 {
                    EdgeEventKind::Appear
                } else {
                    EdgeEventKind::Disappear
                },
            })
            .collect()
    }
}

impl<T: TvgiTime> TemporalIndex<T> for ShardedIndex<T> {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn horizon(&self) -> &T {
        &self.horizon
    }

    fn presence(&self, e: EdgeId) -> SpanView<'_, T> {
        let sh = &self.shards[self.edge_shard[e.index()] as usize];
        let local = self.edge_local[e.index()] as usize;
        let lo = sh.span_off[local] as usize * 2;
        let hi = sh.span_off[local + 1] as usize * 2;
        SpanView::Flat(&sh.spans[lo..hi])
    }

    fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        self.edge_mono[e.index()] != 0
    }

    fn out_edges(&self, n: NodeId) -> EdgeRefs<'_> {
        let s = self.shard_of(n);
        let sh = &self.shards[s as usize];
        let local = n.index() - self.shard_ranges[s as usize] as usize;
        let lo = sh.csr_off[local] as usize;
        let hi = sh.csr_off[local + 1] as usize;
        EdgeRefs::Raw(&sh.csr_edges[lo..hi])
    }

    fn dst(&self, e: EdgeId) -> NodeId {
        NodeId::from_index(self.edge_dst[e.index()] as usize)
    }

    fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        t.checked_add(&self.edge_lat[e.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ring_bus_tvg, scale_free_temporal};
    use crate::{Presence, Tvg, TvgBuilder};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvgi-unit-{}-{name}.tvgi", std::process::id()));
        p
    }

    fn sample() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(5);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 4,
                phases: [0u64, 1].into(),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::After(5u64), Latency::Const(2))
            .expect("valid");
        b.edge(v[0], v[2], 'c', Presence::Never, Latency::unit())
            .expect("valid");
        b.edge(v[3], v[4], 'd', Presence::At(7u64), Latency::unit())
            .expect("valid");
        b.edge(v[4], v[0], 'e', Presence::Always, Latency::Const(3))
            .expect("valid");
        b.build().expect("valid")
    }

    fn assert_equivalent(idx: &TvgIndex<'_, u64>, mapped: &ShardedIndex<u64>) {
        assert_eq!(TemporalIndex::num_nodes(idx), mapped.num_nodes());
        assert_eq!(
            TemporalIndex::num_edges(idx),
            TemporalIndex::num_edges(mapped)
        );
        assert_eq!(idx.horizon(), TemporalIndex::horizon(mapped));
        for e in (0..TemporalIndex::num_edges(idx)).map(EdgeId::from_index) {
            assert_eq!(
                idx.presence(e).view(),
                TemporalIndex::presence(mapped, e),
                "{e} spans"
            );
            assert_eq!(
                idx.arrival_is_monotone(e),
                TemporalIndex::arrival_is_monotone(mapped, e)
            );
            assert_eq!(idx.tvg().edge(e).dst(), TemporalIndex::dst(mapped, e));
            for t in [0u64, 1, 3, 7, 11] {
                assert_eq!(
                    idx.arrival(e, &t),
                    TemporalIndex::arrival(mapped, e, &t),
                    "{e}@{t}"
                );
                assert_eq!(idx.traverse(e, &t), TemporalIndex::traverse(mapped, e, &t));
            }
        }
        for n in (0..TemporalIndex::num_nodes(idx)).map(NodeId::from_index) {
            assert_eq!(
                EdgeRefs::Ids(idx.out_edges(n)),
                TemporalIndex::out_edges(mapped, n),
                "{n} adjacency"
            );
        }
        assert_eq!(idx.edge_events(), mapped.edge_events().as_slice());
    }

    #[test]
    fn round_trips_at_every_shard_count() {
        let g = sample();
        let idx = TvgIndex::compile(&g, 20);
        for shards in [1u32, 2, 3, 5, 9] {
            let path = tmp(&format!("rt{shards}"));
            let summary = write_tvgi(&idx, shards, Some("spec text"), &path).expect("write");
            assert_eq!(summary.shards, shards.min(5));
            assert_eq!(summary.width, 8);
            let mapped = ShardedIndex::<u64>::open(&path).expect("open");
            assert_eq!(mapped.num_shards(), shards.min(5));
            assert_eq!(mapped.spec(), "spec text");
            assert_eq!(
                mapped.node_name(NodeId::from_index(0)),
                g.node_name(NodeId::from_index(0))
            );
            assert_equivalent(&idx, &mapped);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn narrowed_u32_file_is_half_width() {
        let g = sample();
        let narrowed = crate::narrow_tvg(&g, 20).expect("fits");
        let idx32 = TvgIndex::compile(&narrowed, 20u32);
        let path = tmp("w32");
        let summary = write_tvgi(&idx32, 2, None, &path).expect("write");
        assert_eq!(summary.width, 4);
        // Opening under the wrong width is a typed refusal…
        assert!(matches!(
            ShardedIndex::<u64>::open(&path),
            Err(TvgiError::BadWidth {
                found: 4,
                expected: 8
            })
        ));
        // …and the right width answers like the narrowed compile.
        let mapped = ShardedIndex::<u32>::open(&path).expect("open");
        let e = EdgeId::from_index(1);
        assert_eq!(
            idx32.traverse(e, &6),
            TemporalIndex::traverse(&mapped, e, &6)
        );
        assert_eq!(peek_tvgi(&path).expect("peek").width, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_constant_latency_is_refused() {
        let mut b = TvgBuilder::<u64>::new();
        let (u, v) = (b.node("u"), b.node("v"));
        b.edge(
            u,
            v,
            'a',
            Presence::Always,
            Latency::Affine { mul: 2, add: 1 },
        )
        .expect("valid");
        let g = b.build().expect("valid");
        let idx = TvgIndex::compile(&g, 10);
        let path = tmp("nonconst");
        assert_eq!(
            write_tvgi(&idx, 1, None, &path),
            Err(TvgiError::UnsupportedLatency(EdgeId::from_index(0)))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn boundary_summaries_cover_cross_shard_edges() {
        let g = scale_free_temporal(60, 40, 7);
        let idx = TvgIndex::compile(&g, 40);
        let path = tmp("boundary");
        write_tvgi(&idx, 4, None, &path).expect("write");
        let mapped = ShardedIndex::<u64>::open(&path).expect("open");
        // Every cross-shard edge's target shard appears in its source
        // shard's boundary summary.
        for e in (0..TemporalIndex::num_edges(&mapped)).map(EdgeId::from_index) {
            let s = mapped.edge_shard[e.index()];
            let t = mapped.shard_of(TemporalIndex::dst(&mapped, e));
            if s != t {
                assert!(mapped.boundary(s).contains(&t), "{e}: {s}→{t}");
            }
        }
        // reachable_shards from any node is a superset of the shards
        // holding nodes its journeys reach (checked against adjacency
        // closure, the coarsest true bound).
        let from = NodeId::from_index(0);
        let reach = mapped.reachable_shards(from);
        assert!(reach.contains(&mapped.shard_of(from)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ring_round_trip_matches_on_u32_and_u64() {
        let g = ring_bus_tvg(12, 6, 'r');
        let idx = TvgIndex::compile(&g, 30);
        let path = tmp("ring");
        write_tvgi(&idx, 4, None, &path).expect("write");
        let mapped = ShardedIndex::<u64>::open(&path).expect("open");
        assert_equivalent(&idx, &mapped);
        std::fs::remove_file(&path).ok();
    }
}
