//! Typed identifiers for TVG nodes and edges.

use std::fmt;

/// Identifier of a node (entity) in a time-varying graph.
///
/// Displays as `v<index>`; indices are dense and assigned by the builder
/// in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a node id from a dense index.
    ///
    /// Prefer the ids returned by the builder; this is for deserializing
    /// experiment configs and tests.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a labeled edge in a time-varying graph.
///
/// Displays as `e<index>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The dense index of this edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an edge id from a dense index.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index fits in u32"))
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::from_index(3).to_string(), "v3");
        assert_eq!(EdgeId::from_index(0).to_string(), "e0");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(EdgeId::from_index(9).index(), 9);
    }
}
