//! The compiled temporal index: a [`Tvg`] materialized for fast queries.
//!
//! The schedule ASTs answer `ρ(e, t)` one instant at a time; every
//! journey search built directly on them pays a tick-by-tick scan of the
//! waiting window. A [`TvgIndex`] compiles the graph once against a
//! departure horizon:
//!
//! * per-edge presence as a sorted [`IntervalSet`] with binary-search
//!   `next_departure` and gap-skipping instant enumeration;
//! * CSR-packed out-edge adjacency (one contiguous slice per node);
//! * a global time-sorted edge-event timeline (every appearance and
//!   disappearance of every edge), the substrate for event-driven
//!   consumers and the unit benchmarks size workloads by.
//!
//! Compile once, query many: the single-source journey engine in
//! `tvg-journeys` and the protocol simulators in `tvg-dynnet` all run on
//! this index. Compilation materializes schedules up to the horizon, so
//! its cost is proportional to the number of presence intervals below
//! the horizon — suitable for simulation-scale horizons, not for the
//! astronomically distant times of the theorem constructions (those keep
//! using the closure path).

use crate::interval::{Instants, IntervalSet, SpanView};
use crate::{EdgeId, Latency, NodeId, Time, Tvg};

/// A borrowed, copyable view of one node's out-edge list — the common
/// denominator between in-memory adjacency (native [`EdgeId`] slices)
/// and the on-disk `.tvgi` CSR arenas (raw little-endian `u32` words
/// mapped straight out of the file). [`EdgeId`] is a newtype without a
/// guaranteed layout, so the raw arena cannot be reinterpreted as an id
/// slice without `unsafe` (which the workspace forbids); this two-variant
/// view gives both layouts one iteration surface instead.
#[derive(Debug, Clone, Copy)]
pub enum EdgeRefs<'a> {
    /// Borrowed edge ids (the in-memory indexes).
    Ids(&'a [EdgeId]),
    /// Raw edge-id words from a file arena.
    Raw(&'a [u32]),
}

impl EdgeRefs<'_> {
    /// Number of out-edges.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            EdgeRefs::Ids(s) => s.len(),
            EdgeRefs::Raw(r) => r.len(),
        }
    }

    /// `true` iff the node has no out-edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th out-edge (builder order).
    #[must_use]
    pub fn get(&self, i: usize) -> EdgeId {
        match self {
            EdgeRefs::Ids(s) => s[i],
            EdgeRefs::Raw(r) => EdgeId::from_index(r[i] as usize),
        }
    }

    /// Iterates the out-edges in builder order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The list materialized as owned ids (allocates; for oracles and
    /// tests, not query paths).
    #[must_use]
    pub fn to_vec(&self) -> Vec<EdgeId> {
        self.iter().collect()
    }
}

/// Logical equality regardless of layout.
impl PartialEq for EdgeRefs<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

impl Eq for EdgeRefs<'_> {}

/// Compile-time contract: a compiled index (and the graph it borrows) is
/// shareable across threads whenever its time domain is. `&TvgIndex` is
/// the cheap borrowed view the batch-query workers hold — schedules
/// carry `Send + Sync` closures by construction, so no part of the index
/// needs cloning per worker. This function is never called; it exists so
/// that losing the guarantee is a compile error here rather than a
/// confusing one in `tvg-journeys::batch`.
#[allow(dead_code)]
fn assert_index_is_shareable<T: Time + Send + Sync + 'static>() {
    fn shareable<X: Send + Sync>() {}
    shareable::<Tvg<T>>();
    shareable::<TvgIndex<'static, T>>();
}

/// The query interface shared by every compiled temporal index.
///
/// Three implementations exist: the batch-compiled [`TvgIndex`] (one
/// [`TvgIndex::compile`] against a fixed schedule), the streaming
/// [`crate::stream::LiveIndex`] (maintained event by event as a schedule
/// *arrives*), and the on-disk [`crate::tvgi::ShardedIndex`] (a `.tvgi`
/// file opened read-only, answering from flat per-shard arenas). The
/// single-source journey engine, the batch-query runtime, and the
/// protocol simulators are all generic over this trait, so a workload
/// can move between offline recompute, live ingestion, and
/// compile-once-serve-many without touching a consumer.
///
/// The accessors hand out *views* ([`SpanView`], [`EdgeRefs`]) rather
/// than concrete containers, so an implementation backed by raw file
/// arenas is as first-class as one holding native structures. Every
/// derived query (presence tests, next-departure search, window
/// enumeration, crossings) is provided on top of the required
/// primitives and behaves identically for every implementation.
pub trait TemporalIndex<T: Time> {
    /// Number of nodes the index answers for.
    fn num_nodes(&self) -> usize;

    /// Number of edges the index answers for.
    fn num_edges(&self) -> usize;

    /// The inclusive departure horizon the index covers.
    fn horizon(&self) -> &T;

    /// The compiled presence spans of `e`.
    fn presence(&self, e: EdgeId) -> SpanView<'_, T>;

    /// Whether `e`'s arrival is known to be non-decreasing in its
    /// departure (cached [`crate::Latency::arrival_is_monotone`]).
    fn arrival_is_monotone(&self, e: EdgeId) -> bool;

    /// Outgoing edges of `n` in builder order.
    fn out_edges(&self, n: NodeId) -> EdgeRefs<'_>;

    /// Destination node of `e`. Semantically just
    /// [`crate::tvg::Edge::dst`], but on the engine's hottest path —
    /// implementations back this with a flat destination array so each
    /// expanded crossing reads 4 dense bytes instead of chasing into
    /// the full AST-carrying edge record.
    fn dst(&self, e: EdgeId) -> NodeId;

    /// Arrival of a crossing of `e` known to depart at a present instant
    /// `t` (skips the presence test; `None` only on latency overflow).
    fn arrival(&self, e: EdgeId, t: &T) -> Option<T>;

    /// The earliest departure of `e` at or after `from` (within the
    /// horizon), by binary search.
    fn next_departure(&self, e: EdgeId, from: &T) -> Option<T> {
        self.presence(e).next_at_or_after(from)
    }

    /// Enumerates the departures of `e` within the inclusive window
    /// `[from, until]`, skipping absent stretches. The endpoints are
    /// borrowed for the life of the iterator — no clones on the way in.
    fn departures_within<'a>(&'a self, e: EdgeId, from: &'a T, until: &'a T) -> Instants<'a, T> {
        let until = until.min(self.horizon());
        self.presence(e).instants_within(from, until)
    }

    /// Whether `e` is present at `t` (binary search; always `false`
    /// beyond the horizon).
    fn is_present(&self, e: EdgeId, t: &T) -> bool {
        self.presence(e).contains(t)
    }

    /// Attempts to traverse `e` departing at `t` (presence by binary
    /// search, latency through [`TemporalIndex::arrival`]).
    fn traverse(&self, e: EdgeId, t: &T) -> Option<T> {
        if !self.is_present(e, t) {
            return None;
        }
        self.arrival(e, t)
    }

    /// Every admissible crossing from `node` departing within the
    /// inclusive window `[from, until]`: `(edge, depart, arrive)` triples
    /// in out-edge order, departures ascending per edge, absent
    /// stretches skipped and latency overflows dropped.
    fn crossings<'a>(
        &'a self,
        node: NodeId,
        from: &'a T,
        until: &'a T,
    ) -> impl Iterator<Item = (EdgeId, T, T)> + use<'a, Self, T>
    where
        Self: Sized,
        T: 'a,
    {
        let edges = self.out_edges(node);
        (0..edges.len()).flat_map(move |i| {
            let e = edges.get(i);
            self.departures_within(e, from, until)
                .filter_map(move |dep| {
                    let arr = self.arrival(e, &dep)?;
                    Some((e, dep, arr))
                })
        })
    }
}

/// Shared-ownership snapshots answer exactly like the index they wrap:
/// a query service can publish an `Arc<LiveIndex>` (or any other
/// implementation) and hand clones to reader threads, and every
/// consumer generic over [`TemporalIndex`] accepts the `Arc` directly.
impl<T: Time, I: TemporalIndex<T>> TemporalIndex<T> for std::sync::Arc<I> {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn horizon(&self) -> &T {
        (**self).horizon()
    }

    fn presence(&self, e: EdgeId) -> SpanView<'_, T> {
        (**self).presence(e)
    }

    fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        (**self).arrival_is_monotone(e)
    }

    fn out_edges(&self, n: NodeId) -> EdgeRefs<'_> {
        (**self).out_edges(n)
    }

    fn dst(&self, e: EdgeId) -> NodeId {
        (**self).dst(e)
    }

    fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        (**self).arrival(e, t)
    }
}

/// Whether an edge appears or disappears at an event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeEventKind {
    /// The edge becomes present at this instant.
    Appear,
    /// The edge becomes absent at this instant (exclusive span end).
    Disappear,
}

/// One entry of the global edge-event timeline.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeEvent<T> {
    /// The instant of the transition.
    pub time: T,
    /// The edge transitioning.
    pub edge: EdgeId,
    /// The direction of the transition.
    pub kind: EdgeEventKind,
}

/// A [`Tvg`] compiled against a departure horizon.
///
/// ```
/// use tvg_model::{Latency, Presence, TvgBuilder, TvgIndex};
///
/// let mut b = TvgBuilder::<u64>::new();
/// let (u, v) = (b.node("u"), b.node("v"));
/// let e = b.edge(u, v, 'a',
///     Presence::Periodic { period: 4, phases: [1u64].into() },
///     Latency::unit())?;
/// let g = b.build()?;
///
/// let idx = TvgIndex::compile(&g, 20);
/// assert_eq!(idx.next_departure(e, &2), Some(5)); // skip to the phase
/// assert_eq!(idx.traverse(e, &5), Some(6));
/// assert_eq!(idx.out_edges(u), &[e]);
/// # Ok::<(), tvg_model::TvgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TvgIndex<'g, T> {
    g: &'g Tvg<T>,
    horizon: T,
    presence: Vec<IntervalSet<T>>,
    arrival_monotone: Vec<bool>,
    csr_offsets: Vec<usize>,
    csr_edges: Vec<EdgeId>,
    dsts: Vec<NodeId>,
    const_lat: Vec<Option<T>>,
    events: Vec<EdgeEvent<T>>,
}

impl<'g, T: Time> TvgIndex<'g, T> {
    /// Compiles `g` for departures in `[0, horizon]`.
    ///
    /// Cost is linear in the total number of presence intervals below the
    /// horizon (plus a sort of the event timeline); every subsequent
    /// presence query is a binary search.
    #[must_use]
    pub fn compile(g: &'g Tvg<T>, horizon: T) -> Self {
        let presence: Vec<IntervalSet<T>> = g
            .edges()
            .map(|e| g.edge(e).presence().intervals(&horizon))
            .collect();
        let arrival_monotone: Vec<bool> = g
            .edges()
            .map(|e| g.edge(e).latency().arrival_is_monotone())
            .collect();
        let mut csr_offsets = Vec::with_capacity(g.num_nodes() + 1);
        let mut csr_edges = Vec::with_capacity(g.num_edges());
        csr_offsets.push(0);
        for n in g.nodes() {
            csr_edges.extend_from_slice(g.out_edges(n));
            csr_offsets.push(csr_edges.len());
        }
        let dsts: Vec<NodeId> = g.edges().map(|e| g.edge(e).dst()).collect();
        let const_lat: Vec<Option<T>> = g
            .edges()
            .map(|e| match g.edge(e).latency() {
                Latency::Const(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        // Two events per presence span, known up front — size the
        // timeline exactly so the push loop never reallocates.
        let total_spans: usize = presence.iter().map(IntervalSet::num_spans).sum();
        let mut events = Vec::with_capacity(2 * total_spans);
        for (i, set) in presence.iter().enumerate() {
            let edge = EdgeId::from_index(i);
            for (start, end) in set.spans() {
                events.push(EdgeEvent {
                    time: start.clone(),
                    edge,
                    kind: EdgeEventKind::Appear,
                });
                events.push(EdgeEvent {
                    time: end.clone(),
                    edge,
                    kind: EdgeEventKind::Disappear,
                });
            }
        }
        debug_assert_eq!(
            events.len(),
            events.capacity(),
            "event timeline presized exactly"
        );
        events.sort();
        TvgIndex {
            g,
            horizon,
            presence,
            arrival_monotone,
            csr_offsets,
            csr_edges,
            dsts,
            const_lat,
            events,
        }
    }

    /// The graph this index compiles.
    #[must_use]
    pub fn tvg(&self) -> &'g Tvg<T> {
        self.g
    }

    /// The inclusive departure horizon the index was compiled for.
    #[must_use]
    pub fn horizon(&self) -> &T {
        &self.horizon
    }

    /// Outgoing edges of `n` as one contiguous CSR slice (builder order,
    /// identical to [`Tvg::out_edges`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the compiled graph.
    #[must_use]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.csr_edges[self.csr_offsets[n.index()]..self.csr_offsets[n.index() + 1]]
    }

    /// The compiled presence intervals of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the compiled graph.
    #[must_use]
    pub fn presence(&self, e: EdgeId) -> &IntervalSet<T> {
        &self.presence[e.index()]
    }

    /// The earliest departure of `e` at or after `from` (within the
    /// horizon), by binary search — the compiled counterpart of
    /// `Presence::next_present_within(from, horizon)`.
    ///
    /// Convenience delegation to the [`TemporalIndex`] default (as are
    /// all the derived queries below): the trait's provided methods are
    /// the single source of truth, so a live index and a compiled one
    /// can never drift apart.
    #[must_use]
    pub fn next_departure(&self, e: EdgeId, from: &T) -> Option<T> {
        TemporalIndex::next_departure(self, e, from)
    }

    /// Enumerates the departures of `e` within the inclusive window
    /// `[from, until]`, skipping absent stretches.
    #[must_use]
    pub fn departures_within<'a>(
        &'a self,
        e: EdgeId,
        from: &'a T,
        until: &'a T,
    ) -> Instants<'a, T> {
        TemporalIndex::departures_within(self, e, from, until)
    }

    /// Whether `e` is present at `t` (binary search; agrees with
    /// [`Tvg::is_present`] for `t <= horizon`, always `false` beyond).
    #[must_use]
    pub fn is_present(&self, e: EdgeId, t: &T) -> bool {
        TemporalIndex::is_present(self, e, t)
    }

    /// Attempts to traverse `e` departing at `t`: the compiled
    /// counterpart of [`Tvg::traverse`] (presence by binary search,
    /// latency through the schedule as before).
    #[must_use]
    pub fn traverse(&self, e: EdgeId, t: &T) -> Option<T> {
        TemporalIndex::traverse(self, e, t)
    }

    /// Arrival of a crossing of `e` known to depart at a present instant
    /// `t` (skips the presence test; `None` only on latency overflow).
    #[must_use]
    pub fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        TemporalIndex::arrival(self, e, t)
    }

    /// Whether `e`'s arrival is known to be non-decreasing in its
    /// departure (cached [`crate::Latency::arrival_is_monotone`]): if so,
    /// the earliest departure in a window is also the earliest arrival.
    #[must_use]
    pub fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        TemporalIndex::arrival_is_monotone(self, e)
    }

    /// Every admissible crossing from `node` departing within the
    /// inclusive window `[from, until]`: `(edge, depart, arrive)` triples
    /// in out-edge order, departures ascending per edge, absent
    /// stretches skipped and latency overflows dropped.
    ///
    /// This is the compiled counterpart of the tick-scan `expansions`
    /// primitive and the shared inner loop of the journey searches.
    pub fn crossings<'a>(
        &'a self,
        node: NodeId,
        from: &'a T,
        until: &'a T,
    ) -> impl Iterator<Item = (EdgeId, T, T)> + 'a {
        TemporalIndex::crossings(self, node, from, until)
    }

    /// The global edge-event timeline, sorted by time: every appearance
    /// and disappearance of every edge within the compiled window.
    #[must_use]
    pub fn edge_events(&self) -> &[EdgeEvent<T>] {
        &self.events
    }

    /// Total number of edge events (twice the interval count) — the
    /// workload-size measure the index benchmarks are parameterized by.
    #[must_use]
    pub fn num_edge_events(&self) -> usize {
        self.events.len()
    }
}

impl<T: Time> TemporalIndex<T> for TvgIndex<'_, T> {
    fn num_nodes(&self) -> usize {
        self.csr_offsets.len() - 1
    }

    fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    fn horizon(&self) -> &T {
        &self.horizon
    }

    fn presence(&self, e: EdgeId) -> SpanView<'_, T> {
        self.presence[e.index()].view()
    }

    fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        self.arrival_monotone[e.index()]
    }

    fn out_edges(&self, n: NodeId) -> EdgeRefs<'_> {
        EdgeRefs::Ids(&self.csr_edges[self.csr_offsets[n.index()]..self.csr_offsets[n.index() + 1]])
    }

    fn dst(&self, e: EdgeId) -> NodeId {
        self.dsts[e.index()]
    }

    fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        match &self.const_lat[e.index()] {
            Some(c) => t.checked_add(c),
            None => self.g.edge(e).latency().arrival(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Latency, Presence, TvgBuilder};
    use std::collections::BTreeSet;

    fn sample() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 4,
                phases: BTreeSet::from([0u64, 1]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::After(5u64), Latency::Const(2))
            .expect("valid");
        b.edge(v[0], v[2], 'c', Presence::Never, Latency::unit())
            .expect("valid");
        b.build().expect("valid")
    }

    #[test]
    fn compiled_presence_agrees_with_closures() {
        let g = sample();
        let idx = TvgIndex::compile(&g, 20);
        for e in g.edges() {
            for t in 0u64..=20 {
                assert_eq!(idx.is_present(e, &t), g.is_present(e, &t), "{e} t={t}");
                assert_eq!(idx.traverse(e, &t), g.traverse(e, &t), "{e} t={t}");
            }
            assert!(!idx.is_present(e, &21), "{e} beyond horizon");
        }
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = sample();
        let idx = TvgIndex::compile(&g, 10);
        for n in g.nodes() {
            assert_eq!(idx.out_edges(n), g.out_edges(n));
        }
    }

    #[test]
    fn next_departure_skips_gaps() {
        let g = sample();
        let idx = TvgIndex::compile(&g, 20);
        let e0 = EdgeId::from_index(0);
        assert_eq!(idx.next_departure(e0, &2), Some(4));
        assert_eq!(idx.next_departure(e0, &4), Some(4));
        assert_eq!(idx.next_departure(e0, &21), None);
        let dep: Vec<u64> = idx.departures_within(e0, &2, &9).collect();
        assert_eq!(dep, vec![4, 5, 8, 9]);
        // Window clamped to the horizon.
        let dep: Vec<u64> = idx.departures_within(e0, &19, &40).collect();
        assert_eq!(dep, vec![20]);
    }

    #[test]
    fn event_timeline_is_sorted_and_complete() {
        let g = sample();
        let idx = TvgIndex::compile(&g, 11);
        let events = idx.edge_events();
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
        // e0: spans {0,1},{4,5},{8,9} → 6 events; e1: (6,12) → 2; e2: none.
        assert_eq!(idx.num_edge_events(), 8);
        let appearances: Vec<(u64, usize)> = events
            .iter()
            .filter(|ev| ev.kind == EdgeEventKind::Appear)
            .map(|ev| (ev.time, ev.edge.index()))
            .collect();
        assert_eq!(appearances, vec![(0, 0), (4, 0), (6, 1), (8, 0)]);
    }
}
