//! The time domain of a time-varying graph.
//!
//! The paper studies TVGs over a temporal domain `T` (typically `N`). This
//! workspace instantiates `T` three ways: [`u64`] for simulation-scale
//! work (journey search, periodic schedules, dynamic-network protocols),
//! [`u32`] as the compressed engine-internal domain that
//! [`crate::narrow::narrow_tvg`] lowers small-horizon workloads into
//! (halving every time key the explorer's hot loops touch), and [`Nat`]
//! for the theorem constructions, whose schedules reach times like
//! `pⁿqⁿ` that overflow any machine word. The [`Time`] trait is the
//! small arithmetic interface they share.
//!
//! All operations that can overflow a machine word are *checked*: callers
//! treat `None` as "beyond the temporal domain", which makes a `u64`
//! overflow behave like an edge that is never available rather than a
//! panic.

use std::fmt::{Debug, Display};
use std::hash::Hash;
use tvg_bigint::Nat;

/// Arithmetic interface of a TVG time domain (discrete, totally ordered,
/// starting at zero).
pub trait Time: Clone + Ord + Eq + Hash + Debug + Display {
    /// The origin of the time axis.
    fn zero() -> Self;

    /// The unit step.
    fn one() -> Self;

    /// Embeds a machine integer into the domain.
    fn from_u64(v: u64) -> Self;

    /// Converts back to a machine integer if the value fits.
    fn to_u64(&self) -> Option<u64>;

    /// `self + rhs`, or `None` on overflow of the representation.
    fn checked_add(&self, rhs: &Self) -> Option<Self>;

    /// `self - rhs`, or `None` if `rhs > self`.
    fn checked_sub(&self, rhs: &Self) -> Option<Self>;

    /// `self · k`, or `None` on overflow of the representation.
    fn checked_mul_u64(&self, k: u64) -> Option<Self>;

    /// Quotient and remainder by a machine-word modulus.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    fn div_rem_u64(&self, m: u64) -> (Self, u64);

    /// The next instant.
    fn succ(&self) -> Self;

    /// Remainder by a machine-word modulus.
    fn rem_u64(&self, m: u64) -> u64 {
        self.div_rem_u64(m).1
    }
}

impl Time for u32 {
    fn zero() -> Self {
        0
    }

    fn one() -> Self {
        1
    }

    fn from_u64(v: u64) -> Self {
        u32::try_from(v).expect("u32 time domain requires instants below 2^32")
    }

    fn to_u64(&self) -> Option<u64> {
        Some(u64::from(*self))
    }

    fn checked_add(&self, rhs: &Self) -> Option<Self> {
        u32::checked_add(*self, *rhs)
    }

    fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        u32::checked_sub(*self, *rhs)
    }

    fn checked_mul_u64(&self, k: u64) -> Option<Self> {
        u64::from(*self)
            .checked_mul(k)
            .and_then(|v| u32::try_from(v).ok())
    }

    fn div_rem_u64(&self, m: u64) -> (Self, u64) {
        assert!(m != 0, "time modulus must be nonzero");
        let v = u64::from(*self);
        (u32::try_from(v / m).expect("quotient of a u32 fits"), v % m)
    }

    fn succ(&self) -> Self {
        self + 1
    }
}

impl Time for u64 {
    fn zero() -> Self {
        0
    }

    fn one() -> Self {
        1
    }

    fn from_u64(v: u64) -> Self {
        v
    }

    fn to_u64(&self) -> Option<u64> {
        Some(*self)
    }

    fn checked_add(&self, rhs: &Self) -> Option<Self> {
        u64::checked_add(*self, *rhs)
    }

    fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        u64::checked_sub(*self, *rhs)
    }

    fn checked_mul_u64(&self, k: u64) -> Option<Self> {
        u64::checked_mul(*self, k)
    }

    fn div_rem_u64(&self, m: u64) -> (Self, u64) {
        assert!(m != 0, "time modulus must be nonzero");
        (self / m, self % m)
    }

    fn succ(&self) -> Self {
        self + 1
    }
}

impl Time for Nat {
    fn zero() -> Self {
        Nat::zero()
    }

    fn one() -> Self {
        Nat::one()
    }

    fn from_u64(v: u64) -> Self {
        Nat::from(v)
    }

    fn to_u64(&self) -> Option<u64> {
        Nat::to_u64(self)
    }

    fn checked_add(&self, rhs: &Self) -> Option<Self> {
        Some(self + rhs)
    }

    fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        Nat::checked_sub(self, rhs)
    }

    fn checked_mul_u64(&self, k: u64) -> Option<Self> {
        Some(self * Nat::from(k))
    }

    fn div_rem_u64(&self, m: u64) -> (Self, u64) {
        assert!(m != 0, "time modulus must be nonzero");
        if let Ok(small) = u32::try_from(m) {
            let (q, r) = self.div_rem_small(small);
            (q, u64::from(r))
        } else {
            let (q, r) = self.div_rem(&Nat::from(m));
            (q, r.to_u64().expect("remainder below a u64 modulus fits"))
        }
    }

    fn succ(&self) -> Self {
        Nat::succ(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<T: Time>() {
        assert_eq!(T::zero().succ(), T::one());
        assert_eq!(T::from_u64(0), T::zero());
        assert_eq!(T::from_u64(1), T::one());
        assert_eq!(T::from_u64(41).succ(), T::from_u64(42));
        assert_eq!(
            T::from_u64(6).checked_add(&T::from_u64(7)),
            Some(T::from_u64(13))
        );
        assert_eq!(T::from_u64(6).checked_sub(&T::from_u64(7)), None);
        assert_eq!(T::from_u64(7).checked_sub(&T::from_u64(6)), Some(T::one()));
        assert_eq!(T::from_u64(6).checked_mul_u64(7), Some(T::from_u64(42)));
        assert_eq!(T::from_u64(17).div_rem_u64(5), (T::from_u64(3), 2));
        assert_eq!(T::from_u64(17).rem_u64(5), 2);
        assert!(T::from_u64(3) < T::from_u64(4));
    }

    #[test]
    fn u32_satisfies_laws() {
        laws::<u32>();
    }

    #[test]
    fn u64_satisfies_laws() {
        laws::<u64>();
    }

    #[test]
    fn u32_overflow_is_none() {
        assert_eq!(Time::checked_add(&u32::MAX, &1), None);
        assert_eq!(u32::MAX.checked_mul_u64(2), None);
        // The product can exceed u64 range too; still checked.
        assert_eq!(2u32.checked_mul_u64(u64::MAX), None);
        assert_eq!(0u32.checked_mul_u64(u64::MAX), Some(0));
    }

    #[test]
    fn nat_satisfies_laws() {
        laws::<Nat>();
    }

    #[test]
    fn u64_overflow_is_none() {
        assert_eq!(Time::checked_add(&u64::MAX, &1), None);
        assert_eq!(u64::MAX.checked_mul_u64(2), None);
    }

    #[test]
    fn nat_never_overflows() {
        let big = Nat::from(u64::MAX);
        assert!(Time::checked_add(&big, &big).is_some());
        assert!(big.checked_mul_u64(u64::MAX).is_some());
    }

    #[test]
    fn nat_div_rem_with_large_modulus() {
        let t = Nat::from(u128::from(u64::MAX) * 3 + 7);
        let (q, r) = Time::div_rem_u64(&t, u64::MAX);
        assert_eq!(q, Nat::from(3u64));
        assert_eq!(r, 7);
    }

    #[test]
    #[should_panic(expected = "modulus must be nonzero")]
    fn zero_modulus_panics() {
        let _ = 5u64.div_rem_u64(0);
    }
}
