//! The time-varying graph type and its builder.
//!
//! `G = (V, E, T, ρ, ζ)` per the paper: a finite set of nodes, a finite
//! set of directed labeled edges, and per-edge presence/latency schedules.
//! Undirected systems are modeled by adding both orientations.

use crate::graph::Digraph;
use crate::{EdgeId, Latency, NodeId, Presence, Time};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use tvg_langs::Letter;

/// The node name table of a graph, shared structurally.
///
/// Names are assigned at build time and immutable afterwards; the table
/// is reference-counted so cloning a graph (or deriving one, as
/// [`Tvg::dilate`] does) shares one allocation instead of copying every
/// `String` — which also keeps per-worker views in the batch-query
/// runtime allocation-free.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Arc<Vec<String>>,
}

impl NameTable {
    /// Number of named nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff no node has been named yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The display name of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for this table.
    #[must_use]
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// Appends a name, returning the id it names. Only the builder
    /// mutates the table; once a graph is built the `Arc` is shared and
    /// further pushes would copy-on-write, which never happens in
    /// practice (builders are consumed by [`TvgBuilder::build`]).
    fn push(&mut self, name: String) -> NodeId {
        let names = Arc::make_mut(&mut self.names);
        names.push(name);
        NodeId::from_index(names.len() - 1)
    }
}

/// A labeled edge with its schedules.
#[derive(Debug, Clone)]
pub struct Edge<T> {
    src: NodeId,
    dst: NodeId,
    label: Letter,
    presence: Presence<T>,
    latency: Latency<T>,
}

impl<T: Time> Edge<T> {
    /// Source node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Edge label (the letter a journey spells when crossing it).
    #[must_use]
    pub fn label(&self) -> Letter {
        self.label
    }

    /// The presence schedule `ρ(e, ·)`.
    #[must_use]
    pub fn presence(&self) -> &Presence<T> {
        &self.presence
    }

    /// The latency schedule `ζ(e, ·)`.
    #[must_use]
    pub fn latency(&self) -> &Latency<T> {
        &self.latency
    }
}

/// Errors from building a [`Tvg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvgError {
    /// An edge references a node id from a different builder.
    UnknownNode(NodeId),
    /// An edge label is not a printable ASCII character.
    BadLabel(char),
    /// The graph has no nodes.
    NoNodes,
}

impl fmt::Display for TvgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TvgError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            TvgError::BadLabel(c) => write!(f, "edge label {c:?} is not printable ascii"),
            TvgError::NoNodes => write!(f, "time-varying graph must have at least one node"),
        }
    }
}

impl Error for TvgError {}

/// A time-varying graph over time domain `T`.
///
/// Construct with [`TvgBuilder`]:
///
/// ```
/// use tvg_model::{Latency, Presence, TvgBuilder};
///
/// let mut b = TvgBuilder::<u64>::new();
/// let v0 = b.node("v0");
/// let v1 = b.node("v1");
/// b.edge(v0, v1, 'a', Presence::Periodic { period: 2, phases: [0u64].into() }, Latency::unit())?;
/// let g = b.build()?;
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.num_edges(), 1);
/// # Ok::<(), tvg_model::TvgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tvg<T> {
    names: NameTable,
    edges: Vec<Edge<T>>,
    /// Outgoing edge ids per node.
    out: Vec<Vec<EdgeId>>,
}

impl<T: Time> Tvg<T> {
    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId::from_index)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// The display name given to `n` at build time.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for this graph.
    #[must_use]
    pub fn node_name(&self, n: NodeId) -> &str {
        self.names.name(n)
    }

    /// The shared node name table (cheap to clone: reference-counted).
    #[must_use]
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Full edge record for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for this graph.
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> &Edge<T> {
        &self.edges[e.index()]
    }

    /// Outgoing edges of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for this graph.
    #[must_use]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out[n.index()]
    }

    /// Whether edge `e` is present at instant `t`.
    #[must_use]
    pub fn is_present(&self, e: EdgeId, t: &T) -> bool {
        self.edge(e).presence.is_present(t)
    }

    /// Attempts to traverse `e` departing at `t`: returns the arrival time
    /// if the edge is present and the latency does not overflow.
    ///
    /// This is the single primitive journey semantics are built from.
    #[must_use]
    pub fn traverse(&self, e: EdgeId, t: &T) -> Option<T> {
        let edge = self.edge(e);
        if !edge.presence.is_present(t) {
            return None;
        }
        edge.latency.arrival(t)
    }

    /// The snapshot (footprint at one instant): edges present at `t`.
    #[must_use]
    pub fn snapshot(&self, t: &T) -> Vec<EdgeId> {
        self.edges().filter(|&e| self.is_present(e, t)).collect()
    }

    /// The snapshot as a static digraph on the same node set.
    #[must_use]
    pub fn snapshot_graph(&self, t: &T) -> Digraph {
        let mut g = Digraph::new(self.num_nodes());
        for e in self.snapshot(t) {
            let edge = self.edge(e);
            g.add_edge(edge.src.index(), edge.dst.index());
        }
        g
    }

    /// The underlying graph (footprint over all time): every edge,
    /// regardless of schedule.
    #[must_use]
    pub fn underlying_graph(&self) -> Digraph {
        let mut g = Digraph::new(self.num_nodes());
        for edge in &self.edges {
            g.add_edge(edge.src.index(), edge.dst.index());
        }
        g
    }

    /// An empty graph: no nodes, no edges. Only the streaming layer
    /// starts here ([`TvgBuilder::build`] rejects empty node sets because
    /// a *finished* graph without nodes is useless; a stream grows its
    /// node set event by event).
    pub(crate) fn empty() -> Self {
        Tvg {
            names: NameTable::default(),
            edges: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Appends a node (streaming growth path).
    pub(crate) fn push_node(&mut self, name: &str) -> NodeId {
        let id = self.names.push(name.to_string());
        self.out.push(Vec::new());
        id
    }

    /// Appends an edge with pre-validated endpoints (streaming growth
    /// path; the stream layer rejects unknown nodes with a typed error
    /// before calling this).
    pub(crate) fn push_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: Letter,
        presence: Presence<T>,
        latency: Latency<T>,
    ) -> EdgeId {
        debug_assert!(src.index() < self.names.len() && dst.index() < self.names.len());
        self.edges.push(Edge {
            src,
            dst,
            label,
            presence,
            latency,
        });
        let e = EdgeId::from_index(self.edges.len() - 1);
        self.out[src.index()].push(e);
        e
    }

    /// Time-dilates every schedule by `d + 1` (Theorem 2.3).
    ///
    /// Presences move to multiples of `d+1`; latencies scale by `d+1`.
    /// Departing at `(d+1)·t` arrives at `(d+1)·arrival(t)`, and no edge
    /// is present at a non-multiple — so a journey that waits at most `d`
    /// in the dilated graph can only do what a direct journey does in the
    /// original. See `tvg_expressivity::dilation` for the theorem harness.
    ///
    /// # Panics
    ///
    /// Panics if `d + 1` overflows (i.e. `d == u64::MAX`).
    #[must_use]
    pub fn dilate(&self, d: u64) -> Tvg<T> {
        let factor = d.checked_add(1).expect("dilation bound too large");
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                src: e.src,
                dst: e.dst,
                label: e.label,
                presence: e.presence.clone().dilate(factor),
                latency: e.latency.clone().dilate(factor),
            })
            .collect();
        Tvg {
            names: self.names.clone(),
            edges,
            out: self.out.clone(),
        }
    }
}

/// Incremental builder for [`Tvg`].
#[derive(Debug, Clone)]
pub struct TvgBuilder<T> {
    names: NameTable,
    edges: Vec<Edge<T>>,
}

impl<T: Time> TvgBuilder<T> {
    /// Starts an empty builder.
    #[must_use]
    pub fn new() -> Self {
        TvgBuilder {
            names: NameTable::default(),
            edges: Vec::new(),
        }
    }

    /// Adds a node with a display name, returning its id.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.names.push(name.to_string())
    }

    /// Adds `count` nodes named `v0, v1, …`, returning their ids.
    pub fn nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count)
            .map(|_| {
                let i = self.names.len();
                self.node(&format!("v{i}"))
            })
            .collect()
    }

    /// Adds a directed labeled edge with its schedules, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`TvgError::UnknownNode`] if either endpoint was not created
    /// by this builder.
    pub fn edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: char,
        presence: Presence<T>,
        latency: Latency<T>,
    ) -> Result<EdgeId, TvgError> {
        for n in [src, dst] {
            if n.index() >= self.names.len() {
                return Err(TvgError::UnknownNode(n));
            }
        }
        let label = Letter::new(label).map_err(|_| TvgError::BadLabel(label))?;
        self.edges.push(Edge {
            src,
            dst,
            label,
            presence,
            latency,
        });
        Ok(EdgeId::from_index(self.edges.len() - 1))
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`TvgError::NoNodes`] for an empty node set.
    pub fn build(self) -> Result<Tvg<T>, TvgError> {
        if self.names.is_empty() {
            return Err(TvgError::NoNodes);
        }
        let mut out = vec![Vec::new(); self.names.len()];
        for (i, e) in self.edges.iter().enumerate() {
            out[e.src.index()].push(EdgeId::from_index(i));
        }
        Ok(Tvg {
            names: self.names,
            edges: self.edges,
            out,
        })
    }
}

impl<T: Time> Default for TvgBuilder<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn simple() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v0 = b.node("v0");
        let v1 = b.node("v1");
        let v2 = b.node("v2");
        b.edge(
            v0,
            v1,
            'a',
            Presence::Periodic {
                period: 2,
                phases: BTreeSet::from([0u64]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(v1, v2, 'b', Presence::After(3u64), Latency::Const(2))
            .expect("valid");
        b.build().expect("valid")
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let g = simple();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.node_name(NodeId::from_index(1)), "v1");
        let e0 = EdgeId::from_index(0);
        assert_eq!(g.edge(e0).label().as_char(), 'a');
        assert_eq!(g.edge(e0).src(), NodeId::from_index(0));
        assert_eq!(g.edge(e0).dst(), NodeId::from_index(1));
    }

    #[test]
    fn traverse_respects_presence_and_latency() {
        let g = simple();
        let e0 = EdgeId::from_index(0);
        let e1 = EdgeId::from_index(1);
        assert_eq!(g.traverse(e0, &4), Some(5)); // present (4 % 2 == 0), ζ=1
        assert_eq!(g.traverse(e0, &5), None); // absent
        assert_eq!(g.traverse(e1, &4), Some(6)); // present (4 > 3), ζ=2
        assert_eq!(g.traverse(e1, &3), None); // absent (strict)
    }

    #[test]
    fn snapshots_select_present_edges() {
        let g = simple();
        assert_eq!(g.snapshot(&0), vec![EdgeId::from_index(0)]);
        assert_eq!(
            g.snapshot(&4),
            vec![EdgeId::from_index(0), EdgeId::from_index(1)]
        );
        assert_eq!(g.snapshot(&5), vec![EdgeId::from_index(1)]);
        let snap = g.snapshot_graph(&4);
        assert!(snap.has_edge(0, 1));
        assert!(snap.has_edge(1, 2));
        assert!(!snap.has_edge(0, 2));
    }

    #[test]
    fn underlying_graph_ignores_schedules() {
        let g = simple();
        let u = g.underlying_graph();
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(1, 2));
    }

    #[test]
    fn out_edges_adjacency() {
        let g = simple();
        assert_eq!(g.out_edges(NodeId::from_index(0)), &[EdgeId::from_index(0)]);
        assert_eq!(g.out_edges(NodeId::from_index(2)), &[]);
    }

    #[test]
    fn build_errors() {
        let b = TvgBuilder::<u64>::new();
        assert_eq!(b.build().unwrap_err(), TvgError::NoNodes);

        let mut b = TvgBuilder::<u64>::new();
        let v0 = b.node("v0");
        let ghost = NodeId::from_index(7);
        assert_eq!(
            b.edge(v0, ghost, 'a', Presence::Always, Latency::unit())
                .unwrap_err(),
            TvgError::UnknownNode(ghost)
        );
    }

    #[test]
    fn dilation_moves_schedule_onto_multiples() {
        let g = simple();
        let d = 3u64; // factor 4
        let dilated = g.dilate(d);
        let e0 = EdgeId::from_index(0);
        // Original: present at even t with arrival t+1.
        // Dilated: present at 4·(even t), arrival 4·(t+1).
        assert_eq!(dilated.traverse(e0, &8), Some(12)); // 8 = 4·2 → 4·3
        assert_eq!(dilated.traverse(e0, &4), None); // 4 = 4·1, 1 is odd
        for t in [1u64, 2, 3, 5, 6, 7, 9, 10, 11] {
            assert_eq!(dilated.traverse(e0, &t), None, "t={t} not a multiple of 4");
        }
    }

    #[test]
    fn name_table_is_shared_not_copied() {
        let g = simple();
        // Deriving and cloning graphs must share the one name allocation
        // (batch workers hold views of the same graph; per-worker name
        // copies would defeat the zero-clone design).
        let dilated = g.dilate(3);
        assert!(Arc::ptr_eq(&g.names.names, &dilated.names.names));
        let cloned = g.clone();
        assert!(Arc::ptr_eq(&g.names.names, &cloned.names.names));
        assert_eq!(g.names().len(), 3);
        assert_eq!(g.names().name(NodeId::from_index(2)), "v2");
        assert!(!g.names().is_empty());
    }

    #[test]
    fn nodes_helper_names_sequentially() {
        let mut b = TvgBuilder::<u64>::new();
        let ids = b.nodes(3);
        let g = b.build().expect("valid");
        assert_eq!(ids.len(), 3);
        assert_eq!(g.node_name(ids[2]), "v2");
    }
}
