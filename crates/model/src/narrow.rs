//! Timeline compression: lowering a `u64`-timed TVG into the `u32`
//! domain when the horizon allows.
//!
//! The journey engine's hot structures — heap entries, flat settle
//! frontiers, label arenas — all carry time instants by value, so a
//! simulation whose horizon fits a `u32` pays double the cache traffic
//! it needs to by running in `u64`. [`narrow_tvg`] rebuilds a graph
//! over `u32` instants, *proving* as it goes that the translation is
//! exact:
//!
//! * every presence variant maps exactly on the whole `u32` domain
//!   (constants beyond `u32::MAX` collapse to `Never`/`Always` as their
//!   comparisons dictate; `Custom` predicates are wrapped to evaluate
//!   the original closure at the widened instant);
//! * a latency is accepted only when its arrival provably fits: for
//!   `Const`/`Affine` the maximal arrival from any departure `<=
//!   horizon` is checked against `u32::MAX` in `u64` arithmetic.
//!   `Custom`/`Dilated` latencies are refused ([`NarrowError`]) — the
//!   caller falls back to the `u64` path, transparently.
//!
//! Refusal is a typed error, never a silent truncation: a caller that
//! cannot narrow keeps the exact `u64` semantics it had. The scenario
//! runtime applies [`narrow_tvg`] to every batch plan and falls back on
//! any error, so the compressed path needs no spec opt-in and can never
//! change a report.

use crate::{EdgeId, Latency, Presence, Tvg, TvgBuilder};

/// Why a TVG could not be lowered into the `u32` time domain. Every
/// variant means "keep the `u64` path", not "approximate".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NarrowError {
    /// The horizon itself does not fit the compressed domain (the
    /// topmost instant is reserved so the exclusive span end
    /// `horizon + 1` stays representable).
    HorizonExceedsU32 {
        /// The offending horizon.
        horizon: u64,
    },
    /// An edge's latency shape (`Custom`, `Dilated`) admits no static
    /// arrival bound, so exactness cannot be proven.
    UnprovableLatency {
        /// The edge carrying the opaque latency.
        edge: EdgeId,
    },
    /// An edge's worst-case arrival `depart + ζ(depart)` over departures
    /// `<= horizon` exceeds `u32::MAX`, so arrivals would overflow the
    /// compressed domain.
    ArrivalOverflow {
        /// The edge whose arrival bound fails.
        edge: EdgeId,
    },
}

impl std::fmt::Display for NarrowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NarrowError::HorizonExceedsU32 { horizon } => {
                write!(f, "horizon {horizon} exceeds the u32 time domain")
            }
            NarrowError::UnprovableLatency { edge } => {
                write!(f, "latency of {edge} has no provable u32 arrival bound")
            }
            NarrowError::ArrivalOverflow { edge } => {
                write!(f, "worst-case arrival of {edge} overflows u32")
            }
        }
    }
}

impl std::error::Error for NarrowError {}

/// The largest horizon [`narrow_tvg`] accepts: one below `u32::MAX`, so
/// the compiled window's exclusive end `horizon + 1` is representable
/// and interval compilation never takes the top-of-domain clamp path
/// (which would diverge from the `u64` compilation it must mirror).
pub const MAX_NARROW_HORIZON: u64 = (u32::MAX - 1) as u64;

/// Rebuilds `g` over `u32` instants, exact for every departure in
/// `[0, horizon]`, or reports why it cannot ([`NarrowError`]).
///
/// On success the narrowed graph answers presence identically on the
/// whole `u32` domain and latency/arrival identically for departures up
/// to `horizon` — which is all a compiled index or journey engine ever
/// queries. Node ids, edge ids, names, and labels are preserved, so
/// results (arrivals, witness journeys, work counters) translate back
/// by widening alone.
///
/// ```
/// use tvg_model::{narrow_tvg, Latency, Presence, TvgBuilder};
///
/// let mut b = TvgBuilder::<u64>::new();
/// let (u, v) = (b.node("u"), b.node("v"));
/// b.edge(u, v, 'a', Presence::At(3), Latency::unit())?;
/// let g = b.build()?;
///
/// let narrow = narrow_tvg(&g, 100).expect("fits u32");
/// assert!(narrow.is_present(tvg_model::EdgeId::from_index(0), &3u32));
/// # Ok::<(), tvg_model::TvgError>(())
/// ```
pub fn narrow_tvg(g: &Tvg<u64>, horizon: u64) -> Result<Tvg<u32>, NarrowError> {
    if horizon > MAX_NARROW_HORIZON {
        return Err(NarrowError::HorizonExceedsU32 { horizon });
    }
    let mut b = TvgBuilder::<u32>::new();
    for n in g.nodes() {
        b.node(g.node_name(n));
    }
    for e in g.edges() {
        let edge = g.edge(e);
        let presence = narrow_presence(edge.presence());
        let latency = narrow_latency(edge.latency(), horizon, e)?;
        b.edge(
            edge.src(),
            edge.dst(),
            edge.label().as_char(),
            presence,
            latency,
        )
        .expect("narrowing preserves builder invariants");
    }
    Ok(b.build().expect("narrowing preserves builder invariants"))
}

/// Maps a presence AST into the `u32` domain, exactly: for every `t:
/// u32`, the narrowed schedule is present at `t` iff the original is
/// present at `u64::from(t)`. Constants beyond `u32::MAX` resolve the
/// comparison they encode (`At`/`After` → never, `Before` → always,
/// windows clamp).
fn narrow_presence(p: &Presence<u64>) -> Presence<u32> {
    const TOP: u64 = u32::MAX as u64;
    match p {
        Presence::Always => Presence::Always,
        Presence::Never => Presence::Never,
        Presence::At(c) => match u32::try_from(*c) {
            Ok(c) => Presence::At(c),
            Err(_) => Presence::Never,
        },
        Presence::After(c) => {
            if *c >= TOP {
                Presence::Never
            } else {
                Presence::After(u32::try_from(*c).expect("below u32::MAX"))
            }
        }
        Presence::Before(c) => {
            if *c > TOP {
                Presence::Always
            } else {
                Presence::Before(u32::try_from(*c).expect("fits u32"))
            }
        }
        Presence::Window { from, until } => match u32::try_from(*from) {
            Ok(from) => Presence::Window {
                from,
                until: u32::try_from(*until).unwrap_or(u32::MAX),
            },
            Err(_) => Presence::Never,
        },
        Presence::FiniteSet(set) => {
            Presence::FiniteSet(set.iter().filter_map(|t| u32::try_from(*t).ok()).collect())
        }
        Presence::Periodic { period, phases } => Presence::Periodic {
            period: *period,
            phases: phases.clone(),
        },
        Presence::PqPower { p, q } => Presence::PqPower { p: *p, q: *q },
        Presence::Not(inner) => Presence::Not(Box::new(narrow_presence(inner))),
        Presence::And(a, b) => {
            Presence::And(Box::new(narrow_presence(a)), Box::new(narrow_presence(b)))
        }
        Presence::Or(a, b) => {
            Presence::Or(Box::new(narrow_presence(a)), Box::new(narrow_presence(b)))
        }
        Presence::Dilated { factor, inner } => Presence::Dilated {
            factor: *factor,
            inner: Box::new(narrow_presence(inner)),
        },
        Presence::Custom(f) => {
            let f = f.clone();
            Presence::from_fn(move |t: &u32| f(&u64::from(*t)))
        }
    }
}

/// Maps a latency into the `u32` domain when its worst-case arrival
/// over departures `<= horizon` provably fits; refuses shapes without a
/// static bound. Monotonicity is preserved by construction (`Const` →
/// `Const`, `Affine` → `Affine`), so the narrowed index takes the same
/// fast paths.
fn narrow_latency(l: &Latency<u64>, horizon: u64, e: EdgeId) -> Result<Latency<u32>, NarrowError> {
    const TOP: u64 = u32::MAX as u64;
    match l {
        Latency::Const(c) => {
            let max_arrival = horizon
                .checked_add(*c)
                .ok_or(NarrowError::ArrivalOverflow { edge: e })?;
            if max_arrival > TOP {
                return Err(NarrowError::ArrivalOverflow { edge: e });
            }
            Ok(Latency::Const(
                u32::try_from(*c).expect("bounded by max arrival"),
            ))
        }
        Latency::Affine { mul, add } => {
            // Max arrival: horizon + mul·horizon + add, all checked.
            let max_arrival = horizon
                .checked_mul(*mul)
                .and_then(|v| v.checked_add(horizon))
                .and_then(|v| v.checked_add(*add))
                .ok_or(NarrowError::ArrivalOverflow { edge: e })?;
            if max_arrival > TOP {
                return Err(NarrowError::ArrivalOverflow { edge: e });
            }
            Ok(Latency::Affine {
                mul: *mul,
                add: u32::try_from(*add).expect("bounded by max arrival"),
            })
        }
        Latency::Dilated { .. } | Latency::Custom(_) => {
            Err(NarrowError::UnprovableLatency { edge: e })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, TvgIndex};
    use std::collections::BTreeSet;

    fn e(i: usize) -> EdgeId {
        EdgeId::from_index(i)
    }

    fn rich_graph() -> Tvg<u64> {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(4);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 7,
                phases: BTreeSet::from([0, 2, 3]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(
            v[1],
            v[2],
            'b',
            Presence::Or(
                Box::new(Presence::Window { from: 3, until: 9 }),
                Box::new(Presence::At(40)),
            ),
            Latency::Affine { mul: 2, add: 1 },
        )
        .expect("valid");
        b.edge(
            v[2],
            v[3],
            'c',
            Presence::from_fn(|t: &u64| t.is_power_of_two()),
            Latency::Const(3),
        )
        .expect("valid");
        b.edge(
            v[3],
            v[0],
            'd',
            Presence::Not(Box::new(Presence::Before(5))),
            Latency::Const(0),
        )
        .expect("valid");
        b.build().expect("valid")
    }

    #[test]
    fn narrowed_graph_agrees_with_original() {
        let g = rich_graph();
        let horizon = 64u64;
        let narrow = narrow_tvg(&g, horizon).expect("narrows");
        assert_eq!(narrow.num_nodes(), g.num_nodes());
        assert_eq!(narrow.num_edges(), g.num_edges());
        for i in 0..g.num_edges() {
            for t in 0..=horizon {
                let t32 = u32::try_from(t).expect("small");
                assert_eq!(
                    narrow.is_present(e(i), &t32),
                    g.is_present(e(i), &t),
                    "presence of e{i} at {t}"
                );
                assert_eq!(
                    narrow.traverse(e(i), &t32).map(u64::from),
                    g.traverse(e(i), &t),
                    "traverse of e{i} at {t}"
                );
            }
        }
        assert_eq!(
            narrow.node_name(NodeId::from_index(2)),
            g.node_name(NodeId::from_index(2))
        );
    }

    #[test]
    fn narrowed_index_compiles_identically() {
        let g = rich_graph();
        let horizon = 64u64;
        let narrow = narrow_tvg(&g, horizon).expect("narrows");
        let wide_idx = TvgIndex::compile(&g, horizon);
        let narrow_idx = TvgIndex::compile(&narrow, 64u32);
        for i in 0..g.num_edges() {
            let wide: Vec<u64> = wide_idx.departures_within(e(i), &0, &horizon).collect();
            let nar: Vec<u64> = narrow_idx
                .departures_within(e(i), &0u32, &64u32)
                .map(u64::from)
                .collect();
            assert_eq!(wide, nar, "departures of e{i}");
            assert_eq!(
                wide_idx.arrival_is_monotone(e(i)),
                narrow_idx.arrival_is_monotone(e(i)),
                "monotonicity of e{i}"
            );
        }
        assert_eq!(wide_idx.num_edge_events(), narrow_idx.num_edge_events());
    }

    #[test]
    fn out_of_range_constants_resolve_exactly() {
        let top = u64::from(u32::MAX);
        let cases: Vec<(Presence<u64>, &str)> = vec![
            (Presence::At(top + 5), "at beyond"),
            (Presence::After(top), "after at top"),
            (Presence::After(top + 1), "after beyond"),
            (Presence::Before(top + 9), "before beyond"),
            (
                Presence::Window {
                    from: top + 1,
                    until: top + 9,
                },
                "window beyond",
            ),
            (
                Presence::Window {
                    from: 10,
                    until: top + 9,
                },
                "window clamped",
            ),
            (
                Presence::FiniteSet(BTreeSet::from([1, top + 2])),
                "finite set filtered",
            ),
        ];
        for (p, what) in cases {
            let narrowed = narrow_presence(&p);
            for t in [0u32, 1, 9, 10, 11, u32::MAX - 1, u32::MAX] {
                assert_eq!(
                    narrowed.is_present(&t),
                    p.is_present(&u64::from(t)),
                    "{what} at {t}"
                );
            }
        }
    }

    #[test]
    fn horizon_beyond_u32_is_a_typed_error() {
        let g = rich_graph();
        assert_eq!(
            narrow_tvg(&g, u64::from(u32::MAX)).err(),
            Some(NarrowError::HorizonExceedsU32 {
                horizon: u64::from(u32::MAX)
            })
        );
        assert_eq!(
            narrow_tvg(&g, u64::MAX).err(),
            Some(NarrowError::HorizonExceedsU32 { horizon: u64::MAX })
        );
        // At the very top of the admissible range, a zero-latency graph
        // still narrows; rich_graph's affine edge would (correctly) be
        // refused for arrival overflow at this horizon.
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(v[0], v[1], 'a', Presence::Always, Latency::Const(0))
            .expect("valid");
        let flat = b.build().expect("valid");
        assert!(narrow_tvg(&flat, MAX_NARROW_HORIZON).is_ok());
    }

    #[test]
    fn unprovable_latencies_are_refused() {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Always,
            Latency::from_fn(|_| 1u64),
        )
        .expect("valid");
        let g = b.build().expect("valid");
        assert_eq!(
            narrow_tvg(&g, 100).err(),
            Some(NarrowError::UnprovableLatency { edge: e(0) })
        );

        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Always,
            Latency::Const(2).dilate(4),
        )
        .expect("valid");
        let g = b.build().expect("valid");
        assert_eq!(
            narrow_tvg(&g, 100).err(),
            Some(NarrowError::UnprovableLatency { edge: e(0) })
        );
    }

    #[test]
    fn overflowing_arrivals_are_refused() {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Always,
            Latency::Const(u64::from(u32::MAX)),
        )
        .expect("valid");
        b.edge(
            v[0],
            v[1],
            'b',
            Presence::Always,
            Latency::Affine {
                mul: u64::MAX,
                add: 0,
            },
        )
        .expect("valid");
        let g = b.build().expect("valid");
        assert_eq!(
            narrow_tvg(&g, 100).err(),
            Some(NarrowError::ArrivalOverflow { edge: e(0) })
        );
        // A tiny horizon makes the constant fit; the affine edge still fails.
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'b',
            Presence::Always,
            Latency::Affine {
                mul: u64::MAX,
                add: 0,
            },
        )
        .expect("valid");
        let g = b.build().expect("valid");
        assert_eq!(
            narrow_tvg(&g, 2).err(),
            Some(NarrowError::ArrivalOverflow { edge: e(0) })
        );
    }

    #[test]
    fn errors_display_the_reason() {
        let err = NarrowError::HorizonExceedsU32 { horizon: u64::MAX };
        assert!(err.to_string().contains("u32"));
        let err = NarrowError::UnprovableLatency { edge: e(3) };
        assert!(err.to_string().contains("e3"));
        let err = NarrowError::ArrivalOverflow { edge: e(1) };
        assert!(err.to_string().contains("e1"));
    }
}
