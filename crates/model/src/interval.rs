//! Sorted half-open interval sets over a time domain.
//!
//! An [`IntervalSet`] is the *compiled* form of a presence schedule: the
//! instants at which an edge is present within a horizon, materialized as
//! a normalized (sorted, disjoint, non-adjacent) list of half-open spans
//! `[start, end)`. Where the schedule AST answers `ρ(e, t)` one instant
//! at a time, the compiled form answers "when is the edge *next*
//! present?" by binary search and enumerates present instants while
//! skipping absent stretches entirely — the primitive the indexed journey
//! engine is built on.

use crate::Time;

/// A normalized set of half-open time spans `[start, end)`.
///
/// Invariants (maintained by every constructor): spans are sorted by
/// start, pairwise disjoint, non-empty, and non-adjacent (touching spans
/// are merged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSet<T> {
    spans: Vec<(T, T)>,
}

impl<T: Time> IntervalSet<T> {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        IntervalSet { spans: Vec::new() }
    }

    /// Builds a set from arbitrary spans, normalizing: empty spans are
    /// dropped, overlapping or adjacent spans are merged, order is fixed.
    #[must_use]
    pub fn from_spans(mut spans: Vec<(T, T)>) -> Self {
        spans.retain(|(s, e)| s < e);
        spans.sort();
        let mut normalized: Vec<(T, T)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match normalized.last_mut() {
                Some((_, prev_end)) if s <= *prev_end => {
                    if e > *prev_end {
                        *prev_end = e;
                    }
                }
                _ => normalized.push((s, e)),
            }
        }
        IntervalSet { spans: normalized }
    }

    /// The single-instant set `{t}`.
    #[must_use]
    pub fn point(t: T) -> Self {
        let end = t.succ();
        IntervalSet {
            spans: vec![(t, end)],
        }
    }

    /// The contiguous set `[0, end)` (empty if `end == 0`).
    #[must_use]
    pub fn up_to(end: T) -> Self {
        if end == T::zero() {
            return IntervalSet::empty();
        }
        IntervalSet {
            spans: vec![(T::zero(), end)],
        }
    }

    /// The normalized spans, sorted and disjoint.
    #[must_use]
    pub fn spans(&self) -> &[(T, T)] {
        &self.spans
    }

    /// A borrowed [`SpanView`] over the spans — the representation the
    /// [`crate::TemporalIndex`] trait hands to the query engine, shared
    /// with the flat on-disk arenas of `crate::tvgi`.
    #[must_use]
    pub fn view(&self) -> SpanView<'_, T> {
        SpanView::Pairs(&self.spans)
    }

    /// Number of maximal spans (the set's *event count* is twice this).
    #[must_use]
    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// `true` iff no instant is in the set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Membership test by binary search.
    #[must_use]
    pub fn contains(&self, t: &T) -> bool {
        self.view().contains(t)
    }

    /// The earliest member `>= t`, by binary search. `None` if the set
    /// has no member at or after `t`.
    #[must_use]
    pub fn next_at_or_after(&self, t: &T) -> Option<T> {
        self.view().next_at_or_after(t)
    }

    /// The earliest member of the inclusive window `[from, until]` —
    /// the compiled counterpart of `Presence::next_present_within`.
    #[must_use]
    pub fn next_within(&self, from: &T, until: &T) -> Option<T> {
        self.view().next_within(from, until)
    }

    /// Iterates the members of the inclusive window `[from, until]` in
    /// increasing order, jumping over absent stretches span to span.
    ///
    /// The window endpoints are borrowed, not cloned: on time domains
    /// with owned representations (the generic fallback the narrow u32
    /// fast path decays to) constructing the iterator allocates nothing.
    #[must_use]
    pub fn instants_within<'a>(&'a self, from: &'a T, until: &'a T) -> Instants<'a, T> {
        self.view().instants_within(from, until)
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut spans = self.spans.clone();
        spans.extend(other.spans.iter().cloned());
        IntervalSet::from_spans(spans)
    }

    /// Set intersection (two-pointer sweep over normalized spans).
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.spans.len() && j < other.spans.len() {
            let (a_start, a_end) = &self.spans[i];
            let (b_start, b_end) = &other.spans[j];
            let start = a_start.max(b_start).clone();
            let end = a_end.min(b_end).clone();
            if start < end {
                out.push((start, end));
            }
            if a_end <= b_end {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Already sorted and disjoint; from_spans just revalidates.
        IntervalSet::from_spans(out)
    }

    /// The last (rightmost) span, if any.
    #[must_use]
    pub fn last_span(&self) -> Option<&(T, T)> {
        self.spans.last()
    }

    /// Appends a span at the right end of the set, preserving
    /// normalization: an empty span is dropped, a span starting at or
    /// before the current last end is merged into it (streaming
    /// reopenings land exactly at the previous close).
    ///
    /// This is the maintenance primitive of the live (streaming) index:
    /// contact events arrive in time order, so presence only ever grows
    /// at the right edge and the whole set never needs re-sorting.
    ///
    /// # Panics
    ///
    /// Panics if `start` precedes the start of the current last span —
    /// that would be an out-of-order append, which the stream layer
    /// rejects with a typed error before ever reaching this point.
    pub fn append_span(&mut self, start: T, end: T) {
        if start >= end {
            return;
        }
        match self.spans.last_mut() {
            Some((last_start, last_end)) => {
                assert!(
                    start >= *last_start,
                    "append_span out of order: span starts before the current last span"
                );
                if start <= *last_end {
                    if end > *last_end {
                        *last_end = end;
                    }
                } else {
                    self.spans.push((start, end));
                }
            }
            None => self.spans.push((start, end)),
        }
    }

    /// Truncates the last span to end at `end`, dropping it entirely if
    /// that leaves it empty. The inverse maintenance primitive of
    /// [`IntervalSet::append_span`]: a streaming `Down` event rewrites
    /// the provisional right edge (open through the horizon) to the
    /// observed close instant.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or `end` exceeds the current last end
    /// (truncation never extends; use [`IntervalSet::append_span`] /
    /// [`IntervalSet::extend_last_span`] for growth).
    pub fn truncate_last_span(&mut self, end: &T) {
        let (start, last_end) = self.spans.last_mut().expect("truncate on an empty set");
        assert!(
            *end <= *last_end,
            "truncate_last_span would extend the span"
        );
        if *end <= *start {
            self.spans.pop();
        } else {
            *last_end = end.clone();
        }
    }

    /// Extends the last span's end to `end` (a horizon extension moving
    /// an open edge's provisional close further out).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or `end` precedes the current last end.
    pub fn extend_last_span(&mut self, end: &T) {
        let (_, last_end) = self.spans.last_mut().expect("extend on an empty set");
        assert!(*end >= *last_end, "extend_last_span would shrink the span");
        *last_end = end.clone();
    }

    /// Complement within `[0, end)`.
    #[must_use]
    pub fn complement_within(&self, end: &T) -> Self {
        let mut out = Vec::new();
        let mut cursor = T::zero();
        for (s, e) in &self.spans {
            if *s >= *end {
                break;
            }
            if cursor < *s {
                out.push((cursor.clone(), s.clone()));
            }
            if *e > cursor {
                cursor = e.clone();
            }
        }
        if cursor < *end {
            out.push((cursor, end.clone()));
        }
        IntervalSet { spans: out }
    }
}

/// A borrowed, copyable view of a normalized span list — the common
/// denominator between the in-memory [`IntervalSet`] (native `(T, T)`
/// pairs) and the on-disk `.tvgi` arenas (flat interleaved
/// `[s₀, e₀, s₁, e₁, …]` words mapped straight out of the file). Every
/// search primitive the journey engine needs lives here once, so the two
/// representations can never drift apart.
///
/// The invariants of [`IntervalSet`] are assumed: spans sorted by start,
/// disjoint, non-empty, non-adjacent. The `Flat` variant additionally
/// requires even length (validated when a `.tvgi` file is opened, not
/// per query).
#[derive(Debug, Clone, Copy)]
pub enum SpanView<'a, T> {
    /// Borrowed normalized pairs.
    Pairs(&'a [(T, T)]),
    /// Flat interleaved start/end words from a file arena.
    Flat(&'a [T]),
}

impl<'a, T: Time> SpanView<'a, T> {
    /// Number of maximal spans.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SpanView::Pairs(s) => s.len(),
            SpanView::Flat(f) => f.len() / 2,
        }
    }

    /// `true` iff no instant is in the set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Start of span `i` (inclusive).
    #[must_use]
    pub fn start(&self, i: usize) -> &'a T {
        match self {
            SpanView::Pairs(s) => &s[i].0,
            SpanView::Flat(f) => &f[2 * i],
        }
    }

    /// End of span `i` (exclusive).
    #[must_use]
    pub fn end(&self, i: usize) -> &'a T {
        match self {
            SpanView::Pairs(s) => &s[i].1,
            SpanView::Flat(f) => &f[2 * i + 1],
        }
    }

    /// The spans materialized as owned pairs (allocates; for oracles and
    /// tests, not query paths).
    #[must_use]
    pub fn spans(&self) -> Vec<(T, T)> {
        (0..self.len())
            .map(|i| (self.start(i).clone(), self.end(i).clone()))
            .collect()
    }

    /// First span index for which `pred` is false — the span-list
    /// counterpart of `slice::partition_point`, shared by both layouts.
    fn partition_point(&self, pred: impl Fn(usize) -> bool) -> usize {
        let (mut lo, mut hi) = (0, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Membership test by binary search.
    #[must_use]
    pub fn contains(&self, t: &T) -> bool {
        let i = self.partition_point(|i| self.start(i) <= t);
        i > 0 && self.end(i - 1) > t
    }

    /// The earliest member `>= t`, by binary search.
    #[must_use]
    pub fn next_at_or_after(&self, t: &T) -> Option<T> {
        let i = self.partition_point(|i| self.end(i) <= t);
        if i >= self.len() {
            return None;
        }
        let start = self.start(i);
        Some(if start > t { start.clone() } else { t.clone() })
    }

    /// The earliest member of the inclusive window `[from, until]`.
    #[must_use]
    pub fn next_within(&self, from: &T, until: &T) -> Option<T> {
        self.next_at_or_after(from).filter(|t| t <= until)
    }

    /// Iterates the members of the inclusive window `[from, until]` in
    /// increasing order (see [`IntervalSet::instants_within`]).
    #[must_use]
    pub fn instants_within(self, from: &'a T, until: &'a T) -> Instants<'a, T> {
        let idx = self.partition_point(|i| self.end(i) <= from);
        Instants {
            view: self,
            idx,
            cur: None,
            from,
            until,
        }
    }
}

/// Logical equality: two views are equal when they describe the same
/// span list, regardless of layout.
impl<T: Time> PartialEq for SpanView<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && (0..self.len())
                .all(|i| self.start(i) == other.start(i) && self.end(i) == other.end(i))
    }
}

impl<T: Time> Eq for SpanView<'_, T> {}

/// Iterator over the instants of an [`IntervalSet`] within a window.
///
/// Yields each present instant once, in increasing order; consecutive
/// instants inside a span step by `succ`, gaps between spans are skipped
/// in O(1).
#[derive(Debug)]
pub struct Instants<'a, T> {
    view: SpanView<'a, T>,
    idx: usize,
    /// The cursor once stepping has begun; before the first yield the
    /// borrowed `from` endpoint serves as the cursor, so an iterator
    /// that is built but never advanced clones no time values at all.
    cur: Option<T>,
    from: &'a T,
    until: &'a T,
}

impl<T: Time> Iterator for Instants<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        while self.idx < self.view.len() {
            let (start, end) = (self.view.start(self.idx), self.view.end(self.idx));
            let cursor = self.cur.as_ref().unwrap_or(self.from);
            let candidate = if cursor >= start {
                cursor.clone()
            } else {
                start.clone()
            };
            if candidate > *self.until {
                return None;
            }
            if candidate < *end {
                self.cur = Some(candidate.succ());
                return Some(candidate);
            }
            self.idx += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(spans: &[(u64, u64)]) -> IntervalSet<u64> {
        IntervalSet::from_spans(spans.to_vec())
    }

    #[test]
    fn normalization_merges_and_sorts() {
        let s = set(&[(5, 7), (0, 2), (2, 3), (6, 9), (4, 4)]);
        assert_eq!(s.spans(), &[(0, 3), (5, 9)]);
        assert_eq!(s.num_spans(), 2);
        assert!(IntervalSet::<u64>::empty().is_empty());
        assert!(set(&[(3, 3)]).is_empty());
    }

    #[test]
    fn contains_by_binary_search() {
        let s = set(&[(2, 4), (7, 8)]);
        for t in 0u64..12 {
            assert_eq!(s.contains(&t), (2..4).contains(&t) || t == 7, "t={t}");
        }
    }

    #[test]
    fn next_queries() {
        let s = set(&[(2, 4), (7, 8)]);
        assert_eq!(s.next_at_or_after(&0), Some(2));
        assert_eq!(s.next_at_or_after(&3), Some(3));
        assert_eq!(s.next_at_or_after(&4), Some(7));
        assert_eq!(s.next_at_or_after(&8), None);
        assert_eq!(s.next_within(&0, &1), None);
        assert_eq!(s.next_within(&0, &2), Some(2));
        assert_eq!(s.next_within(&4, &7), Some(7));
    }

    #[test]
    fn instants_enumerate_window() {
        let s = set(&[(2, 4), (7, 9)]);
        let all: Vec<u64> = s.instants_within(&0, &20).collect();
        assert_eq!(all, vec![2, 3, 7, 8]);
        let mid: Vec<u64> = s.instants_within(&3, &7).collect();
        assert_eq!(mid, vec![3, 7]);
        let none: Vec<u64> = s.instants_within(&9, &20).collect();
        assert!(none.is_empty());
        let empty_window: Vec<u64> = s.instants_within(&8, &7).collect();
        assert!(empty_window.is_empty());
    }

    #[test]
    fn union_intersect_complement() {
        let a = set(&[(0, 4), (10, 12)]);
        let b = set(&[(2, 6), (11, 15)]);
        assert_eq!(a.union(&b).spans(), &[(0, 6), (10, 15)]);
        assert_eq!(a.intersect(&b).spans(), &[(2, 4), (11, 12)]);
        assert_eq!(a.complement_within(&14).spans(), &[(4, 10), (12, 14)]);
        assert_eq!(
            IntervalSet::<u64>::empty().complement_within(&3).spans(),
            &[(0, 3)]
        );
        assert_eq!(a.complement_within(&0).spans(), &[] as &[(u64, u64)]);
    }

    #[test]
    fn set_algebra_agrees_with_membership() {
        let a = set(&[(1, 5), (8, 9), (12, 20)]);
        let b = set(&[(0, 2), (4, 10), (13, 14)]);
        let (u, i, c) = (a.union(&b), a.intersect(&b), a.complement_within(&25));
        for t in 0u64..30 {
            assert_eq!(u.contains(&t), a.contains(&t) || b.contains(&t), "u t={t}");
            assert_eq!(i.contains(&t), a.contains(&t) && b.contains(&t), "i t={t}");
            assert_eq!(c.contains(&t), t < 25 && !a.contains(&t), "c t={t}");
        }
    }

    #[test]
    fn append_span_grows_at_the_right_edge() {
        let mut s = IntervalSet::<u64>::empty();
        s.append_span(2, 5);
        s.append_span(5, 5); // empty: dropped
        assert_eq!(s.spans(), &[(2, 5)]);
        s.append_span(5, 7); // adjacent: merged
        assert_eq!(s.spans(), &[(2, 7)]);
        s.append_span(9, 12); // gap: new span
        assert_eq!(s.spans(), &[(2, 7), (9, 12)]);
        s.append_span(10, 11); // contained: absorbed
        assert_eq!(s.spans(), &[(2, 7), (9, 12)]);
        assert_eq!(s.last_span(), Some(&(9, 12)));
    }

    #[test]
    fn truncate_and_extend_rewrite_the_open_edge() {
        let mut s = set(&[(1, 4), (6, 20)]);
        s.truncate_last_span(&9);
        assert_eq!(s.spans(), &[(1, 4), (6, 9)]);
        s.extend_last_span(&15);
        assert_eq!(s.spans(), &[(1, 4), (6, 15)]);
        // Truncating to the start drops the span entirely.
        s.truncate_last_span(&6);
        assert_eq!(s.spans(), &[(1, 4)]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn append_span_rejects_out_of_order() {
        let mut s = set(&[(5, 9)]);
        s.append_span(2, 3);
    }

    #[test]
    #[should_panic(expected = "would extend")]
    fn truncate_never_extends() {
        let mut s = set(&[(1, 4)]);
        s.truncate_last_span(&9);
    }

    #[test]
    fn point_and_up_to() {
        assert_eq!(IntervalSet::point(5u64).spans(), &[(5, 6)]);
        assert_eq!(IntervalSet::up_to(3u64).spans(), &[(0, 3)]);
        assert!(IntervalSet::up_to(0u64).is_empty());
    }
}
