//! A small static digraph used for snapshots, footprints, and the
//! dynamic-network simulations.
//!
//! Deliberately minimal: adjacency lists, BFS distances, reachability, and
//! Tarjan strongly-connected components — everything the workspace needs
//! from a static graph, nothing more.

use std::collections::VecDeque;

/// A directed graph on nodes `0..n` with adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digraph {
    adj: Vec<Vec<usize>>,
}

impl Digraph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Adds the directed edge `u → v` (parallel edges are collapsed).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
        }
    }

    /// Whether the edge `u → v` exists.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u).is_some_and(|row| row.contains(&v))
    }

    /// Successors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// BFS hop distances from `src` (`None` = unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<usize>> {
        assert!(src < self.adj.len(), "node out of range");
        let mut dist = vec![None; self.adj.len()];
        dist[src] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in &self.adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Set of nodes reachable from `src` (including `src`).
    #[must_use]
    pub fn reachable_from(&self, src: usize) -> Vec<usize> {
        self.bfs_distances(src)
            .iter()
            .enumerate()
            .filter_map(|(v, d)| d.map(|_| v))
            .collect()
    }

    /// Whether every node is reachable from every other (strong
    /// connectivity). Vacuously true for the empty graph.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        self.tarjan_scc().len() <= 1
    }

    /// Strongly connected components (Tarjan, iterative), in reverse
    /// topological order.
    #[must_use]
    pub fn tarjan_scc(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS stack: (node, next child position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(u, child)) = call.last() {
                if index[u] == usize::MAX {
                    index[u] = next_index;
                    low[u] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u] = true;
                }
                if let Some(&v) = self.adj[u].get(child) {
                    call.last_mut().expect("nonempty inside loop").1 += 1;
                    if index[v] == usize::MAX {
                        call.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[u]);
                    }
                    if low[u] == index[u] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc root is on stack");
                            on_stack[w] = false;
                            component.push(w);
                            if w == u {
                                break;
                            }
                        }
                        component.sort_unstable();
                        sccs.push(component);
                    }
                }
            }
        }
        sccs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        // 0 → 1 → 3, 0 → 2 → 3.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn edges_and_adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.successors(0), &[1, 2]);
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn bfs_distances_on_diamond() {
        let d = diamond().bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(1), Some(2)]);
        let d3 = diamond().bfs_distances(3);
        assert_eq!(d3, vec![None, None, None, Some(0)]);
    }

    #[test]
    fn reachability() {
        assert_eq!(diamond().reachable_from(0), vec![0, 1, 2, 3]);
        assert_eq!(diamond().reachable_from(3), vec![3]);
    }

    #[test]
    fn scc_on_dag_is_singletons() {
        let sccs = diamond().tarjan_scc();
        assert_eq!(sccs.len(), 4);
        assert!(!diamond().is_strongly_connected());
    }

    #[test]
    fn scc_finds_cycles() {
        let mut g = Digraph::new(5);
        // Cycle 0→1→2→0, tail 2→3→4.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let mut sccs = g.tarjan_scc();
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
        assert!(sccs.contains(&vec![4]));
    }

    #[test]
    fn full_cycle_is_strongly_connected() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(g.is_strongly_connected());
        assert_eq!(g.tarjan_scc(), vec![vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn bad_edge_panics() {
        Digraph::new(1).add_edge(0, 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Digraph::new(0);
        assert_eq!(g.num_nodes(), 0);
        assert!(g.is_strongly_connected());
        assert!(g.tarjan_scc().is_empty());
    }
}
