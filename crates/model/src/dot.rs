//! Graphviz DOT export for time-varying graphs.
//!
//! Snapshots render as plain digraphs; the full TVG renders with the
//! schedule in edge labels — handy for inspecting generated instances
//! and for papers/teaching material.

use crate::{Time, Tvg};
use std::fmt::Write as _;

/// Renders the whole TVG as DOT, schedules shown on edge labels.
#[must_use]
pub fn tvg_to_dot<T: Time>(g: &Tvg<T>) -> String {
    let mut out = String::from("digraph tvg {\n  rankdir=LR;\n");
    for n in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", n.index(), g.node_name(n));
    }
    for e in g.edges() {
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}: ρ={:?}, ζ={:?}\"];",
            edge.src().index(),
            edge.dst().index(),
            edge.label(),
            edge.presence(),
            edge.latency(),
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the snapshot at instant `t` as DOT (present edges only).
#[must_use]
pub fn snapshot_to_dot<T: Time>(g: &Tvg<T>, t: &T) -> String {
    let mut out = format!("digraph snapshot_t{t} {{\n  rankdir=LR;\n");
    for n in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", n.index(), g.node_name(n));
    }
    for e in g.snapshot(t) {
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            edge.src().index(),
            edge.dst().index(),
            edge.label(),
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Latency, Presence, TvgBuilder};

    fn sample() -> Tvg<u64> {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(v[0], v[1], 'a', Presence::At(3), Latency::unit())
            .expect("valid");
        b.build().expect("valid")
    }

    #[test]
    fn tvg_dot_contains_nodes_and_schedules() {
        let dot = tvg_to_dot(&sample());
        assert!(dot.starts_with("digraph tvg {"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("At(3)"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn snapshot_dot_filters_absent_edges() {
        let g = sample();
        let present = snapshot_to_dot(&g, &3);
        assert!(present.contains("0 -> 1"));
        let absent = snapshot_to_dot(&g, &4);
        assert!(!absent.contains("0 -> 1"));
        assert!(absent.contains("digraph snapshot_t4"));
    }
}
