//! Generators for structured and random time-varying graphs.
//!
//! Experiments E3/E4 quantify over *families* of TVGs; these constructors
//! produce the periodic and random instances those sweeps run on. All
//! randomness flows through a caller-supplied [`rand::Rng`], so every
//! experiment is reproducible from its seed.

use crate::{Latency, Presence, Tvg, TvgBuilder};
use rand::Rng;
use std::collections::BTreeSet;
use tvg_langs::Alphabet;

/// Parameters for [`random_periodic_tvg`].
#[derive(Debug, Clone)]
pub struct RandomPeriodicParams {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of directed labeled edges.
    pub num_edges: usize,
    /// Common period of all presence schedules (nonzero).
    pub period: u64,
    /// Probability that each phase `0..period` is present, per edge.
    pub phase_density: f64,
    /// Edge labels are drawn uniformly from this alphabet.
    pub alphabet: Alphabet,
}

impl Default for RandomPeriodicParams {
    fn default() -> Self {
        RandomPeriodicParams {
            num_nodes: 5,
            num_edges: 8,
            period: 4,
            phase_density: 0.5,
            alphabet: Alphabet::ab(),
        }
    }
}

/// A random TVG with periodic presence schedules and unit latencies.
///
/// Self-loops are allowed (they are meaningful in TVG-automata); each edge
/// gets an independent random phase set, re-drawn once if empty so every
/// edge is present somewhere in the period (recurrent class).
///
/// # Panics
///
/// Panics if `num_nodes == 0` or `period == 0`.
pub fn random_periodic_tvg<R: Rng + ?Sized>(
    rng: &mut R,
    params: &RandomPeriodicParams,
) -> Tvg<u64> {
    assert!(params.num_nodes > 0, "need at least one node");
    assert!(params.period > 0, "period must be nonzero");
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(params.num_nodes);
    for _ in 0..params.num_edges {
        let src = nodes[rng.gen_range(0..nodes.len())];
        let dst = nodes[rng.gen_range(0..nodes.len())];
        let label = params
            .alphabet
            .letter(rng.gen_range(0..params.alphabet.len()))
            .as_char();
        let mut phases: BTreeSet<u64> = (0..params.period)
            .filter(|_| rng.gen_bool(params.phase_density))
            .collect();
        if phases.is_empty() {
            phases.insert(rng.gen_range(0..params.period));
        }
        b.edge(
            src,
            dst,
            label,
            Presence::Periodic {
                period: params.period,
                phases,
            },
            Latency::unit(),
        )
        .expect("nodes come from this builder");
    }
    b.build().expect("at least one node")
}

/// A scale-free temporal contact network: preferential attachment
/// (Barabási–Albert, 2 attachments per node) decides *who* meets whom,
/// and every undirected contact pair gets a finite set of meeting
/// instants drawn uniformly below `horizon` (both edge orientations
/// share the instants, as in a contact trace).
///
/// Node *contact degrees* — the number of contact events a node
/// participates in — follow the attachment process's power law: a few
/// hubs carry most of the timeline while most nodes meet rarely. This is
/// the large-scale batch/bench workload (experiment E8): at `n` in the
/// tens of thousands the compiled timeline holds millions of edge
/// events, a different regime from the commuter-line and ring fixtures.
///
/// Fully determined by `(n, horizon, seed)`.
///
/// # Panics
///
/// Panics if `n == 0` or `horizon == 0`.
pub fn scale_free_temporal(n: usize, horizon: u64, seed: u64) -> Tvg<u64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(n > 0, "need at least one node");
    assert!(horizon > 0, "contacts need a nonempty time window");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(n);
    // Attachment endpoint pool: every accepted contact pair pushes both
    // endpoints, so sampling the pool is sampling proportional to degree.
    let mut endpoints: Vec<usize> = Vec::with_capacity(4 * n);
    let contact = |b: &mut TvgBuilder<u64>, rng: &mut StdRng, u: usize, v: usize| {
        let count = 1 + rng.gen_range(0..6usize);
        let instants: BTreeSet<u64> = (0..count).map(|_| rng.gen_range(0..horizon)).collect();
        let rho = Presence::FiniteSet(instants);
        for (src, dst) in [(u, v), (v, u)] {
            b.edge(nodes[src], nodes[dst], 's', rho.clone(), Latency::unit())
                .expect("nodes come from this builder");
        }
    };
    // Seed clique over the first min(n, 3) nodes.
    let m0 = n.min(3);
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            contact(&mut b, &mut rng, u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in m0..n {
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        // Two attachments per arriving node (fewer when the pool is
        // smaller than that, e.g. right after a 1- or 2-node seed).
        while targets.len() < 2.min(u) {
            let t = if endpoints.is_empty() {
                rng.gen_range(0..u)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != u {
                targets.insert(t);
            }
        }
        for v in targets {
            contact(&mut b, &mut rng, u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    b.build().expect("at least one node")
}

/// A directed ring of `n` nodes whose edge `i → i+1` is present at phase
/// `i mod period` — a "circular bus line" where a traveler must wait one
/// period between consecutive hops unless departures are aligned.
///
/// All edges are labeled `label` and have unit latency.
///
/// # Panics
///
/// Panics if `n == 0` or `period == 0`.
pub fn ring_bus_tvg(n: usize, period: u64, label: char) -> Tvg<u64> {
    assert!(n > 0, "need at least one node");
    assert!(period > 0, "period must be nonzero");
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(n);
    for i in 0..n {
        let phase = (i as u64) % period;
        b.edge(
            nodes[i],
            nodes[(i + 1) % n],
            label,
            Presence::Periodic {
                period,
                phases: BTreeSet::from([phase]),
            },
            Latency::unit(),
        )
        .expect("nodes come from this builder");
    }
    b.build().expect("at least one node")
}

/// A line (path) network `v0 → v1 → … → v(n-1)` where hop `i` departs
/// only at the instants in `timetable[i]` — a transit timetable. Unit
/// latencies; all edges labeled `label`.
///
/// # Panics
///
/// Panics if `timetable.len() + 1 != n` or `n == 0`.
pub fn line_timetable_tvg(n: usize, timetable: &[BTreeSet<u64>], label: char) -> Tvg<u64> {
    assert!(n > 0, "need at least one node");
    assert_eq!(timetable.len() + 1, n, "one timetable entry per hop");
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(n);
    for (i, departures) in timetable.iter().enumerate() {
        b.edge(
            nodes[i],
            nodes[i + 1],
            label,
            Presence::FiniteSet(departures.iter().copied().collect()),
            Latency::unit(),
        )
        .expect("nodes come from this builder");
    }
    b.build().expect("at least one node")
}

/// A star network: hub node 0 with spokes `1..n`, each spoke pair
/// `hub ↔ spoke` present at a phase staggered by spoke index. Models a
/// message ferry visiting clients round-robin.
///
/// All edges labeled `label`, unit latency, period `n - 1`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star_ferry_tvg(n: usize, label: char) -> Tvg<u64> {
    assert!(n >= 2, "need a hub and at least one spoke");
    let period = (n - 1) as u64;
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(n);
    for spoke in 1..n {
        let phase = (spoke - 1) as u64 % period;
        for (src, dst) in [(0, spoke), (spoke, 0)] {
            b.edge(
                nodes[src],
                nodes[dst],
                label,
                Presence::Periodic {
                    period,
                    phases: BTreeSet::from([phase]),
                },
                Latency::unit(),
            )
            .expect("nodes come from this builder");
        }
    }
    b.build().expect("at least one node")
}

/// A toroidal grid (`rows × cols`) where horizontal edges are present at
/// even instants and vertical edges at odd instants — a synchronous
/// two-phase mesh.
///
/// All edges labeled `label`, unit latency.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid_two_phase_tvg(rows: usize, cols: usize, label: char) -> Tvg<u64> {
    assert!(rows > 0 && cols > 0, "grid must be nonempty");
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(rows * cols);
    let id = |r: usize, c: usize| nodes[r * cols + c];
    let horizontal = Presence::Periodic {
        period: 2,
        phases: BTreeSet::from([0u64]),
    };
    let vertical = Presence::Periodic {
        period: 2,
        phases: BTreeSet::from([1u64]),
    };
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 {
                b.edge(
                    id(r, c),
                    id(r, (c + 1) % cols),
                    label,
                    horizontal.clone(),
                    Latency::unit(),
                )
                .expect("builder-owned nodes");
            }
            if rows > 1 {
                b.edge(
                    id(r, c),
                    id((r + 1) % rows, c),
                    label,
                    vertical.clone(),
                    Latency::unit(),
                )
                .expect("builder-owned nodes");
            }
        }
    }
    b.build().expect("at least one node")
}

/// An edge-Markovian contact TVG: every unordered node pair evolves as an
/// independent two-state Markov chain over instants `0..horizon` — an
/// absent contact appears with probability `p_birth` per instant, a
/// present one disappears with probability `p_death` — starting from the
/// stationary distribution `p_birth / (p_birth + p_death)`. Both edge
/// orientations of a pair share the contact instants (label `'m'`, unit
/// latency); pairs never in contact get no edge at all.
///
/// This is the TVG-native face of the edge-Markovian *trace* model in
/// `tvg-dynnet` (the standard model of highly dynamic, possibly
/// always-disconnected networks), packaged as a generator so declarative
/// scenarios can run matrix/broadcast/streaming plans on it without a
/// trace detour. Fully determined by its parameters and `seed`.
///
/// # Panics
///
/// Panics if `n < 2`, `horizon == 0`, or a probability is outside `[0, 1]`.
pub fn edge_markovian_contacts(
    n: usize,
    horizon: u64,
    p_birth: f64,
    p_death: f64,
    seed: u64,
) -> Tvg<u64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(n >= 2, "need at least two nodes");
    assert!(horizon > 0, "contacts need a nonempty time window");
    for p in [p_birth, p_death] {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(n);
    let denom = p_birth + p_death;
    let density = if denom == 0.0 { 0.0 } else { p_birth / denom };
    for a in 0..n {
        for c in (a + 1)..n {
            let mut present = rng.gen_bool(density);
            let mut instants: BTreeSet<u64> = BTreeSet::new();
            for t in 0..horizon {
                if present {
                    instants.insert(t);
                    present = !rng.gen_bool(p_death);
                } else {
                    present = rng.gen_bool(p_birth);
                }
            }
            if instants.is_empty() {
                continue;
            }
            let rho = Presence::FiniteSet(instants);
            for (src, dst) in [(a, c), (c, a)] {
                b.edge(nodes[src], nodes[dst], 'm', rho.clone(), Latency::unit())
                    .expect("nodes come from this builder");
            }
        }
    }
    b.build().expect("at least one node")
}

/// A random-waypoint mobility contact TVG on a `rows × cols` grid:
/// `walkers` agents each pick a random waypoint cell, step one cell per
/// instant toward it (along the axis with the larger remaining distance,
/// rows on ties), and pick a fresh waypoint on arrival. Two walkers
/// sharing a cell at an instant are in contact then; contacts become
/// edges in both orientations (label `'w'`, unit latency) whose presence
/// is the exact meeting instants below `horizon`.
///
/// The nodes of the TVG are the *walkers*, not the grid cells — this is
/// the classic mobility-model contact workload (sparse, bursty,
/// position-correlated) as opposed to the memoryless edge-Markovian one.
/// Fully determined by its parameters and `seed`.
///
/// # Panics
///
/// Panics if `walkers == 0`, `rows == 0`, `cols == 0`, or `horizon == 0`.
pub fn waypoint_grid_contacts(
    walkers: usize,
    rows: usize,
    cols: usize,
    horizon: u64,
    seed: u64,
) -> Tvg<u64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(walkers > 0, "need at least one walker");
    assert!(rows > 0 && cols > 0, "grid must be nonempty");
    assert!(horizon > 0, "contacts need a nonempty time window");
    let mut rng = StdRng::seed_from_u64(seed);
    let cell = |rng: &mut StdRng| (rng.gen_range(0..rows), rng.gen_range(0..cols));
    let mut pos: Vec<(usize, usize)> = (0..walkers).map(|_| cell(&mut rng)).collect();
    let mut goal: Vec<(usize, usize)> = (0..walkers).map(|_| cell(&mut rng)).collect();
    let mut meetings: std::collections::BTreeMap<(usize, usize), BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    for t in 0..horizon {
        // Contacts at t come from positions at t; walkers move afterward.
        for u in 0..walkers {
            for v in (u + 1)..walkers {
                if pos[u] == pos[v] {
                    meetings.entry((u, v)).or_default().insert(t);
                }
            }
        }
        for w in 0..walkers {
            if pos[w] == goal[w] {
                goal[w] = cell(&mut rng);
            }
            let (r, c) = pos[w];
            let (gr, gc) = goal[w];
            let dr = gr.abs_diff(r);
            let dc = gc.abs_diff(c);
            if dr >= dc && dr > 0 {
                pos[w].0 = if gr > r { r + 1 } else { r - 1 };
            } else if dc > 0 {
                pos[w].1 = if gc > c { c + 1 } else { c - 1 };
            }
        }
    }
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(walkers);
    for ((u, v), instants) in meetings {
        let rho = Presence::FiniteSet(instants);
        for (src, dst) in [(u, v), (v, u)] {
            b.edge(nodes[src], nodes[dst], 'w', rho.clone(), Latency::unit())
                .expect("nodes come from this builder");
        }
    }
    b.build().expect("at least one node")
}

/// A shift-scheduled commuter fleet: `lines` bus lines, each a chain of
/// `stops` outer stops feeding one shared hub (node 0). Line `l` runs
/// `runs` services in each direction; service `k` leaves its terminus at
/// `shift · l + headway · k` and crosses one hop per instant (unit
/// latency, label `'f'`), so the lines' timetables are staggered against
/// each other by `shift` — transfers at the hub only connect when the
/// shifts happen to chain, which is exactly the waiting-vs-not workload
/// at fleet scale.
///
/// Node layout: hub `0`, then line `l`'s stops `1 + l·stops ..` ordered
/// outward from the hub. Inbound services run terminus → hub, outbound
/// services hub → terminus, with identical departure instants.
/// Deterministic (no randomness).
///
/// # Panics
///
/// Panics if `lines`, `stops`, or `runs` is zero, or `headway == 0`.
pub fn commuter_fleet(
    lines: usize,
    stops: usize,
    headway: u64,
    shift: u64,
    runs: usize,
) -> Tvg<u64> {
    assert!(lines > 0, "need at least one line");
    assert!(stops > 0, "need at least one stop per line");
    assert!(runs > 0, "need at least one service per line");
    assert!(headway > 0, "headway must be nonzero");
    let mut b = TvgBuilder::new();
    let nodes = b.nodes(1 + lines * stops);
    for l in 0..lines {
        // The chain hub = n₀ — n₁ — … — n_stops for this line.
        let chain: Vec<_> = std::iter::once(nodes[0])
            .chain((0..stops).map(|s| nodes[1 + l * stops + s]))
            .collect();
        let bases: Vec<u64> = (0..runs)
            .map(|k| shift * l as u64 + headway * k as u64)
            .collect();
        // Hop i of an inbound service departs `i` instants after its
        // base (the bus crosses one hop per instant); outbound mirrors.
        for i in 0..stops {
            let inbound: BTreeSet<u64> = bases.iter().map(|base| base + i as u64).collect();
            let outbound = inbound.clone();
            b.edge(
                chain[stops - i],
                chain[stops - i - 1],
                'f',
                Presence::FiniteSet(inbound),
                Latency::unit(),
            )
            .expect("nodes come from this builder");
            b.edge(
                chain[i],
                chain[i + 1],
                'f',
                Presence::FiniteSet(outbound),
                Latency::unit(),
            )
            .expect("nodes come from this builder");
        }
    }
    b.build().expect("at least one node")
}

/// A peer-lifecycle churn *feed*: the event list (for an empty
/// [`crate::stream::TvgStream`] at horizon `horizon`) of `n` peers
/// walking the Unknown → Identified → Pending → Connected state machine,
/// with dynamic peer swapping. Unlike every other generator here, the
/// node set itself churns — this is a stream workload first, and a batch
/// graph only via `TvgStream::to_tvg`.
///
/// Per instant, in feed order:
///
/// * contacts whose window expires close (`Down` on both orientations);
/// * at each of the `swaps` evenly spaced swap instants, the
///   longest-connected live peer is swapped out (`NodeLeave` — its open
///   contacts close implicitly) and a fresh peer joins (`NewNode`),
///   entering the state machine at Unknown;
/// * peers advance states (discover 0.6, invite 0.5, accept 0.5 per
///   instant); a newly Connected peer opens contacts (both edge
///   orientations, label `'p'`, unit latency) to up to two other
///   connected peers for a 2–8 instant window, and a connected peer
///   drops back to Identified with probability 0.12, closing its open
///   contacts.
///
/// Node ids are never reused: the feed contains exactly `n + swaps`
/// `NewNode`s (ids `0..n + swaps` in join order, names `p0, p1, …`) and
/// exactly `swaps` `NodeLeave`s. Fully determined by its parameters and
/// `seed`.
///
/// # Panics
///
/// Panics if `n < 2` or `horizon == 0`.
pub fn peer_lifecycle_churn(
    n: usize,
    swaps: usize,
    horizon: u64,
    seed: u64,
) -> Vec<crate::stream::StreamEvent<u64>> {
    use crate::stream::StreamEvent;
    use crate::{EdgeId, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    assert!(n >= 2, "need at least two peers");
    assert!(horizon > 0, "churn needs a nonempty time window");

    #[derive(Clone, Copy, PartialEq)]
    enum PeerState {
        Unknown,
        Identified,
        Pending,
        Connected,
    }
    struct Peer {
        state: PeerState,
        departed: bool,
        connected_since: Option<u64>,
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut events: Vec<StreamEvent<u64>> = Vec::new();
    let mut peers: Vec<Peer> = Vec::new();
    let join = |events: &mut Vec<StreamEvent<u64>>, peers: &mut Vec<Peer>| {
        events.push(StreamEvent::NewNode {
            name: format!("p{}", peers.len()),
        });
        peers.push(Peer {
            state: PeerState::Unknown,
            departed: false,
            connected_since: None,
        });
    };
    for _ in 0..n {
        join(&mut events, &mut peers);
    }
    // Swap instants, evenly spaced in [1, horizon] (integer division can
    // collapse several onto one instant at tiny horizons; each still
    // swaps one peer).
    let swap_times: Vec<u64> = (0..swaps)
        .map(|i| ((i as u64 + 1) * horizon / (swaps as u64 + 1)).max(1))
        .collect();
    // Pair-normalized contact bookkeeping: edge ids mirror the stream's
    // assignment order (NewEdge emission order from an empty stream).
    let mut created: BTreeMap<(usize, usize), (EdgeId, EdgeId)> = BTreeMap::new();
    let mut open: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut next_edge = 0usize;

    for t in 0..=horizon {
        // 1. Contacts whose window expires close.
        let expiring: Vec<(usize, usize)> = open
            .iter()
            .filter(|(_, &close)| close == t)
            .map(|(&pair, _)| pair)
            .collect();
        for pair in expiring {
            let (fwd, rev) = created[&pair];
            events.push(StreamEvent::Down { edge: fwd, at: t });
            events.push(StreamEvent::Down { edge: rev, at: t });
            open.remove(&pair);
        }
        // 2. Peer swaps: the longest-connected live peer leaves (its
        // open contacts close with it), a fresh peer joins.
        for _ in swap_times.iter().filter(|&&s| s == t) {
            let victim = peers
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.departed)
                .min_by_key(|(i, p)| (p.connected_since.is_none(), p.connected_since, *i))
                .map(|(i, _)| i)
                .expect("swaps keep the live set at n >= 2");
            events.push(StreamEvent::NodeLeave {
                node: NodeId::from_index(victim),
                at: t,
            });
            peers[victim].departed = true;
            open.retain(|&(a, b), _| a != victim && b != victim);
            join(&mut events, &mut peers);
        }
        // 3. State transitions, in peer-id order.
        for u in 0..peers.len() {
            if peers[u].departed {
                continue;
            }
            match peers[u].state {
                PeerState::Unknown => {
                    if rng.gen_bool(0.6) {
                        peers[u].state = PeerState::Identified;
                    }
                }
                PeerState::Identified => {
                    if rng.gen_bool(0.5) {
                        peers[u].state = PeerState::Pending;
                    }
                }
                PeerState::Pending => {
                    if rng.gen_bool(0.5) {
                        peers[u].state = PeerState::Connected;
                        peers[u].connected_since = Some(t);
                        // Open contacts to up to two other connected
                        // live peers.
                        let mut cands: Vec<usize> = (0..peers.len())
                            .filter(|&v| {
                                v != u
                                    && !peers[v].departed
                                    && peers[v].state == PeerState::Connected
                            })
                            .collect();
                        for _ in 0..cands.len().min(2) {
                            let v = cands.swap_remove(rng.gen_range(0..cands.len()));
                            let pair = (u.min(v), u.max(v));
                            if open.contains_key(&pair) {
                                continue;
                            }
                            let (fwd, rev) = *created.entry(pair).or_insert_with(|| {
                                for (src, dst) in [(u, v), (v, u)] {
                                    events.push(StreamEvent::NewEdge {
                                        src: NodeId::from_index(src),
                                        dst: NodeId::from_index(dst),
                                        label: 'p',
                                        latency: Latency::unit(),
                                    });
                                }
                                next_edge += 2;
                                (
                                    EdgeId::from_index(next_edge - 2),
                                    EdgeId::from_index(next_edge - 1),
                                )
                            });
                            events.push(StreamEvent::Up { edge: fwd, at: t });
                            events.push(StreamEvent::Up { edge: rev, at: t });
                            open.insert(pair, t + rng.gen_range(2..9));
                        }
                    }
                }
                PeerState::Connected => {
                    if rng.gen_bool(0.12) {
                        // Drop back to Identified; open contacts close.
                        let closing: Vec<(usize, usize)> = open
                            .keys()
                            .filter(|&&(a, b)| a == u || b == u)
                            .copied()
                            .collect();
                        for pair in closing {
                            let (fwd, rev) = created[&pair];
                            events.push(StreamEvent::Down { edge: fwd, at: t });
                            events.push(StreamEvent::Down { edge: rev, at: t });
                            open.remove(&pair);
                        }
                        peers[u].state = PeerState::Identified;
                        peers[u].connected_since = None;
                    }
                }
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_periodic_is_reproducible() {
        let params = RandomPeriodicParams::default();
        let g1 = random_periodic_tvg(&mut StdRng::seed_from_u64(42), &params);
        let g2 = random_periodic_tvg(&mut StdRng::seed_from_u64(42), &params);
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
        for (e1, e2) in g1.edges().zip(g2.edges()) {
            assert_eq!(g1.edge(e1).src(), g2.edge(e2).src());
            assert_eq!(g1.edge(e1).dst(), g2.edge(e2).dst());
            assert_eq!(g1.edge(e1).label(), g2.edge(e2).label());
            for t in 0..16u64 {
                assert_eq!(g1.is_present(e1, &t), g2.is_present(e2, &t));
            }
        }
    }

    #[test]
    fn random_periodic_every_edge_recurs() {
        let params = RandomPeriodicParams {
            phase_density: 0.05, // likely to draw empty phase sets
            ..RandomPeriodicParams::default()
        };
        let g = random_periodic_tvg(&mut StdRng::seed_from_u64(7), &params);
        for e in g.edges() {
            let present_somewhere = (0..params.period).any(|t| g.is_present(e, &t));
            assert!(present_somewhere, "{e} never present");
        }
    }

    #[test]
    fn random_periodic_schedules_are_periodic() {
        let params = RandomPeriodicParams::default();
        let g = random_periodic_tvg(&mut StdRng::seed_from_u64(3), &params);
        for e in g.edges() {
            for t in 0..params.period * 3 {
                assert_eq!(
                    g.is_present(e, &t),
                    g.is_present(e, &(t + params.period)),
                    "{e} t={t}"
                );
            }
        }
    }

    #[test]
    fn scale_free_is_reproducible_and_heavy_tailed() {
        let g1 = scale_free_temporal(60, 64, 11);
        let g2 = scale_free_temporal(60, 64, 11);
        assert_eq!(g1.num_nodes(), 60);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for (e1, e2) in g1.edges().zip(g2.edges()) {
            assert_eq!(g1.edge(e1).src(), g2.edge(e2).src());
            assert_eq!(g1.edge(e1).dst(), g2.edge(e2).dst());
            for t in 0..64u64 {
                assert_eq!(g1.is_present(e1, &t), g2.is_present(e2, &t), "{e1} t={t}");
            }
        }
        // Preferential attachment concentrates degree: the busiest node
        // must carry several times the median out-degree.
        let mut degrees: Vec<usize> = g1.nodes().map(|v| g1.out_edges(v).len()).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        let max = *degrees.last().expect("nonempty");
        assert!(
            max >= 3 * median.max(1),
            "expected a hub: max degree {max}, median {median}"
        );
        // Contacts are symmetric: u→v present iff v→u present.
        for e in g1.edges() {
            let (src, dst) = (g1.edge(e).src(), g1.edge(e).dst());
            let reverse = g1
                .edges()
                .find(|&r| g1.edge(r).src() == dst && g1.edge(r).dst() == src)
                .expect("both orientations exist");
            for t in 0..64u64 {
                assert_eq!(g1.is_present(e, &t), g1.is_present(reverse, &t));
            }
        }
    }

    #[test]
    fn scale_free_small_n_degenerate_cases() {
        assert_eq!(scale_free_temporal(1, 8, 0).num_edges(), 0);
        let two = scale_free_temporal(2, 8, 0);
        assert_eq!(two.num_nodes(), 2);
        assert_eq!(two.num_edges(), 2); // one contact pair, both orientations
    }

    #[test]
    fn ring_bus_phases_stagger() {
        let g = ring_bus_tvg(4, 4, 'r');
        // Edge i present iff t ≡ i (mod 4).
        for (i, e) in g.edges().enumerate() {
            for t in 0..12u64 {
                assert_eq!(g.is_present(e, &t), t % 4 == i as u64, "edge {i} t={t}");
            }
        }
    }

    #[test]
    fn line_timetable_respects_departures() {
        let g = line_timetable_tvg(3, &[BTreeSet::from([2u64, 5]), BTreeSet::from([7u64])], 't');
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(g.traverse(edges[0], &2), Some(3));
        assert_eq!(g.traverse(edges[0], &3), None);
        assert_eq!(g.traverse(edges[1], &7), Some(8));
        assert_eq!(g.traverse(edges[1], &5), None);
    }

    #[test]
    #[should_panic(expected = "one timetable entry per hop")]
    fn timetable_arity_checked() {
        let _ = line_timetable_tvg(3, &[BTreeSet::new()], 't');
    }

    #[test]
    fn star_ferry_visits_round_robin() {
        let g = star_ferry_tvg(4, 'f'); // hub + 3 spokes, period 3
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 6);
        // At t=0 only spoke 1's pair is up; at t=1 spoke 2's; at t=2 spoke 3's.
        for t in 0u64..6 {
            let up = g.snapshot(&t);
            assert_eq!(up.len(), 2, "t={t}");
            let spoke = (t % 3) as usize + 1;
            for e in up {
                let edge = g.edge(e);
                let pair = (edge.src().index(), edge.dst().index());
                assert!(pair == (0, spoke) || pair == (spoke, 0), "t={t} {pair:?}");
            }
        }
    }

    #[test]
    fn grid_alternates_phases() {
        let g = grid_two_phase_tvg(2, 3, 'g');
        assert_eq!(g.num_nodes(), 6);
        // Horizontal edges (within a row) present only at even t.
        for e in g.edges() {
            let edge = g.edge(e);
            let (s, d) = (edge.src().index(), edge.dst().index());
            let same_row = s / 3 == d / 3;
            assert_eq!(g.is_present(e, &0), same_row, "{e} at t=0");
            assert_eq!(g.is_present(e, &1), !same_row, "{e} at t=1");
        }
    }

    #[test]
    fn edge_markovian_contacts_reproducible_and_symmetric() {
        let g1 = edge_markovian_contacts(10, 30, 0.1, 0.4, 7);
        let g2 = edge_markovian_contacts(10, 30, 0.1, 0.4, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for (e1, e2) in g1.edges().zip(g2.edges()) {
            assert_eq!(g1.edge(e1).src(), g2.edge(e2).src());
            for t in 0..30u64 {
                assert_eq!(g1.is_present(e1, &t), g2.is_present(e2, &t));
            }
        }
        // Contacts are symmetric and within the horizon.
        for e in g1.edges() {
            let (src, dst) = (g1.edge(e).src(), g1.edge(e).dst());
            let reverse = g1
                .edges()
                .find(|&r| g1.edge(r).src() == dst && g1.edge(r).dst() == src)
                .expect("both orientations exist");
            let mut ever = false;
            for t in 0..40u64 {
                assert_eq!(g1.is_present(e, &t), g1.is_present(reverse, &t));
                if g1.is_present(e, &t) {
                    assert!(t < 30, "contact beyond horizon");
                    ever = true;
                }
            }
            assert!(ever, "never-present pairs get no edge");
        }
    }

    #[test]
    fn edge_markovian_contacts_extreme_rates() {
        // p_birth=1, p_death=0: every pair present at every instant.
        let always = edge_markovian_contacts(4, 5, 1.0, 0.0, 1);
        assert_eq!(always.num_edges(), 12); // C(4,2) pairs × 2 orientations
        for e in always.edges() {
            for t in 0..5u64 {
                assert!(always.is_present(e, &t));
            }
        }
        // p_birth=0: nothing ever appears, no edges at all.
        let never = edge_markovian_contacts(4, 5, 0.0, 1.0, 1);
        assert_eq!(never.num_edges(), 0);
    }

    #[test]
    fn waypoint_walkers_meet_only_when_colocated() {
        let g = waypoint_grid_contacts(6, 3, 3, 40, 5);
        assert_eq!(g.num_nodes(), 6);
        // Reproducible.
        let g2 = waypoint_grid_contacts(6, 3, 3, 40, 5);
        assert_eq!(g.num_edges(), g2.num_edges());
        // On a 3×3 grid with 6 walkers over 40 instants, somebody meets.
        assert!(g.num_edges() > 0, "expected at least one contact");
        // Symmetric orientations.
        for e in g.edges() {
            let (src, dst) = (g.edge(e).src(), g.edge(e).dst());
            let reverse = g
                .edges()
                .find(|&r| g.edge(r).src() == dst && g.edge(r).dst() == src)
                .expect("both orientations exist");
            for t in 0..40u64 {
                assert_eq!(g.is_present(e, &t), g.is_present(reverse, &t));
            }
        }
    }

    #[test]
    fn waypoint_single_cell_grid_is_a_clique_at_every_instant() {
        // Everyone is stuck in the one cell: all pairs in contact always.
        let g = waypoint_grid_contacts(4, 1, 1, 6, 0);
        assert_eq!(g.num_edges(), 12);
        for e in g.edges() {
            for t in 0..6u64 {
                assert!(g.is_present(e, &t));
            }
        }
    }

    #[test]
    fn commuter_fleet_services_chain_toward_the_hub() {
        // One line, two stops, one run leaving the terminus at 0:
        // terminus →(0) mid →(1) hub, and hub →(0) mid →(1) terminus.
        let g = commuter_fleet(1, 2, 4, 0, 1);
        assert_eq!(g.num_nodes(), 3); // hub + 2 stops
        assert_eq!(g.num_edges(), 4);
        let find = |src: usize, dst: usize| {
            g.edges()
                .find(|&e| g.edge(e).src().index() == src && g.edge(e).dst().index() == dst)
                .expect("edge exists")
        };
        // Inbound: terminus (node 2) departs at 0, mid (node 1) at 1.
        assert_eq!(g.traverse(find(2, 1), &0), Some(1));
        assert_eq!(g.traverse(find(1, 0), &1), Some(2));
        assert_eq!(g.traverse(find(1, 0), &0), None);
        // Outbound mirrors the instants.
        assert_eq!(g.traverse(find(0, 1), &0), Some(1));
        assert_eq!(g.traverse(find(1, 2), &1), Some(2));
    }

    #[test]
    fn commuter_fleet_shift_staggers_lines() {
        // Two lines, shift 3: line 1's services depart 3 instants after
        // line 0's. Line 1's terminus is node 1 + 1*2 + 1 = 4.
        let g = commuter_fleet(2, 2, 8, 3, 2);
        assert_eq!(g.num_nodes(), 5);
        let find = |src: usize, dst: usize| {
            g.edges()
                .find(|&e| g.edge(e).src().index() == src && g.edge(e).dst().index() == dst)
                .expect("edge exists")
        };
        // Line 0 terminus = node 2: departures at 0 and 8.
        assert_eq!(g.traverse(find(2, 1), &0), Some(1));
        assert_eq!(g.traverse(find(2, 1), &8), Some(9));
        assert_eq!(g.traverse(find(2, 1), &3), None);
        // Line 1 terminus = node 4: departures at 3 and 11.
        assert_eq!(g.traverse(find(4, 3), &3), Some(4));
        assert_eq!(g.traverse(find(4, 3), &11), Some(12));
        assert_eq!(g.traverse(find(4, 3), &0), None);
    }

    #[test]
    fn degenerate_grids() {
        let line = grid_two_phase_tvg(1, 4, 'g');
        assert_eq!(line.num_nodes(), 4);
        assert_eq!(line.num_edges(), 4); // ring of horizontals only
        let column = grid_two_phase_tvg(3, 1, 'g');
        assert_eq!(column.num_edges(), 3); // ring of verticals only
    }

    #[test]
    fn peer_lifecycle_churn_is_a_valid_deterministic_feed() {
        use crate::stream::{StreamEvent, TvgStream};
        let feed = peer_lifecycle_churn(8, 3, 40, 11);
        let again = peer_lifecycle_churn(8, 3, 40, 11);
        assert_eq!(format!("{feed:?}"), format!("{again:?}"), "same seed");
        let other = peer_lifecycle_churn(8, 3, 40, 12);
        assert_ne!(format!("{feed:?}"), format!("{other:?}"), "seed matters");
        // Exactly n + swaps joins and swaps leaves, in a feed the
        // stream accepts end to end.
        let joins = feed
            .iter()
            .filter(|e| matches!(e, StreamEvent::NewNode { .. }))
            .count();
        let leaves = feed
            .iter()
            .filter(|e| matches!(e, StreamEvent::NodeLeave { .. }))
            .count();
        assert_eq!(joins, 8 + 3);
        assert_eq!(leaves, 3);
        let mut s = TvgStream::<u64>::new(40).expect("representable");
        s.ingest(&feed).expect("churn feed is a valid stream");
        assert_eq!(s.index().tvg().num_nodes(), 11);
        assert_eq!(s.num_departed(), 3);
        assert!(s.index().tvg().num_edges() > 0, "peers made contact");
        assert!(s.index().num_edge_events() > 0);
    }
}
