//! Presence and latency schedules: the functions `ρ` and `ζ` of a TVG.
//!
//! A time-varying graph `G = (V, E, T, ρ, ζ)` attaches to every edge a
//! *presence function* `ρ(e, ·) : T → {0,1}` and a *latency function*
//! `ζ(e, ·) : T → T`. This module represents both as small ASTs rather
//! than bare closures:
//!
//! * the paper's Table 1 is expressible structurally (`After`, `At`,
//!   [`Presence::PqPower`] for `t = pⁱqⁱ⁻¹`, affine latencies `(p−1)t`);
//! * Theorem 2.3's time dilation becomes a *syntactic* wrapper
//!   ([`Presence::dilate`] / [`Latency::dilate`]) with a testable
//!   contract;
//! * the Theorem 2.2 compiler can pattern-match on periodic structure;
//! * and [`Presence::Custom`] keeps the full computable generality that
//!   Theorem 2.1 requires (the environment may run a Turing machine).
//!
//! Arithmetic that can overflow the time representation is checked:
//! a latency whose value would overflow reports `None`, which callers
//! treat as "edge unusable at this time".

use crate::interval::IntervalSet;
use crate::Time;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use tvg_bigint::Nat;

/// A presence function `ρ(e, ·)` in AST form.
#[derive(Clone)]
pub enum Presence<T> {
    /// Present at every instant.
    Always,
    /// Never present.
    Never,
    /// Present only at exactly the given instant.
    At(T),
    /// Present at all instants strictly greater than the given one.
    After(T),
    /// Present at all instants strictly smaller than the given one.
    Before(T),
    /// Present on the inclusive window `[from, until]`.
    Window {
        /// First instant of availability.
        from: T,
        /// Last instant of availability.
        until: T,
    },
    /// Present at exactly the instants in the set (trace-driven TVGs).
    FiniteSet(BTreeSet<T>),
    /// Present iff `t mod period ∈ phases` — the recurrent/periodic class.
    Periodic {
        /// Period length (must be nonzero).
        period: u64,
        /// Phases within `0..period` at which the edge is present.
        phases: BTreeSet<u64>,
    },
    /// Present iff `t = pⁱ·qⁱ⁻¹` for some `i > 1` — the Table-1 predicate
    /// scheduling edge `e₄` of the paper's Figure 1.
    PqPower {
        /// First prime of the encoding.
        p: u64,
        /// Second prime of the encoding.
        q: u64,
    },
    /// Logical negation.
    Not(Box<Presence<T>>),
    /// Conjunction.
    And(Box<Presence<T>>, Box<Presence<T>>),
    /// Disjunction.
    Or(Box<Presence<T>>, Box<Presence<T>>),
    /// Time dilation by an integer factor (Theorem 2.3): present iff
    /// `factor | t` and the inner schedule is present at `t / factor`.
    Dilated {
        /// The dilation factor (must be nonzero).
        factor: u64,
        /// The undilated schedule.
        inner: Box<Presence<T>>,
    },
    /// An arbitrary computable predicate — the full generality of the
    /// paper's environment (Theorem 2.1 schedules run deciders here).
    Custom(Arc<dyn Fn(&T) -> bool + Send + Sync>),
}

impl<T: Time> Presence<T> {
    /// Evaluates `ρ` at instant `t`.
    ///
    /// ```
    /// use tvg_model::Presence;
    /// let rho = Presence::Periodic { period: 4, phases: [0u64, 1].into() };
    /// assert!(rho.is_present(&4u64));
    /// assert!(!rho.is_present(&6u64));
    /// ```
    #[must_use]
    pub fn is_present(&self, t: &T) -> bool {
        match self {
            Presence::Always => true,
            Presence::Never => false,
            Presence::At(c) => t == c,
            Presence::After(c) => t > c,
            Presence::Before(c) => t < c,
            Presence::Window { from, until } => t >= from && t <= until,
            Presence::FiniteSet(set) => set.contains(t),
            Presence::Periodic { period, phases } => phases.contains(&t.rem_u64(*period)),
            Presence::PqPower { p, q } => pq_power_index(t, *p, *q).is_some(),
            Presence::Not(inner) => !inner.is_present(t),
            Presence::And(a, b) => a.is_present(t) && b.is_present(t),
            Presence::Or(a, b) => a.is_present(t) || b.is_present(t),
            Presence::Dilated { factor, inner } => {
                let (quot, rem) = t.div_rem_u64(*factor);
                rem == 0 && inner.is_present(&quot)
            }
            Presence::Custom(f) => f(t),
        }
    }

    /// The earliest instant in `[from, until]` at which the edge is
    /// present, by linear scan.
    ///
    /// Used by waiting semantics over `u64` horizons; the scan is exact
    /// for every variant including [`Presence::Custom`].
    #[must_use]
    pub fn next_present_within(&self, from: &T, until: &T) -> Option<T> {
        let mut t = from.clone();
        while t <= *until {
            if self.is_present(&t) {
                return Some(t);
            }
            t = t.succ();
        }
        None
    }

    /// Compiles the schedule into its present-instant [`IntervalSet`]
    /// over the inclusive horizon `[0, horizon]` — the entry point of the
    /// compiled query path ([`crate::TvgIndex`]).
    ///
    /// Structural variants compile without evaluating the predicate
    /// (`Periodic` emits one run per phase block, boolean combinators
    /// become interval algebra, `Dilated` maps the inner instants onto
    /// multiples); [`Presence::Custom`] falls back to an exact linear
    /// scan of `[0, horizon]`, so compilation is never wrong, only
    /// sometimes as slow as the closure it replaces.
    ///
    /// The result agrees with [`Presence::is_present`] on every `t <=
    /// horizon`; instants beyond the horizon are absent from the set.
    /// Arithmetic that would overflow the representation is treated as
    /// "beyond the horizon", matching the checked-latency convention.
    /// One consequence: the very top of a bounded time domain (e.g.
    /// `u64::MAX` itself) has no representable half-open span end, so a
    /// horizon there compiles the domain's *predecessor* window instead
    /// of wrapping — sentinel "unbounded" horizons stay safe.
    #[must_use]
    pub fn intervals(&self, horizon: &T) -> IntervalSet<T> {
        // Exclusive end of the compiled window, with the top-of-domain
        // horizon clamped rather than overflowed.
        let (horizon_eff, end) = match horizon.checked_add(&T::one()) {
            Some(end) => (horizon.clone(), end),
            None => (
                horizon
                    .checked_sub(&T::one())
                    .expect("a maximal time is nonzero"),
                horizon.clone(),
            ),
        };
        let horizon = &horizon_eff;
        match self {
            Presence::Always => IntervalSet::up_to(end),
            Presence::Never => IntervalSet::empty(),
            Presence::At(c) => {
                if c <= horizon {
                    IntervalSet::point(c.clone())
                } else {
                    IntervalSet::empty()
                }
            }
            Presence::After(c) => {
                if c < horizon {
                    IntervalSet::from_spans(vec![(c.succ(), end)])
                } else {
                    IntervalSet::empty()
                }
            }
            Presence::Before(c) => IntervalSet::up_to(c.clone().min(end)),
            Presence::Window { from, until } => {
                if from > until || from > horizon {
                    IntervalSet::empty()
                } else {
                    // Clamp before succ: `until` may be the largest
                    // representable instant (succ would overflow).
                    let span_end = if until >= horizon { end } else { until.succ() };
                    IntervalSet::from_spans(vec![(from.clone(), span_end)])
                }
            }
            Presence::FiniteSet(set) => IntervalSet::from_spans(
                set.iter()
                    .filter(|t| *t <= horizon)
                    .map(|t| (t.clone(), t.succ()))
                    .collect(),
            ),
            Presence::Periodic { period, phases } => {
                periodic_intervals(*period, phases, horizon, &end)
            }
            Presence::PqPower { p, q } => pq_power_intervals(*p, *q, horizon),
            Presence::Not(inner) => inner.intervals(horizon).complement_within(&end),
            Presence::And(a, b) => a.intervals(horizon).intersect(&b.intervals(horizon)),
            Presence::Or(a, b) => a.intervals(horizon).union(&b.intervals(horizon)),
            Presence::Dilated { factor, inner } => {
                let (inner_horizon, _) = horizon.div_rem_u64(*factor);
                let compiled = inner.intervals(&inner_horizon);
                IntervalSet::from_spans(
                    compiled
                        .instants_within(&T::zero(), &inner_horizon)
                        .filter_map(|t| {
                            let scaled = t.checked_mul_u64(*factor)?;
                            let scaled_end = scaled.succ();
                            Some((scaled, scaled_end))
                        })
                        .collect(),
                )
            }
            Presence::Custom(f) => scan_intervals(|t| f(t), horizon, &end),
        }
    }

    /// Wraps the schedule in a time dilation by `factor` (Theorem 2.3).
    ///
    /// The dilated schedule is present exactly at `{factor · t : ρ(t)=1}`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    #[must_use]
    pub fn dilate(self, factor: u64) -> Presence<T> {
        assert!(factor != 0, "dilation factor must be nonzero");
        if factor == 1 {
            return self;
        }
        Presence::Dilated {
            factor,
            inner: Box::new(self),
        }
    }

    /// Convenience: a custom presence from a closure.
    pub fn from_fn(f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Presence<T> {
        Presence::Custom(Arc::new(f))
    }
}

impl<T: fmt::Debug> fmt::Debug for Presence<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Presence::Always => write!(f, "Always"),
            Presence::Never => write!(f, "Never"),
            Presence::At(t) => write!(f, "At({t:?})"),
            Presence::After(t) => write!(f, "After({t:?})"),
            Presence::Before(t) => write!(f, "Before({t:?})"),
            Presence::Window { from, until } => write!(f, "Window({from:?}..={until:?})"),
            Presence::FiniteSet(s) => write!(f, "FiniteSet({s:?})"),
            Presence::Periodic { period, phases } => {
                write!(f, "Periodic(mod {period} in {phases:?})")
            }
            Presence::PqPower { p, q } => write!(f, "PqPower(t = {p}^i * {q}^(i-1), i > 1)"),
            Presence::Not(x) => write!(f, "Not({x:?})"),
            Presence::And(a, b) => write!(f, "And({a:?}, {b:?})"),
            Presence::Or(a, b) => write!(f, "Or({a:?}, {b:?})"),
            Presence::Dilated { factor, inner } => write!(f, "Dilated(x{factor}, {inner:?})"),
            Presence::Custom(_) => write!(f, "Custom(<fn>)"),
        }
    }
}

/// Compiles `t mod period ∈ phases` over `[0, horizon]`: one span per
/// run of consecutive phases per period block, merged across block
/// boundaries by normalization.
fn periodic_intervals<T: Time>(
    period: u64,
    phases: &BTreeSet<u64>,
    horizon: &T,
    end: &T,
) -> IntervalSet<T> {
    assert!(period != 0, "time modulus must be nonzero");
    // Maximal runs [a, b) of consecutive phases within 0..period.
    let mut runs: Vec<(u64, u64)> = Vec::new();
    // Phases ≥ period can never match `t mod period`; skip them so the
    // compiled set agrees with `is_present` even on such inputs.
    for &ph in phases.iter().filter(|&&ph| ph < period) {
        match runs.last_mut() {
            Some((_, b)) if *b == ph => *b = ph + 1,
            _ => runs.push((ph, ph + 1)),
        }
    }
    let mut spans = Vec::new();
    let mut block = T::zero();
    'blocks: loop {
        for (a, b) in &runs {
            let Some(start) = block.checked_add(&T::from_u64(*a)) else {
                break 'blocks;
            };
            if start > *horizon {
                break;
            }
            let span_end = match block.checked_add(&T::from_u64(*b)) {
                Some(e) => e.min(end.clone()),
                None => end.clone(),
            };
            spans.push((start, span_end));
        }
        match block.checked_add(&T::from_u64(period)) {
            Some(next) if next <= *horizon => block = next,
            _ => break,
        }
    }
    IntervalSet::from_spans(spans)
}

/// Compiles `t = pⁱ·qⁱ⁻¹ (i > 1)` over `[0, horizon]` by enumerating the
/// (geometrically growing) witnesses directly.
fn pq_power_intervals<T: Time>(p: u64, q: u64, horizon: &T) -> IntervalSet<T> {
    if p.saturating_mul(q) <= 1 {
        // Degenerate parameters (p·q ≤ 1): the witness sequence does not
        // grow, so enumerate by exact scan instead.
        let end = horizon.succ();
        return scan_intervals(|t| pq_power_index(t, p, q).is_some(), horizon, &end);
    }
    let mut spans = Vec::new();
    // i = 2: t = p²·q.
    let mut t = T::from_u64(p)
        .checked_mul_u64(p)
        .and_then(|v| v.checked_mul_u64(q));
    while let Some(v) = t {
        if v > *horizon {
            break;
        }
        let v_end = v.succ();
        spans.push((v.clone(), v_end));
        t = v.checked_mul_u64(p).and_then(|w| w.checked_mul_u64(q));
    }
    IntervalSet::from_spans(spans)
}

/// Exact linear-scan compilation for opaque predicates: walks
/// `[0, horizon]` once, emitting one span per maximal run of presence.
fn scan_intervals<T: Time>(pred: impl Fn(&T) -> bool, horizon: &T, end: &T) -> IntervalSet<T> {
    let mut spans = Vec::new();
    let mut run_start: Option<T> = None;
    let mut t = T::zero();
    loop {
        if pred(&t) {
            if run_start.is_none() {
                run_start = Some(t.clone());
            }
        } else if let Some(start) = run_start.take() {
            spans.push((start, t.clone()));
        }
        if t == *horizon {
            break;
        }
        t = t.succ();
    }
    if let Some(start) = run_start {
        spans.push((start, end.clone()));
    }
    IntervalSet::from_spans(spans)
}

/// Returns `i` such that `t = pⁱ·qⁱ⁻¹` with `i > 1`, if it exists.
///
/// This is the presence predicate of edge `e₄` in the paper's Table 1,
/// evaluated by prime-power decomposition.
#[must_use]
pub fn pq_power_index<T: Time>(t: &T, p: u64, q: u64) -> Option<u32> {
    // Work in Nat regardless of the time representation: decomposition
    // needs exact division.
    let tn = to_nat(t);
    if tn.is_zero() {
        return None;
    }
    let (alpha, beta) = tn.decompose_pq(&Nat::from(p), &Nat::from(q))?;
    (alpha > 1 && alpha == beta + 1).then_some(alpha)
}

fn to_nat<T: Time>(t: &T) -> Nat {
    // Digits in base 2^32 via repeated division keep this exact for any
    // Time implementation; the common cases (u64, Nat) stay cheap.
    if let Some(v) = t.to_u64() {
        return Nat::from(v);
    }
    let mut digits: Vec<u64> = Vec::new();
    let base = 1u64 << 32;
    let mut cur = t.clone();
    while cur > T::zero() {
        let (q, r) = cur.div_rem_u64(base);
        digits.push(r);
        cur = q;
    }
    let mut out = Nat::zero();
    for &d in digits.iter().rev() {
        out = out * Nat::from(base) + Nat::from(d);
    }
    out
}

/// A latency function `ζ(e, ·)` in AST form.
#[derive(Clone)]
pub enum Latency<T> {
    /// Constant crossing time.
    Const(T),
    /// Affine in the departure time: `ζ(t) = mul · t + add`.
    ///
    /// Table 1's `(p−1)t` is `Affine { mul: p−1, add: 0 }`.
    Affine {
        /// Coefficient on the departure time.
        mul: u64,
        /// Constant term.
        add: T,
    },
    /// Dilated latency (Theorem 2.3): `ζ'(t) = factor · ζ(t / factor)`,
    /// meaningful at instants divisible by `factor` (which is exactly
    /// where the dilated presence allows departures).
    Dilated {
        /// The dilation factor (must be nonzero).
        factor: u64,
        /// The undilated latency.
        inner: Box<Latency<T>>,
    },
    /// An arbitrary computable latency.
    Custom(Arc<dyn Fn(&T) -> T + Send + Sync>),
}

impl<T: Time> Latency<T> {
    /// Evaluates `ζ` at departure instant `t`; `None` if the value
    /// overflows the time representation.
    ///
    /// ```
    /// use tvg_model::Latency;
    /// let zeta = Latency::Affine { mul: 1, add: 0u64 }; // ζ(t) = t, so arrival 2t
    /// assert_eq!(zeta.at(&21u64), Some(21));
    /// ```
    #[must_use]
    pub fn at(&self, t: &T) -> Option<T> {
        match self {
            Latency::Const(c) => Some(c.clone()),
            Latency::Affine { mul, add } => t.checked_mul_u64(*mul)?.checked_add(add),
            Latency::Dilated { factor, inner } => {
                let (quot, _rem) = t.div_rem_u64(*factor);
                inner.at(&quot)?.checked_mul_u64(*factor)
            }
            Latency::Custom(f) => Some(f(t)),
        }
    }

    /// Arrival time of a crossing departing at `t`: `t + ζ(t)`, or `None`
    /// on overflow.
    #[must_use]
    pub fn arrival(&self, t: &T) -> Option<T> {
        t.checked_add(&self.at(t)?)
    }

    /// Whether the *arrival* `t + ζ(t)` is known to be non-decreasing in
    /// the departure `t` — the property that lets a search take only the
    /// earliest departure of an edge instead of trying every one.
    ///
    /// Conservative: `true` only for shapes where monotonicity is a
    /// theorem (`Const`: `t + c`; `Affine`: `(1 + mul)·t + add`).
    /// `Custom` is opaque and `Dilated` can regress between multiples of
    /// the factor (floor division in the wrapper), so both report
    /// `false` and callers must scan the window.
    #[must_use]
    pub fn arrival_is_monotone(&self) -> bool {
        matches!(self, Latency::Const(_) | Latency::Affine { .. })
    }

    /// Wraps the latency in a time dilation by `factor` (Theorem 2.3).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    #[must_use]
    pub fn dilate(self, factor: u64) -> Latency<T> {
        assert!(factor != 0, "dilation factor must be nonzero");
        if factor == 1 {
            return self;
        }
        Latency::Dilated {
            factor,
            inner: Box::new(self),
        }
    }

    /// Convenience: a custom latency from a closure.
    pub fn from_fn(f: impl Fn(&T) -> T + Send + Sync + 'static) -> Latency<T> {
        Latency::Custom(Arc::new(f))
    }

    /// The unit latency `ζ ≡ 1` (the default for simulation TVGs).
    #[must_use]
    pub fn unit() -> Latency<T> {
        Latency::Const(T::one())
    }
}

impl<T: fmt::Debug> fmt::Debug for Latency<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Latency::Const(c) => write!(f, "Const({c:?})"),
            Latency::Affine { mul, add } => write!(f, "Affine({mul}·t + {add:?})"),
            Latency::Dilated { factor, inner } => write!(f, "Dilated(x{factor}, {inner:?})"),
            Latency::Custom(_) => write!(f, "Custom(<fn>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_presence_variants() {
        assert!(Presence::<u64>::Always.is_present(&0));
        assert!(!Presence::<u64>::Never.is_present(&0));
        assert!(Presence::At(5u64).is_present(&5));
        assert!(!Presence::At(5u64).is_present(&6));
        assert!(Presence::After(5u64).is_present(&6));
        assert!(!Presence::After(5u64).is_present(&5));
        assert!(Presence::Before(5u64).is_present(&4));
        assert!(!Presence::Before(5u64).is_present(&5));
        let w = Presence::Window {
            from: 3u64,
            until: 5,
        };
        assert!(w.is_present(&3) && w.is_present(&5));
        assert!(!w.is_present(&2) && !w.is_present(&6));
    }

    #[test]
    fn finite_set_and_boolean_combinators() {
        let s = Presence::FiniteSet(BTreeSet::from([2u64, 4, 8]));
        assert!(s.is_present(&4));
        assert!(!s.is_present(&3));
        let not = Presence::Not(Box::new(s.clone()));
        assert!(not.is_present(&3));
        let and = Presence::And(Box::new(s.clone()), Box::new(Presence::After(3)));
        assert!(and.is_present(&4));
        assert!(!and.is_present(&2));
        let or = Presence::Or(Box::new(s), Box::new(Presence::At(3)));
        assert!(or.is_present(&3));
        assert!(or.is_present(&2));
        assert!(!or.is_present(&5));
    }

    #[test]
    fn periodic_presence() {
        let p = Presence::Periodic {
            period: 3,
            phases: BTreeSet::from([1u64]),
        };
        for t in 0u64..20 {
            assert_eq!(p.is_present(&t), t % 3 == 1, "t={t}");
        }
    }

    #[test]
    fn pq_power_predicate_matches_definition() {
        let (p, q) = (2u64, 3u64);
        let rho = Presence::PqPower { p, q };
        // Collect all t = 2^i 3^(i-1), i in 2..6: 12, 72, 432, 2592.
        let mut expected = BTreeSet::new();
        for i in 2u32..6 {
            expected.insert(2u64.pow(i) * 3u64.pow(i - 1));
        }
        for t in 0u64..3000 {
            assert_eq!(rho.is_present(&t), expected.contains(&t), "t={t}");
        }
        // i = 1 gives t = p, which must NOT satisfy the predicate.
        assert!(!rho.is_present(&2u64));
    }

    #[test]
    fn pq_power_on_bigint_times() {
        let p = Nat::from(2u64);
        let q = Nat::from(3u64);
        let t = p.pow(40) * q.pow(39);
        assert_eq!(pq_power_index(&t, 2, 3), Some(40));
        assert_eq!(pq_power_index(&(t * Nat::from(5u64)), 2, 3), None);
        assert_eq!(pq_power_index(&Nat::zero(), 2, 3), None);
        assert_eq!(pq_power_index(&Nat::one(), 2, 3), None); // i=0 not allowed
    }

    #[test]
    fn next_present_scans() {
        let p = Presence::Periodic {
            period: 5,
            phases: BTreeSet::from([3u64]),
        };
        assert_eq!(p.next_present_within(&0u64, &10), Some(3));
        assert_eq!(p.next_present_within(&4u64, &10), Some(8));
        assert_eq!(p.next_present_within(&9u64, &12), None);
        assert_eq!(Presence::<u64>::Never.next_present_within(&0, &100), None);
    }

    #[test]
    fn dilation_contract_presence() {
        let inner = Presence::Periodic {
            period: 2,
            phases: BTreeSet::from([1u64]),
        };
        let dilated = inner.clone().dilate(3);
        for t in 0u64..30 {
            let expected = t % 3 == 0 && inner.is_present(&(t / 3));
            assert_eq!(dilated.is_present(&t), expected, "t={t}");
        }
    }

    #[test]
    fn dilation_by_one_is_identity() {
        let p = Presence::At(4u64).dilate(1);
        assert!(matches!(p, Presence::At(4)));
        let l = Latency::Const(2u64).dilate(1);
        assert!(matches!(l, Latency::Const(2)));
    }

    #[test]
    #[should_panic(expected = "dilation factor must be nonzero")]
    fn zero_dilation_panics() {
        let _ = Presence::<u64>::Always.dilate(0);
    }

    #[test]
    fn latency_variants() {
        assert_eq!(Latency::Const(7u64).at(&100), Some(7));
        assert_eq!(Latency::Const(7u64).arrival(&100), Some(107));
        // ζ(t) = (p-1)·t with p=2: arrival doubles the time.
        let zeta = Latency::Affine { mul: 1, add: 0u64 };
        assert_eq!(zeta.arrival(&8), Some(16));
        let zeta5 = Latency::Affine { mul: 4, add: 0u64 };
        assert_eq!(zeta5.arrival(&3), Some(15)); // 3 + 4*3 = 15 = 5*3
        assert_eq!(Latency::<u64>::unit().at(&0), Some(1));
    }

    #[test]
    fn arrival_monotonicity_is_conservative() {
        assert!(Latency::<u64>::Const(3).arrival_is_monotone());
        assert!(Latency::Affine { mul: 2, add: 1u64 }.arrival_is_monotone());
        assert!(!Latency::<u64>::from_fn(|t| 100u64.saturating_sub(*t)).arrival_is_monotone());
        // Dilated regresses between factor multiples (floor division in
        // the wrapper), so it must not claim monotonicity.
        assert!(!Latency::Const(5u64).dilate(4).arrival_is_monotone());
    }

    #[test]
    fn latency_overflow_is_none() {
        let zeta = Latency::Affine { mul: 2, add: 0u64 };
        assert_eq!(zeta.at(&(u64::MAX / 2 + 1)), None);
        assert_eq!(Latency::Const(u64::MAX).arrival(&1), None);
    }

    #[test]
    fn latency_dilation_contract() {
        // inner ζ(t) = 3t (affine), factor 4: ζ'(4t) = 4·(3t) = 12t,
        // arrival' (4t) = 4t + 12t = 4·(t + 3t).
        let inner = Latency::Affine { mul: 3, add: 0u64 };
        let dilated = inner.clone().dilate(4);
        for t in 0u64..50 {
            let inner_arrival = inner.arrival(&t).expect("no overflow");
            assert_eq!(dilated.arrival(&(t * 4)), Some(inner_arrival * 4), "t={t}");
        }
    }

    #[test]
    fn custom_schedules() {
        let rho = Presence::from_fn(|t: &u64| t.is_power_of_two());
        assert!(rho.is_present(&8));
        assert!(!rho.is_present(&9));
        let zeta = Latency::from_fn(|t: &u64| t * t);
        assert_eq!(zeta.at(&5), Some(25));
    }

    #[test]
    fn custom_dilated_composes() {
        // Dilating a custom schedule still works: the wrapper divides time
        // before delegating.
        let rho = Presence::from_fn(|t: &u64| *t == 5).dilate(2);
        assert!(rho.is_present(&10));
        assert!(!rho.is_present(&5));
        assert!(!rho.is_present(&11));
    }

    #[test]
    fn debug_output_is_informative() {
        let rho = Presence::<u64>::PqPower { p: 2, q: 3 };
        assert!(format!("{rho:?}").contains("2^i"));
        let zeta = Latency::Affine { mul: 1, add: 0u64 };
        assert!(format!("{zeta:?}").contains("Affine"));
        assert_eq!(
            format!("{:?}", Presence::<u64>::from_fn(|_| true)),
            "Custom(<fn>)"
        );
    }

    /// Exhaustive agreement between the compiled interval set and the
    /// closure evaluation, on and beyond the horizon.
    fn assert_compiles_exactly(rho: &Presence<u64>, horizon: u64) {
        let set = rho.intervals(&horizon);
        for t in 0..=horizon {
            assert_eq!(
                set.contains(&t),
                rho.is_present(&t),
                "{rho:?} at t={t} (horizon {horizon})"
            );
        }
        for t in horizon + 1..horizon + 5 {
            assert!(!set.contains(&t), "{rho:?} beyond horizon at t={t}");
        }
    }

    #[test]
    fn intervals_match_closures_structurally() {
        let h = 40u64;
        assert_compiles_exactly(&Presence::Always, h);
        assert_compiles_exactly(&Presence::Never, h);
        assert_compiles_exactly(&Presence::At(7), h);
        assert_compiles_exactly(&Presence::At(41), h);
        assert_compiles_exactly(&Presence::After(10), h);
        assert_compiles_exactly(&Presence::After(40), h);
        assert_compiles_exactly(&Presence::Before(12), h);
        assert_compiles_exactly(&Presence::Window { from: 5, until: 9 }, h);
        assert_compiles_exactly(
            &Presence::Window {
                from: 38,
                until: 90,
            },
            h,
        );
        // Regression: a window ending at the largest representable
        // instant must clamp to the horizon, not overflow on succ.
        assert_compiles_exactly(
            &Presence::Window {
                from: 3,
                until: u64::MAX,
            },
            h,
        );
        assert_compiles_exactly(&Presence::FiniteSet(BTreeSet::from([1, 2, 3, 17, 99])), h);
        assert_compiles_exactly(
            &Presence::Periodic {
                period: 6,
                phases: BTreeSet::from([0, 1, 4]),
            },
            h,
        );
        assert_compiles_exactly(&Presence::PqPower { p: 2, q: 3 }, 3000);
    }

    #[test]
    fn intervals_match_closures_combinators() {
        let h = 50u64;
        let periodic = Presence::Periodic {
            period: 4,
            phases: BTreeSet::from([1, 2]),
        };
        assert_compiles_exactly(&Presence::Not(Box::new(periodic.clone())), h);
        assert_compiles_exactly(
            &Presence::And(Box::new(periodic.clone()), Box::new(Presence::After(13))),
            h,
        );
        assert_compiles_exactly(
            &Presence::Or(Box::new(periodic.clone()), Box::new(Presence::At(3))),
            h,
        );
        assert_compiles_exactly(&periodic.clone().dilate(3), h);
        assert_compiles_exactly(&Presence::from_fn(|t: &u64| t.is_power_of_two()), h);
        assert_compiles_exactly(&Presence::from_fn(|_| true), h);
    }

    #[test]
    fn periodic_intervals_merge_runs_across_blocks() {
        // All phases present: one contiguous span, not horizon/period many.
        let rho = Presence::Periodic {
            period: 3,
            phases: BTreeSet::from([0u64, 1, 2]),
        };
        let set = rho.intervals(&29u64);
        assert_eq!(set.num_spans(), 1);
        assert_eq!(set.spans(), &[(0, 30)]);
        // Out-of-range phases never match `t mod period`.
        let bogus = Presence::Periodic {
            period: 3,
            phases: BTreeSet::from([1u64, 7]),
        };
        assert_compiles_exactly(&bogus, 20);
    }

    #[test]
    fn intervals_at_the_top_of_the_domain_clamp_instead_of_wrapping() {
        // u64::MAX has no representable half-open span end; a sentinel
        // "unbounded" horizon must compile the predecessor window, not
        // wrap to an empty (or panicking) one.
        let always = Presence::<u64>::Always.intervals(&u64::MAX);
        assert_eq!(always.spans(), &[(0, u64::MAX)]);
        assert!(always.contains(&(u64::MAX - 1)));
        let window = Presence::Window {
            from: 10u64,
            until: u64::MAX,
        }
        .intervals(&u64::MAX);
        assert_eq!(window.spans(), &[(10, u64::MAX)]);
        let late = Presence::At(u64::MAX - 1).intervals(&u64::MAX);
        assert!(late.contains(&(u64::MAX - 1)));
    }

    #[test]
    fn intervals_on_bigint_times() {
        let rho = Presence::PqPower { p: 2, q: 3 };
        let horizon = Nat::from(3000u64);
        let set = rho.intervals(&horizon);
        let expected: Vec<(Nat, Nat)> = [12u64, 72, 432, 2592]
            .iter()
            .map(|&t| (Nat::from(t), Nat::from(t + 1)))
            .collect();
        assert_eq!(set.spans(), &expected[..]);
    }

    #[test]
    fn interval_next_within_matches_scan() {
        let rho = Presence::Periodic {
            period: 5,
            phases: BTreeSet::from([3u64]),
        };
        let set = rho.intervals(&12u64);
        assert_eq!(set.next_within(&0, &10), rho.next_present_within(&0, &10));
        assert_eq!(set.next_within(&4, &10), rho.next_present_within(&4, &10));
        assert_eq!(set.next_within(&9, &12), rho.next_present_within(&9, &12));
    }

    #[test]
    fn bigint_affine_latency_never_overflows() {
        let zeta = Latency::Affine {
            mul: u64::MAX,
            add: Nat::zero(),
        };
        let t = Nat::from(u64::MAX);
        assert!(zeta.arrival(&t).is_some());
    }
}
