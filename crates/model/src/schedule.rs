//! Presence and latency schedules: the functions `ρ` and `ζ` of a TVG.
//!
//! A time-varying graph `G = (V, E, T, ρ, ζ)` attaches to every edge a
//! *presence function* `ρ(e, ·) : T → {0,1}` and a *latency function*
//! `ζ(e, ·) : T → T`. This module represents both as small ASTs rather
//! than bare closures:
//!
//! * the paper's Table 1 is expressible structurally (`After`, `At`,
//!   [`Presence::PqPower`] for `t = pⁱqⁱ⁻¹`, affine latencies `(p−1)t`);
//! * Theorem 2.3's time dilation becomes a *syntactic* wrapper
//!   ([`Presence::dilate`] / [`Latency::dilate`]) with a testable
//!   contract;
//! * the Theorem 2.2 compiler can pattern-match on periodic structure;
//! * and [`Presence::Custom`] keeps the full computable generality that
//!   Theorem 2.1 requires (the environment may run a Turing machine).
//!
//! Arithmetic that can overflow the time representation is checked:
//! a latency whose value would overflow reports `None`, which callers
//! treat as "edge unusable at this time".

use crate::Time;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use tvg_bigint::Nat;

/// A presence function `ρ(e, ·)` in AST form.
#[derive(Clone)]
pub enum Presence<T> {
    /// Present at every instant.
    Always,
    /// Never present.
    Never,
    /// Present only at exactly the given instant.
    At(T),
    /// Present at all instants strictly greater than the given one.
    After(T),
    /// Present at all instants strictly smaller than the given one.
    Before(T),
    /// Present on the inclusive window `[from, until]`.
    Window {
        /// First instant of availability.
        from: T,
        /// Last instant of availability.
        until: T,
    },
    /// Present at exactly the instants in the set (trace-driven TVGs).
    FiniteSet(BTreeSet<T>),
    /// Present iff `t mod period ∈ phases` — the recurrent/periodic class.
    Periodic {
        /// Period length (must be nonzero).
        period: u64,
        /// Phases within `0..period` at which the edge is present.
        phases: BTreeSet<u64>,
    },
    /// Present iff `t = pⁱ·qⁱ⁻¹` for some `i > 1` — the Table-1 predicate
    /// scheduling edge `e₄` of the paper's Figure 1.
    PqPower {
        /// First prime of the encoding.
        p: u64,
        /// Second prime of the encoding.
        q: u64,
    },
    /// Logical negation.
    Not(Box<Presence<T>>),
    /// Conjunction.
    And(Box<Presence<T>>, Box<Presence<T>>),
    /// Disjunction.
    Or(Box<Presence<T>>, Box<Presence<T>>),
    /// Time dilation by an integer factor (Theorem 2.3): present iff
    /// `factor | t` and the inner schedule is present at `t / factor`.
    Dilated {
        /// The dilation factor (must be nonzero).
        factor: u64,
        /// The undilated schedule.
        inner: Box<Presence<T>>,
    },
    /// An arbitrary computable predicate — the full generality of the
    /// paper's environment (Theorem 2.1 schedules run deciders here).
    Custom(Arc<dyn Fn(&T) -> bool + Send + Sync>),
}

impl<T: Time> Presence<T> {
    /// Evaluates `ρ` at instant `t`.
    ///
    /// ```
    /// use tvg_model::Presence;
    /// let rho = Presence::Periodic { period: 4, phases: [0u64, 1].into() };
    /// assert!(rho.is_present(&4u64));
    /// assert!(!rho.is_present(&6u64));
    /// ```
    #[must_use]
    pub fn is_present(&self, t: &T) -> bool {
        match self {
            Presence::Always => true,
            Presence::Never => false,
            Presence::At(c) => t == c,
            Presence::After(c) => t > c,
            Presence::Before(c) => t < c,
            Presence::Window { from, until } => t >= from && t <= until,
            Presence::FiniteSet(set) => set.contains(t),
            Presence::Periodic { period, phases } => phases.contains(&t.rem_u64(*period)),
            Presence::PqPower { p, q } => pq_power_index(t, *p, *q).is_some(),
            Presence::Not(inner) => !inner.is_present(t),
            Presence::And(a, b) => a.is_present(t) && b.is_present(t),
            Presence::Or(a, b) => a.is_present(t) || b.is_present(t),
            Presence::Dilated { factor, inner } => {
                let (quot, rem) = t.div_rem_u64(*factor);
                rem == 0 && inner.is_present(&quot)
            }
            Presence::Custom(f) => f(t),
        }
    }

    /// The earliest instant in `[from, until]` at which the edge is
    /// present, by linear scan.
    ///
    /// Used by waiting semantics over `u64` horizons; the scan is exact
    /// for every variant including [`Presence::Custom`].
    #[must_use]
    pub fn next_present_within(&self, from: &T, until: &T) -> Option<T> {
        let mut t = from.clone();
        while t <= *until {
            if self.is_present(&t) {
                return Some(t);
            }
            t = t.succ();
        }
        None
    }

    /// Wraps the schedule in a time dilation by `factor` (Theorem 2.3).
    ///
    /// The dilated schedule is present exactly at `{factor · t : ρ(t)=1}`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    #[must_use]
    pub fn dilate(self, factor: u64) -> Presence<T> {
        assert!(factor != 0, "dilation factor must be nonzero");
        if factor == 1 {
            return self;
        }
        Presence::Dilated {
            factor,
            inner: Box::new(self),
        }
    }

    /// Convenience: a custom presence from a closure.
    pub fn from_fn(f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Presence<T> {
        Presence::Custom(Arc::new(f))
    }
}

impl<T: fmt::Debug> fmt::Debug for Presence<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Presence::Always => write!(f, "Always"),
            Presence::Never => write!(f, "Never"),
            Presence::At(t) => write!(f, "At({t:?})"),
            Presence::After(t) => write!(f, "After({t:?})"),
            Presence::Before(t) => write!(f, "Before({t:?})"),
            Presence::Window { from, until } => write!(f, "Window({from:?}..={until:?})"),
            Presence::FiniteSet(s) => write!(f, "FiniteSet({s:?})"),
            Presence::Periodic { period, phases } => {
                write!(f, "Periodic(mod {period} in {phases:?})")
            }
            Presence::PqPower { p, q } => write!(f, "PqPower(t = {p}^i * {q}^(i-1), i > 1)"),
            Presence::Not(x) => write!(f, "Not({x:?})"),
            Presence::And(a, b) => write!(f, "And({a:?}, {b:?})"),
            Presence::Or(a, b) => write!(f, "Or({a:?}, {b:?})"),
            Presence::Dilated { factor, inner } => write!(f, "Dilated(x{factor}, {inner:?})"),
            Presence::Custom(_) => write!(f, "Custom(<fn>)"),
        }
    }
}

/// Returns `i` such that `t = pⁱ·qⁱ⁻¹` with `i > 1`, if it exists.
///
/// This is the presence predicate of edge `e₄` in the paper's Table 1,
/// evaluated by prime-power decomposition.
#[must_use]
pub fn pq_power_index<T: Time>(t: &T, p: u64, q: u64) -> Option<u32> {
    // Work in Nat regardless of the time representation: decomposition
    // needs exact division.
    let tn = to_nat(t);
    if tn.is_zero() {
        return None;
    }
    let (alpha, beta) = tn.decompose_pq(&Nat::from(p), &Nat::from(q))?;
    (alpha > 1 && alpha == beta + 1).then_some(alpha)
}

fn to_nat<T: Time>(t: &T) -> Nat {
    // Digits in base 2^32 via repeated division keep this exact for any
    // Time implementation; the common cases (u64, Nat) stay cheap.
    if let Some(v) = t.to_u64() {
        return Nat::from(v);
    }
    let mut digits: Vec<u64> = Vec::new();
    let base = 1u64 << 32;
    let mut cur = t.clone();
    while cur > T::zero() {
        let (q, r) = cur.div_rem_u64(base);
        digits.push(r);
        cur = q;
    }
    let mut out = Nat::zero();
    for &d in digits.iter().rev() {
        out = out * Nat::from(base) + Nat::from(d);
    }
    out
}

/// A latency function `ζ(e, ·)` in AST form.
#[derive(Clone)]
pub enum Latency<T> {
    /// Constant crossing time.
    Const(T),
    /// Affine in the departure time: `ζ(t) = mul · t + add`.
    ///
    /// Table 1's `(p−1)t` is `Affine { mul: p−1, add: 0 }`.
    Affine {
        /// Coefficient on the departure time.
        mul: u64,
        /// Constant term.
        add: T,
    },
    /// Dilated latency (Theorem 2.3): `ζ'(t) = factor · ζ(t / factor)`,
    /// meaningful at instants divisible by `factor` (which is exactly
    /// where the dilated presence allows departures).
    Dilated {
        /// The dilation factor (must be nonzero).
        factor: u64,
        /// The undilated latency.
        inner: Box<Latency<T>>,
    },
    /// An arbitrary computable latency.
    Custom(Arc<dyn Fn(&T) -> T + Send + Sync>),
}

impl<T: Time> Latency<T> {
    /// Evaluates `ζ` at departure instant `t`; `None` if the value
    /// overflows the time representation.
    ///
    /// ```
    /// use tvg_model::Latency;
    /// let zeta = Latency::Affine { mul: 1, add: 0u64 }; // ζ(t) = t, so arrival 2t
    /// assert_eq!(zeta.at(&21u64), Some(21));
    /// ```
    #[must_use]
    pub fn at(&self, t: &T) -> Option<T> {
        match self {
            Latency::Const(c) => Some(c.clone()),
            Latency::Affine { mul, add } => t.checked_mul_u64(*mul)?.checked_add(add),
            Latency::Dilated { factor, inner } => {
                let (quot, _rem) = t.div_rem_u64(*factor);
                inner.at(&quot)?.checked_mul_u64(*factor)
            }
            Latency::Custom(f) => Some(f(t)),
        }
    }

    /// Arrival time of a crossing departing at `t`: `t + ζ(t)`, or `None`
    /// on overflow.
    #[must_use]
    pub fn arrival(&self, t: &T) -> Option<T> {
        t.checked_add(&self.at(t)?)
    }

    /// Wraps the latency in a time dilation by `factor` (Theorem 2.3).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    #[must_use]
    pub fn dilate(self, factor: u64) -> Latency<T> {
        assert!(factor != 0, "dilation factor must be nonzero");
        if factor == 1 {
            return self;
        }
        Latency::Dilated {
            factor,
            inner: Box::new(self),
        }
    }

    /// Convenience: a custom latency from a closure.
    pub fn from_fn(f: impl Fn(&T) -> T + Send + Sync + 'static) -> Latency<T> {
        Latency::Custom(Arc::new(f))
    }

    /// The unit latency `ζ ≡ 1` (the default for simulation TVGs).
    #[must_use]
    pub fn unit() -> Latency<T> {
        Latency::Const(T::one())
    }
}

impl<T: fmt::Debug> fmt::Debug for Latency<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Latency::Const(c) => write!(f, "Const({c:?})"),
            Latency::Affine { mul, add } => write!(f, "Affine({mul}·t + {add:?})"),
            Latency::Dilated { factor, inner } => write!(f, "Dilated(x{factor}, {inner:?})"),
            Latency::Custom(_) => write!(f, "Custom(<fn>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_presence_variants() {
        assert!(Presence::<u64>::Always.is_present(&0));
        assert!(!Presence::<u64>::Never.is_present(&0));
        assert!(Presence::At(5u64).is_present(&5));
        assert!(!Presence::At(5u64).is_present(&6));
        assert!(Presence::After(5u64).is_present(&6));
        assert!(!Presence::After(5u64).is_present(&5));
        assert!(Presence::Before(5u64).is_present(&4));
        assert!(!Presence::Before(5u64).is_present(&5));
        let w = Presence::Window {
            from: 3u64,
            until: 5,
        };
        assert!(w.is_present(&3) && w.is_present(&5));
        assert!(!w.is_present(&2) && !w.is_present(&6));
    }

    #[test]
    fn finite_set_and_boolean_combinators() {
        let s = Presence::FiniteSet(BTreeSet::from([2u64, 4, 8]));
        assert!(s.is_present(&4));
        assert!(!s.is_present(&3));
        let not = Presence::Not(Box::new(s.clone()));
        assert!(not.is_present(&3));
        let and = Presence::And(Box::new(s.clone()), Box::new(Presence::After(3)));
        assert!(and.is_present(&4));
        assert!(!and.is_present(&2));
        let or = Presence::Or(Box::new(s), Box::new(Presence::At(3)));
        assert!(or.is_present(&3));
        assert!(or.is_present(&2));
        assert!(!or.is_present(&5));
    }

    #[test]
    fn periodic_presence() {
        let p = Presence::Periodic {
            period: 3,
            phases: BTreeSet::from([1u64]),
        };
        for t in 0u64..20 {
            assert_eq!(p.is_present(&t), t % 3 == 1, "t={t}");
        }
    }

    #[test]
    fn pq_power_predicate_matches_definition() {
        let (p, q) = (2u64, 3u64);
        let rho = Presence::PqPower { p, q };
        // Collect all t = 2^i 3^(i-1), i in 2..6: 12, 72, 432, 2592.
        let mut expected = BTreeSet::new();
        for i in 2u32..6 {
            expected.insert(2u64.pow(i) * 3u64.pow(i - 1));
        }
        for t in 0u64..3000 {
            assert_eq!(rho.is_present(&t), expected.contains(&t), "t={t}");
        }
        // i = 1 gives t = p, which must NOT satisfy the predicate.
        assert!(!rho.is_present(&2u64));
    }

    #[test]
    fn pq_power_on_bigint_times() {
        let p = Nat::from(2u64);
        let q = Nat::from(3u64);
        let t = p.pow(40) * q.pow(39);
        assert_eq!(pq_power_index(&t, 2, 3), Some(40));
        assert_eq!(pq_power_index(&(t * Nat::from(5u64)), 2, 3), None);
        assert_eq!(pq_power_index(&Nat::zero(), 2, 3), None);
        assert_eq!(pq_power_index(&Nat::one(), 2, 3), None); // i=0 not allowed
    }

    #[test]
    fn next_present_scans() {
        let p = Presence::Periodic {
            period: 5,
            phases: BTreeSet::from([3u64]),
        };
        assert_eq!(p.next_present_within(&0u64, &10), Some(3));
        assert_eq!(p.next_present_within(&4u64, &10), Some(8));
        assert_eq!(p.next_present_within(&9u64, &12), None);
        assert_eq!(Presence::<u64>::Never.next_present_within(&0, &100), None);
    }

    #[test]
    fn dilation_contract_presence() {
        let inner = Presence::Periodic {
            period: 2,
            phases: BTreeSet::from([1u64]),
        };
        let dilated = inner.clone().dilate(3);
        for t in 0u64..30 {
            let expected = t % 3 == 0 && inner.is_present(&(t / 3));
            assert_eq!(dilated.is_present(&t), expected, "t={t}");
        }
    }

    #[test]
    fn dilation_by_one_is_identity() {
        let p = Presence::At(4u64).dilate(1);
        assert!(matches!(p, Presence::At(4)));
        let l = Latency::Const(2u64).dilate(1);
        assert!(matches!(l, Latency::Const(2)));
    }

    #[test]
    #[should_panic(expected = "dilation factor must be nonzero")]
    fn zero_dilation_panics() {
        let _ = Presence::<u64>::Always.dilate(0);
    }

    #[test]
    fn latency_variants() {
        assert_eq!(Latency::Const(7u64).at(&100), Some(7));
        assert_eq!(Latency::Const(7u64).arrival(&100), Some(107));
        // ζ(t) = (p-1)·t with p=2: arrival doubles the time.
        let zeta = Latency::Affine { mul: 1, add: 0u64 };
        assert_eq!(zeta.arrival(&8), Some(16));
        let zeta5 = Latency::Affine { mul: 4, add: 0u64 };
        assert_eq!(zeta5.arrival(&3), Some(15)); // 3 + 4*3 = 15 = 5*3
        assert_eq!(Latency::<u64>::unit().at(&0), Some(1));
    }

    #[test]
    fn latency_overflow_is_none() {
        let zeta = Latency::Affine { mul: 2, add: 0u64 };
        assert_eq!(zeta.at(&(u64::MAX / 2 + 1)), None);
        assert_eq!(Latency::Const(u64::MAX).arrival(&1), None);
    }

    #[test]
    fn latency_dilation_contract() {
        // inner ζ(t) = 3t (affine), factor 4: ζ'(4t) = 4·(3t) = 12t,
        // arrival' (4t) = 4t + 12t = 4·(t + 3t).
        let inner = Latency::Affine { mul: 3, add: 0u64 };
        let dilated = inner.clone().dilate(4);
        for t in 0u64..50 {
            let inner_arrival = inner.arrival(&t).expect("no overflow");
            assert_eq!(dilated.arrival(&(t * 4)), Some(inner_arrival * 4), "t={t}");
        }
    }

    #[test]
    fn custom_schedules() {
        let rho = Presence::from_fn(|t: &u64| t.is_power_of_two());
        assert!(rho.is_present(&8));
        assert!(!rho.is_present(&9));
        let zeta = Latency::from_fn(|t: &u64| t * t);
        assert_eq!(zeta.at(&5), Some(25));
    }

    #[test]
    fn custom_dilated_composes() {
        // Dilating a custom schedule still works: the wrapper divides time
        // before delegating.
        let rho = Presence::from_fn(|t: &u64| *t == 5).dilate(2);
        assert!(rho.is_present(&10));
        assert!(!rho.is_present(&5));
        assert!(!rho.is_present(&11));
    }

    #[test]
    fn debug_output_is_informative() {
        let rho = Presence::<u64>::PqPower { p: 2, q: 3 };
        assert!(format!("{rho:?}").contains("2^i"));
        let zeta = Latency::Affine { mul: 1, add: 0u64 };
        assert!(format!("{zeta:?}").contains("Affine"));
        assert_eq!(
            format!("{:?}", Presence::<u64>::from_fn(|_| true)),
            "Custom(<fn>)"
        );
    }

    #[test]
    fn bigint_affine_latency_never_overflows() {
        let zeta = Latency::Affine {
            mul: u64::MAX,
            add: Nat::zero(),
        };
        let t = Nat::from(u64::MAX);
        assert!(zeta.arrival(&t).is_some());
    }
}
