//! Streaming TVG ingestion: schedules that *arrive* instead of being
//! known up front.
//!
//! [`TvgIndex::compile`] is batch-only: it materializes a complete
//! schedule against a horizon, so a single new contact event forces a
//! full recompile. Real deployments of the paper's model — DTN traces,
//! contact loggers, link-state feeds — observe their schedule as a
//! stream of *edge events*: a link comes up at `t`, goes down at `t'`, a
//! previously unseen link appears, the observation window extends — and
//! under node churn, peers join (`NewNode`) and leave (`NodeLeave`,
//! closing every incident open contact at the departure instant). This
//! module is that regime:
//!
//! * [`TvgStream`] is the ingestion layer. It validates appended
//!   [`StreamEvent`]s (monotone in time, `Down` only after `Up`, within
//!   the horizon) with typed [`StreamError`]s instead of panics, and
//!   applies each accepted event to a [`LiveIndex`].
//! * [`LiveIndex`] is the incrementally-maintained counterpart of
//!   [`TvgIndex`]: the same per-edge [`IntervalSet`] presence, CSR
//!   adjacency, and sorted edge-event timeline — but mutated at the
//!   right edge per event instead of recompiled. It implements
//!   [`TemporalIndex`], so the journey engine, the batch-query runtime,
//!   and the protocol simulators run on it unchanged.
//!
//! The maintenance contract, which the `tvg-testkit` `streamcheck`
//! differential oracle enforces after every ingested batch: a
//! [`LiveIndex`] is **structurally identical** to
//! `TvgIndex::compile(&stream.to_tvg(), horizon)` — same presence spans,
//! same adjacency, same event timeline. An edge whose last `Up` has no
//! `Down` yet is *open*: it is presumed present through the horizon
//! (provisional close at `horizon + 1`), and a later `Down` or horizon
//! extension rewrites that provisional close in place.
//!
//! Every accepted event changes presence only at or after its own
//! instant (the [`IngestReport::earliest_change`] watermark), which is
//! exactly the property the incremental journey repair in
//! `tvg_journeys::incremental` relies on to re-relax only the labels it
//! must.

use crate::interval::{IntervalSet, SpanView};
use crate::pcol::{PCol, PLog, COL_CHUNK, LOG_CHUNK};
use crate::{
    EdgeEvent, EdgeEventKind, EdgeId, EdgeRefs, Latency, NodeId, Presence, TemporalIndex, Time,
    Tvg, TvgBuilder, TvgIndex,
};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use tvg_langs::Letter;

/// One appended observation of an evolving schedule.
#[derive(Debug, Clone)]
pub enum StreamEvent<T> {
    /// Edge `edge` becomes present at instant `at` (and stays present
    /// until its `Down`, provisionally through the horizon).
    Up {
        /// The edge coming up.
        edge: EdgeId,
        /// The instant it comes up.
        at: T,
    },
    /// Edge `edge` becomes absent at instant `at` (exclusive span end:
    /// the edge was last present at `at - 1`).
    Down {
        /// The edge going down.
        edge: EdgeId,
        /// The instant it goes down.
        at: T,
    },
    /// A previously unseen edge joins the graph, initially absent; its
    /// presence is driven entirely by subsequent `Up`/`Down` events.
    NewEdge {
        /// Source node (must already exist).
        src: NodeId,
        /// Destination node (must already exist).
        dst: NodeId,
        /// Edge label (printable ASCII).
        label: char,
        /// Latency schedule of the new edge.
        latency: Latency<T>,
    },
    /// The observation window extends: departures up to `to` (inclusive)
    /// are now covered, and open edges are presumed present through it.
    ExtendHorizon {
        /// The new inclusive horizon (must not regress).
        to: T,
    },
    /// A previously unseen node joins the graph. Topology growth carries
    /// no timestamp: the node participates only through subsequent
    /// `NewEdge`/`Up` events.
    NewNode {
        /// Display name of the joining node.
        name: String,
    },
    /// Node `node` leaves the network at instant `at`: every incident
    /// edge that is currently up goes down at `at` (in one step), and
    /// from then on any event referencing the departed node — `Up`,
    /// `Down`, `NewEdge`, or a second leave — is rejected with
    /// [`StreamError::NodeDeparted`]. Node ids are never reused; a peer
    /// that rejoins does so as a fresh `NewNode`.
    NodeLeave {
        /// The departing node.
        node: NodeId,
        /// The instant it departs (exclusive span end for its open
        /// contacts: they were last present at `at - 1`).
        at: T,
    },
}

/// Typed rejection of an invalid [`StreamEvent`]. The stream never
/// panics on bad input — out-of-order feeds, double-ups, and
/// down-before-up are data errors, not bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError<T> {
    /// The event references an edge the stream has never seen.
    UnknownEdge(EdgeId),
    /// A `NewEdge` references a node the stream has never seen.
    UnknownNode(NodeId),
    /// A `NewEdge` label is not printable ASCII.
    BadLabel(char),
    /// The event's instant precedes an already-ingested event.
    OutOfOrder {
        /// The offending event instant.
        at: T,
        /// The stream's watermark (latest accepted event instant).
        watermark: T,
    },
    /// The event's instant exceeds the current horizon (extend first).
    BeyondHorizon {
        /// The offending event instant.
        at: T,
        /// The current inclusive horizon.
        horizon: T,
    },
    /// `Up` on an edge that is already up.
    AlreadyUp {
        /// The edge.
        edge: EdgeId,
        /// When its open span started.
        since: T,
    },
    /// `Down` on an edge that is not up — the out-of-order shape the
    /// paper's contact feeds actually produce, rejected typed.
    DownBeforeUp {
        /// The edge.
        edge: EdgeId,
        /// The offending instant.
        at: T,
    },
    /// `ExtendHorizon` to an instant before the current horizon.
    HorizonRegression {
        /// The requested horizon.
        to: T,
        /// The current inclusive horizon.
        horizon: T,
    },
    /// A stream constructed at a horizon whose successor overflows the
    /// time representation (open spans need a representable provisional
    /// close at `horizon + 1`).
    HorizonOverflow {
        /// The unrepresentable horizon.
        horizon: T,
    },
    /// The requested horizon has no representable successor (half-open
    /// provisional closes need `horizon + 1`).
    HorizonUnrepresentable {
        /// The requested horizon.
        to: T,
    },
    /// The event references a node that already left the network: a
    /// departed node's contacts are closed forever, so an `Up`, `Down`,
    /// `NewEdge`, or second `NodeLeave` touching it is a data error.
    NodeDeparted {
        /// The departed node.
        node: NodeId,
        /// When it left.
        at: T,
    },
}

impl<T: fmt::Display> fmt::Display for StreamError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownEdge(e) => write!(f, "stream event references unknown edge {e}"),
            StreamError::UnknownNode(n) => write!(f, "new edge references unknown node {n}"),
            StreamError::BadLabel(c) => write!(f, "new edge label {c:?} is not printable ascii"),
            StreamError::OutOfOrder { at, watermark } => {
                write!(f, "event at {at} precedes watermark {watermark}")
            }
            StreamError::BeyondHorizon { at, horizon } => {
                write!(f, "event at {at} beyond horizon {horizon} (extend first)")
            }
            StreamError::AlreadyUp { edge, since } => {
                write!(f, "edge {edge} is already up since {since}")
            }
            StreamError::DownBeforeUp { edge, at } => {
                write!(f, "down at {at} on edge {edge} that is not up")
            }
            StreamError::HorizonRegression { to, horizon } => {
                write!(f, "horizon extension to {to} regresses below {horizon}")
            }
            StreamError::HorizonOverflow { horizon } => {
                write!(f, "horizon {horizon} + 1 overflows the time representation")
            }
            StreamError::HorizonUnrepresentable { to } => {
                write!(f, "horizon {to} has no representable successor")
            }
            StreamError::NodeDeparted { node, at } => {
                write!(f, "event references node {node} departed at {at}")
            }
        }
    }
}

impl<T: fmt::Display + fmt::Debug> Error for StreamError<T> {}

/// What one [`TvgStream::ingest`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport<T> {
    /// Number of events applied (the whole batch on success).
    pub applied: usize,
    /// The earliest instant at which presence changed since the last
    /// *successful* report, if it did: no journey arriving strictly
    /// before it is affected, which is the repair watermark
    /// `tvg_journeys::incremental` uses. Changes applied by the prefix
    /// of a previously *failed* batch are carried into this report, so
    /// repairing from every successful report misses nothing. `None`
    /// for batches of pure topology growth (`NewEdge`) or no-op
    /// horizon extensions.
    pub earliest_change: Option<T>,
}

/// The incrementally-maintained counterpart of [`TvgIndex`].
///
/// Owns its graph (the stream grows it) and the same compiled structures
/// a batch index holds: per-edge presence intervals, out-edge adjacency,
/// the sorted edge-event timeline. Every query runs through the shared
/// [`TemporalIndex`] trait, so consumers cannot tell a live index from a
/// recompiled one — and the `streamcheck` oracle asserts they never
/// could (structural identity after every batch).
///
/// Unlike the batch index's flat allocations, every column here is
/// *persistent* ([`crate::pcol`]): fixed-size chunks behind `Arc`,
/// copy-on-write on the chunk a mutation lands in, and the graph itself
/// behind an `Arc` that only rare topology growth unshares. Cloning a
/// `LiveIndex` is therefore O(changes since the last clone), not
/// O(index) — the property the serve runtime's per-tick snapshot
/// publication is built on. A clone is a true immutable snapshot: later
/// stream mutations copy the chunks they touch and leave every
/// outstanding clone byte-identical.
///
/// The presence ASTs inside the owned graph are `Presence::Never`
/// placeholders: in the streaming regime the *index* is the schedule of
/// record (there is no closed-form schedule to compile from until
/// [`TvgStream::to_tvg`] materializes one).
#[derive(Debug, Clone)]
pub struct LiveIndex<T> {
    g: Arc<Tvg<T>>,
    horizon: T,
    /// `horizon + 1`: the provisional close of open spans.
    end: T,
    presence: PCol<IntervalSet<T>, COL_CHUNK>,
    arrival_monotone: PCol<bool, COL_CHUNK>,
    /// Per-node out-edge lists in edge-id order (the same order the
    /// batch index's CSR produces).
    adjacency: PCol<Vec<EdgeId>, COL_CHUNK>,
    dsts: PCol<NodeId, COL_CHUNK>,
    const_lat: PCol<Option<T>, COL_CHUNK>,
    /// The global timeline. Its sealed prefix holds only events
    /// strictly before the stream watermark, which the watermark
    /// discipline proves are final (see [`TvgStream::seal_events`]).
    events: PLog<EdgeEvent<T>, LOG_CHUNK>,
    /// How often topology growth had to unshare the graph.
    graph_copies: u64,
}

impl<T: Time> LiveIndex<T> {
    /// `None` if `horizon + 1` overflows the time representation (open
    /// spans need a representable provisional close).
    fn new(horizon: T) -> Option<Self> {
        let end = horizon.checked_add(&T::one())?;
        Some(LiveIndex {
            g: Arc::new(Tvg::empty()),
            horizon,
            end,
            presence: PCol::new(),
            arrival_monotone: PCol::new(),
            adjacency: PCol::new(),
            dsts: PCol::new(),
            const_lat: PCol::new(),
            events: PLog::new(),
            graph_copies: 0,
        })
    }

    /// The global edge-event timeline, sorted by time — maintained in
    /// place, identical to the recompiled [`TvgIndex::edge_events`]
    /// (open edges carry their provisional close at `horizon + 1`).
    /// Chunked storage has no contiguous slice form, so this is an
    /// iterator where the batch index hands out `&[EdgeEvent<T>]`.
    pub fn edge_events(&self) -> impl Iterator<Item = &EdgeEvent<T>> {
        self.events.iter()
    }

    /// Total number of edge events (twice the span count).
    #[must_use]
    pub fn num_edge_events(&self) -> usize {
        self.events.len()
    }

    /// Frozen chunks across all persistent columns (plus the shared
    /// graph): the structure a snapshot shares instead of copying.
    #[must_use]
    pub fn chunks_frozen(&self) -> u64 {
        self.presence.frozen_chunks()
            + self.arrival_monotone.frozen_chunks()
            + self.adjacency.frozen_chunks()
            + self.dsts.frozen_chunks()
            + self.const_lat.frozen_chunks()
            + self.events.frozen_chunks()
            + 1 // the Arc'd graph
    }

    /// Cumulative count of shared structures mutations have had to
    /// copy (chunk copy-on-writes plus graph unsharings). The delta
    /// between two publishes is the true cost the mutating stream paid
    /// for snapshot isolation over that tick.
    #[must_use]
    pub fn chunks_copied(&self) -> u64 {
        self.presence.cow_copies()
            + self.arrival_monotone.cow_copies()
            + self.adjacency.cow_copies()
            + self.dsts.cow_copies()
            + self.const_lat.cow_copies()
            + self.graph_copies
    }

    /// Mutable graph access, unsharing (and counting) if snapshots
    /// currently share it. Only topology growth comes through here.
    fn g_mut(&mut self) -> &mut Tvg<T> {
        if Arc::get_mut(&mut self.g).is_none() {
            self.graph_copies += 1;
        }
        Arc::make_mut(&mut self.g)
    }

    fn insert_event(&mut self, ev: EdgeEvent<T>) {
        let pos = self.events.partition_point(|e| *e < ev);
        self.events.insert(pos, ev);
    }

    fn remove_event(&mut self, ev: &EdgeEvent<T>) {
        let pos = self
            .events
            .binary_search(ev)
            .expect("timeline bookkeeping lost an event");
        self.events.remove(pos);
    }
}

/// The live index's native accessors. These carry the concrete types
/// (interval sets, id slices, the graph itself) that the maintenance
/// code and the oracles inspect; the [`TemporalIndex`] impl below wraps
/// them in the trait's layout-agnostic views for the query engine.
impl<T: Time> LiveIndex<T> {
    /// The graph this index answers for.
    #[must_use]
    pub fn tvg(&self) -> &Tvg<T> {
        &self.g
    }

    /// The inclusive departure horizon the index covers.
    #[must_use]
    pub fn horizon(&self) -> &T {
        &self.horizon
    }

    /// The maintained presence intervals of `e`.
    #[must_use]
    pub fn presence(&self, e: EdgeId) -> &IntervalSet<T> {
        self.presence.get(e.index())
    }

    /// Whether `e`'s arrival is known to be non-decreasing in its
    /// departure.
    #[must_use]
    pub fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        *self.arrival_monotone.get(e.index())
    }

    /// Outgoing edges of `n` as one contiguous slice (edge-id order).
    #[must_use]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        self.adjacency.get(n.index())
    }

    /// Destination node of `e`.
    #[must_use]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        *self.dsts.get(e.index())
    }

    /// Arrival of a crossing of `e` departing at `t`.
    #[must_use]
    pub fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        match self.const_lat.get(e.index()) {
            Some(c) => t.checked_add(c),
            None => self.g.edge(e).latency().arrival(t),
        }
    }
}

impl<T: Time> TemporalIndex<T> for LiveIndex<T> {
    fn num_nodes(&self) -> usize {
        self.g.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    fn horizon(&self) -> &T {
        &self.horizon
    }

    fn presence(&self, e: EdgeId) -> SpanView<'_, T> {
        LiveIndex::presence(self, e).view()
    }

    fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        LiveIndex::arrival_is_monotone(self, e)
    }

    fn out_edges(&self, n: NodeId) -> EdgeRefs<'_> {
        EdgeRefs::Ids(LiveIndex::out_edges(self, n))
    }

    fn dst(&self, e: EdgeId) -> NodeId {
        LiveIndex::dst(self, e)
    }

    fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        LiveIndex::arrival(self, e, t)
    }
}

/// What [`TvgStream::replay_of`] hands back: the mirrored stream (all
/// edges initially absent) plus the event list that replays the source
/// schedule in timeline order.
pub type ReplayFeed<T> = (TvgStream<T>, Vec<StreamEvent<T>>);

/// The ingestion layer: validates appended events and maintains a
/// [`LiveIndex`] plus the open-span state needed to interpret them.
///
/// ```
/// use tvg_model::stream::{StreamEvent, TvgStream};
/// use tvg_model::{Latency, TemporalIndex};
///
/// let mut s = TvgStream::<u64>::new(10)?;
/// let (u, v) = (s.add_node("u"), s.add_node("v"));
/// let e = s.add_edge(u, v, 'a', Latency::unit())?;
/// let report = s.ingest(&[
///     StreamEvent::Up { edge: e, at: 2 },
///     StreamEvent::Down { edge: e, at: 5 },
/// ])?;
/// assert_eq!(report.earliest_change, Some(2));
/// assert!(s.index().is_present(e, &4));
/// assert!(!s.index().is_present(e, &5));
/// # Ok::<(), tvg_model::stream::StreamError<u64>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TvgStream<T> {
    live: LiveIndex<T>,
    watermark: Option<T>,
    /// Per edge: the start instant of its currently open span's `Up`.
    open_since: Vec<Option<T>>,
    /// Per node: the instant it left the network, if it did. Ids are
    /// never reused, so departure is final.
    departed: Vec<Option<T>>,
    /// Per node: every edge incident to it, either direction — the set
    /// a `NodeLeave` must close. Ingestion state, not index structure
    /// (the `LiveIndex` keeps only out-edge adjacency, like the CSR).
    incident: Vec<Vec<EdgeId>>,
    /// Earliest presence change not yet handed out in a successful
    /// [`IngestReport`] — the applied prefix of a failed batch parks
    /// its changes here for the next report.
    unreported_change: Option<T>,
}

impl<T: Time> TvgStream<T> {
    /// An empty stream (no nodes, no edges, no events) covering
    /// departures in `[0, horizon]`.
    ///
    /// # Errors
    ///
    /// [`StreamError::HorizonOverflow`] if `horizon + 1` overflows the
    /// time representation (open spans need a representable provisional
    /// close) — e.g. a `u64` stream at `u64::MAX`.
    pub fn new(horizon: T) -> Result<Self, StreamError<T>> {
        let live =
            LiveIndex::new(horizon.clone()).ok_or(StreamError::HorizonOverflow { horizon })?;
        Ok(TvgStream {
            live,
            watermark: None,
            open_since: Vec::new(),
            departed: Vec::new(),
            incident: Vec::new(),
            unreported_change: None,
        })
    }

    /// The live index this stream maintains. Borrow it between ingest
    /// ticks to run queries — the engine, the batch runtime, and the
    /// simulators all accept it wherever a compiled index goes.
    #[must_use]
    pub fn index(&self) -> &LiveIndex<T> {
        &self.live
    }

    /// An immutable snapshot of the live index as it stands right now.
    /// This is the publication primitive for snapshot services: the
    /// writer snapshots between ingest ticks and hands the copy out
    /// behind an `Arc`, and readers keep querying it unaffected by
    /// whatever the stream ingests next.
    ///
    /// The snapshot *shares* every frozen chunk and the graph with the
    /// live index (copying only chunk handles and the small mutable
    /// tails), so taking one costs O(changes since sealing caught up),
    /// not O(index) — later mutations copy-on-write the chunks they
    /// touch and never disturb an outstanding snapshot.
    #[must_use]
    pub fn snapshot(&self) -> LiveIndex<T> {
        self.live.clone()
    }

    /// The latest accepted event instant, if any event was accepted.
    #[must_use]
    pub fn watermark(&self) -> Option<&T> {
        self.watermark.as_ref()
    }

    /// Whether `e` is currently up (its last `Up` has no `Down` yet),
    /// and since when.
    #[must_use]
    pub fn open_since(&self, e: EdgeId) -> Option<&T> {
        self.open_since.get(e.index()).and_then(Option::as_ref)
    }

    /// When `n` left the network, if it did.
    #[must_use]
    pub fn departed_at(&self, n: NodeId) -> Option<&T> {
        self.departed.get(n.index()).and_then(Option::as_ref)
    }

    /// How many nodes have left the network.
    #[must_use]
    pub fn num_departed(&self) -> usize {
        self.departed.iter().filter(|d| d.is_some()).count()
    }

    /// Adds a node, returning its id. Topology growth carries no
    /// timestamp and never affects existing presence.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        self.live.adjacency.push(Vec::new());
        self.departed.push(None);
        self.incident.push(Vec::new());
        self.live.g_mut().push_node(name)
    }

    /// Adds an edge (initially absent), returning its id.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownNode`] / [`StreamError::BadLabel`] on
    /// invalid endpoints or label, [`StreamError::NodeDeparted`] if an
    /// endpoint already left the network.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: char,
        latency: Latency<T>,
    ) -> Result<EdgeId, StreamError<T>> {
        for n in [src, dst] {
            if n.index() >= self.live.g.num_nodes() {
                return Err(StreamError::UnknownNode(n));
            }
            if let Some(at) = &self.departed[n.index()] {
                return Err(StreamError::NodeDeparted {
                    node: n,
                    at: at.clone(),
                });
            }
        }
        let letter = Letter::new(label).map_err(|_| StreamError::BadLabel(label))?;
        self.live
            .arrival_monotone
            .push(latency.arrival_is_monotone());
        self.live.const_lat.push(match &latency {
            Latency::Const(c) => Some(c.clone()),
            _ => None,
        });
        let e = self
            .live
            .g_mut()
            .push_edge(src, dst, letter, Presence::Never, latency);
        self.live.presence.push(IntervalSet::empty());
        self.live.dsts.push(dst);
        self.open_since.push(None);
        self.incident[src.index()].push(e);
        if dst != src {
            self.incident[dst.index()].push(e);
        }
        // The new edge has the maximal id, so it lands at the end of its
        // source's out-list — the same edge-id order the batch CSR
        // produces. Only the chunk holding that one node's list is
        // unshared if snapshots currently share it.
        self.live.adjacency.get_mut(src.index()).push(e);
        Ok(e)
    }

    /// Applies a batch of events in order.
    ///
    /// Events must be globally non-decreasing in time (the watermark
    /// advances with each accepted event). On the first invalid event
    /// the batch stops and the typed error is returned; *earlier* events
    /// of the batch remain applied, and their presence changes carry
    /// over into the **next successful** ingest's
    /// [`IngestReport::earliest_change`] — so an incremental consumer
    /// that repairs from each successful report never misses the
    /// applied prefix of a failed batch.
    ///
    /// # Errors
    ///
    /// The first [`StreamError`] encountered, with everything before it
    /// applied (and accounted to the next successful report).
    pub fn ingest(&mut self, events: &[StreamEvent<T>]) -> Result<IngestReport<T>, StreamError<T>> {
        // Each Up adds at most two timeline entries (appear + provisional
        // close) and Down/Extend rewrite in place — reserve the batch's
        // worst case once instead of growing inside the per-event loop.
        self.live.events.reserve(2 * events.len());
        let mut applied = 0;
        for ev in events {
            let changed_at = self.apply(ev)?;
            applied += 1;
            if let Some(t) = changed_at {
                if self.unreported_change.as_ref().is_none_or(|cur| t < *cur) {
                    self.unreported_change = Some(t);
                }
            }
        }
        self.seal_events();
        Ok(IngestReport {
            applied,
            earliest_change: self.unreported_change.take(),
        })
    }

    /// Seals the finalized prefix of the event timeline into immutable
    /// shared chunks.
    ///
    /// Why everything strictly before the watermark is final: new
    /// events must carry instants `>= watermark` (enforced by
    /// `check_time`), so fresh timeline entries always sort at or after
    /// the first event at the watermark; the retractions (`Up` merging
    /// into the previous close, a zero-length `Up`/`Down` pair) target
    /// events *at* the watermark exactly; and provisional closes live
    /// at `horizon + 1 > watermark`. No mutation can ever land strictly
    /// below the watermark, so that prefix is safe to freeze — which is
    /// what keeps the mutable tail (and hence the per-snapshot copy)
    /// small regardless of how much history has accumulated.
    fn seal_events(&mut self) {
        if let Some(w) = &self.watermark {
            let upto = self.live.events.partition_point(|ev| ev.time < *w);
            self.live.events.seal(upto);
        }
    }

    /// Applies one event; returns the instant at which presence changed
    /// (if it did).
    fn apply(&mut self, ev: &StreamEvent<T>) -> Result<Option<T>, StreamError<T>> {
        match ev {
            StreamEvent::Up { edge, at } => self.apply_up(*edge, at).map(Some),
            StreamEvent::Down { edge, at } => self.apply_down(*edge, at).map(Some),
            StreamEvent::NewEdge {
                src,
                dst,
                label,
                latency,
            } => {
                self.add_edge(*src, *dst, *label, latency.clone())?;
                Ok(None)
            }
            StreamEvent::ExtendHorizon { to } => self.apply_extend(to),
            StreamEvent::NewNode { name } => {
                self.add_node(name);
                Ok(None)
            }
            StreamEvent::NodeLeave { node, at } => self.apply_leave(*node, at),
        }
    }

    fn check_time(&self, at: &T) -> Result<(), StreamError<T>> {
        if let Some(w) = &self.watermark {
            if at < w {
                return Err(StreamError::OutOfOrder {
                    at: at.clone(),
                    watermark: w.clone(),
                });
            }
        }
        if *at > self.live.horizon {
            return Err(StreamError::BeyondHorizon {
                at: at.clone(),
                horizon: self.live.horizon.clone(),
            });
        }
        Ok(())
    }

    fn check_edge(&self, e: EdgeId) -> Result<(), StreamError<T>> {
        if e.index() >= self.live.g.num_edges() {
            return Err(StreamError::UnknownEdge(e));
        }
        // A departed endpoint makes the whole edge dead: its spans were
        // closed by the leave, and nothing may reopen (or re-close) them.
        let edge = self.live.g.edge(e);
        for n in [edge.src(), edge.dst()] {
            if let Some(at) = &self.departed[n.index()] {
                return Err(StreamError::NodeDeparted {
                    node: n,
                    at: at.clone(),
                });
            }
        }
        Ok(())
    }

    fn apply_up(&mut self, e: EdgeId, at: &T) -> Result<T, StreamError<T>> {
        self.check_edge(e)?;
        self.check_time(at)?;
        if let Some(since) = &self.open_since[e.index()] {
            return Err(StreamError::AlreadyUp {
                edge: e,
                since: since.clone(),
            });
        }
        // Reopening exactly at the previous close merges spans (the
        // normalized form has no adjacent spans), which also retracts
        // the close event the earlier `Down` recorded.
        let merges = self
            .live
            .presence
            .get(e.index())
            .last_span()
            .is_some_and(|(_, end)| *end == *at);
        if merges {
            self.live.remove_event(&EdgeEvent {
                time: at.clone(),
                edge: e,
                kind: EdgeEventKind::Disappear,
            });
        } else {
            self.live.insert_event(EdgeEvent {
                time: at.clone(),
                edge: e,
                kind: EdgeEventKind::Appear,
            });
        }
        let provisional_end = self.live.end.clone();
        self.live.insert_event(EdgeEvent {
            time: provisional_end.clone(),
            edge: e,
            kind: EdgeEventKind::Disappear,
        });
        self.live
            .presence
            .get_mut(e.index())
            .append_span(at.clone(), provisional_end);
        self.open_since[e.index()] = Some(at.clone());
        self.watermark = Some(at.clone());
        Ok(at.clone())
    }

    fn apply_down(&mut self, e: EdgeId, at: &T) -> Result<T, StreamError<T>> {
        self.check_edge(e)?;
        self.check_time(at)?;
        if self.open_since[e.index()].is_none() {
            return Err(StreamError::DownBeforeUp {
                edge: e,
                at: at.clone(),
            });
        }
        self.close_open_span(e, at);
        self.watermark = Some(at.clone());
        Ok(at.clone())
    }

    /// Closes `e`'s open span at `at`: retracts the provisional close,
    /// records the real one (or erases a zero-length span entirely), and
    /// truncates the presence interval. Shared by `Down` and the
    /// batched closes a `NodeLeave` performs. The caller validates and
    /// advances the watermark.
    fn close_open_span(&mut self, e: EdgeId, at: &T) {
        self.live.remove_event(&EdgeEvent {
            time: self.live.end.clone(),
            edge: e,
            kind: EdgeEventKind::Disappear,
        });
        let span_start = &self
            .live
            .presence
            .get(e.index())
            .last_span()
            .expect("an open edge has a span")
            .0;
        let zero_length = *span_start == *at;
        if zero_length {
            // Zero-length up/down pair: the span never existed.
            self.live.remove_event(&EdgeEvent {
                time: at.clone(),
                edge: e,
                kind: EdgeEventKind::Appear,
            });
        } else {
            self.live.insert_event(EdgeEvent {
                time: at.clone(),
                edge: e,
                kind: EdgeEventKind::Disappear,
            });
        }
        self.live.presence.get_mut(e.index()).truncate_last_span(at);
        self.open_since[e.index()] = None;
    }

    fn apply_leave(&mut self, node: NodeId, at: &T) -> Result<Option<T>, StreamError<T>> {
        if node.index() >= self.live.g.num_nodes() {
            return Err(StreamError::UnknownNode(node));
        }
        if let Some(when) = &self.departed[node.index()] {
            return Err(StreamError::NodeDeparted {
                node,
                at: when.clone(),
            });
        }
        self.check_time(at)?;
        // Close every incident open span at the departure instant. Each
        // close is exactly a `Down` at `at`, so the live index stays
        // structurally identical to a recompile of the truncated
        // schedule — the churn case of the streamcheck contract.
        let open: Vec<EdgeId> = self.incident[node.index()]
            .iter()
            .copied()
            .filter(|e| self.open_since[e.index()].is_some())
            .collect();
        let any_closed = !open.is_empty();
        for e in open {
            self.close_open_span(e, at);
        }
        self.departed[node.index()] = Some(at.clone());
        self.watermark = Some(at.clone());
        Ok(any_closed.then(|| at.clone()))
    }

    fn apply_extend(&mut self, to: &T) -> Result<Option<T>, StreamError<T>> {
        if *to < self.live.horizon {
            return Err(StreamError::HorizonRegression {
                to: to.clone(),
                horizon: self.live.horizon.clone(),
            });
        }
        if *to == self.live.horizon {
            return Ok(None);
        }
        let Some(new_end) = to.checked_add(&T::one()) else {
            return Err(StreamError::HorizonUnrepresentable { to: to.clone() });
        };
        let old_end = std::mem::replace(&mut self.live.end, new_end.clone());
        self.live.horizon = to.clone();
        // Open edges were presumed present through the old horizon; the
        // presumption now extends. Their provisional closes live in a
        // contiguous tail of the timeline (nothing is later than the old
        // end), so the rewrite preserves sort order.
        let mut any_open = false;
        for (i, since) in self.open_since.iter().enumerate() {
            if since.is_some() {
                any_open = true;
                self.live.presence.get_mut(i).extend_last_span(&new_end);
            }
        }
        let tail = self.live.events.partition_point(|ev| ev.time < old_end);
        for ev in self.live.events.tail_from_mut(tail) {
            debug_assert_eq!(ev.time, old_end);
            ev.time = new_end.clone();
        }
        Ok(any_open.then_some(old_end))
    }

    /// Materializes the accumulated schedule as an ordinary batch
    /// [`Tvg`]: same nodes, edges, labels, and latencies, with each
    /// edge's presence written as the disjunction of its observed spans
    /// (open edges run through the horizon). Recompiling this graph with
    /// [`TvgIndex::compile`] at the stream's horizon reproduces the
    /// [`LiveIndex`] structure exactly — the differential contract the
    /// testkit's `streamcheck` oracle enforces.
    ///
    /// # Panics
    ///
    /// Panics if the stream has no nodes yet (an empty graph has no
    /// batch form).
    #[must_use]
    pub fn to_tvg(&self) -> Tvg<T> {
        let mut b = TvgBuilder::new();
        for n in self.live.g.nodes() {
            b.node(self.live.g.node_name(n));
        }
        for e in self.live.g.edges() {
            let edge = self.live.g.edge(e);
            let presence = spans_to_presence(self.live.presence.get(e.index()).spans());
            b.edge(
                edge.src(),
                edge.dst(),
                edge.label().as_char(),
                presence,
                edge.latency().clone(),
            )
            .expect("live edges are pre-validated");
        }
        b.build()
            .expect("a streamed schedule needs at least one node")
    }

    /// Mirrors an existing batch graph into a stream: same nodes and
    /// edges (initially all absent) plus the event list that replays
    /// `g`'s compiled schedule up to `horizon`, in timeline order.
    /// Ingesting every returned event reproduces `TvgIndex::compile(g,
    /// horizon)` structurally; chopping the list into batches is how the
    /// test harness (and the replay benchmarks) drive live workloads
    /// from batch fixtures.
    ///
    /// Provisional closes (spans still open at the horizon) are *not*
    /// replayed as `Down` events — the stream keeps those edges open,
    /// exactly as the compiled index presumes them present through the
    /// horizon.
    ///
    /// # Errors
    ///
    /// [`StreamError::HorizonOverflow`] if `horizon + 1` overflows the
    /// time representation.
    pub fn replay_of(g: &Tvg<T>, horizon: &T) -> Result<ReplayFeed<T>, StreamError<T>> {
        let mut stream = TvgStream::new(horizon.clone())?;
        let index = TvgIndex::compile(g, horizon.clone());
        for n in g.nodes() {
            stream.add_node(g.node_name(n));
        }
        for e in g.edges() {
            let edge = g.edge(e);
            stream
                .add_edge(
                    edge.src(),
                    edge.dst(),
                    edge.label().as_char(),
                    edge.latency().clone(),
                )
                .expect("mirrored edges are valid");
        }
        let events = index
            .edge_events()
            .iter()
            .filter_map(|ev| match ev.kind {
                EdgeEventKind::Appear => Some(StreamEvent::Up {
                    edge: ev.edge,
                    at: ev.time.clone(),
                }),
                EdgeEventKind::Disappear if ev.time <= *horizon => Some(StreamEvent::Down {
                    edge: ev.edge,
                    at: ev.time.clone(),
                }),
                // A close beyond the horizon is the compiled form of "still
                // open": the stream expresses it by not closing at all.
                EdgeEventKind::Disappear => None,
            })
            .collect();
        Ok((stream, events))
    }
}

/// The disjunction-of-windows presence AST for a normalized span list.
fn spans_to_presence<T: Time>(spans: &[(T, T)]) -> Presence<T> {
    let mut acc: Option<Presence<T>> = None;
    for (start, end) in spans {
        let until = end
            .checked_sub(&T::one())
            .expect("normalized spans are non-empty");
        let window = Presence::Window {
            from: start.clone(),
            until,
        };
        acc = Some(match acc {
            None => window,
            Some(prev) => Presence::Or(Box::new(prev), Box::new(window)),
        });
    }
    acc.unwrap_or(Presence::Never)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_stream() -> (TvgStream<u64>, EdgeId) {
        let mut s = TvgStream::new(20).expect("20 + 1 is representable");
        let u = s.add_node("u");
        let v = s.add_node("v");
        let e = s.add_edge(u, v, 'a', Latency::unit()).expect("valid");
        (s, e)
    }

    /// Structural identity with a from-scratch recompile of the
    /// accumulated schedule — the module's core contract (the testkit
    /// oracle applies this after every generated batch; this is the
    /// in-crate smoke version).
    fn assert_matches_recompile(s: &TvgStream<u64>) {
        let g = s.to_tvg();
        let compiled = TvgIndex::compile(&g, *s.index().horizon());
        for e in g.edges() {
            assert_eq!(
                s.index().presence(e).spans(),
                TemporalIndex::presence(&compiled, e).spans(),
                "{e} presence"
            );
        }
        for n in g.nodes() {
            assert_eq!(
                TemporalIndex::out_edges(s.index(), n),
                TemporalIndex::out_edges(&compiled, n),
                "{n} adjacency"
            );
        }
        let live_events: Vec<EdgeEvent<u64>> = s.index().edge_events().cloned().collect();
        assert_eq!(live_events, compiled.edge_events(), "timeline");
    }

    #[test]
    fn up_down_builds_spans() {
        let (mut s, e) = two_node_stream();
        s.ingest(&[
            StreamEvent::Up { edge: e, at: 2 },
            StreamEvent::Down { edge: e, at: 5 },
            StreamEvent::Up { edge: e, at: 9 },
        ])
        .expect("valid feed");
        assert_eq!(s.index().presence(e).spans(), &[(2, 5), (9, 21)]);
        assert_eq!(s.watermark(), Some(&9));
        assert_eq!(s.open_since(e), Some(&9));
        assert_matches_recompile(&s);
    }

    #[test]
    fn reopening_at_the_close_merges() {
        let (mut s, e) = two_node_stream();
        s.ingest(&[
            StreamEvent::Up { edge: e, at: 2 },
            StreamEvent::Down { edge: e, at: 5 },
            StreamEvent::Up { edge: e, at: 5 },
            StreamEvent::Down { edge: e, at: 8 },
        ])
        .expect("valid feed");
        assert_eq!(s.index().presence(e).spans(), &[(2, 8)]);
        assert_eq!(s.index().num_edge_events(), 2);
        assert_matches_recompile(&s);
    }

    #[test]
    fn zero_length_pair_leaves_no_trace() {
        let (mut s, e) = two_node_stream();
        s.ingest(&[
            StreamEvent::Up { edge: e, at: 4 },
            StreamEvent::Down { edge: e, at: 4 },
        ])
        .expect("valid feed");
        assert!(s.index().presence(e).is_empty());
        assert_eq!(s.index().num_edge_events(), 0);
        assert_eq!(s.watermark(), Some(&4));
        assert_matches_recompile(&s);
    }

    #[test]
    fn event_exactly_at_horizon() {
        let (mut s, e) = two_node_stream();
        s.ingest(&[StreamEvent::Up { edge: e, at: 20 }])
            .expect("the horizon itself is within the window");
        assert_eq!(s.index().presence(e).spans(), &[(20, 21)]);
        assert!(s.index().is_present(e, &20));
        assert_matches_recompile(&s);
        let err = s
            .ingest(&[StreamEvent::Down { edge: e, at: 21 }])
            .expect_err("beyond the horizon");
        assert_eq!(
            err,
            StreamError::BeyondHorizon {
                at: 21,
                horizon: 20
            }
        );
    }

    #[test]
    fn typed_errors_cover_bad_feeds() {
        let (mut s, e) = two_node_stream();
        assert_eq!(
            s.ingest(&[StreamEvent::Down { edge: e, at: 3 }]),
            Err(StreamError::DownBeforeUp { edge: e, at: 3 })
        );
        s.ingest(&[StreamEvent::Up { edge: e, at: 5 }]).expect("ok");
        assert_eq!(
            s.ingest(&[StreamEvent::Up { edge: e, at: 7 }]),
            Err(StreamError::AlreadyUp { edge: e, since: 5 })
        );
        assert_eq!(
            s.ingest(&[StreamEvent::Down { edge: e, at: 3 }]),
            Err(StreamError::OutOfOrder {
                at: 3,
                watermark: 5
            })
        );
        let ghost = EdgeId::from_index(9);
        assert_eq!(
            s.ingest(&[StreamEvent::Up { edge: ghost, at: 6 }]),
            Err(StreamError::UnknownEdge(ghost))
        );
        assert_eq!(
            s.ingest(&[StreamEvent::ExtendHorizon { to: 10 }]),
            Err(StreamError::HorizonRegression {
                to: 10,
                horizon: 20
            })
        );
        assert_eq!(
            s.ingest(&[StreamEvent::ExtendHorizon { to: u64::MAX }]),
            Err(StreamError::HorizonUnrepresentable { to: u64::MAX })
        );
        assert_eq!(
            s.add_edge(
                NodeId::from_index(0),
                NodeId::from_index(7),
                'a',
                Latency::unit()
            ),
            Err(StreamError::UnknownNode(NodeId::from_index(7)))
        );
        // Errors are values with readable diagnostics, not panics.
        assert!(StreamError::DownBeforeUp { edge: e, at: 3u64 }
            .to_string()
            .contains("not up"));
    }

    #[test]
    fn horizon_extension_moves_provisional_closes() {
        let (mut s, e) = two_node_stream();
        let report = s
            .ingest(&[
                StreamEvent::Up { edge: e, at: 3 },
                StreamEvent::ExtendHorizon { to: 30 },
            ])
            .expect("valid feed");
        assert_eq!(s.index().presence(e).spans(), &[(3, 31)]);
        assert_eq!(s.index().horizon(), &30);
        // The batch's earliest change is the Up itself (3), not the
        // extension (21).
        assert_eq!(report.earliest_change, Some(3));
        assert_matches_recompile(&s);
        // A pure extension with open edges changes presence just beyond
        // the old horizon; with no open edges it changes nothing.
        let report = s
            .ingest(&[StreamEvent::ExtendHorizon { to: 40 }])
            .expect("valid");
        assert_eq!(report.earliest_change, Some(31));
        s.ingest(&[StreamEvent::Down { edge: e, at: 35 }])
            .expect("ok");
        let report = s
            .ingest(&[StreamEvent::ExtendHorizon { to: 50 }])
            .expect("valid");
        assert_eq!(report.earliest_change, None);
        assert_matches_recompile(&s);
    }

    #[test]
    fn new_edges_grow_the_csr_in_place() {
        let mut s = TvgStream::<u64>::new(10).expect("10 + 1 is representable");
        let a = s.add_node("a");
        let b = s.add_node("b");
        let e0 = s.add_edge(a, b, 'x', Latency::unit()).expect("valid");
        s.ingest(&[StreamEvent::Up { edge: e0, at: 1 }])
            .expect("ok");
        let report = s
            .ingest(&[StreamEvent::NewEdge {
                src: a,
                dst: b,
                label: 'y',
                latency: Latency::Const(2),
            }])
            .expect("valid");
        assert_eq!(report.earliest_change, None);
        let e1 = EdgeId::from_index(1);
        assert_eq!(TemporalIndex::out_edges(s.index(), a).to_vec(), [e0, e1]);
        s.ingest(&[
            StreamEvent::Up { edge: e1, at: 4 },
            StreamEvent::Down { edge: e1, at: 6 },
        ])
        .expect("ok");
        assert_eq!(s.index().traverse(e1, &4), Some(6));
        assert_matches_recompile(&s);
    }

    #[test]
    fn replay_reproduces_a_batch_fixture() {
        use crate::generators::ring_bus_tvg;
        let g = ring_bus_tvg(5, 5, 'r');
        let (mut s, events) = TvgStream::replay_of(&g, &24).expect("24 + 1 is representable");
        assert!(!events.is_empty());
        s.ingest(&events).expect("replay is a valid feed");
        let compiled = TvgIndex::compile(&g, 24);
        for e in g.edges() {
            assert_eq!(
                s.index().presence(e).spans(),
                compiled.presence(e).spans(),
                "{e}"
            );
        }
        let live_events: Vec<EdgeEvent<u64>> = s.index().edge_events().cloned().collect();
        assert_eq!(live_events, compiled.edge_events());
        assert_eq!(s.index().num_edge_events(), compiled.num_edge_events());
        assert_matches_recompile(&s);
    }

    #[test]
    fn failed_batches_stop_at_the_offender() {
        let (mut s, e) = two_node_stream();
        let err = s.ingest(&[
            StreamEvent::Up { edge: e, at: 2 },
            StreamEvent::Up { edge: e, at: 4 },
            StreamEvent::Down { edge: e, at: 6 },
        ]);
        assert_eq!(err, Err(StreamError::AlreadyUp { edge: e, since: 2 }));
        // The valid prefix is applied; the rest is not.
        assert_eq!(s.index().presence(e).spans(), &[(2, 21)]);
        assert_eq!(s.watermark(), Some(&2));
        // The prefix's presence change was never reported (the batch
        // errored); the next successful ingest must carry it, so a
        // repair driven by successful reports misses nothing.
        let report = s
            .ingest(&[StreamEvent::Down { edge: e, at: 6 }])
            .expect("valid");
        assert_eq!(report.earliest_change, Some(2));
        // Once reported, the carry-over is consumed.
        let report = s.ingest(&[]).expect("empty batch is valid");
        assert_eq!(report.earliest_change, None);
    }

    /// Regression: constructing a stream whose horizon has no
    /// representable successor used to panic; it is now the typed
    /// [`StreamError::HorizonOverflow`], mirroring the `ExtendHorizon`
    /// path's `HorizonUnrepresentable`.
    #[test]
    fn max_horizon_is_a_typed_error_not_a_panic() {
        assert_eq!(
            TvgStream::<u64>::new(u64::MAX).unwrap_err(),
            StreamError::HorizonOverflow { horizon: u64::MAX }
        );
        assert!(LiveIndex::<u64>::new(u64::MAX).is_none());
        use crate::generators::ring_bus_tvg;
        let g = ring_bus_tvg(3, 3, 'r');
        assert_eq!(
            TvgStream::replay_of(&g, &u64::MAX).unwrap_err(),
            StreamError::HorizonOverflow { horizon: u64::MAX }
        );
        // One below the ceiling still constructs: only the true
        // boundary is rejected.
        assert!(TvgStream::<u64>::new(u64::MAX - 1).is_ok());
    }

    #[test]
    fn node_leave_closes_all_incident_open_spans() {
        let mut s = TvgStream::<u64>::new(20).expect("representable");
        let a = s.add_node("a");
        let b = s.add_node("b");
        let c = s.add_node("c");
        let ab = s.add_edge(a, b, 'x', Latency::unit()).expect("valid");
        let cb = s.add_edge(c, b, 'y', Latency::unit()).expect("valid");
        let ca = s.add_edge(c, a, 'z', Latency::unit()).expect("valid");
        s.ingest(&[
            StreamEvent::Up { edge: ab, at: 2 },
            StreamEvent::Up { edge: cb, at: 3 },
            StreamEvent::Up { edge: ca, at: 4 },
        ])
        .expect("valid feed");
        let report = s
            .ingest(&[StreamEvent::NodeLeave { node: b, at: 7 }])
            .expect("leave is valid");
        // Both edges touching b close at 7; c→a is untouched.
        assert_eq!(report.earliest_change, Some(7));
        assert_eq!(s.index().presence(ab).spans(), &[(2, 7)]);
        assert_eq!(s.index().presence(cb).spans(), &[(3, 7)]);
        assert_eq!(s.index().presence(ca).spans(), &[(4, 21)]);
        assert_eq!(s.open_since(ab), None);
        assert_eq!(s.open_since(cb), None);
        assert_eq!(s.open_since(ca), Some(&4));
        assert_eq!(s.departed_at(b), Some(&7));
        assert_eq!(s.num_departed(), 1);
        assert_eq!(s.watermark(), Some(&7));
        assert_matches_recompile(&s);
    }

    #[test]
    fn events_on_departed_nodes_are_rejected() {
        let mut s = TvgStream::<u64>::new(20).expect("representable");
        let a = s.add_node("a");
        let b = s.add_node("b");
        let ab = s.add_edge(a, b, 'x', Latency::unit()).expect("valid");
        s.ingest(&[
            StreamEvent::Up { edge: ab, at: 2 },
            StreamEvent::NodeLeave { node: b, at: 5 },
        ])
        .expect("valid feed");
        let gone = StreamError::NodeDeparted { node: b, at: 5 };
        assert_eq!(
            s.ingest(&[StreamEvent::Up { edge: ab, at: 6 }]),
            Err(gone.clone())
        );
        assert_eq!(
            s.ingest(&[StreamEvent::Down { edge: ab, at: 6 }]),
            Err(gone.clone())
        );
        assert_eq!(
            s.ingest(&[StreamEvent::NewEdge {
                src: a,
                dst: b,
                label: 'y',
                latency: Latency::unit(),
            }]),
            Err(gone.clone())
        );
        assert_eq!(
            s.ingest(&[StreamEvent::NodeLeave { node: b, at: 8 }]),
            Err(gone.clone())
        );
        assert!(gone.to_string().contains("departed at 5"));
        // A leave on an unknown node is the usual UnknownNode.
        let ghost = NodeId::from_index(9);
        assert_eq!(
            s.ingest(&[StreamEvent::NodeLeave { node: ghost, at: 9 }]),
            Err(StreamError::UnknownNode(ghost))
        );
        // The surviving endpoint can still grow new contacts.
        let c = s.add_node("c");
        let ac = s.add_edge(a, c, 'z', Latency::unit()).expect("valid");
        s.ingest(&[StreamEvent::Up { edge: ac, at: 9 }])
            .expect("valid feed");
        assert_matches_recompile(&s);
    }

    #[test]
    fn churn_rejoin_is_a_fresh_node() {
        let mut s = TvgStream::<u64>::new(30).expect("representable");
        let a = s.add_node("a");
        let b = s.add_node("b");
        let ab = s.add_edge(a, b, 'x', Latency::unit()).expect("valid");
        s.ingest(&[
            StreamEvent::Up { edge: ab, at: 2 },
            StreamEvent::NodeLeave { node: b, at: 6 },
            StreamEvent::NewNode {
                name: "b".to_string(),
            },
        ])
        .expect("valid feed");
        // The rejoined peer has a fresh id; the old id stays departed.
        let b2 = NodeId::from_index(2);
        assert_eq!(s.index().tvg().num_nodes(), 3);
        assert_eq!(s.departed_at(b2), None);
        assert_eq!(s.departed_at(b), Some(&6));
        let ab2 = s.add_edge(a, b2, 'x', Latency::unit()).expect("valid");
        let report = s
            .ingest(&[StreamEvent::Up { edge: ab2, at: 8 }])
            .expect("valid feed");
        assert_eq!(report.earliest_change, Some(8));
        assert_eq!(s.index().presence(ab).spans(), &[(2, 6)]);
        assert_eq!(s.index().presence(ab2).spans(), &[(8, 31)]);
        assert_matches_recompile(&s);
    }

    #[test]
    fn leave_with_zero_length_span_erases_it() {
        // A contact that comes up at the very instant its endpoint
        // departs never existed — the same zero-length rule as an
        // up/down pair at one instant.
        let mut s = TvgStream::<u64>::new(20).expect("representable");
        let a = s.add_node("a");
        let b = s.add_node("b");
        let ab = s.add_edge(a, b, 'x', Latency::unit()).expect("valid");
        s.ingest(&[
            StreamEvent::Up { edge: ab, at: 4 },
            StreamEvent::NodeLeave { node: b, at: 4 },
        ])
        .expect("valid feed");
        assert!(s.index().presence(ab).is_empty());
        assert_eq!(s.index().num_edge_events(), 0);
        assert_matches_recompile(&s);
    }

    #[test]
    fn leave_with_no_open_contacts_reports_no_change() {
        let mut s = TvgStream::<u64>::new(20).expect("representable");
        let a = s.add_node("a");
        let b = s.add_node("b");
        let ab = s.add_edge(a, b, 'x', Latency::unit()).expect("valid");
        s.ingest(&[
            StreamEvent::Up { edge: ab, at: 2 },
            StreamEvent::Down { edge: ab, at: 5 },
        ])
        .expect("valid feed");
        let report = s
            .ingest(&[StreamEvent::NodeLeave { node: b, at: 9 }])
            .expect("valid feed");
        // Presence is untouched (the contact already closed at 5), so
        // there is nothing for an incremental consumer to repair.
        assert_eq!(report.earliest_change, None);
        assert_eq!(s.index().presence(ab).spans(), &[(2, 5)]);
        assert_eq!(s.watermark(), Some(&9));
        assert_matches_recompile(&s);
    }
}
