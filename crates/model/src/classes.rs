//! Time-varying graph classes.
//!
//! The TVG framework the paper builds on (Casteigts, Flocchini,
//! Quattrociocchi, Santoro 2011, the paper's reference \[1\]) organizes
//! dynamic networks into classes by recurrence guarantees of their edge
//! schedules. The
//! Theorem 2.2 compiler in `tvg-expressivity` is exact on the
//! *periodic* class; these predicates let callers check class membership
//! before invoking it, and let generators assert what they produce.

use crate::{Presence, Time, Tvg};

/// Schedule classes decidable by structural inspection of the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScheduleClass {
    /// Present at finitely many instants (or never).
    Finite,
    /// Eventually periodic: periodic behavior, possibly after a bounded
    /// prefix (`At`, `After`, windows and boolean combinations thereof).
    EventuallyPeriodic,
    /// Not classifiable structurally (e.g. [`Presence::Custom`] or the
    /// paper's prime-power schedule, which is aperiodic by design).
    Unknown,
}

/// Classifies a presence schedule by its AST structure.
///
/// Conservative: `Unknown` means "not provably periodic", not "aperiodic".
#[must_use]
pub fn classify_presence<T: Time>(p: &Presence<T>) -> ScheduleClass {
    use ScheduleClass::*;
    match p {
        Presence::Never | Presence::At(_) | Presence::FiniteSet(_) | Presence::Window { .. } => {
            Finite
        }
        Presence::Always | Presence::After(_) | Presence::Before(_) | Presence::Periodic { .. } => {
            EventuallyPeriodic
        }
        Presence::Not(inner) => match classify_presence(inner) {
            Finite | EventuallyPeriodic => EventuallyPeriodic,
            Unknown => Unknown,
        },
        Presence::And(a, b) | Presence::Or(a, b) => {
            match (classify_presence(a), classify_presence(b)) {
                (Unknown, _) | (_, Unknown) => Unknown,
                (Finite, _) | (_, Finite) if matches!(p, Presence::And(_, _)) => Finite,
                _ => EventuallyPeriodic,
            }
        }
        Presence::Dilated { inner, .. } => match classify_presence(inner) {
            Finite => Finite,
            EventuallyPeriodic => EventuallyPeriodic,
            Unknown => Unknown,
        },
        Presence::PqPower { .. } | Presence::Custom(_) => Unknown,
    }
}

/// `true` iff every edge of `g` is *recurrent* within one observed period:
/// present at least once in `[0, period)`.
///
/// For genuinely periodic graphs this witnesses the recurrent class
/// (every edge reappears forever); for arbitrary graphs it is only an
/// observation over the window.
#[must_use]
pub fn all_edges_recur_within(g: &Tvg<u64>, period: u64) -> bool {
    g.edges().all(|e| (0..period).any(|t| g.is_present(e, &t)))
}

/// `true` iff every schedule in `g` verifies `ρ(t) = ρ(t + period)` on the
/// sampled window `[0, window)` — an empirical periodicity check used by
/// tests and by the Theorem 2.2 compiler's precondition validation.
#[must_use]
pub fn observed_periodic(g: &Tvg<u64>, period: u64, window: u64) -> bool {
    g.edges()
        .all(|e| (0..window).all(|t| g.is_present(e, &t) == g.is_present(e, &(t + period))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Latency, TvgBuilder};
    use std::collections::BTreeSet;

    #[test]
    fn classification_of_leaves() {
        use ScheduleClass::*;
        assert_eq!(classify_presence(&Presence::<u64>::Never), Finite);
        assert_eq!(classify_presence(&Presence::At(3u64)), Finite);
        assert_eq!(
            classify_presence(&Presence::Window {
                from: 1u64,
                until: 9
            }),
            Finite
        );
        assert_eq!(
            classify_presence(&Presence::<u64>::Always),
            EventuallyPeriodic
        );
        assert_eq!(
            classify_presence(&Presence::After(5u64)),
            EventuallyPeriodic
        );
        assert_eq!(
            classify_presence(&Presence::<u64>::Periodic {
                period: 3,
                phases: BTreeSet::from([0u64])
            }),
            EventuallyPeriodic
        );
        assert_eq!(
            classify_presence(&Presence::<u64>::PqPower { p: 2, q: 3 }),
            Unknown
        );
        assert_eq!(
            classify_presence(&Presence::<u64>::from_fn(|_| true)),
            Unknown
        );
    }

    #[test]
    fn classification_of_combinators() {
        use ScheduleClass::*;
        let fin = Presence::At(3u64);
        let per = Presence::Periodic {
            period: 2,
            phases: BTreeSet::from([0u64]),
        };
        let unk = Presence::<u64>::PqPower { p: 2, q: 3 };
        assert_eq!(
            classify_presence(&Presence::Not(Box::new(fin.clone()))),
            EventuallyPeriodic
        );
        assert_eq!(
            classify_presence(&Presence::And(Box::new(fin.clone()), Box::new(per.clone()))),
            Finite
        );
        assert_eq!(
            classify_presence(&Presence::Or(Box::new(fin.clone()), Box::new(per.clone()))),
            EventuallyPeriodic
        );
        assert_eq!(
            classify_presence(&Presence::And(Box::new(per.clone()), Box::new(unk))),
            Unknown
        );
        assert_eq!(classify_presence(&fin.dilate(3)), Finite);
        assert_eq!(classify_presence(&per.dilate(3)), EventuallyPeriodic);
    }

    fn periodic_graph() -> Tvg<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 4,
                phases: BTreeSet::from([1u64, 2]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.build().expect("valid")
    }

    #[test]
    fn recurrence_within_period() {
        let g = periodic_graph();
        assert!(all_edges_recur_within(&g, 4));
        assert!(!all_edges_recur_within(&g, 1)); // phase 0 absent
    }

    #[test]
    fn observed_periodicity() {
        let g = periodic_graph();
        assert!(observed_periodic(&g, 4, 20));
        assert!(observed_periodic(&g, 8, 20)); // multiples also verify
        assert!(!observed_periodic(&g, 3, 20));
    }
}
