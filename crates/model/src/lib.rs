//! The time-varying graph (TVG) model of *Waiting in Dynamic Networks*.
//!
//! A TVG is `G = (V, E, T, ρ, ζ)`: entities `V`, labeled relations `E`,
//! a temporal domain `T`, a presence function `ρ : E × T → {0,1}` telling
//! whether an edge is available at an instant, and a latency function
//! `ζ : E × T → T` telling how long a crossing started at an instant
//! takes. This crate is the model substrate of the reproduction:
//!
//! * [`Time`] — the temporal domain as a trait, instantiated at `u64`
//!   (simulation scale) and [`tvg_bigint::Nat`] (the theorem
//!   constructions, whose times outgrow any machine word).
//! * [`Presence`] / [`Latency`] — schedule ASTs covering the paper's
//!   Table 1 (including the prime-power predicate `t = pⁱqⁱ⁻¹` and affine
//!   latencies `(p−1)t`), periodic/finite classes, arbitrary computable
//!   closures, and the Theorem 2.3 time dilation as a syntactic wrapper.
//! * [`Tvg`] / [`TvgBuilder`] — the graph itself: directed labeled edges,
//!   snapshots, footprints, and whole-graph dilation.
//! * [`TvgIndex`] / [`IntervalSet`] — the compiled query layer: per-edge
//!   presence materialized as sorted half-open intervals over a horizon
//!   (binary-search next-presence, gap-skipping departure enumeration),
//!   CSR out-edge adjacency, and a global sorted edge-event timeline.
//! * [`narrow_tvg`] — timeline compression: rebuilds a `u64`-timed TVG
//!   over `u32` instants when the horizon (and every provable arrival)
//!   fits, halving the time keys in the engine's hot structures; refusal
//!   is a typed [`NarrowError`], never a silent truncation.
//! * [`stream`] — streaming ingestion: a [`TvgStream`] validates
//!   appended edge events (up/down, new edges, horizon extensions) and
//!   maintains a [`LiveIndex`] — the same compiled structures as
//!   [`TvgIndex`], mutated in place per event instead of recompiled.
//!   Both index forms answer queries through the [`TemporalIndex`]
//!   trait, so every consumer runs on either.
//! * [`pcol`] — the persistent chunked columns behind the live index:
//!   fixed-size `Arc` chunks with copy-on-write, so cloning a
//!   [`LiveIndex`] for snapshot publication costs O(changes) shared
//!   structure, not an O(index) deep copy.
//! * [`Digraph`] — a minimal static digraph for snapshots and protocols.
//! * [`generators`] — reproducible random/structured TVG families for the
//!   experiment sweeps.
//! * [`classes`] — TVG class predicates (finite / eventually periodic /
//!   unknown) guarding the Theorem 2.2 compiler's precondition.
//!
//! # Examples
//!
//! Build the smallest interesting TVG — one edge that exists only at even
//! instants — and cross it:
//!
//! ```
//! use tvg_model::{Latency, Presence, TvgBuilder};
//!
//! let mut b = TvgBuilder::<u64>::new();
//! let (u, v) = (b.node("u"), b.node("v"));
//! let e = b.edge(u, v, 'a',
//!     Presence::Periodic { period: 2, phases: [0u64].into() },
//!     Latency::unit())?;
//! let g = b.build()?;
//!
//! assert_eq!(g.traverse(e, &4), Some(5)); // present at 4, arrive at 5
//! assert_eq!(g.traverse(e, &5), None);    // absent at 5
//! # Ok::<(), tvg_model::TvgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod dot;
pub mod generators;
mod graph;
mod ids;
mod index;
mod interval;
pub mod narrow;
pub mod pcol;
mod schedule;
pub mod stream;
mod time;
mod tvg;
pub mod tvgi;

pub use graph::Digraph;
pub use ids::{EdgeId, NodeId};
pub use index::{EdgeEvent, EdgeEventKind, EdgeRefs, TemporalIndex, TvgIndex};
pub use interval::{Instants, IntervalSet, SpanView};
pub use narrow::{narrow_tvg, NarrowError};
pub use schedule::{pq_power_index, Latency, Presence};
pub use stream::{LiveIndex, StreamError, StreamEvent, TvgStream};
pub use time::Time;
pub use tvg::{Edge, NameTable, Tvg, TvgBuilder, TvgError};
