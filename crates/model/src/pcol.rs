//! Persistent, structure-sharing columns for the live index.
//!
//! The streaming regime publishes immutable snapshots of a mutating
//! [`crate::LiveIndex`] once per tick. With flat `Vec` columns every
//! snapshot is an O(index) deep copy, so tick rate degrades with
//! accumulated schedule size even when a tick touches a handful of
//! edges. The two containers here make a snapshot O(changes) instead:
//!
//! * [`PCol`] — a chunked persistent column for per-edge / per-node
//!   data. Elements live in fixed-size chunks behind [`Arc`]; cloning
//!   the column clones chunk *handles* (refcount bumps), and a mutation
//!   after a clone copies only the one chunk it lands in
//!   (copy-on-write via [`Arc::make_mut`]). Appends go to a small owned
//!   tail that is frozen into an `Arc` chunk when full.
//! * [`PLog`] — a frozen-prefix log for the global edge-event timeline.
//!   The stream's watermark discipline guarantees every timeline
//!   mutation (insert, retract, provisional-close rewrite) lands at or
//!   after the first event at the watermark, so everything strictly
//!   before it can be sealed into immutable shared chunks; only the
//!   mutable tail is copied per snapshot.
//!
//! Both containers count how many frozen chunks they share and how many
//! chunk copies mutations forced, which is what the serve runtime's
//! publication metrics report: on a healthy schedule the copied count
//! per tick tracks the tick's change set, not the index size.

use std::sync::Arc;

/// Chunk capacity of per-edge / per-node [`PCol`] columns.
pub const COL_CHUNK: usize = 64;

/// Chunk capacity of the [`PLog`] event timeline.
pub const LOG_CHUNK: usize = 1024;

/// A chunked persistent column: `Arc`-shared fixed-size chunks plus an
/// owned append tail.
///
/// Cloning is O(number of chunks) refcount bumps plus one tail copy —
/// never a deep copy of frozen data. Mutating a frozen element after a
/// clone copies exactly the `N`-element chunk it lives in.
#[derive(Debug, Clone)]
pub struct PCol<V, const N: usize> {
    /// Frozen chunks of exactly `N` elements each.
    full: Vec<Arc<Vec<V>>>,
    /// Owned append edge, fewer than `N` elements.
    tail: Vec<V>,
    /// How many shared chunks mutations have had to copy so far.
    cow_copies: u64,
}

impl<V, const N: usize> Default for PCol<V, N> {
    fn default() -> Self {
        PCol::new()
    }
}

impl<V, const N: usize> PCol<V, N> {
    /// An empty column.
    #[must_use]
    pub fn new() -> Self {
        const { assert!(N > 0) };
        PCol {
            full: Vec::new(),
            tail: Vec::new(),
            cow_copies: 0,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.full.len() * N + self.tail.len()
    }

    /// `true` iff the column has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.full.is_empty() && self.tail.is_empty()
    }

    /// Appends an element; freezes the tail into a shared chunk when it
    /// reaches the chunk capacity.
    pub fn push(&mut self, v: V) {
        self.tail.push(v);
        if self.tail.len() == N {
            self.full.push(Arc::new(std::mem::take(&mut self.tail)));
        }
    }

    /// The element at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> &V {
        let frozen = self.full.len() * N;
        if i < frozen {
            &self.full[i / N][i % N]
        } else {
            &self.tail[i - frozen]
        }
    }

    /// Iterates the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &V> {
        self.full
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }

    /// Number of frozen (sharable) chunks.
    #[must_use]
    pub fn frozen_chunks(&self) -> u64 {
        self.full.len() as u64
    }

    /// How many shared chunks mutations have had to copy so far.
    #[must_use]
    pub fn cow_copies(&self) -> u64 {
        self.cow_copies
    }
}

impl<V: Clone, const N: usize> PCol<V, N> {
    /// Mutable access to the element at `i`. If `i` lives in a frozen
    /// chunk currently shared with a snapshot, that one chunk is copied
    /// first (and counted); the rest of the column keeps sharing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get_mut(&mut self, i: usize) -> &mut V {
        let frozen = self.full.len() * N;
        if i < frozen {
            let chunk = &mut self.full[i / N];
            if Arc::get_mut(chunk).is_none() {
                self.cow_copies += 1;
            }
            &mut Arc::make_mut(chunk)[i % N]
        } else {
            &mut self.tail[i - frozen]
        }
    }
}

/// A frozen-prefix persistent log: an immutable, `Arc`-shared chunked
/// prefix plus an owned mutable tail.
///
/// Unlike [`PCol`], whose frozen region is fixed by element *count*,
/// the log's frozen prefix is advanced explicitly by [`PLog::seal`]:
/// the caller promises that every future `insert` / `remove` /
/// `tail_from_mut` position lands at or after the seal point. The
/// stream layer derives that promise from its watermark — timeline
/// events strictly before the watermark can never be touched again.
#[derive(Debug, Clone)]
pub struct PLog<V, const N: usize> {
    /// Sealed chunks of exactly `N` elements each.
    full: Vec<Arc<Vec<V>>>,
    /// The mutable suffix (any length).
    tail: Vec<V>,
}

impl<V, const N: usize> Default for PLog<V, N> {
    fn default() -> Self {
        PLog::new()
    }
}

impl<V, const N: usize> PLog<V, N> {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        const { assert!(N > 0) };
        PLog {
            full: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.full.len() * N + self.tail.len()
    }

    /// `true` iff the log has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.full.is_empty() && self.tail.is_empty()
    }

    /// Number of elements in the sealed (immutable, shared) prefix.
    #[must_use]
    pub fn frozen_len(&self) -> usize {
        self.full.len() * N
    }

    /// Number of sealed (sharable) chunks.
    #[must_use]
    pub fn frozen_chunks(&self) -> u64 {
        self.full.len() as u64
    }

    /// The element at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> &V {
        let frozen = self.frozen_len();
        if i < frozen {
            &self.full[i / N][i % N]
        } else {
            &self.tail[i - frozen]
        }
    }

    /// Iterates the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &V> {
        self.full
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }

    /// Reserves tail capacity for at least `additional` more elements.
    pub fn reserve(&mut self, additional: usize) {
        self.tail.reserve(additional);
    }

    /// Inserts `v` at position `pos`, which must lie in the mutable
    /// tail — the caller's seal discipline guarantees it does.
    ///
    /// # Panics
    ///
    /// Panics if `pos` lies in the sealed prefix or beyond the end.
    pub fn insert(&mut self, pos: usize, v: V) {
        let frozen = self.frozen_len();
        assert!(
            pos >= frozen,
            "PLog::insert at {pos} inside the sealed prefix (< {frozen})"
        );
        self.tail.insert(pos - frozen, v);
    }

    /// Removes and returns the element at `pos`, which must lie in the
    /// mutable tail.
    ///
    /// # Panics
    ///
    /// Panics if `pos` lies in the sealed prefix or beyond the end.
    pub fn remove(&mut self, pos: usize) -> V {
        let frozen = self.frozen_len();
        assert!(
            pos >= frozen,
            "PLog::remove at {pos} inside the sealed prefix (< {frozen})"
        );
        self.tail.remove(pos - frozen)
    }

    /// Mutable access to the suffix starting at `pos`, which must lie
    /// in the mutable tail (or be the one-past-the-end position).
    ///
    /// # Panics
    ///
    /// Panics if `pos` lies in the sealed prefix or beyond the end.
    pub fn tail_from_mut(&mut self, pos: usize) -> &mut [V] {
        let frozen = self.frozen_len();
        assert!(
            pos >= frozen,
            "PLog::tail_from_mut at {pos} inside the sealed prefix (< {frozen})"
        );
        &mut self.tail[pos - frozen..]
    }

    /// The index of the partition point of `pred` (binary search over
    /// the whole log; the elements must be partitioned with respect to
    /// `pred` exactly as for `slice::partition_point`).
    pub fn partition_point(&self, mut pred: impl FnMut(&V) -> bool) -> usize {
        let (mut lo, mut hi) = (0, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.get(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Seals complete chunks so that every element strictly before
    /// `upto` that fills a whole chunk becomes immutable and sharable.
    /// Elements at `upto` and beyond (and a partial chunk below it)
    /// stay in the mutable tail.
    pub fn seal(&mut self, upto: usize) {
        debug_assert!(upto <= self.len());
        while self.frozen_len() + N <= upto {
            let rest = self.tail.split_off(N);
            self.full
                .push(Arc::new(std::mem::replace(&mut self.tail, rest)));
        }
    }
}

impl<V: Ord, const N: usize> PLog<V, N> {
    /// Binary search for `x` over the whole log (same contract as
    /// `slice::binary_search` on the equivalent flat slice; the log
    /// must be sorted).
    ///
    /// # Errors
    ///
    /// Returns `Err(pos)` with the insertion position if `x` is absent.
    pub fn binary_search(&self, x: &V) -> Result<usize, usize> {
        let pos = self.partition_point(|v| v < x);
        if pos < self.len() && self.get(pos) == x {
            Ok(pos)
        } else {
            Err(pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcol_push_get_iter_across_chunks() {
        let mut c: PCol<u64, 4> = PCol::new();
        assert!(c.is_empty());
        for i in 0..11 {
            c.push(i);
        }
        assert_eq!(c.len(), 11);
        assert_eq!(c.frozen_chunks(), 2);
        for i in 0..11 {
            assert_eq!(*c.get(i as usize), i);
        }
        let all: Vec<u64> = c.iter().copied().collect();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn pcol_clone_shares_until_written() {
        let mut c: PCol<u64, 4> = PCol::new();
        for i in 0..10 {
            c.push(i);
        }
        let snap = c.clone();
        assert_eq!(c.cow_copies(), 0);
        // Tail writes never copy chunks.
        *c.get_mut(9) = 99;
        assert_eq!(c.cow_copies(), 0);
        // First frozen write after a clone copies exactly one chunk...
        *c.get_mut(1) = 91;
        assert_eq!(c.cow_copies(), 1);
        // ...and further writes to the now-unshared chunk are free.
        *c.get_mut(2) = 92;
        assert_eq!(c.cow_copies(), 1);
        *c.get_mut(5) = 95;
        assert_eq!(c.cow_copies(), 2);
        // The snapshot is unaffected by all of it.
        assert_eq!(
            snap.iter().copied().collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(*c.get(1), 91);
        assert_eq!(*c.get(9), 99);
    }

    #[test]
    fn plog_mutations_in_the_tail() {
        let mut l: PLog<u64, 4> = PLog::new();
        for i in 0..10 {
            let pos = l.len();
            l.insert(pos, i * 2);
        }
        assert_eq!(l.len(), 10);
        // Seal the first two chunks (elements < 8 by index).
        l.seal(8);
        assert_eq!(l.frozen_len(), 8);
        assert_eq!(l.frozen_chunks(), 2);
        let snap = l.clone();
        l.insert(9, 17);
        assert_eq!(l.remove(8), 16);
        l.tail_from_mut(8)[0] = 99;
        assert_eq!(
            l.iter().copied().collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8, 10, 12, 14, 99, 18]
        );
        assert_eq!(
            snap.iter().copied().collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]
        );
        assert_eq!(l.partition_point(|v| *v < 10), 5);
        assert_eq!(l.binary_search(&6), Ok(3));
        assert_eq!(l.binary_search(&7), Err(4));
    }

    #[test]
    fn plog_seal_only_whole_chunks() {
        let mut l: PLog<u64, 4> = PLog::new();
        for i in 0..10 {
            let pos = l.len();
            l.insert(pos, i);
        }
        l.seal(7); // one whole chunk fits below 7
        assert_eq!(l.frozen_len(), 4);
        l.seal(7); // idempotent
        assert_eq!(l.frozen_len(), 4);
        l.seal(10);
        assert_eq!(l.frozen_len(), 8);
    }

    #[test]
    #[should_panic(expected = "sealed prefix")]
    fn plog_rejects_frozen_mutation() {
        let mut l: PLog<u64, 4> = PLog::new();
        for i in 0..8 {
            let pos = l.len();
            l.insert(pos, i);
        }
        l.seal(8);
        l.remove(3);
    }
}
