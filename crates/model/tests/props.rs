//! Property tests for schedules and TVGs: the dilation contract on
//! arbitrary schedule ASTs, periodicity laws, and traversal invariants.
//!
//! Runs on `tvg-testkit`'s deterministic harness; schedule ASTs come from
//! `tvg_testkit::gen::{presence, latency}`.

use rand::Rng;
use std::collections::BTreeSet;
use tvg_model::{Latency, Presence, Time, TvgBuilder};
use tvg_testkit::gen::{latency, presence};

#[test]
fn dilation_contract_for_presence() {
    tvg_testkit::check("dilation_contract_for_presence", |rng, _| {
        let p = presence(rng, 3);
        let factor = rng.gen_range(1u64..6);
        let t = rng.gen_range(0u64..200);
        let dilated = p.clone().dilate(factor);
        let expected = t % factor == 0 && p.is_present(&(t / factor));
        assert_eq!(dilated.is_present(&t), expected);
    });
}

#[test]
fn dilation_by_one_is_identity() {
    tvg_testkit::check("dilation_by_one_is_identity", |rng, _| {
        let p = presence(rng, 3);
        let t = rng.gen_range(0u64..100);
        assert_eq!(p.clone().dilate(1).is_present(&t), p.is_present(&t));
    });
}

#[test]
fn boolean_combinators_obey_logic() {
    tvg_testkit::check("boolean_combinators_obey_logic", |rng, _| {
        let a = presence(rng, 3);
        let b = presence(rng, 3);
        let t = rng.gen_range(0u64..100);
        let not_a = Presence::Not(Box::new(a.clone()));
        assert_eq!(not_a.is_present(&t), !a.is_present(&t));
        let and = Presence::And(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(and.is_present(&t), a.is_present(&t) && b.is_present(&t));
        let or = Presence::Or(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(or.is_present(&t), a.is_present(&t) || b.is_present(&t));
    });
}

#[test]
fn next_present_is_sound_and_minimal() {
    tvg_testkit::check("next_present_is_sound_and_minimal", |rng, _| {
        let p = presence(rng, 3);
        let from = rng.gen_range(0u64..60);
        let until = from + rng.gen_range(0u64..40);
        match p.next_present_within(&from, &until) {
            Some(t) => {
                assert!(t >= from && t <= until);
                assert!(p.is_present(&t));
                for earlier in from..t {
                    assert!(!p.is_present(&earlier));
                }
            }
            None => {
                for t in from..=until {
                    assert!(!p.is_present(&t));
                }
            }
        }
    });
}

#[test]
fn latency_dilation_contract() {
    tvg_testkit::check("latency_dilation_contract", |rng, _| {
        let l = latency(rng);
        let factor = rng.gen_range(1u64..6);
        let t = rng.gen_range(0u64..100);
        let dilated = l.clone().dilate(factor);
        if let (Some(inner_arrival), Some(dilated_arrival)) =
            (l.arrival(&t), dilated.arrival(&(t * factor)))
        {
            assert_eq!(dilated_arrival, inner_arrival * factor);
        }
    });
}

#[test]
fn arrival_never_precedes_departure() {
    tvg_testkit::check("arrival_never_precedes_departure", |rng, _| {
        let l = latency(rng);
        let t = rng.gen_range(0u64..1000);
        if let Some(a) = l.arrival(&t) {
            assert!(a >= t);
        }
    });
}

#[test]
fn periodic_schedules_are_periodic() {
    tvg_testkit::check("periodic_schedules_are_periodic", |rng, _| {
        let period = rng.gen_range(1u64..10);
        let count = rng.gen_range(0..6);
        let phases: BTreeSet<u64> = (0..count).map(|_| rng.gen_range(0..period)).collect();
        let t = rng.gen_range(0u64..100);
        let p = Presence::Periodic { period, phases };
        assert_eq!(p.is_present(&t), p.is_present(&(t + period)));
    });
}

#[test]
fn tvg_traversal_respects_schedules() {
    tvg_testkit::check("tvg_traversal_respects_schedules", |rng, _| {
        let p = presence(rng, 3);
        let l = latency(rng);
        let t = rng.gen_range(0u64..100);
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        let e = b
            .edge(v[0], v[1], 'a', p.clone(), l.clone())
            .expect("valid");
        let g = b.build().expect("valid");
        match g.traverse(e, &t) {
            Some(arrival) => {
                assert!(p.is_present(&t));
                assert_eq!(Some(arrival), l.arrival(&t));
            }
            None => {
                assert!(!p.is_present(&t) || l.arrival(&t).is_none());
            }
        }
    });
}

#[test]
fn whole_graph_dilation_matches_edge_dilation() {
    tvg_testkit::check("whole_graph_dilation_matches_edge_dilation", |rng, _| {
        let p = presence(rng, 3);
        let l = latency(rng);
        let d = rng.gen_range(0u64..5);
        let t = rng.gen_range(0u64..120);
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        let e = b.edge(v[0], v[1], 'a', p, l).expect("valid");
        let g = b.build().expect("valid");
        let dilated = g.dilate(d);
        let factor = d + 1;
        // Dilated graph at factor·t behaves as the original at t.
        if t % factor == 0 {
            let orig = g.traverse(e, &(t / factor));
            let dil = dilated.traverse(e, &t);
            assert_eq!(dil, orig.map(|a| a * factor));
        } else {
            assert_eq!(dilated.traverse(e, &t), None);
        }
    });
}

#[test]
fn snapshot_is_consistent_with_presence() {
    tvg_testkit::check("snapshot_is_consistent_with_presence", |rng, _| {
        let p = presence(rng, 3);
        let t = rng.gen_range(0u64..60);
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        let e = b
            .edge(v[0], v[1], 'x', p.clone(), Latency::unit())
            .expect("valid");
        let g = b.build().expect("valid");
        assert_eq!(g.snapshot(&t).contains(&e), p.is_present(&t));
    });
}

#[test]
fn time_trait_laws_u64() {
    tvg_testkit::check("time_trait_laws_u64", |rng, _| {
        let a = rng.gen_range(0u64..1_000_000);
        let b = rng.gen_range(0u64..1_000_000);
        assert_eq!(Time::checked_add(&a, &b), a.checked_add(b));
        if a >= b {
            assert_eq!(Time::checked_sub(&a, &b), Some(a - b));
        } else {
            assert_eq!(Time::checked_sub(&a, &b), None);
        }
        assert_eq!(a.succ(), a + 1);
    });
}

/// Failure modes of the `u32` timeline compression: every way a graph
/// can fail to narrow is a *typed* refusal — never a silent truncation
/// that would quietly corrupt arrivals.
#[test]
fn narrowing_failure_modes_are_typed_errors() {
    use tvg_model::{narrow_tvg, NarrowError};

    // A horizon beyond what u32 can represent is refused up front, even
    // on a graph whose schedule would otherwise narrow fine.
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    b.edge(v[0], v[1], 'a', Presence::Always, Latency::Const(0))
        .expect("valid");
    let g = b.build().expect("valid");
    let horizon = u64::from(u32::MAX);
    assert_eq!(
        narrow_tvg(&g, horizon).err(),
        Some(NarrowError::HorizonExceedsU32 { horizon }),
        "horizon + 1 must stay representable in u32"
    );

    // A latency whose arrival can overflow u32 within the horizon is
    // refused per edge, not clamped.
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    let e = b
        .edge(v[0], v[1], 'a', Presence::Always, Latency::Const(1 << 33))
        .expect("valid");
    let g = b.build().expect("valid");
    assert_eq!(
        narrow_tvg(&g, 100).err(),
        Some(NarrowError::ArrivalOverflow { edge: e }),
        "overflowing arrivals are a typed refusal"
    );

    // An opaque latency cannot be proven to fit, so it is refused too —
    // and the error names the offending edge.
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(2);
    let e = b
        .edge(
            v[0],
            v[1],
            'a',
            Presence::Always,
            Latency::Custom(std::sync::Arc::new(|_t: &u64| 1)),
        )
        .expect("valid");
    let g = b.build().expect("valid");
    let err = narrow_tvg(&g, 100).expect_err("custom latency is refused");
    assert_eq!(err, NarrowError::UnprovableLatency { edge: e });
    assert!(
        err.to_string().contains(&e.to_string()),
        "the refusal names the edge: {err}"
    );
}
